// Ablation: co-located enclaves vs the classic distributed deployment of
// the secure-sum protocol (paper §5.2's motivation: "Usually the protocol
// targets a distributed setting where the individual participants exchange
// messages over the network. With the support of trusted execution all
// participants can be represented by enclaves that are co-located on a
// single machine. This way costly network-based communication between the
// participants can be avoided.").
//
// Three deployments of the identical protocol:
//   TCP      — parties exchange hops over loopback TCP, each network
//              operation an OCall out of the party's enclave
//   EC       — co-located SDK-style ring (ecalls per hop, no network)
//   EA       — co-located EActors ring (no transitions, no network)
#include "bench/smc_harness.hpp"
#include "smc/tcp_ring.hpp"

using namespace ea;

namespace {

double run_tcp(const smc::SmcConfig& config, std::uint64_t requests) {
  smc::TcpSecureSum smc(config);
  bench::Timer timer;
  for (std::uint64_t i = 0; i < requests; ++i) smc.run_once();
  return static_cast<double>(requests) / timer.seconds() / 1000.0;
}

}  // namespace

int main() {
  bench::csv_header();
  const std::uint64_t requests = bench::scaled(200);

  double tcp3 = 0, ea3 = 0;
  for (int parties : {3, 8}) {
    for (std::size_t dim : {std::size_t{10}, std::size_t{1000}}) {
      smc::SmcConfig config;
      config.parties = parties;
      config.dim = dim;
      std::string x = std::to_string(parties) + "p/" + std::to_string(dim);

      double tcp = run_tcp(config, requests);
      bench::reset_enclaves();
      double ec = bench::run_smc_sdk(config, requests);
      bench::reset_enclaves();
      double ea = bench::run_smc_ea(config, requests);
      bench::reset_enclaves();

      bench::row("ablation-colocated", "TCP-" + x, parties, tcp, "1e3req/s");
      bench::row("ablation-colocated", "EC-" + x, parties, ec, "1e3req/s");
      bench::row("ablation-colocated", "EA-" + x, parties, ea, "1e3req/s");
      if (parties == 3 && dim == 10) {
        tcp3 = tcp;
        ea3 = ea;
      }
    }
  }
  bench::note("paper motivation (§5.2): co-location avoids costly network "
              "communication — EA/TCP at 3 parties, dim 10: %.1fx "
              "(loopback TCP; a real network would widen this further)",
              ea3 / tcp3);
  return 0;
}
