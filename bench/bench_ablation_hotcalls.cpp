// Ablation: the three call mechanisms the paper situates EActors against,
// under one cost model — round-trip latency of a small request into an
// enclave and back:
//
//   Native   — SDK-style synchronous ECall (two transitions per call)
//   HotCalls — asynchronous call slot polled by an enclave-resident thread
//              (Weisse et al. [52]; no transitions, but the caller blocks)
//   EActors  — message over a channel to an enclaved actor and back (no
//              transitions, fully asynchronous; requests can be pipelined,
//              which neither of the call-shaped interfaces offers)
//
// Expected shape: Native pays ~2x transition cost per call; HotCalls and
// EActors are transition-free; with pipelining (in-flight > 1) EActors
// exceeds HotCalls' one-at-a-time ceiling.
#include <thread>

#include "bench/common.hpp"
#include "core/runtime.hpp"
#include "sgxsim/hotcalls.hpp"
#include "sgxsim/transition.hpp"

using namespace ea;

namespace {

std::uint64_t work(std::uint64_t x) { return x * 2654435761u + 1; }

double run_native(std::uint64_t calls) {
  sgxsim::Enclave& e = sgxsim::EnclaveManager::instance().create("abl.native");
  volatile std::uint64_t sink = 0;
  bench::Timer timer;
  for (std::uint64_t i = 0; i < calls; ++i) {
    sink = sgxsim::ecall(e, [&] { return work(i); });
  }
  (void)sink;
  return static_cast<double>(calls) / timer.seconds();
}

double run_hotcalls(std::uint64_t calls) {
  sgxsim::Enclave& e = sgxsim::EnclaveManager::instance().create("abl.hot");
  sgxsim::HotCallService service(e, [](std::uint64_t op, void* data) {
    *static_cast<std::uint64_t*>(data) = work(op);
  });
  std::uint64_t out = 0;
  service.call(0, &out);  // responder resident
  bench::Timer timer;
  for (std::uint64_t i = 0; i < calls; ++i) {
    service.call(i, &out);
  }
  return static_cast<double>(calls) / timer.seconds();
}

struct Server : core::Actor {
  using core::Actor::Actor;
  void construct(core::Runtime&) override { ch_ = connect("abl.req"); }
  bool body() override {
    bool progress = false;
    while (auto msg = ch_->recv()) {
      std::uint64_t v = util::load_le64(msg->payload());
      std::uint8_t buf[8];
      util::store_le64(buf, work(v));
      ch_->send(std::span<const std::uint8_t>(buf, 8));
      progress = true;
    }
    return progress;
  }
  core::ChannelEnd* ch_ = nullptr;
};

double run_eactors(std::uint64_t calls, std::uint64_t inflight) {
  core::RuntimeOptions options;
  options.pool_nodes = 256;
  options.node_payload_bytes = 64;
  core::Runtime rt(options);
  core::ChannelOptions plain;
  plain.force_plain = true;  // measure the call mechanism, not the cipher
  rt.channel("abl.req", plain);
  rt.add_actor(std::make_unique<Server>("server"), "abl.ea");
  rt.add_worker("w", {1}, {"server"});
  core::ChannelEnd* client = rt.channel("abl.req").connect(sgxsim::kUntrusted);
  rt.start();

  bench::Timer timer;
  std::uint64_t sent = 0, done = 0;
  std::uint8_t buf[8];
  while (done < calls) {
    while (sent < calls && sent - done < inflight) {
      util::store_le64(buf, sent);
      if (!client->send(std::span<const std::uint8_t>(buf, 8))) break;
      ++sent;
    }
    if (auto msg = client->recv()) {
      ++done;
    } else {
      std::this_thread::yield();
    }
  }
  double tput = static_cast<double>(calls) / timer.seconds();
  rt.stop();
  sgxsim::EnclaveManager::instance().reset_for_testing();
  return tput;
}

}  // namespace

int main() {
  bench::csv_header();
  const std::uint64_t calls = bench::scaled(20000);

  double native = run_native(calls);
  bench::row("ablation-hotcalls", "Native-ECall", 1, native / 1000.0,
             "1e3call/s");
  double hot = run_hotcalls(calls);
  bench::row("ablation-hotcalls", "HotCalls", 1, hot / 1000.0, "1e3call/s");
  double ea1 = run_eactors(calls, 1);
  bench::row("ablation-hotcalls", "EActors", 1, ea1 / 1000.0, "1e3call/s");
  double ea16 = run_eactors(calls, 16);
  bench::row("ablation-hotcalls", "EActors", 16, ea16 / 1000.0, "1e3call/s");

  bench::note("transition-free mechanisms beat Native (HotCalls %.1fx, "
              "EActors %.1fx); pipelining lifts EActors further (%.1fx at "
              "16 in flight)",
              hot / native, ea1 / native, ea16 / native);
  return 0;
}
