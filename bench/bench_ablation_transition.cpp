// Ablation: how much of the EActors advantage comes from avoiding
// transitions? Re-runs the short-vector secure-sum comparison with the
// transition cost swept from 0 to 16000 cycles. At 0, EC and EA converge
// (modulo threading); at the paper's 8000, the gap is the paper's gap —
// isolating the mechanism behind Figures 12/13.
#include "bench/smc_harness.hpp"
#include "sgxsim/cost_model.hpp"

using namespace ea;

int main() {
  bench::csv_header();
  sgxsim::ScopedCostModel scoped;  // restore the cost model on exit
  const std::uint64_t requests = bench::scaled(300);

  smc::SmcConfig config;
  config.parties = 5;
  config.dim = 10;

  double gap_at_zero = 0, gap_at_8000 = 0;
  for (std::uint64_t cost : {0ull, 2000ull, 4000ull, 8000ull, 16000ull}) {
    sgxsim::cost_model().ecall_cycles = cost;
    sgxsim::cost_model().ocall_cycles = cost;

    double ec = bench::run_smc_sdk(config, requests);
    bench::reset_enclaves();
    double ea = bench::run_smc_ea(config, requests);
    bench::reset_enclaves();
    bench::row("ablation-transition", "EC", static_cast<double>(cost), ec,
               "1e3req/s");
    bench::row("ablation-transition", "EA", static_cast<double>(cost), ea,
               "1e3req/s");
    if (cost == 0) gap_at_zero = ea / ec;
    if (cost == 8000) gap_at_8000 = ea / ec;
  }
  bench::note("EA/EC at 0-cycle transitions: %.2fx; at 8000 cycles: %.2fx — "
              "the delta is the transition-avoidance contribution",
              gap_at_zero, gap_at_8000);
  return 0;
}
