// Batched message plane: quantifies the burst APIs introduced with the
// contention-free messaging work against their one-at-a-time counterparts.
//
//   mbox       — push/pop vs push_chain/pop_burst on one shared MPMC mbox,
//                w producers + w consumers;
//   channel    — per-message send/recv vs send_batch/recv_burst over an
//                encrypted cross-enclave channel (software AEAD), one
//                channel pair per worker;
//   transition — one ECall per message vs one ECall per batch (the enclave
//                transition amortisation the paper's design is built on);
//   pool       — get/put churn with per-thread magazines vs the bare
//                shared LIFO.
//
// Prints the usual CSV rows and additionally writes a machine-readable
// report to BENCH_batching.json (override with EA_BENCH_JSON).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "concurrent/arena.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/channel.hpp"
#include "sgxsim/enclave.hpp"
#include "sgxsim/transition.hpp"
#include "util/bench_report.hpp"
#include "util/env.hpp"

namespace {

using namespace ea;

constexpr std::size_t kMsgBytes = 64;
constexpr std::size_t kBurst = 16;
constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

double run_seconds() {
  return std::max(0.02, bench::seconds_per_point() * 0.5);
}

// --- mbox: w producers + w consumers on one shared mbox ---------------------

double run_mbox(std::size_t workers, bool burst) {
  concurrent::NodeArena arena(workers * 64, kMsgBytes);
  concurrent::Pool pool;
  pool.adopt(arena);
  concurrent::Mbox mbox;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> consumed{0};

  auto producer = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (burst) {
        concurrent::ChainBuilder chain;
        for (std::size_t i = 0; i < kBurst; ++i) {
          concurrent::Node* n = pool.get();
          if (n == nullptr) break;
          std::memset(n->payload(), 0xab, kMsgBytes);
          n->size = kMsgBytes;
          chain.append(n);
        }
        if (chain.empty()) {
          std::this_thread::yield();
          continue;
        }
        chain.flush_into(mbox);
      } else {
        concurrent::Node* n = pool.get();
        if (n == nullptr) {
          std::this_thread::yield();
          continue;
        }
        std::memset(n->payload(), 0xab, kMsgBytes);
        n->size = kMsgBytes;
        mbox.push(n);
      }
    }
  };
  auto consumer = [&] {
    std::uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed) || !mbox.empty()) {
      if (burst) {
        concurrent::Node* out[kBurst];
        std::size_t got = mbox.pop_burst(out, kBurst);
        if (got == 0) {
          std::this_thread::yield();
          continue;
        }
        for (std::size_t i = 0; i < got; ++i) pool.put(out[i]);
        local += got;
      } else {
        concurrent::Node* n = mbox.pop();
        if (n == nullptr) {
          std::this_thread::yield();
          continue;
        }
        pool.put(n);
        ++local;
      }
    }
    consumed.fetch_add(local, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  bench::Timer timer;
  for (std::size_t i = 0; i < workers; ++i) threads.emplace_back(producer);
  for (std::size_t i = 0; i < workers; ++i) threads.emplace_back(consumer);
  while (timer.seconds() < run_seconds()) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  double secs = timer.seconds();
  return static_cast<double>(consumed.load()) / secs;
}

// --- channel: encrypted cross-enclave transfer, one pair per worker ---------

// Channel messages are small control messages — 16 B, the smallest message
// size of the paper's ping-pong figure — where per-message costs dominate
// and coalescing pays. A 4 KiB node fits 64 of them per sealed frame.
constexpr std::size_t kChanMsgBytes = 16;
constexpr std::size_t kChanBurst = 64;

double run_channel(std::size_t workers, bool batch, core::CipherModel cipher) {
  auto& mgr = sgxsim::EnclaveManager::instance();
  std::vector<std::unique_ptr<concurrent::NodeArena>> arenas;
  std::vector<std::unique_ptr<concurrent::Pool>> pools;
  std::vector<std::unique_ptr<core::Channel>> channels;
  std::vector<core::ChannelEnd*> tx, rx;
  for (std::size_t i = 0; i < workers; ++i) {
    arenas.push_back(std::make_unique<concurrent::NodeArena>(256, 4096));
    pools.push_back(std::make_unique<concurrent::Pool>());
    pools[i]->adopt(*arenas[i]);
    core::ChannelOptions ch_options;
    ch_options.cipher = cipher;
    channels.push_back(std::make_unique<core::Channel>(
        "bench.batching." + std::to_string(i), ch_options, *pools[i]));
    sgxsim::Enclave& a =
        mgr.create("bench.batching.a" + std::to_string(i));
    sgxsim::Enclave& b =
        mgr.create("bench.batching.b" + std::to_string(i));
    tx.push_back(channels[i]->connect(a.id()));
    rx.push_back(channels[i]->connect(b.id()));
  }
  if (!channels.empty() && !channels[0]->encrypted()) {
    bench::note("WARNING: channel did not come up encrypted");
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};

  // Each worker owns both ends of its channel and alternates between
  // filling a send window and draining it — a deterministic measurement of
  // the CPU work per message that is not at the mercy of how the scheduler
  // interleaves sender/receiver threads.
  std::vector<std::thread> threads;
  bench::Timer timer;
  for (std::size_t i = 0; i < workers; ++i) {
    threads.emplace_back([&, i] {
      std::uint8_t payload[kChanMsgBytes];
      std::memset(payload, 0x5a, sizeof(payload));
      std::vector<std::span<const std::uint8_t>> msgs(
          kChanBurst, std::span<const std::uint8_t>(payload, kChanMsgBytes));
      const std::size_t window = 2 * kChanBurst;
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::size_t sent = 0;
        if (batch) {
          while (sent < window) {
            std::size_t n = tx[i]->send_batch(msgs);
            if (n == 0) break;
            sent += n;
          }
        } else {
          while (sent < window &&
                 tx[i]->send(std::span<const std::uint8_t>(
                     payload, kChanMsgBytes))) {
            ++sent;
          }
        }
        std::size_t drained = 0;
        while (drained < sent) {
          if (batch) {
            concurrent::NodeLease out[2 * kChanBurst];
            drained += rx[i]->recv_burst(out, 2 * kChanBurst);
          } else {
            if (rx[i]->recv()) ++drained;
          }
        }
        local += sent;
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  while (timer.seconds() < run_seconds()) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  double secs = timer.seconds();

  channels.clear();
  pools.clear();
  arenas.clear();
  mgr.reset_for_testing();
  return static_cast<double>(total.load()) / secs;
}

// --- transition: ECall-per-message vs ECall-per-batch -----------------------

double run_transition(std::size_t batch_size) {
  auto& mgr = sgxsim::EnclaveManager::instance();
  sgxsim::Enclave& e = mgr.create("bench.batching.transition");
  std::uint8_t msg[kMsgBytes];
  std::memset(msg, 0x17, sizeof(msg));

  std::uint64_t processed = 0, sink = 0;
  auto work_one = [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kMsgBytes; ++i) sum += msg[i];
    sink += sum;
  };

  bench::Timer timer;
  while (timer.seconds() < run_seconds()) {
    if (batch_size <= 1) {
      for (std::size_t i = 0; i < kBurst; ++i) sgxsim::ecall(e, work_one);
      processed += kBurst;
    } else {
      sgxsim::ecall(e, [&] {
        for (std::size_t i = 0; i < batch_size; ++i) work_one();
      });
      processed += batch_size;
    }
  }
  double secs = timer.seconds();
  if (sink == 0) bench::note("unexpected zero checksum");
  mgr.reset_for_testing();
  return static_cast<double>(processed) / secs;
}

// --- pool: get/put churn, magazines vs bare shared LIFO ---------------------

double run_pool(std::size_t workers, bool magazines) {
  concurrent::NodeArena arena(workers * 64, kMsgBytes);
  concurrent::Pool pool(magazines);
  pool.adopt(arena);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> cycled{0};

  auto churn = [&] {
    std::uint64_t local = 0;
    concurrent::Node* held[8];
    while (!stop.load(std::memory_order_relaxed)) {
      std::size_t got = 0;
      for (std::size_t i = 0; i < 8; ++i) {
        concurrent::Node* n = pool.get();
        if (n == nullptr) break;
        held[got++] = n;
      }
      for (std::size_t i = 0; i < got; ++i) pool.put(held[i]);
      local += got;
      if (got == 0) std::this_thread::yield();
    }
    cycled.fetch_add(local, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  bench::Timer timer;
  for (std::size_t i = 0; i < workers; ++i) threads.emplace_back(churn);
  while (timer.seconds() < run_seconds()) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  double secs = timer.seconds();
  return static_cast<double>(cycled.load()) / secs;
}

}  // namespace

int main() {
  bench::csv_header();
  util::BenchReport report("batching");

  double mbox_ratio4 = 0, chan_ratio4 = 0;
  for (std::size_t w : kWorkerCounts) {
    double per_node = run_mbox(w, /*burst=*/false);
    double burst = run_mbox(w, /*burst=*/true);
    bench::row("batching", "mbox.per_node", static_cast<double>(w), per_node,
               "msg/s");
    bench::row("batching", "mbox.burst", static_cast<double>(w), burst,
               "msg/s");
    report.add("mbox", "per_node", static_cast<double>(w), per_node, "msg/s");
    report.add("mbox", "burst", static_cast<double>(w), burst, "msg/s");
    if (w == 4) mbox_ratio4 = burst / per_node;
  }

  // The gating encrypted-channel series uses the channel's default cipher
  // (ChaCha20-Poly1305): per-message sealing pays the full AEAD setup —
  // Poly1305 key derivation, MAC init/finalise — for every 16 B message,
  // while a batch frame pays it once per 64 messages. The hardware-speed
  // cipher model (bench_fig11's EA-ENC-HW) is reported alongside; its
  // setup is nearly free, so it isolates the node/mbox bookkeeping share.
  for (std::size_t w : kWorkerCounts) {
    double per_msg = run_channel(w, /*batch=*/false,
                                 core::CipherModel::kSoftwareAead);
    double batch = run_channel(w, /*batch=*/true,
                               core::CipherModel::kSoftwareAead);
    bench::row("batching", "channel_enc.per_msg", static_cast<double>(w),
               per_msg, "msg/s");
    bench::row("batching", "channel_enc.batch", static_cast<double>(w), batch,
               "msg/s");
    report.add("channel_enc", "per_msg", static_cast<double>(w), per_msg,
               "msg/s");
    report.add("channel_enc", "batch", static_cast<double>(w), batch, "msg/s");
    if (w == 4) chan_ratio4 = batch / per_msg;

    double hw_per_msg = run_channel(w, /*batch=*/false,
                                    core::CipherModel::kHardwareModel);
    double hw_batch = run_channel(w, /*batch=*/true,
                                  core::CipherModel::kHardwareModel);
    bench::row("batching", "channel_enc_hw.per_msg", static_cast<double>(w),
               hw_per_msg, "msg/s");
    bench::row("batching", "channel_enc_hw.batch", static_cast<double>(w),
               hw_batch, "msg/s");
    report.add("channel_enc_hw", "per_msg", static_cast<double>(w), hw_per_msg,
               "msg/s");
    report.add("channel_enc_hw", "batch", static_cast<double>(w), hw_batch,
               "msg/s");
  }

  {
    double per_msg = run_transition(1);
    bench::row("batching", "transition.ecall_per_msg", 1, per_msg, "msg/s");
    report.add("transition", "ecall_per_msg", 1, per_msg, "msg/s");
    for (std::size_t b : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
      double batched = run_transition(b);
      bench::row("batching", "transition.ecall_per_batch",
                 static_cast<double>(b), batched, "msg/s");
      report.add("transition", "ecall_per_batch", static_cast<double>(b),
                 batched, "msg/s");
    }
  }

  for (std::size_t w : kWorkerCounts) {
    double shared = run_pool(w, /*magazines=*/false);
    double magazine = run_pool(w, /*magazines=*/true);
    bench::row("batching", "pool.shared", static_cast<double>(w), shared,
               "msg/s");
    bench::row("batching", "pool.magazine", static_cast<double>(w), magazine,
               "msg/s");
    report.add("pool", "shared", static_cast<double>(w), shared, "msg/s");
    report.add("pool", "magazine", static_cast<double>(w), magazine, "msg/s");
  }

  const std::string path = util::env_str("EA_BENCH_JSON", "BENCH_batching.json");
  if (!report.write(path)) {
    bench::note("failed to write %s", path.c_str());
    return 1;
  }
  bench::note("wrote %s (%zu results)", path.c_str(), report.size());
  bench::note("burst/per-node at 4 workers: mbox %.2fx, encrypted channel "
              "%.2fx (target: >= 2x on the channel path)",
              mbox_ratio4, chan_ratio4);
  return 0;
}
