// C100K: stanza latency and throughput under tens of thousands of
// mostly-idle XMPP connections — the workload the edge-triggered epoll
// readiness core (DESIGN.md §16) exists for. net=scan (the paper's Fig. 6
// per-round sweep) pays one recv syscall per idle socket per round, so its
// round time grows linearly with connections; net=epoll pays only for
// sockets with events, so a small active set keeps its latency regardless
// of how many idle connections sit alongside.
//
// Methodology: a fleet of forked driver processes (a thread per client
// cannot reach these counts) each runs a raw epoll loop over its share of
// the connections. Every client connects, authenticates and goes idle; a
// small fixed subset (EA_NET_ACTIVE, default 64) then plays self-chat
// ping-pong — each sent <message> is routed by the server back to the
// sender's own socket, so one round trip crosses READER → XMPP → WRITER
// once and its RTT is a clean stanza-latency sample. RTTs land in a
// util::LatencyHist per child; children ship raw buckets to the parent
// over a pipe, which merges them into p50/p99/p999 for the v3 JSON report
// (BENCH_net.json, override with EA_BENCH_JSON).
//
// The sweep targets 50k–100k clients but is clamped to RLIMIT_NOFILE (the
// server process holds one fd per connection); the clamp is reported
// loudly rather than silently shrinking the x axis. `--smoke` pins a
// 0.25 s window and the two smallest sweep points so scripts/check.sh can
// compare runs against the committed BENCH_net.json (netperf leg).
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/runtime.hpp"
#include "sgxsim/enclave.hpp"
#include "util/bench_report.hpp"
#include "util/env.hpp"
#include "util/latency_hist.hpp"
#include "xmpp/server.hpp"
#include "xmpp/stanza.hpp"

using namespace ea;

namespace {

using Clock = std::chrono::steady_clock;

// Results a driver child ships to the parent: connection tally, completed
// echoes, its measurement window, and the raw latency buckets (µs).
struct WireResult {
  std::uint64_t connected = 0;
  std::uint64_t echoes = 0;
  double elapsed = 0;
  std::uint64_t buckets[util::LatencyHist::kBuckets] = {};
};

// Connections initiated per ramp wave (per child): bounded so listen
// backlog overflow degrades into SYN retransmits, not failures.
constexpr int kWave = 256;

bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ::usleep(100);  // ramp/echo writes are tiny; a full buffer is brief
      continue;
    }
    return false;
  }
  return true;
}

bool read_full(int fd, void* buf, std::size_t len, int timeout_ms) {
  auto* p = static_cast<char*>(buf);
  std::size_t off = 0;
  while (off < len) {
    pollfd pfd{fd, POLLIN, 0};
    int r = ::poll(&pfd, 1, timeout_ms);
    if (r <= 0) return false;
    ssize_t n = ::read(fd, p + off, len - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Counts occurrences of `needle` in the stream chunk, carrying a tail
// between chunks so matches spanning a read boundary are not lost.
struct NeedleCounter {
  std::string needle;
  std::string carry;
  std::uint64_t scan(const char* data, std::size_t len) {
    carry.append(data, len);
    std::uint64_t hits = 0;
    std::size_t pos = 0;
    while ((pos = carry.find(needle, pos)) != std::string::npos) {
      ++hits;
      pos += needle.size();
    }
    const std::size_t keep =
        std::min(carry.size(), needle.size() > 1 ? needle.size() - 1 : 0);
    carry.erase(0, carry.size() - keep);
    return hits;
  }
};

// One simulated client inside a driver child.
struct SimClient {
  int fd = -1;
  enum State { kConnecting, kGreeting, kReady } state = kConnecting;
  bool active = false;
  bool awaiting = false;
  Clock::time_point sent_at;
  std::string jid;
  NeedleCounter auth{"<success", {}};
  NeedleCounter echo{"</message>", {}};
};

// The forked driver: ramps `conns` clients against 127.0.0.1:`port` from
// source address 127.0.`src_a`.`src_b` (a fresh source IP per child per
// point keeps TIME_WAIT from exhausting one address's ephemeral ports),
// signals readiness, then measures self-chat RTT on its `active` subset
// for `seconds`. Never returns.
[[noreturn]] void run_driver(std::uint16_t port, int child_idx, int conns,
                             int active, int src_a, int src_b, double seconds,
                             int ctl_fd, int res_fd) {
  WireResult result;
  util::LatencyHist hist;
  std::vector<SimClient> clients(static_cast<std::size_t>(conns));
  int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) ::_exit(2);

  sockaddr_in src{};
  src.sin_family = AF_INET;
  src.sin_addr.s_addr =
      htonl(0x7F000000u | (static_cast<std::uint32_t>(src_a) << 8) |
            static_cast<std::uint32_t>(src_b));
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(port);
  dst.sin_addr.s_addr = htonl(0x7F000001u);  // 127.0.0.1

  const std::string greeting_prefix = xmpp::make_stream_open("ea-xmpp");
  auto drive_events = [&](int timeout_ms, auto&& on_ready_data) {
    epoll_event evs[512];
    int n = ::epoll_wait(ep, evs, 512, timeout_ms);
    for (int i = 0; i < n; ++i) {
      auto& c = clients[evs[i].data.u32];
      if (c.fd < 0) continue;
      if (c.state == SimClient::kConnecting &&
          (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) != 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          ::close(c.fd);
          c.fd = -1;
          continue;
        }
        if (!send_all(c.fd, greeting_prefix + xmpp::make_auth(c.jid))) {
          ::close(c.fd);
          c.fd = -1;
          continue;
        }
        c.state = SimClient::kGreeting;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u32 = evs[i].data.u32;
        ::epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &ev);
        continue;
      }
      if ((evs[i].events & EPOLLIN) != 0) {
        char buf[4096];
        ssize_t got;
        while ((got = ::recv(c.fd, buf, sizeof(buf), 0)) > 0) {
          if (c.state == SimClient::kGreeting) {
            if (c.auth.scan(buf, static_cast<std::size_t>(got)) > 0) {
              c.state = SimClient::kReady;
              ++result.connected;
            }
          } else if (c.state == SimClient::kReady) {
            on_ready_data(c, buf, static_cast<std::size_t>(got));
          }
        }
        if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          ::close(c.fd);
          c.fd = -1;
        }
      }
    }
  };
  auto ignore_data = [](SimClient&, const char*, std::size_t) {};

  // --- ramp, one wave at a time -----------------------------------------
  for (int base = 0; base < conns; base += kWave) {
    const int wave_end = std::min(conns, base + kWave);
    for (int i = base; i < wave_end; ++i) {
      SimClient& c = clients[static_cast<std::size_t>(i)];
      c.jid = "c" + std::to_string(child_idx) + "x" + std::to_string(i);
      c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (c.fd < 0) continue;
      (void)::bind(c.fd, reinterpret_cast<sockaddr*>(&src), sizeof(src));
      if (::connect(c.fd, reinterpret_cast<sockaddr*>(&dst), sizeof(dst)) <
              0 &&
          errno != EINPROGRESS) {
        ::close(c.fd);
        c.fd = -1;
        continue;
      }
      epoll_event ev{};
      ev.events = EPOLLOUT | EPOLLIN;
      ev.data.u32 = static_cast<std::uint32_t>(i);
      ::epoll_ctl(ep, EPOLL_CTL_ADD, c.fd, &ev);
    }
    // Wait until this wave has authenticated (or its sockets died) before
    // launching the next, so the listener backlog is never swamped.
    auto wave_deadline = Clock::now() + std::chrono::seconds(60);
    auto wave_settled = [&] {
      for (int i = base; i < wave_end; ++i) {
        const SimClient& c = clients[static_cast<std::size_t>(i)];
        if (c.fd >= 0 && c.state != SimClient::kReady) return false;
      }
      return true;
    };
    while (!wave_settled() && Clock::now() < wave_deadline) {
      drive_events(50, ignore_data);
    }
  }

  // --- handshake with the parent, then measure --------------------------
  for (int i = 0; i < active && i < conns; ++i) {
    SimClient& c = clients[static_cast<std::size_t>(i)];
    if (c.fd >= 0 && c.state == SimClient::kReady) c.active = true;
  }
  char ready = 'R';
  if (::write(res_fd, &ready, 1) != 1) ::_exit(3);
  char go = 0;
  if (!read_full(ctl_fd, &go, 1, 300'000)) ::_exit(4);

  const std::string payload = "c100k-ping";
  auto fire = [&](SimClient& c) {
    c.sent_at = Clock::now();
    c.awaiting = send_all(c.fd, xmpp::make_chat_message("", c.jid, payload));
  };
  for (SimClient& c : clients) {
    if (c.active && c.fd >= 0) fire(c);
  }
  auto on_echo = [&](SimClient& c, const char* data, std::size_t len) {
    const std::uint64_t hits = c.echo.scan(data, len);
    if (hits == 0 || !c.active || !c.awaiting) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - c.sent_at)
                        .count();
    hist.record(static_cast<std::uint64_t>(us > 0 ? us : 1));
    ++result.echoes;
    fire(c);  // one outstanding message per active client
  };

  const auto t0 = Clock::now();
  const auto t_end =
      t0 + std::chrono::microseconds(static_cast<long>(seconds * 1e6));
  while (Clock::now() < t_end) drive_events(5, on_echo);
  result.elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

  for (std::size_t i = 0; i < util::LatencyHist::kBuckets; ++i) {
    result.buckets[i] = hist.buckets()[i];
  }
  if (::write(res_fd, &result, sizeof(result)) != sizeof(result)) ::_exit(5);
  ::_exit(0);  // no teardown of inherited runtime state in the child
}

struct PointResult {
  bool ok = false;
  std::uint64_t connected = 0;
  double throughput = 0;
  util::BenchPercentiles pcts;
};

// Global counter handing every child of every point a distinct loopback
// source address (127.0.a.b), so TIME_WAIT entries from a finished point
// cannot exhaust the next point's ephemeral ports.
int g_src_counter = 0;

PointResult run_point(core::NetMode mode, int conns, int active,
                      double seconds) {
  PointResult out;
  core::RuntimeOptions options;
  options.pool_nodes = 16384;
  options.node_payload_bytes = 2048;
  options.sched = core::SchedMode::kSteal;
  options.net = mode;
  core::Runtime rt(options);
  xmpp::XmppServiceConfig config;
  config.instances = 1;
  config.trusted = false;  // the net plane, not the enclave sim, is under test
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);

  const int children = conns >= 4096 ? 4 : 2;
  struct Child {
    pid_t pid = -1;
    int ctl = -1;  // parent → child ("go")
    int res = -1;  // child → parent ('R' + WireResult)
  };
  std::vector<Child> kids(static_cast<std::size_t>(children));
  const int per_child = conns / children;
  const int per_child_active = active / children;

  // Fork the drivers BEFORE rt.start(): the runtime has no worker threads
  // yet, so the children never inherit a mid-operation lock.
  for (int k = 0; k < children; ++k) {
    int ctl[2], res[2];
    if (::pipe(ctl) != 0 || ::pipe(res) != 0) return out;
    ++g_src_counter;
    const int src_a = 1 + g_src_counter / 250;
    const int src_b = 1 + g_src_counter % 250;
    const int share =
        k == children - 1 ? conns - per_child * (children - 1) : per_child;
    const int share_active = k == children - 1
                                 ? active - per_child_active * (children - 1)
                                 : per_child_active;
    pid_t pid = ::fork();
    if (pid == 0) {
      ::close(ctl[1]);
      ::close(res[0]);
      run_driver(service.port, k, share, share_active, src_a, src_b, seconds,
                 ctl[0], res[1]);
    }
    ::close(ctl[0]);
    ::close(res[1]);
    kids[static_cast<std::size_t>(k)] = Child{pid, ctl[1], res[0]};
  }

  rt.start();

  bool all_ready = true;
  for (Child& kid : kids) {
    char r = 0;
    if (!read_full(kid.res, &r, 1, 600'000) || r != 'R') all_ready = false;
  }
  if (all_ready) {
    for (Child& kid : kids) {
      char go = 'G';
      (void)!::write(kid.ctl, &go, 1);
    }
    util::LatencyHist merged;
    double window = 0;
    std::uint64_t echoes = 0;
    bool results_ok = true;
    for (Child& kid : kids) {
      WireResult wr;
      if (!read_full(kid.res, &wr, sizeof(wr), 600'000)) {
        results_ok = false;
        continue;
      }
      out.connected += wr.connected;
      echoes += wr.echoes;
      window = std::max(window, wr.elapsed);
      for (std::size_t i = 0; i < util::LatencyHist::kBuckets; ++i) {
        if (wr.buckets[i] != 0) merged.add_bucket(i, wr.buckets[i]);
      }
    }
    if (results_ok && window > 0) {
      out.ok = true;
      out.throughput = static_cast<double>(echoes) / window;
      out.pcts.p50_us = static_cast<double>(merged.percentile(0.5));
      out.pcts.p99_us = static_cast<double>(merged.percentile(0.99));
      out.pcts.p999_us = static_cast<double>(merged.percentile(0.999));
    }
  }

  for (Child& kid : kids) {
    ::close(kid.ctl);
    ::close(kid.res);
    int status = 0;
    ::waitpid(kid.pid, &status, 0);
  }
  rt.stop();
  sgxsim::EnclaveManager::instance().reset_for_testing();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      argc > 1 && std::string(argv[1]) == "--smoke";

  // One fd per connection lives in the server (this) process: raise the
  // soft limit to the hard cap and clamp the sweep below it.
  rlimit nofile{};
  ::getrlimit(RLIMIT_NOFILE, &nofile);
  nofile.rlim_cur = nofile.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &nofile);
  const int fd_cap = static_cast<int>(
      std::min<rlim_t>(nofile.rlim_max, 1'000'000));
  const int conn_cap = fd_cap - 600;  // pool/epoll/pipe/listener headroom

  bench::csv_header();
  const double seconds =
      smoke ? 0.25 : std::max(1.0, bench::seconds_per_point());
  const int active = static_cast<int>(util::env_int("EA_NET_ACTIVE", 64));

  std::vector<int> sweep{512, 2048};
  if (!smoke) {
    const int target = static_cast<int>(
        util::env_int("EA_NET_MAX_CLIENTS", 50'000));
    for (int c : {target, 2 * target}) {
      const int clamped = std::min(c, conn_cap);
      if (clamped > sweep.back()) sweep.push_back(clamped);
    }
    if (sweep.back() < target) {
      bench::note(
          "RLIMIT_NOFILE (hard=%d) caps the sweep at %d concurrent "
          "clients — the %d-client target needs a higher fd limit",
          fd_cap, sweep.back(), target);
    }
  }

  util::BenchReport report("c100k");
  double top_scan = 0, top_epoll = 0;
  for (int conns : sweep) {
    for (core::NetMode mode :
         {core::NetMode::kScan, core::NetMode::kEpoll}) {
      PointResult r = run_point(mode, conns, active, seconds);
      const char* series = core::to_string(mode);
      if (!r.ok || r.connected < static_cast<std::uint64_t>(conns) * 95 / 100) {
        bench::note("%s @%d: only %llu/%d clients completed auth — point "
                    "unreliable",
                    series, conns,
                    static_cast<unsigned long long>(r.connected), conns);
      }
      bench::row("c100k", series, conns, r.throughput, "echo/s");
      bench::note("%s @%d: p50=%.0fus p99=%.0fus p999=%.0fus (%llu clients)",
                  series, conns, r.pcts.p50_us, r.pcts.p99_us,
                  r.pcts.p999_us,
                  static_cast<unsigned long long>(r.connected));
      report.add("c100k", series, conns, r.throughput, "echo/s", r.pcts);
      if (conns == sweep.back()) {
        (mode == core::NetMode::kScan ? top_scan : top_epoll) = r.throughput;
      }
    }
  }

  bench::note("sweep top (%d clients): epoll %.3gx scan throughput "
              "(readiness core target: >=3x with the active set fixed)",
              sweep.back(),
              top_epoll / (top_scan > 0 ? top_scan : 1e-9));
  const std::string path = util::env_str("EA_BENCH_JSON", "BENCH_net.json");
  if (!report.write(path)) {
    bench::note("failed to write %s", path.c_str());
    return 1;
  }
  return 0;
}
