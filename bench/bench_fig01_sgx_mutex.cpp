// Figure 1: concurrent dequeuing of elements from a mutex-synchronised
// stack, pthread_mutex vs sgx_mutex, 1–16 consumer threads.
//
// The paper dequeues 1,000,000 elements; the default here is scaled down
// (EA_BENCH_SCALE=50 approximates the paper's size). The expected shape:
// the SGX variant is orders of magnitude slower under contention because
// every failed spin ends in an enclave exit + re-entry around the sleep.
#include <mutex>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "sgxsim/cost_model.hpp"
#include "util/affinity.hpp"
#include "sgxsim/enclave.hpp"
#include "sgxsim/sgx_mutex.hpp"
#include "sgxsim/transition.hpp"

namespace {

using namespace ea;

// The shared stack both variants pop from.
struct Stack {
  std::vector<int> items;
};

// On hosts with fewer CPUs than consumer threads the OS serialises the
// threads and the lock would (unrealistically) never be contended. When
// enabled, the holder yields once inside the critical section, giving the
// other consumers the chance to attempt the acquisition exactly as they
// would while running concurrently on the paper's 8-hyper-thread testbed.
// Applied identically to both variants, so the comparison stays fair.
bool force_contention() {
  static const bool value =
      util::env_int("EA_FIG01_FORCE_CONTENTION",
                    util::online_cpus() == 1 ? 1 : 0) != 0;
  return value;
}

template <typename MutexT>
double run_dequeue(int threads, std::uint64_t elements, bool inside_enclave) {
  Stack stack;
  stack.items.resize(elements);
  MutexT mutex;

  sgxsim::Enclave* enclave = nullptr;
  if (inside_enclave) {
    enclave = &sgxsim::EnclaveManager::instance().create("fig1");
  }
  const bool contend = threads > 1 && force_contention();

  bench::Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      auto work = [&] {
        while (true) {
          mutex.lock();
          bool done = stack.items.empty();
          if (!done) stack.items.pop_back();
          if (contend) std::this_thread::yield();
          mutex.unlock();
          if (done) break;
        }
      };
      if (enclave != nullptr) {
        sgxsim::ecall(*enclave, work);
      } else {
        work();
      }
    });
  }
  for (auto& w : workers) w.join();
  return timer.seconds();
}

}  // namespace

int main() {
  bench::csv_header();
  const std::uint64_t elements = bench::scaled(20000);
  bench::note("fig01: dequeuing %llu elements (paper: 1,000,000; scale with "
              "EA_BENCH_SCALE)",
              static_cast<unsigned long long>(elements));

  double sgx_worst = 0, pthread_worst = 0;
  for (int threads : {1, 2, 4, 8, 16}) {
    double pthread_s =
        run_dequeue<std::mutex>(threads, elements, /*inside_enclave=*/false);
    bench::row("fig01", "pthread_mutex", threads, pthread_s, "s");
    double sgx_s = run_dequeue<ea::sgxsim::SgxMutex>(threads, elements,
                                                     /*inside_enclave=*/true);
    bench::row("fig01", "sgx_mutex", threads, sgx_s, "s");
    if (threads > 1) {
      sgx_worst = std::max(sgx_worst, sgx_s);
      pthread_worst = std::max(pthread_worst, pthread_s);
    }
  }
  bench::note("paper claim: sgx_mutex is orders of magnitude slower under "
              "contention. measured worst-case ratio: %.1fx %s",
              sgx_worst / pthread_worst,
              sgx_worst > pthread_worst * 5 ? "(holds)" : "(check)");
  return 0;
}
