// Figure 11: inter-enclave ping-pong — execution time (a) and data
// throughput (b) versus message size, for three systems:
//   Native  — SGX-SDK style: marshalled ECalls between two enclaves, the
//             bridge copying the message across the boundary each hop;
//   EA      — EActors with a plain (unencrypted) cross-enclave mbox pair;
//   EA-ENC  — EActors with transparent channel encryption.
//
// Paper shape: EA >> Native at all sizes; Native peaks near 32 KiB (L1
// copy effect); EA-ENC pays ~10x vs EA but stays ~3x above Native.
#include <cstring>
#include <thread>

#include "bench/common.hpp"
#include "concurrent/arena.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/runtime.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/transition.hpp"
#include "util/bytes.hpp"

namespace {

using namespace ea;

struct Result {
  double seconds;      // for the paper's 1M-pair workload, extrapolated
  double throughput;   // MiB/s
};

constexpr std::uint64_t kPaperPairs = 1000000;

// --- Native: one thread bounces a marshalled buffer between two enclaves --

Result run_native(std::size_t size, std::uint64_t pairs) {
  auto& mgr = sgxsim::EnclaveManager::instance();
  sgxsim::Enclave& ping = mgr.create("fig11.native.ping");
  sgxsim::Enclave& pong = mgr.create("fig11.native.pong");

  std::string payload = util::random_printable(size, size);
  util::Bytes in = util::to_bytes(payload);
  util::Bytes out(size);

  auto handler = +[](void*, std::span<const std::uint8_t> input,
                     std::span<std::uint8_t> output) -> std::size_t {
    // The component touches the message and replies with one of its own.
    std::size_t n = std::min(input.size(), output.size());
    if (n > 0) std::memcpy(output.data(), input.data(), n);
    return n;
  };

  bench::Timer timer;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    // PING -> PONG carries the message in; the reply is marshalled out.
    sgxsim::ecall_marshalled(pong, in, out, handler, nullptr);
    sgxsim::ecall_marshalled(ping, out, in, handler, nullptr);
  }
  double secs = timer.seconds();
  double bytes = static_cast<double>(pairs) * 2 * static_cast<double>(size);
  return Result{secs * static_cast<double>(kPaperPairs) / static_cast<double>(pairs),
                bytes / secs / (1024.0 * 1024.0)};
}

// --- EActors: two workers, two enclaves, mbox pair --------------------------

Result run_eactors(std::size_t size, std::uint64_t pairs, bool encrypted,
                   core::CipherModel cipher = core::CipherModel::kSoftwareAead) {
  core::RuntimeOptions options;
  options.pool_nodes = 64;
  options.node_payload_bytes = size + 64;  // room for the AEAD frame
  core::Runtime rt(options);

  struct Ping : core::Actor {
    Ping(std::string name, std::uint64_t target, std::size_t msg_size)
        : core::Actor(std::move(name)), target_(target) {
      payload_ = util::random_printable(msg_size, msg_size);
    }
    void construct(core::Runtime&) override {
      out_ = connect("p2q");
      in_ = connect("q2p");
    }
    bool body() override {
      if (first_) {
        first_ = false;
        out_->send(payload_);
        return true;
      }
      if (auto msg = in_->recv()) {
        ++done_;
        if (done_ < target_) {
          // Fill the message with payload data each round, as the paper's
          // workload does.
          out_->send(payload_);
        }
        return true;
      }
      return false;
    }
    std::string payload_;
    core::ChannelEnd* out_ = nullptr;
    core::ChannelEnd* in_ = nullptr;
    bool first_ = true;
    std::uint64_t target_;
    std::atomic<std::uint64_t> done_{0};
  };

  struct Pong : core::Actor {
    explicit Pong(std::string name, std::size_t msg_size)
        : core::Actor(std::move(name)) {
      payload_ = util::random_printable(msg_size + 1, msg_size);
    }
    void construct(core::Runtime&) override {
      in_ = connect("p2q");
      out_ = connect("q2p");
    }
    bool body() override {
      if (auto msg = in_->recv()) {
        out_->send(payload_);
        return true;
      }
      return false;
    }
    std::string payload_;
    core::ChannelEnd* in_ = nullptr;
    core::ChannelEnd* out_ = nullptr;
  };

  core::ChannelOptions ch_options;
  ch_options.force_plain = !encrypted;
  ch_options.cipher = cipher;
  rt.channel("p2q", ch_options);
  rt.channel("q2p", ch_options);

  auto ping = std::make_unique<Ping>("ping", pairs, size);
  Ping* ping_ptr = ping.get();
  rt.add_actor(std::move(ping), "fig11.ea.ping");
  rt.add_actor(std::make_unique<Pong>("pong", size), "fig11.ea.pong");
  rt.add_worker("w1", {0}, {"ping"});
  rt.add_worker("w2", {1}, {"pong"});

  bench::Timer timer;
  rt.start();
  while (ping_ptr->done_.load(std::memory_order_relaxed) < pairs) {
    std::this_thread::yield();
  }
  double secs = timer.seconds();
  rt.stop();

  double bytes = static_cast<double>(pairs) * 2 * static_cast<double>(size);
  return Result{secs * static_cast<double>(kPaperPairs) / static_cast<double>(pairs),
                bytes / secs / (1024.0 * 1024.0)};
}

}  // namespace

int main() {
  bench::csv_header();
  const std::size_t sizes[] = {16, 64 * 1024, 128 * 1024, 256 * 1024,
                               512 * 1024};

  double ea_tp16 = 0, native_tp16 = 0, enc_tp = 0, ea_tp_big = 0;
  for (std::size_t size : sizes) {
    // Fewer pairs for bigger messages so the run stays bounded.
    std::uint64_t pairs =
        bench::scaled(size <= 16 ? 20000 : (size <= 131072 ? 400 : 150));

    Result native = run_native(size, pairs);
    bench::row("fig11a", "Native", static_cast<double>(size), native.seconds, "s");
    bench::row("fig11b", "Native", static_cast<double>(size),
               native.throughput, "MiB/s");

    Result ea = run_eactors(size, pairs, /*encrypted=*/false);
    bench::row("fig11a", "EA", static_cast<double>(size), ea.seconds, "s");
    bench::row("fig11b", "EA", static_cast<double>(size), ea.throughput, "MiB/s");

    Result ea_enc = run_eactors(size, pairs, /*encrypted=*/true);
    bench::row("fig11a", "EA-ENC", static_cast<double>(size), ea_enc.seconds, "s");
    bench::row("fig11b", "EA-ENC", static_cast<double>(size),
               ea_enc.throughput, "MiB/s");

    // The paper's testbed encrypts with AES-NI (~2 cycles/byte); our
    // portable ChaCha20-Poly1305 runs ~15-20 cycles/byte. EA-ENC-HW uses
    // the hardware-speed cipher model so the figure's *shape* (ENC ~10x
    // below EA, >=3x above Native) can be compared against the paper.
    Result ea_hw = run_eactors(size, pairs, /*encrypted=*/true,
                               core::CipherModel::kHardwareModel);
    bench::row("fig11a", "EA-ENC-HW", static_cast<double>(size),
               ea_hw.seconds, "s");
    bench::row("fig11b", "EA-ENC-HW", static_cast<double>(size),
               ea_hw.throughput, "MiB/s");

    if (size == 16) {
      ea_tp16 = ea.throughput;
      native_tp16 = native.throughput;
    }
    if (size == 512 * 1024) {
      enc_tp = ea_hw.throughput;
      ea_tp_big = ea.throughput;
      bench::note("512KiB: EA %.0f MiB/s, EA-ENC %.0f, EA-ENC-HW %.0f, "
                  "Native %.0f MiB/s -> EA-ENC-HW/Native = %.1fx (paper: ~3x "
                  "with AES-NI)",
                  ea.throughput, ea_enc.throughput, ea_hw.throughput,
                  native.throughput, ea_hw.throughput / native.throughput);
    }
  }
  bench::note("paper claim: EA outperforms Native at all sizes "
              "(16B ratio here: %.1fx) and hardware-speed encryption costs "
              "~10x vs plain EA (512KiB ratio here: %.1fx)",
              ea_tp16 / native_tp16, ea_tp_big / enc_tp);
  return 0;
}
