// Figure 12: plain secure-sum execution.
//  (a) throughput vs vector dimension, short vectors (20..100), 3 and 8
//      parties;  series EC/3, EA/3, EC/8, EA/8
//  (b) same for long vectors (2000..10000)
//  (c) throughput vs number of parties for dims 1, 1000, 2000;
//      series EC-<dim>, EA-<dim>
//
// Paper shape: EA above EC, gap largest for short vectors and many parties
// (per-hop transitions dominate); for very long vectors the trusted RNG
// dominates and the implementations converge.
#include "bench/smc_harness.hpp"

using namespace ea;

int main() {
  bench::csv_header();

  const std::uint64_t short_requests = bench::scaled(400);
  const std::uint64_t long_requests = bench::scaled(40);

  // (a) short vectors
  for (int parties : {3, 8}) {
    for (std::size_t dim : {20, 40, 60, 80, 100}) {
      smc::SmcConfig config;
      config.parties = parties;
      config.dim = dim;
      double ec = bench::run_smc_sdk(config, short_requests);
      bench::reset_enclaves();
      double ea = bench::run_smc_ea(config, short_requests);
      bench::reset_enclaves();
      bench::row("fig12a", "EC/" + std::to_string(parties),
                 static_cast<double>(dim), ec, "1e3req/s");
      bench::row("fig12a", "EA/" + std::to_string(parties),
                 static_cast<double>(dim), ea, "1e3req/s");
    }
  }

  // (b) long vectors
  for (int parties : {3, 8}) {
    for (std::size_t dim : {2000, 4000, 6000, 8000, 10000}) {
      smc::SmcConfig config;
      config.parties = parties;
      config.dim = dim;
      double ec = bench::run_smc_sdk(config, long_requests);
      bench::reset_enclaves();
      double ea = bench::run_smc_ea(config, long_requests);
      bench::reset_enclaves();
      bench::row("fig12b", "EC/" + std::to_string(parties),
                 static_cast<double>(dim), ec, "1e3req/s");
      bench::row("fig12b", "EA/" + std::to_string(parties),
                 static_cast<double>(dim), ea, "1e3req/s");
    }
  }

  // (c) party sweep
  double ec3_short = 0, ea3_short = 0;
  for (std::size_t dim : {std::size_t{1}, std::size_t{1000}, std::size_t{2000}}) {
    for (int parties : {3, 4, 5, 6, 7, 8}) {
      smc::SmcConfig config;
      config.parties = parties;
      config.dim = dim;
      std::uint64_t requests = dim <= 1 ? short_requests : long_requests;
      double ec = bench::run_smc_sdk(config, requests);
      bench::reset_enclaves();
      double ea = bench::run_smc_ea(config, requests);
      bench::reset_enclaves();
      bench::row("fig12c", "EC-" + std::to_string(dim),
                 static_cast<double>(parties), ec, "1e3req/s");
      bench::row("fig12c", "EA-" + std::to_string(dim),
                 static_cast<double>(parties), ea, "1e3req/s");
      if (dim == 1 && parties == 3) {
        ec3_short = ec;
        ea3_short = ea;
      }
    }
  }
  bench::note("paper claim: EA throughput above EC, largest for short "
              "vectors (dim=1, 3 parties: EA/EC = %.2fx here)",
              ea3_short / ec3_short);
  return 0;
}
