// Figure 13: secure-sum with dynamically computed input vectors — identical
// sweeps to Figure 12 but every party recomputes its secret after each
// completed sum.
//
// Paper shape: the extra per-round computation widens the EA advantage
// (EActors parties recompute while the token circulates; the SDK's single
// thread serialises everything), e.g. 4x for 3 parties at dim=1 and
// >=3.88x for 8 parties across all sizes.
#include "bench/smc_harness.hpp"

using namespace ea;

int main() {
  bench::csv_header();

  const std::uint64_t short_requests = bench::scaled(400);
  const std::uint64_t long_requests = bench::scaled(40);

  for (int parties : {3, 8}) {
    for (std::size_t dim : {20, 40, 60, 80, 100}) {
      smc::SmcConfig config;
      config.parties = parties;
      config.dim = dim;
      config.dynamic = true;
      double ec = bench::run_smc_sdk(config, short_requests);
      bench::reset_enclaves();
      double ea = bench::run_smc_ea(config, short_requests);
      bench::reset_enclaves();
      bench::row("fig13a", "EC/" + std::to_string(parties),
                 static_cast<double>(dim), ec, "1e3req/s");
      bench::row("fig13a", "EA/" + std::to_string(parties),
                 static_cast<double>(dim), ea, "1e3req/s");
    }
  }

  for (int parties : {3, 8}) {
    for (std::size_t dim : {2000, 4000, 6000, 8000, 10000}) {
      smc::SmcConfig config;
      config.parties = parties;
      config.dim = dim;
      config.dynamic = true;
      double ec = bench::run_smc_sdk(config, long_requests);
      bench::reset_enclaves();
      double ea = bench::run_smc_ea(config, long_requests);
      bench::reset_enclaves();
      bench::row("fig13b", "EC/" + std::to_string(parties),
                 static_cast<double>(dim), ec, "1e3req/s");
      bench::row("fig13b", "EA/" + std::to_string(parties),
                 static_cast<double>(dim), ea, "1e3req/s");
    }
  }

  double ea8 = 0, ec8 = 0;
  for (std::size_t dim : {std::size_t{1}, std::size_t{1000}, std::size_t{2000}}) {
    for (int parties : {3, 4, 5, 6, 7, 8}) {
      smc::SmcConfig config;
      config.parties = parties;
      config.dim = dim;
      config.dynamic = true;
      std::uint64_t requests = dim <= 1 ? short_requests : long_requests;
      double ec = bench::run_smc_sdk(config, requests);
      bench::reset_enclaves();
      double ea = bench::run_smc_ea(config, requests);
      bench::reset_enclaves();
      bench::row("fig13c", "EC-" + std::to_string(dim),
                 static_cast<double>(parties), ec, "1e3req/s");
      bench::row("fig13c", "EA-" + std::to_string(dim),
                 static_cast<double>(parties), ea, "1e3req/s");
      if (dim == 2000 && parties == 8) {
        ea8 = ea;
        ec8 = ec;
      }
    }
  }
  bench::note("paper claim: dynamic secrets widen the EA advantage "
              "(8 parties, dim=2000: EA/EC = %.2fx here; paper ~4.1x)",
              ea8 / ec8);
  return 0;
}
