// Figure 14: XMPP one-to-one scalability — request throughput versus the
// number of concurrent clients for the two baselines (EJB = ejabberd-like,
// JBD2 = JabberD2-like) and three EActors deployments:
//   EA/3  = 1 XMPP instance  (XMPP + READER + WRITER eactors)
//   EA/6  = 2 instances
//   EA/48 = 16 instances
//
// Paper shape: EA/3 above JBD2 (up to 1.81x at steady state) and above EJB
// (2.42x at its plateau); adding instances scales further — EA/48 up to
// 40x over EJB. The client sweep is scaled down by default
// (EA_XMPP_MAX_CLIENTS, EA_BENCH_SECONDS control the size).
#include "bench/xmpp_harness.hpp"
#include "core/runtime.hpp"
#include "util/affinity.hpp"
#include "sgxsim/enclave.hpp"
#include "xmpp/baseline_server.hpp"
#include "xmpp/server.hpp"

using namespace ea;

namespace {

double run_ea(int instances, int clients, double seconds, int idle = 0,
              core::NetMode net = core::NetMode::kScan) {
  core::RuntimeOptions options;
  options.pool_nodes = 8192;
  options.node_payload_bytes = 2048;
  options.net = net;
  core::Runtime rt(options);
  xmpp::XmppServiceConfig config;
  config.instances = instances;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  rt.start();
  bench::IdleClients ballast;
  if (idle > 0 && ballast.connect(service.port, idle) < idle) {
    bench::note("idle ballast: only %zu/%d connected", ballast.size(), idle);
  }
  double tput = bench::xmpp_o2o_throughput(service.port, clients, seconds);
  rt.stop();
  sgxsim::EnclaveManager::instance().reset_for_testing();
  return tput;
}

double run_baseline(xmpp::BaselineFlavor flavor, int clients, double seconds) {
  xmpp::BaselineOptions options;
  options.flavor = flavor;
  xmpp::BaselineServer server(options);
  server.start();
  double tput = bench::xmpp_o2o_throughput(server.port(), clients, seconds);
  server.stop();
  return tput;
}

}  // namespace

int main() {
  bench::csv_header();
  const double seconds = bench::seconds_per_point();
  const int max_clients = static_cast<int>(
      util::env_int("EA_XMPP_MAX_CLIENTS", 32));

  std::vector<int> sweep;
  for (int c = 4; c <= max_clients; c *= 2) sweep.push_back(c);

  double best_ea48 = 0, best_ejb = 1e-9, best_jbd2 = 1e-9, best_ea3 = 0;
  for (int clients : sweep) {
    double ejb =
        run_baseline(xmpp::BaselineFlavor::kEjabberd, clients, seconds);
    bench::row("fig14", "EJB", clients, ejb, "req/s");
    double jbd2 =
        run_baseline(xmpp::BaselineFlavor::kJabberd2, clients, seconds);
    bench::row("fig14", "JBD2", clients, jbd2, "req/s");
    double ea3 = run_ea(1, clients, seconds);
    bench::row("fig14", "EA/3", clients, ea3, "req/s");
    double ea6 = run_ea(2, clients, seconds);
    bench::row("fig14", "EA/6", clients, ea6, "req/s");
    double ea48 = run_ea(16, clients, seconds);
    bench::row("fig14", "EA/48", clients, ea48, "req/s");

    // Connection-count column (EA_XMPP_IDLE_SWEEP=N): the same active
    // workload with N idle connections as ballast, for both net planes —
    // the scan sweep pays per idle socket, the readiness core does not.
    if (const int idle = bench::idle_sweep_count(); idle > 0) {
      const std::string suffix = "+" + std::to_string(idle) + "idle";
      bench::row("fig14", "EA/3" + suffix, clients,
                 run_ea(1, clients, seconds, idle), "req/s");
      bench::row("fig14", "EA/3-epoll" + suffix, clients,
                 run_ea(1, clients, seconds, idle, core::NetMode::kEpoll),
                 "req/s");
    }

    best_ejb = std::max(best_ejb, ejb);
    best_jbd2 = std::max(best_jbd2, jbd2);
    best_ea3 = std::max(best_ea3, ea3);
    best_ea48 = std::max(best_ea48, ea48);
  }
  bench::note("paper claims: EA/3 > JBD2 (here %.2fx), EA/48 > EJB "
              "(here %.1fx; paper up to 40x on 8 hardware threads — "
              "parallel headroom here: %d CPU(s))",
              best_ea3 / best_jbd2, best_ea48 / best_ejb,
              util::online_cpus());
  return 0;
}
