// Figure 15: group communication — throughput versus group size for a
// single group, comparing EJB, JBD2, EA with the XMPP eactor inside an
// enclave (EA/trusted) and outside (EA/untrusted).
//
// Paper shape: EA/trusted == EA/untrusted (trusted execution is free on
// this path) and both slightly outperform single-threaded JabberD2.
#include "bench/xmpp_harness.hpp"
#include "core/runtime.hpp"
#include "sgxsim/enclave.hpp"
#include "xmpp/baseline_server.hpp"
#include "xmpp/server.hpp"

using namespace ea;

namespace {

double run_ea(bool trusted, int participants, double seconds, int idle = 0,
              core::NetMode net = core::NetMode::kScan) {
  core::RuntimeOptions options;
  options.pool_nodes = 8192;
  options.node_payload_bytes = 2048;
  options.net = net;
  core::Runtime rt(options);
  xmpp::XmppServiceConfig config;
  config.instances = 1;
  config.trusted = trusted;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  rt.start();
  bench::IdleClients ballast;
  if (idle > 0 && ballast.connect(service.port, idle) < idle) {
    bench::note("idle ballast: only %zu/%d connected", ballast.size(), idle);
  }
  double tput = bench::xmpp_o2m_throughput(service.port, participants, seconds);
  rt.stop();
  sgxsim::EnclaveManager::instance().reset_for_testing();
  return tput;
}

double run_baseline(xmpp::BaselineFlavor flavor, int participants,
                    double seconds) {
  xmpp::BaselineOptions options;
  options.flavor = flavor;
  xmpp::BaselineServer server(options);
  server.start();
  double tput = bench::xmpp_o2m_throughput(server.port(), participants, seconds);
  server.stop();
  return tput;
}

}  // namespace

int main() {
  bench::csv_header();
  const double seconds = bench::seconds_per_point();
  const int max_participants =
      static_cast<int>(util::env_int("EA_XMPP_MAX_GROUP", 24));

  double trusted_sum = 0, untrusted_sum = 0;
  int points = 0;
  for (int participants = 6; participants <= max_participants;
       participants += 6) {
    double ejb = run_baseline(xmpp::BaselineFlavor::kEjabberd, participants,
                              seconds);
    bench::row("fig15", "EJB", participants, ejb, "req/s");
    double jbd2 = run_baseline(xmpp::BaselineFlavor::kJabberd2, participants,
                               seconds);
    bench::row("fig15", "JBD2", participants, jbd2, "req/s");
    double trusted = run_ea(/*trusted=*/true, participants, seconds);
    bench::row("fig15", "EA/trusted", participants, trusted, "req/s");
    double untrusted = run_ea(/*trusted=*/false, participants, seconds);
    bench::row("fig15", "EA/untrusted", participants, untrusted, "req/s");

    // Connection-count column (EA_XMPP_IDLE_SWEEP=N): the same group with N
    // idle connections as ballast, scan versus the readiness core — the
    // scan sweep pays per idle socket, epoll does not.
    if (const int idle = bench::idle_sweep_count(); idle > 0) {
      const std::string suffix = "+" + std::to_string(idle) + "idle";
      bench::row("fig15", "EA/untrusted" + suffix, participants,
                 run_ea(/*trusted=*/false, participants, seconds, idle),
                 "req/s");
      bench::row("fig15", "EA/untrusted-epoll" + suffix, participants,
                 run_ea(/*trusted=*/false, participants, seconds, idle,
                        core::NetMode::kEpoll),
                 "req/s");
    }

    trusted_sum += trusted;
    untrusted_sum += untrusted;
    ++points;
  }
  bench::note("paper claim: EA/trusted ~= EA/untrusted (avg ratio here: "
              "%.2f; paper: 'exactly the same performance')",
              trusted_sum / untrusted_sum);

  // §6.4.2, first observation: "the throughput does not change when we
  // increase the number of groups" — each group has its own XMPP eactor
  // (instance) and works almost in isolation.
  double first_groups = 0, last_groups = 0;
  for (int groups : {1, 2, 4}) {
    core::RuntimeOptions options;
    options.pool_nodes = 8192;
    options.node_payload_bytes = 2048;
    core::Runtime rt(options);
    xmpp::XmppServiceConfig config;
    config.instances = groups;
    xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
    rt.start();
    double tput = bench::xmpp_o2m_multi_group(service.port, groups,
                                              /*participants=*/6, seconds);
    rt.stop();
    sgxsim::EnclaveManager::instance().reset_for_testing();
    bench::row("fig15-groups", "EA aggregate", groups, tput, "req/s");
    bench::row("fig15-groups", "EA per-group", groups, tput / groups,
               "req/s");
    if (groups == 1) first_groups = tput;
    if (groups == 4) last_groups = tput;
  }
  bench::note("paper claim: groups work in isolation, so adding groups does "
              "not disturb throughput. With one CPU the *aggregate* stays "
              "flat (1-group vs 4-group aggregate ratio here: %.2f); the "
              "paper's per-group flatness additionally needs one hardware "
              "thread per group.",
              first_groups / last_groups);
  return 0;
}
