// Figure 16: impact of the number of enclaves — 48 eactors (16 XMPP
// instances with their READER/WRITER pairs) packed into 1, 2 or 16
// enclaves, serving a fixed O2O client population.
//
// Paper shape: roughly flat; the single-enclave packing is ~6.2% faster
// because co-located instances share memory without crossing enclave
// boundaries.
#include <algorithm>
#include <vector>

#include "bench/xmpp_harness.hpp"
#include "core/runtime.hpp"
#include "sgxsim/enclave.hpp"
#include "xmpp/server.hpp"

using namespace ea;

namespace {

// Median of `reps` runs of `fn` — the enclave-packing effect is a few
// percent, so single runs on busy hosts are too noisy.
template <typename Fn>
double median_of(int reps, Fn&& fn) {
  std::vector<double> samples;
  for (int i = 0; i < reps; ++i) samples.push_back(fn());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  bench::csv_header();
  const double seconds = bench::seconds_per_point();
  const int clients =
      static_cast<int>(util::env_int("EA_XMPP_FIXED_CLIENTS", 16));
  const int reps = static_cast<int>(util::env_int("EA_FIG16_REPS", 3));

  double first = 0, last = 0;
  double grp_first = 0, grp_last = 0;
  for (int enclaves : {1, 2, 16}) {
    // O2O, as in the paper's experiment.
    {
      double tput = median_of(reps, [&] {
        core::RuntimeOptions options;
        options.pool_nodes = 8192;
        options.node_payload_bytes = 2048;
        core::Runtime rt(options);
        xmpp::XmppServiceConfig config;
        config.instances = 16;
        config.enclaves = enclaves;
        xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
        rt.start();
        double t = bench::xmpp_o2o_throughput(service.port, clients, seconds);
        rt.stop();
        sgxsim::EnclaveManager::instance().reset_for_testing();
        return t;
      });
      bench::row("fig16", "EA-48eactors", enclaves, tput / 1000.0, "1e3req/s");
      if (enclaves == 1) first = tput;
      if (enclaves == 16) last = tput;
    }
    // Group-chat variant: room traffic forwarded between instances is
    // sealed when the instances sit in different enclaves, so this series
    // makes the mechanism behind the paper's single-enclave advantage
    // ("data shared between eactors is accessed without encryption")
    // directly visible.
    {
      double tput = median_of(reps, [&] {
        core::RuntimeOptions options;
        options.pool_nodes = 8192;
        options.node_payload_bytes = 2048;
        core::Runtime rt(options);
        xmpp::XmppServiceConfig config;
        config.instances = 16;
        config.enclaves = enclaves;
        xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
        rt.start();
        double t = bench::xmpp_o2m_throughput(service.port, clients, seconds);
        rt.stop();
        sgxsim::EnclaveManager::instance().reset_for_testing();
        return t;
      });
      bench::row("fig16", "EA-48eactors-groupchat", enclaves, tput / 1000.0,
                 "1e3req/s");
      if (enclaves == 1) grp_first = tput;
      if (enclaves == 16) grp_last = tput;
    }
  }
  bench::note("paper claim: near-flat, single enclave ~6%% ahead "
              "(O2O 1-enclave/16-enclave ratio here: %.2f; "
              "groupchat ratio: %.2f)",
              first / last, grp_first / grp_last);
  return 0;
}
