// Figure 17: trusted mode vs untrusted mode — EA/3, EA/6 and EA/48
// deployments serving a fixed O2O client population with the XMPP eactors
// inside enclaves versus in normal memory.
//
// Paper shape: "very similar performance results for enclaved vs
// non-enclaved eactors, with no perceptible overhead."
#include "bench/xmpp_harness.hpp"
#include "core/runtime.hpp"
#include "sgxsim/enclave.hpp"
#include "xmpp/server.hpp"

using namespace ea;

namespace {

double run(int instances, bool trusted, int clients, double seconds) {
  core::RuntimeOptions options;
  options.pool_nodes = 8192;
  options.node_payload_bytes = 2048;
  core::Runtime rt(options);
  xmpp::XmppServiceConfig config;
  config.instances = instances;
  config.trusted = trusted;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  rt.start();
  double tput = bench::xmpp_o2o_throughput(service.port, clients, seconds);
  rt.stop();
  sgxsim::EnclaveManager::instance().reset_for_testing();
  return tput;
}

}  // namespace

int main() {
  bench::csv_header();
  const double seconds = bench::seconds_per_point();
  const int clients =
      static_cast<int>(util::env_int("EA_XMPP_FIXED_CLIENTS", 16));

  double worst_ratio = 1.0;
  const struct {
    const char* label;
    int instances;
  } deployments[] = {{"EA/3", 1}, {"EA/6", 2}, {"EA/48", 16}};

  for (const auto& d : deployments) {
    double trusted = run(d.instances, true, clients, seconds);
    double untrusted = run(d.instances, false, clients, seconds);
    bench::row("fig17", std::string(d.label) + "/trusted", d.instances,
               trusted / 1000.0, "1e3req/s");
    bench::row("fig17", std::string(d.label) + "/untrusted", d.instances,
               untrusted / 1000.0, "1e3req/s");
    double ratio = untrusted > 0 ? trusted / untrusted : 0;
    worst_ratio = std::min(worst_ratio, ratio);
  }
  bench::note("paper claim: no perceptible overhead from trusted execution "
              "(worst trusted/untrusted ratio here: %.2f)",
              worst_ratio);
  return 0;
}
