// §6.1 resource-efficiency claims: enclave memory footprint (~500 KiB for
// an XMPP enclave) and a small TCB. Reports the simulator's EPC accounting
// for a representative XMPP deployment plus the transition statistics of a
// short run.
#include <thread>

#include "bench/common.hpp"
#include "core/runtime.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/enclave.hpp"
#include "sgxsim/transition.hpp"
#include "xmpp/client.hpp"
#include "xmpp/server.hpp"

using namespace ea;

int main() {
  bench::csv_header();
  sgxsim::EnclaveManager::instance().reset_for_testing();

  core::RuntimeOptions options;
  options.pool_nodes = 2048;
  options.node_payload_bytes = 2048;
  core::Runtime rt(options);
  xmpp::XmppServiceConfig config;
  config.instances = 2;
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  sgxsim::reset_transition_stats();
  rt.start();

  // A little real traffic so the counters mean something.
  xmpp::Client alice, bob;
  bool ok = alice.connect(service.port, "alice") &&
            bob.connect(service.port, "bob");
  int delivered = 0;
  if (ok) {
    for (int i = 0; i < 50; ++i) {
      alice.send_chat("bob", "ping " + std::to_string(i));
      auto msg = bob.recv(2000);
      if (msg.has_value()) ++delivered;
    }
  }
  rt.stop();

  auto& mgr = sgxsim::EnclaveManager::instance();
  bench::row("footprint", "enclave_count",
             static_cast<double>(mgr.enclave_count()), 0, "count");
  std::uint64_t total = mgr.total_committed();
  bench::row("footprint", "total_committed_KiB", 0,
             static_cast<double>(total) / 1024.0, "KiB");
  bench::row("footprint", "epc_usable_MiB", 0,
             static_cast<double>(sgxsim::cost_model().epc_usable_bytes) /
                 (1024.0 * 1024.0),
             "MiB");
  bench::row("footprint", "overflow_pages", 0,
             static_cast<double>(mgr.overflow_pages()), "pages");

  auto stats = sgxsim::transition_stats();
  bench::row("footprint", "ecalls_for_50_messages", 0,
             static_cast<double>(stats.ecalls), "count");
  bench::row("footprint", "ocalls_for_50_messages", 0,
             static_cast<double>(stats.ocalls), "count");

  double per_enclave_kib = mgr.enclave_count() > 0
                               ? static_cast<double>(total) / 1024.0 /
                                     static_cast<double>(mgr.enclave_count())
                               : 0;
  bench::note("delivered %d/50 messages; paper: ~500 KiB per XMPP enclave "
              "(here %.0f KiB avg incl. actor state), TCB < 3.3 kLoC "
              "(count ea_core+ea_concurrent+ea_crypto with cloc)",
              delivered, per_enclave_kib);
  bench::note("steady-state ecalls stay constant (workers never exit): "
              "%llu ecalls total for the whole run",
              static_cast<unsigned long long>(stats.ecalls));
  return 0;
}
