// Microbenchmarks (google-benchmark) for the framework primitives: node
// pools, mboxes, channels (plain vs encrypted), the crypto substrate and
// the simulated SGX transition costs. These quantify the constants behind
// the figure-level benchmarks.
#include <benchmark/benchmark.h>

#include "concurrent/arena.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/runtime.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "pos/pos.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/enclave.hpp"
#include "sgxsim/transition.hpp"
#include "sgxsim/trusted_rng.hpp"
#include "util/bytes.hpp"
#include "xmpp/stanza.hpp"

namespace {

using namespace ea;

void BM_PoolGetPut(benchmark::State& state) {
  concurrent::NodeArena arena(64, 256);
  concurrent::Pool pool;
  pool.adopt(arena);
  for (auto _ : state) {
    concurrent::Node* n = pool.get();
    benchmark::DoNotOptimize(n);
    pool.put(n);
  }
}
BENCHMARK(BM_PoolGetPut);

void BM_MboxPushPop(benchmark::State& state) {
  concurrent::NodeArena arena(64, 256);
  concurrent::Pool pool;
  pool.adopt(arena);
  concurrent::Mbox mbox;
  concurrent::Node* n = pool.get();
  for (auto _ : state) {
    mbox.push(n);
    benchmark::DoNotOptimize(mbox.pop());
  }
  pool.put(n);
}
BENCHMARK(BM_MboxPushPop);

void BM_ChannelSendRecvPlain(benchmark::State& state) {
  core::Runtime rt;
  core::Channel& ch = rt.channel("bm-plain");
  core::ChannelEnd* a = ch.connect(sgxsim::kUntrusted);
  core::ChannelEnd* b = ch.connect(sgxsim::kUntrusted);
  std::string payload = util::random_printable(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    a->send(payload);
    auto msg = b->recv();
    benchmark::DoNotOptimize(msg.get());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChannelSendRecvPlain)->Arg(16)->Arg(256)->Arg(1024);

void BM_ChannelSendRecvEncrypted(benchmark::State& state) {
  core::Runtime rt;
  sgxsim::Enclave& e1 = rt.enclave("bm-enc-1");
  sgxsim::Enclave& e2 = rt.enclave("bm-enc-2");
  core::Channel& ch = rt.channel("bm-enc");
  core::ChannelEnd* a = ch.connect(e1.id());
  core::ChannelEnd* b = ch.connect(e2.id());
  std::string payload = util::random_printable(2, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    a->send(payload);
    auto msg = b->recv();
    benchmark::DoNotOptimize(msg.get());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChannelSendRecvEncrypted)->Arg(16)->Arg(256)->Arg(1024);

void BM_Sha256(benchmark::State& state) {
  util::Bytes data =
      util::to_bytes(util::random_printable(3, static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_AeadSealOpen(benchmark::State& state) {
  crypto::AeadKey key{};
  key[0] = 1;
  util::Bytes msg =
      util::to_bytes(util::random_printable(4, static_cast<std::size_t>(state.range(0))));
  std::uint64_t counter = 0;
  for (auto _ : state) {
    util::Bytes framed = crypto::seal_with_counter(key, counter++, {}, msg);
    benchmark::DoNotOptimize(crypto::open_framed(key, {}, framed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSealOpen)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EcallRoundTrip(benchmark::State& state) {
  sgxsim::ScopedCostModel scoped;
  sgxsim::cost_model().ecall_cycles = static_cast<std::uint64_t>(state.range(0));
  sgxsim::Enclave& e = sgxsim::EnclaveManager::instance().create("bm-ecall");
  for (auto _ : state) {
    sgxsim::ecall(e, [] {});
  }
}
BENCHMARK(BM_EcallRoundTrip)->Arg(0)->Arg(8000);

void BM_PosSet(benchmark::State& state) {
  pos::PosOptions options;
  options.entry_count = 65536;
  options.entry_payload = 64;
  pos::Pos store(options);
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::string key = "k" + std::to_string(i % 64);
    store.set(util::to_bytes(key), util::to_bytes("value"));
    if (++i % 4096 == 0) {
      state.PauseTiming();
      store.clean_step();
      store.clean_step();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_PosSet);

void BM_PosGet(benchmark::State& state) {
  pos::PosOptions options;
  options.entry_count = 1024;
  options.entry_payload = 64;
  pos::Pos store(options);
  for (int i = 0; i < 64; ++i) {
    store.set(util::to_bytes("k" + std::to_string(i)), util::to_bytes("v"));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.get(util::to_bytes("k" + std::to_string(i++ % 64))));
  }
}
BENCHMARK(BM_PosGet);

void BM_StanzaParse(benchmark::State& state) {
  std::string wire = xmpp::make_chat_message(
      "alice", "bob", util::random_printable(5, 150));
  for (auto _ : state) {
    xmpp::StanzaStream stream;
    stream.feed(wire);
    benchmark::DoNotOptimize(stream.next());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_StanzaParse);

void BM_TrustedRng(benchmark::State& state) {
  sgxsim::ScopedCostModel scoped;
  sgxsim::cost_model().rng_cycles_per_byte =
      static_cast<std::uint64_t>(state.range(0));
  std::uint8_t buf[256];
  for (auto _ : state) {
    sgxsim::trusted_read_rand(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_TrustedRng)->Arg(0)->Arg(60);

void BM_HleLockUncontended(benchmark::State& state) {
  concurrent::HleSpinLock lock;
  for (auto _ : state) {
    concurrent::HleGuard guard(lock);
    benchmark::DoNotOptimize(&lock);
  }
}
BENCHMARK(BM_HleLockUncontended);

}  // namespace

BENCHMARK_MAIN();
