// Live-migration cost (DESIGN.md §17): how long is an actor unavailable
// while it moves between enclaves, and what does a forced move cost a real
// service mid-traffic?
//
//   pause: an enclaved echo actor with S bytes of private state is bounced
//     between two enclaves while a window-send driver keeps the channel hot.
//     Each completed migration records its pause — park-to-unpark, covering
//     drain, seal, attested transfer, counter handshake, and resume — in
//     the coordinator's LatencyHist; rows report p50/p99/p999 per state
//     size (schema-v3 percentile fields).
//
//   xmpp_echo: a single-instance trusted XMPP echo deployment measured
//     twice — undisturbed, then with the protocol eactor forcibly migrated
//     every ~50 ms. The throughput ratio is the service-visible dip; the
//     paired pause row is the tail of those forced moves.
//
// Prints CSV rows and writes a v3 JSON report to BENCH_migrate.json
// (override with EA_BENCH_JSON).

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "bench/xmpp_harness.hpp"
#include "core/channel.hpp"
#include "core/migration.hpp"
#include "core/runtime.hpp"
#include "util/bench_report.hpp"
#include "util/bytes.hpp"
#include "util/env.hpp"
#include "util/latency_hist.hpp"
#include "xmpp/server.hpp"

namespace {

using namespace std::chrono_literals;
using ea::core::MigrateResult;

// Window-send driver on the untrusted side of the channel: keeps traffic
// in flight so every migration happens against a non-empty stream.
class DriverActor : public ea::core::Actor {
 public:
  using ea::core::Actor::Actor;

  void construct(ea::core::Runtime&) override { end_ = connect("bench.chan"); }

  bool body() override {
    bool progress = false;
    while (ea::concurrent::NodeLease lease = end_->recv()) {
      acked_.fetch_add(1, std::memory_order_relaxed);
      progress = true;
    }
    const std::uint64_t acked = acked_.load(std::memory_order_relaxed);
    while (sent_ < acked + 32) {
      std::uint8_t wire[8];
      ea::util::store_le64(wire, sent_);
      if (!end_->send(std::span<const std::uint8_t>(wire, 8))) break;
      ++sent_;
      progress = true;
    }
    return progress;
  }

  std::uint64_t acked() const noexcept {
    return acked_.load(std::memory_order_relaxed);
  }

 private:
  ea::core::ChannelEnd* end_ = nullptr;
  std::uint64_t sent_ = 0;
  std::atomic<std::uint64_t> acked_{0};
};

// Enclaved echo carrying `bytes` of migratable private state.
class PayloadActor : public ea::core::Actor {
 public:
  PayloadActor(std::string name, std::size_t bytes)
      : ea::core::Actor(std::move(name)), state_(bytes, 0xa5) {}

  void construct(ea::core::Runtime&) override { end_ = connect("bench.chan"); }

  bool body() override {
    bool progress = false;
    while (ea::concurrent::NodeLease lease = end_->recv()) {
      end_->send(lease->data());
      progress = true;
    }
    return progress;
  }

  bool migratable() const override { return true; }
  std::uint64_t state_bytes() const override { return state_.size(); }
  ea::util::Bytes export_state() override { return state_; }
  bool import_state(std::span<const std::uint8_t> state) override {
    if (state.size() != state_.size()) return false;
    std::memcpy(state_.data(), state.data(), state.size());
    return true;
  }

 private:
  ea::core::ChannelEnd* end_ = nullptr;
  ea::util::Bytes state_;
};

// Bounces the actor between e1/e2 `moves` times against live channel
// traffic; returns the coordinator's pause histogram.
ea::util::LatencyHist run_pause_sweep(std::size_t state_bytes,
                                      std::uint64_t moves) {
  ea::core::RuntimeOptions options;
  options.sched = ea::core::SchedMode::kSteal;
  ea::core::Runtime rt(options);
  rt.enclave("pause.e0");
  ea::sgxsim::Enclave& e1 = rt.enclave("pause.e1");
  ea::sgxsim::Enclave& e2 = rt.enclave("pause.e2");
  auto driver_owned = std::make_unique<DriverActor>("pause.driver");
  DriverActor* driver = driver_owned.get();
  rt.add_actor(std::move(driver_owned), "pause.e0");
  auto payload_owned =
      std::make_unique<PayloadActor>("pause.payload", state_bytes);
  PayloadActor* payload = payload_owned.get();
  rt.add_actor(std::move(payload_owned), "pause.e1");
  rt.add_worker("pause.w1", {}, {"pause.driver"});
  rt.add_worker("pause.w2", {}, {"pause.payload"});
  rt.start();

  // Let the stream reach steady state before the first move.
  auto warm_deadline = std::chrono::steady_clock::now() + 2s;
  while (driver->acked() < 100 &&
         std::chrono::steady_clock::now() < warm_deadline) {
    std::this_thread::sleep_for(1ms);
  }

  ea::core::MigrationCoordinator coordinator(rt);
  std::uint64_t done = 0;
  auto deadline = std::chrono::steady_clock::now() + 60s;
  while (done < moves && std::chrono::steady_clock::now() < deadline) {
    ea::sgxsim::Enclave& target = (payload->placement() == e1.id()) ? e2 : e1;
    if (coordinator.migrate(*payload, target) == MigrateResult::kOk) ++done;
    std::this_thread::sleep_for(1ms);  // let traffic re-fill between moves
  }
  rt.stop();
  if (done < moves) {
    ea::bench::note("pause sweep (%zu B): only %llu of %llu moves completed",
                    state_bytes, static_cast<unsigned long long>(done),
                    static_cast<unsigned long long>(moves));
  }
  return coordinator.pause_hist();
}

ea::util::BenchPercentiles percentiles(const ea::util::LatencyHist& hist) {
  ea::util::BenchPercentiles pcts;
  pcts.p50_us = static_cast<double>(hist.percentile(0.50));
  pcts.p99_us = static_cast<double>(hist.percentile(0.99));
  pcts.p999_us = static_cast<double>(hist.percentile(0.999));
  return pcts;
}

}  // namespace

int main() {
  ea::util::BenchReport report("migrate");
  ea::bench::csv_header();

  // --- pause vs private-state size ----------------------------------------
  const std::uint64_t moves = ea::bench::scaled(100, 20);
  const std::size_t kStateSizes[] = {4u << 10, 64u << 10, 256u << 10,
                                     1u << 20};
  for (std::size_t bytes : kStateSizes) {
    ea::util::LatencyHist hist = run_pause_sweep(bytes, moves);
    ea::util::BenchPercentiles pcts = percentiles(hist);
    const double x_kib = static_cast<double>(bytes) / 1024.0;
    ea::bench::row("migrate", "pause.p50", x_kib, pcts.p50_us, "us");
    ea::bench::row("migrate", "pause.p99", x_kib, pcts.p99_us, "us");
    report.add("pause", "live", x_kib, pcts.p50_us, "us", pcts);
  }

  // --- XMPP echo throughput dip under forced migration --------------------
  const double seconds = ea::bench::seconds_per_point();
  double baseline = 0;
  double migrating = 0;
  ea::util::BenchPercentiles xmpp_pcts{};
  std::uint64_t forced_moves = 0;
  for (int forced = 0; forced < 2; ++forced) {
    ea::core::RuntimeOptions options;
    options.pool_nodes = 8192;
    options.node_payload_bytes = 2048;
    options.sched = ea::core::SchedMode::kSteal;
    ea::core::Runtime rt(options);
    ea::xmpp::XmppServiceConfig config;
    config.instances = 1;
    config.trusted = true;
    ea::xmpp::XmppService service = ea::xmpp::install_xmpp_service(rt, config);
    ea::sgxsim::Enclave& home = rt.enclave("xmpp.e0");
    ea::sgxsim::Enclave& spare = rt.enclave("xmpp.spare");
    rt.start();

    ea::core::MigrationCoordinator coordinator(rt);
    std::atomic<bool> stop{false};
    std::thread mover;
    if (forced != 0) {
      mover = std::thread([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          ea::sgxsim::Enclave& target =
              (service.instances[0]->placement() == home.id()) ? spare : home;
          coordinator.migrate(*service.instances[0], target);
          std::this_thread::sleep_for(50ms);
        }
      });
    }

    const double rate = ea::bench::xmpp_o2o_throughput(service.port, 2,
                                                       seconds);
    stop.store(true);
    if (mover.joinable()) mover.join();
    if (forced == 0) {
      baseline = rate;
    } else {
      migrating = rate;
      xmpp_pcts = percentiles(coordinator.pause_hist());
      forced_moves = coordinator.stats().completed;
    }
    rt.stop();
  }

  ea::bench::row("migrate", "xmpp_echo.baseline", 1, baseline, "pairs/s");
  ea::bench::row("migrate", "xmpp_echo.migrating", 1, migrating, "pairs/s");
  report.add("xmpp_echo", "baseline", 1, baseline, "pairs/s");
  report.add("xmpp_echo", "migrating", 1, migrating, "pairs/s");
  report.add("xmpp_echo", "forced_pause", 1,
             static_cast<double>(forced_moves), "moves", xmpp_pcts);

  const std::string path =
      ea::util::env_str("EA_BENCH_JSON", "BENCH_migrate.json");
  if (!report.write(path)) {
    ea::bench::note("failed to write %s", path.c_str());
    return 1;
  }
  ea::bench::note("wrote %s (%zu results)", path.c_str(), report.size());
  ea::bench::note("xmpp echo dip under ~20 moves/s of forced migration: "
                  "%.1f%% of baseline (%llu moves)",
                  baseline > 0 ? 100.0 * migrating / baseline : 0.0,
                  static_cast<unsigned long long>(forced_moves));
  return 0;
}
