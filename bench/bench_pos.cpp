// POS write-path scaling: quantifies the sharded free lists, the per-thread
// entry magazines, and the lock-free bucket push against the original
// single-global-free-lock design (DESIGN.md §11).
//
//   set     — a fixed total of distinct-key inserts split across w threads:
//             the pure allocation + publish path the sharding targets. Runs
//             against a *churned* store (fill, erase, cleaner-drain) so the
//             free lists are hash-scrambled the way a long-lived store's
//             are — each pop then takes its cache miss while holding the
//             free lock, which is the contention shape that matters; a
//             freshly initialised sequential free list flatters the global
//             lock and hides exactly the effect under test;
//   get     — read hammering over a prefilled keyspace (the lock-free read
//             path must not regress in any mode);
//   mixed   — 1 overwrite per 4 gets over a shared keyspace;
//   cleaner — timed overwrite churn with a concurrent cleaner thread
//             recycling outdated versions through the epoch-reclamation
//             pipeline, plus clean-on-pressure: writers that outrun the
//             cleaner run reclamation steps inline instead of spinning on
//             a full store (safe under EBR — any thread may clean — and
//             impossible under the old grace counters, where a writer
//             would have waited on its own counter).
//
// `bench_pos --smoke` runs the cleaner scenario only, with a pinned
// per-point window independent of EA_BENCH_SECONDS — the perf-regression
// guard in scripts/check.sh diffs its rows against the committed
// BENCH_pos.json.
//
// The total op count per scenario is fixed as the thread count sweeps, so
// every point touches the same footprint and only contention varies.
//
// Modes (all from one binary via PosOptions ablation toggles):
//   global      — free_shards=1, magazines off: the pre-sharding design;
//   sharded     — free_shards=8, magazines off;
//   sharded_mag — free_shards=8, magazines on.
//
// The shard count is pinned to 8 (not hardware_concurrency) so the sweep is
// comparable across hosts — including 1-core CI boxes, where the collapse
// of the global mode under oversubscription is exactly the effect measured.
//
// Prints the usual CSV rows and additionally writes a machine-readable
// report to BENCH_pos.json (override with EA_BENCH_JSON).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "crypto/rng.hpp"
#include "pos/pos.hpp"
#include "util/bench_report.hpp"
#include "util/env.hpp"

namespace {

using namespace ea;

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

struct Mode {
  const char* name;
  std::uint32_t free_shards;
  int magazines;
};

constexpr Mode kModes[] = {
    {"global", 1, 0},
    {"sharded", 8, 0},
    {"sharded_mag", 8, 1},
};

// --smoke: cleaner scenario only, fixed window (see header comment).
bool g_smoke = false;

double run_seconds() {
  if (g_smoke) return 0.25;
  return std::max(0.02, bench::seconds_per_point() * 0.5);
}

pos::PosOptions store_options(const Mode& mode, std::uint32_t entry_count,
                              std::uint32_t bucket_count) {
  pos::PosOptions o;  // anonymous mapping: the bench measures the data path
  o.bucket_count = bucket_count;
  o.entry_count = entry_count;
  o.entry_payload = 32;
  o.free_shards = mode.free_shards;
  o.magazines = mode.magazines;
  return o;
}

std::span<const std::uint8_t> key_bytes(std::uint64_t k,
                                        std::uint8_t (&buf)[8]) {
  std::memcpy(buf, &k, sizeof(k));
  return {buf, sizeof(buf)};
}

// Spawns `threads` workers running body(t), releases them together, and
// returns the wall seconds from release to the last join.
template <typename Body>
double timed_threads(std::size_t threads, Body&& body) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(t);
    });
  }
  bench::Timer timer;
  go.store(true, std::memory_order_release);
  for (std::thread& th : pool) th.join();
  return timer.seconds();
}

// --- set: distinct-key inserts, the pure allocation + publish path ----------

// Total inserts measured per point; split evenly across the thread sweep.
// Sized so the store dwarfs the caches and each thread's share spans many
// scheduler quanta — the regime where free-lock contention actually shows.
std::uint64_t set_total() {
  const std::uint64_t t = bench::scaled(1600000, 512);
  return (t + 7) & ~std::uint64_t{7};  // divisible by every swept count
}

// Ages the store: fills every entry, erases everything, and drives the
// cleaner until the free lists hold the full capacity again. Erasing in
// chunks gives the cleaner many gather/advance/flush rounds, so its
// round-robin batch returns spread the recycled entries across all shards —
// and within each shard the entries land in bucket-hash order, i.e.
// scrambled relative to memory. Leaves every bucket chain empty.
void churn(pos::Pos& store, std::uint64_t entries) {
  std::uint8_t kbuf[8];
  std::uint8_t value[16];
  std::memset(value, 0xaa, sizeof(value));
  for (std::uint64_t k = 0; k < entries; ++k) {
    store.set(key_bytes(k, kbuf), value);
  }
  constexpr std::uint64_t kChunks = 16;
  for (std::uint64_t c = 0; c < kChunks; ++c) {
    const std::uint64_t lo = entries * c / kChunks;
    const std::uint64_t hi = entries * (c + 1) / kChunks;
    for (std::uint64_t k = lo; k < hi; ++k) {
      store.erase(key_bytes(k, kbuf));
    }
    // No sections are live here, so every step advances; a gathered batch
    // frees two steps later, and two consecutive zero-returns mean nothing
    // was left to gather or flush for this chunk.
    std::size_t zeros = 0;
    while (zeros < 2) {
      zeros = store.clean_step() == 0 ? zeros + 1 : 0;
    }
  }
}

double run_set(const Mode& mode, std::size_t threads) {
  const std::uint64_t total = set_total();
  const std::uint64_t per_thread = total / threads;
  const auto entries = static_cast<std::uint32_t>(total + 1024);
  // Load factor ~1 keeps the marking walk to a single hop so the scenario
  // stays allocation-bound rather than chain-scan-bound.
  const auto buckets =
      static_cast<std::uint32_t>(std::max<std::uint64_t>(1024, total));
  pos::Pos store(store_options(mode, entries, buckets));
  churn(store, entries);

  const double secs = timed_threads(threads, [&](std::size_t t) {
    std::uint8_t kbuf[8];
    std::uint8_t value[16];
    std::memset(value, 0x5a, sizeof(value));
    const std::uint64_t base = (static_cast<std::uint64_t>(t) << 32) | (1ull << 63);
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      store.set(key_bytes(base | i, kbuf), value);
    }
  });
  return static_cast<double>(total) / secs;
}

// --- get: read hammering over a prefilled keyspace --------------------------

double run_get(const Mode& mode, std::size_t threads) {
  const std::uint64_t keyspace = bench::scaled(2048, 64);
  const std::uint64_t total = bench::scaled(320000, 512);
  const std::uint64_t per_thread = total / threads;
  const auto buckets = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1024, keyspace / 2));
  pos::Pos store(store_options(
      mode, static_cast<std::uint32_t>(keyspace + 1024), buckets));

  std::uint8_t kbuf[8];
  std::uint8_t value[16];
  std::memset(value, 0x7e, sizeof(value));
  for (std::uint64_t k = 0; k < keyspace; ++k) {
    store.set(key_bytes(k, kbuf), value);
  }

  const double secs = timed_threads(threads, [&](std::size_t t) {
    crypto::FastRng rng(0x9e3779b9u + static_cast<std::uint64_t>(t));
    std::uint8_t buf[8];
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      store.get(key_bytes(rng.next_below(keyspace), buf));
    }
  });
  return static_cast<double>(per_thread * threads) / secs;
}

// --- mixed: 1 overwrite per 4 gets over a shared keyspace -------------------

double run_mixed(const Mode& mode, std::size_t threads) {
  const std::uint64_t keyspace = 2048;
  const std::uint64_t total = bench::scaled(160000, 512);
  const std::uint64_t per_thread = total / threads;
  // Every 4th op consumes a fresh entry (no cleaner in this scenario); the
  // footprint is independent of the thread count.
  const auto entries = static_cast<std::uint32_t>(total / 4 + keyspace + 1024);
  pos::Pos store(store_options(mode, entries, 4096));

  const double secs = timed_threads(threads, [&](std::size_t t) {
    crypto::FastRng rng(0xc0ffee00u + static_cast<std::uint64_t>(t));
    std::uint8_t kbuf[8];
    std::uint8_t value[16];
    std::memset(value, 0x33, sizeof(value));
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      const std::uint64_t k = rng.next_below(keyspace);
      if (i % 4 == 0) {
        store.set(key_bytes(k, kbuf), value);
      } else {
        store.get(key_bytes(k, kbuf));
      }
    }
  });
  return static_cast<double>(per_thread * threads) / secs;
}

// --- cleaner: overwrite churn against a concurrent cleaner ------------------

double run_cleaner(const Mode& mode, std::size_t threads) {
  const std::uint64_t keyspace = 16;  // per thread; heavy version churn
  pos::PosOptions options = store_options(mode, 8192, 1024);
  // Writers help reclaim when allocation pressure outruns the dedicated
  // cleaner thread — the cooperative mode epoch reclamation makes safe
  // (any thread may clean; grace counters had writers waiting on
  // themselves).
  options.clean_on_pressure = true;
  pos::Pos store(options);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::thread cleaner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (store.clean_step() == 0) std::this_thread::yield();
    }
  });

  const double window = run_seconds();
  const double secs = timed_threads(threads, [&](std::size_t t) {
    std::uint8_t kbuf[8];
    std::uint8_t value[16];
    std::memset(value, 0x44, sizeof(value));
    const std::uint64_t base = static_cast<std::uint64_t>(t) << 32;
    std::uint64_t done = 0;
    bench::Timer timer;
    std::uint64_t i = 0;
    while (timer.seconds() < window) {
      const std::uint64_t k = base | (i++ % keyspace);
      if (store.set(key_bytes(k, kbuf), value)) ++done;
    }
    ops.fetch_add(done, std::memory_order_relaxed);
  });
  stop.store(true, std::memory_order_relaxed);
  cleaner.join();
  (void)secs;
  return static_cast<double>(ops.load(std::memory_order_relaxed)) / window;
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::csv_header();
  util::BenchReport report("pos");

  if (g_smoke) {
    for (const Mode& mode : kModes) {
      for (const std::size_t w : kWorkerCounts) {
        const double v = run_cleaner(mode, w);
        bench::row("pos_cleaner", mode.name, static_cast<double>(w), v,
                   "op/s");
        report.add("cleaner", mode.name, static_cast<double>(w), v, "op/s");
      }
    }
    const std::string path = util::env_str("EA_BENCH_JSON", "BENCH_pos.json");
    if (!report.write(path)) {
      bench::note("failed to write %s", path.c_str());
      return 1;
    }
    bench::note("wrote %s (%zu results, cleaner smoke)", path.c_str(),
                report.size());
    return 0;
  }

  // set throughput per [mode][thread-point], for the trailing ratio note.
  double set_tp[3][4] = {};

  for (std::size_t m = 0; m < 3; ++m) {
    const Mode& mode = kModes[m];
    for (std::size_t wi = 0; wi < 4; ++wi) {
      const std::size_t w = kWorkerCounts[wi];
      const double v = run_set(mode, w);
      set_tp[m][wi] = v;
      bench::row("pos_set", mode.name, static_cast<double>(w), v, "op/s");
      report.add("set", mode.name, static_cast<double>(w), v, "op/s");
    }
  }
  for (const Mode& mode : kModes) {
    for (const std::size_t w : kWorkerCounts) {
      const double v = run_get(mode, w);
      bench::row("pos_get", mode.name, static_cast<double>(w), v, "op/s");
      report.add("get", mode.name, static_cast<double>(w), v, "op/s");
    }
  }
  for (const Mode& mode : kModes) {
    for (const std::size_t w : kWorkerCounts) {
      const double v = run_mixed(mode, w);
      bench::row("pos_mixed", mode.name, static_cast<double>(w), v, "op/s");
      report.add("mixed", mode.name, static_cast<double>(w), v, "op/s");
    }
  }
  for (const Mode& mode : kModes) {
    for (const std::size_t w : kWorkerCounts) {
      const double v = run_cleaner(mode, w);
      bench::row("pos_cleaner", mode.name, static_cast<double>(w), v, "op/s");
      report.add("cleaner", mode.name, static_cast<double>(w), v, "op/s");
    }
  }

  bench::note("set @8 threads: sharded_mag/global = %.2fx (target >= 4x)",
              set_tp[2][3] / set_tp[0][3]);
  bench::note("set @1 thread:  sharded_mag/global = %.2fx (target >= 0.95x)",
              set_tp[2][0] / set_tp[0][0]);

  const std::string path = util::env_str("EA_BENCH_JSON", "BENCH_pos.json");
  if (!report.write(path)) {
    bench::note("failed to write %s", path.c_str());
    return 1;
  }
  bench::note("wrote %s (%zu results)", path.c_str(), report.size());
  return 0;
}
