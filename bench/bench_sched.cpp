// Work-stealing scheduler benchmark (DESIGN.md §14).
//
//   hot_skew  — the deployment shape the static scheduler is worst at: a
//               few always-busy "hot" message pumps homed on worker 0 plus
//               a crowd of idle in-enclave connection actors spread across
//               all workers. An idle connection actor's poll is an OCALL
//               (a non-blocking socket scan from inside an enclave must
//               leave it, paper §3.4), charged by the cost model. The
//               static round-robin pays that probe for EVERY idle actor on
//               EVERY round, in line with the hot work; the stealing
//               scheduler parks idle actors (no queue slot) and re-polls
//               them only on paced poll ticks, so the hot pumps keep the
//               cycles. Reported as hot messages/s per worker count, modes
//               static vs steal.
//   zero_copy — co-located channel traffic: the classic copying send()
//               against send_node() donation. The move_copies row is the
//               proof obligation: Channel::payload_copies() must be ZERO
//               after the move run, or the bench exits nonzero.
//
// Prints CSV rows and writes a v2 JSON report to BENCH_sched.json
// (override with EA_BENCH_JSON).
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/channel.hpp"
#include "core/runtime.hpp"
#include "core/worker.hpp"
#include "sgxsim/transition.hpp"
#include "util/bench_report.hpp"
#include "util/env.hpp"

namespace {

using namespace ea;

constexpr std::size_t kHotActors = 4;
constexpr std::size_t kPumpNodes = 16;
constexpr std::size_t kMsgBytes = 1024;
constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

double run_seconds() {
  return std::max(0.02, bench::seconds_per_point() * 0.5);
}

// Always-busy message pump: recirculates a private ring of nodes through
// its mailbox, counting one message per node touched. Stays ready forever.
class HotActor : public core::Actor {
 public:
  explicit HotActor(std::string name) : core::Actor(std::move(name)) {}

  void construct(core::Runtime& rt) override {
    for (std::size_t i = 0; i < kPumpNodes; ++i) {
      concurrent::Node* n = rt.public_pool().get();
      if (n == nullptr) break;
      n->size = 0;
      ring_.push(n);
    }
  }

  bool body() override {
    std::size_t burst = 8;
    bool progress = false;
    while (burst-- > 0) {
      concurrent::Node* n = ring_.pop();
      if (n == nullptr) break;
      // Touch the payload the way a protocol handler would.
      std::memset(n->payload(), 0x5a, 64);
      n->size = 64;
      ring_.push(n);
      processed_.fetch_add(1, std::memory_order_relaxed);
      progress = true;
    }
    return progress;
  }

  bool has_pending_work() const override { return !ring_.empty(); }

  std::uint64_t processed() const noexcept {
    return processed_.load(std::memory_order_relaxed);
  }

 private:
  concurrent::Mbox ring_;
  std::atomic<std::uint64_t> processed_{0};
};

// Idle in-enclave connection actor: every activation is one non-blocking
// socket probe, i.e. one OCALL round-trip charged by the cost model; it
// never finds data, so it reports no progress (and no pending work).
class IdleConnActor : public core::Actor {
 public:
  explicit IdleConnActor(std::string name) : core::Actor(std::move(name)) {}

  bool body() override {
    sgxsim::ocall([] { /* recv probe: EWOULDBLOCK */ });
    return false;
  }
};

double run_hot_skew(std::size_t workers, core::SchedMode mode,
                    std::size_t idle_actors) {
  core::RuntimeOptions options;
  options.sched = mode;
  core::Runtime rt(options);
  const std::string ename = std::string("skew_") + core::to_string(mode) +
                            "_w" + std::to_string(workers);
  rt.enclave(ename);

  std::vector<HotActor*> hot;
  std::vector<std::string> hot_names;
  for (std::size_t i = 0; i < kHotActors; ++i) {
    auto actor = std::make_unique<HotActor>("hot" + std::to_string(i));
    hot.push_back(actor.get());
    hot_names.push_back(actor->name());
    rt.add_actor(std::move(actor), ename);
  }
  std::vector<std::vector<std::string>> idle_of(workers);
  for (std::size_t i = 0; i < idle_actors; ++i) {
    auto actor = std::make_unique<IdleConnActor>("conn" + std::to_string(i));
    idle_of[i % workers].push_back(actor->name());
    rt.add_actor(std::move(actor), ename);
  }

  // The skew: every hot actor is homed on worker 0; idle connection actors
  // spread evenly, so each worker's affinity mask covers the enclave.
  for (std::size_t w = 0; w < workers; ++w) {
    std::vector<std::string> names = idle_of[w];
    if (w == 0) names.insert(names.begin(), hot_names.begin(), hot_names.end());
    if (names.empty()) names = {hot_names[0]};  // never an actor-less worker
    std::string wname = "w";
    wname += std::to_string(w);
    rt.add_worker(wname, {}, names);
  }

  rt.start();
  const double secs = run_seconds();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::min(0.05, secs * 0.25)));  // warm-up
  std::uint64_t start = 0;
  for (const HotActor* a : hot) start += a->processed();
  bench::Timer timer;
  // ea-lint: allow-next-line(blocking-syscall) -- measurement window
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  std::uint64_t end = 0;
  for (const HotActor* a : hot) end += a->processed();
  const double elapsed = timer.seconds();
  rt.stop();
  return static_cast<double>(end - start) / elapsed;
}

// --- zero-copy channel sends ------------------------------------------------

// Returns msg/s; `copies_out` receives the channel's payload-copy counter.
double run_zero_copy(bool move_mode, std::uint64_t& copies_out) {
  core::Runtime rt;
  const std::string ename =
      std::string("zc_") + (move_mode ? "move" : "copy");
  sgxsim::EnclaveId e = rt.enclave(ename).id();
  core::Channel& ch = rt.channel("zc");
  core::ChannelEnd* a = ch.connect(e);
  core::ChannelEnd* b = ch.connect(e);  // co-located: plain wire, donation ok

  std::uint8_t staging[kMsgBytes];
  std::uint64_t count = 0;
  bench::Timer timer;
  const double secs = run_seconds();
  while (timer.seconds() < secs) {
    for (int i = 0; i < 64; ++i) {
      if (move_mode) {
        concurrent::Node* n = rt.public_pool().get();
        if (n == nullptr) break;
        // The producer writes its message once, directly into the node.
        std::memset(n->payload(), static_cast<int>(count & 0xff), kMsgBytes);
        n->size = kMsgBytes;
        if (!a->send_node(concurrent::NodeLease(n))) break;
      } else {
        // The producer writes into its own buffer; the channel copies it.
        std::memset(staging, static_cast<int>(count & 0xff), kMsgBytes);
        if (!a->send(std::span<const std::uint8_t>(staging, kMsgBytes))) break;
      }
      concurrent::NodeLease got = b->recv();
      if (got) ++count;
    }
  }
  copies_out = ch.payload_copies();
  return static_cast<double>(count) / timer.seconds();
}

}  // namespace

int main() {
  util::BenchReport report("sched");
  bench::csv_header();

  const std::size_t idle_actors = bench::scaled(64, 8);
  double static8 = 0;
  double steal8 = 0;
  double static1 = 0;
  double steal1 = 0;
  for (std::size_t w : kWorkerCounts) {
    const double st =
        run_hot_skew(w, core::SchedMode::kStatic, idle_actors);
    const double sl = run_hot_skew(w, core::SchedMode::kSteal, idle_actors);
    bench::row("sched", "hot_skew.static", static_cast<double>(w), st,
               "msg/s");
    bench::row("sched", "hot_skew.steal", static_cast<double>(w), sl, "msg/s");
    report.add("hot_skew", "static", static_cast<double>(w), st, "msg/s");
    report.add("hot_skew", "steal", static_cast<double>(w), sl, "msg/s");
    if (w == 1) {
      static1 = st;
      steal1 = sl;
    }
    if (w == 8) {
      static8 = st;
      steal8 = sl;
    }
  }

  // Best-of-3 with alternating modes: on a shared/oversubscribed host a
  // single window is noise-dominated; the max of three is a stable estimate
  // of the uncontended rate for this size of micro-op.
  std::uint64_t copy_copies = 0;
  std::uint64_t move_copies = 0;
  double copy_rate = 0;
  double move_rate = 0;
  for (int rep = 0; rep < 3; ++rep) {
    copy_rate = std::max(copy_rate, run_zero_copy(false, copy_copies));
    std::uint64_t rep_moves = 0;
    move_rate = std::max(move_rate, run_zero_copy(true, rep_moves));
    move_copies += rep_moves;  // must stay 0 across every repetition
  }
  bench::row("sched", "zero_copy.copy", 1, copy_rate, "msg/s");
  bench::row("sched", "zero_copy.move", 1, move_rate, "msg/s");
  bench::row("sched", "zero_copy.move_copies", 1,
             static_cast<double>(move_copies), "copies");
  report.add("zero_copy", "copy", 1, copy_rate, "msg/s");
  report.add("zero_copy", "move", 1, move_rate, "msg/s");
  report.add("zero_copy", "move_copies", 1,
             static_cast<double>(move_copies), "copies");

  const std::string path = util::env_str("EA_BENCH_JSON", "BENCH_sched.json");
  if (!report.write(path)) {
    bench::note("failed to write %s", path.c_str());
    return 1;
  }
  bench::note("wrote %s (%zu results)", path.c_str(), report.size());
  bench::note("hot_skew steal/static: %.2fx at 1 worker, %.2fx at 8 workers "
              "(targets: >= 0.95x and >= 3x)",
              static1 > 0 ? steal1 / static1 : 0.0,
              static8 > 0 ? steal8 / static8 : 0.0);
  bench::note("zero_copy move/copy: %.2fx, %llu channel copies on the move "
              "path (target: 0)",
              copy_rate > 0 ? move_rate / copy_rate : 0.0,
              static_cast<unsigned long long>(move_copies));
  if (move_copies != 0) {
    bench::note("FAIL: send_node performed payload copies on a co-located "
                "channel");
    return 1;
  }
  return 0;
}
