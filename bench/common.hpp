// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every bench binary prints CSV rows "figure,series,x,y[,unit]" — the same
// series the paper plots — plus a trailing textual summary comparing the
// measured ordering against the paper's qualitative claim. Workload sizes
// scale with EA_BENCH_SCALE (default 1.0) and per-point measurement time
// with EA_BENCH_SECONDS so small machines finish quickly while larger ones
// can approach the paper's sizes.
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "util/env.hpp"

namespace ea::bench {

inline double scale() { return util::bench_scale(); }

inline double seconds_per_point() {
  return util::env_double("EA_BENCH_SECONDS", 1.0);
}

// Scaled iteration count, at least `min_value`.
inline std::uint64_t scaled(std::uint64_t base, std::uint64_t min_value = 1) {
  auto v = static_cast<std::uint64_t>(static_cast<double>(base) * scale());
  return v < min_value ? min_value : v;
}

inline void csv_header() {
  std::printf("figure,series,x,y,unit\n");
}

inline void row(const char* figure, const std::string& series, double x,
                double y, const char* unit) {
  std::printf("%s,%s,%g,%.6g,%s\n", figure, series.c_str(), x, y, unit);
  std::fflush(stdout);
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("# ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
  std::fflush(stdout);
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ea::bench
