// Shared harness for the secure-sum benchmarks (Figures 12 and 13).
//
// EC = SGX-SDK-style single-thread ring (smc::SdkSecureSum);
// EA = EActors ring, one enclaved party per worker (smc::install_secure_sum).
// Throughput is reported in 10^3 requests/second, matching the paper's
// y-axes.
#pragma once

#include <thread>

#include "bench/common.hpp"
#include "core/runtime.hpp"
#include "sgxsim/enclave.hpp"
#include "smc/party_actor.hpp"
#include "smc/sdk_ring.hpp"

namespace ea::bench {

inline double run_smc_sdk(const smc::SmcConfig& config,
                          std::uint64_t requests) {
  smc::SdkSecureSum smc(config);
  Timer timer;
  for (std::uint64_t i = 0; i < requests; ++i) {
    smc.run_once();
  }
  return static_cast<double>(requests) / timer.seconds() / 1000.0;
}

inline double run_smc_ea(const smc::SmcConfig& config,
                         std::uint64_t requests) {
  core::RuntimeOptions options;
  options.pool_nodes = 128;
  options.node_payload_bytes = config.dim * sizeof(smc::Element) + 64;
  if (options.node_payload_bytes < 256) options.node_payload_bytes = 256;
  core::Runtime rt(options);
  smc::SmcDeployment deployment = smc::install_secure_sum(rt, config);
  rt.start();

  // Warm-up round: every worker enters its enclave, attestation completes.
  deployment.requests->push(rt.public_pool().get());
  while (true) {
    if (concurrent::Node* node = deployment.results->pop()) {
      concurrent::NodeLease lease(node);
      break;
    }
    std::this_thread::yield();
  }

  Timer timer;
  std::uint64_t issued = 0, received = 0;
  // Keep a small number of requests in flight (the paper issues
  // invocations back-to-back). Requests are injected as one chain and
  // results drained as one burst — a single mbox lock acquisition each way.
  while (received < requests) {
    concurrent::ChainBuilder chain;
    while (issued < requests && issued - received < 4) {
      concurrent::Node* req = rt.public_pool().get();
      if (req == nullptr) break;
      chain.append(req);
      ++issued;
    }
    chain.flush_into(*deployment.requests);
    concurrent::Node* burst[8];
    std::size_t got = deployment.results->pop_burst(burst, 8);
    if (got != 0) {
      for (std::size_t i = 0; i < got; ++i) {
        concurrent::NodeLease lease(burst[i]);
      }
      received += got;
    } else {
      std::this_thread::yield();
    }
  }
  double secs = timer.seconds();
  rt.stop();
  return static_cast<double>(requests) / secs / 1000.0;
}

// Frees the enclaves a finished deployment registered so EPC accounting
// does not leak across benchmark points.
inline void reset_enclaves() {
  sgxsim::EnclaveManager::instance().reset_for_testing();
}

}  // namespace ea::bench
