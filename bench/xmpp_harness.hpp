// Shared load generators for the messaging-service benchmarks
// (Figures 14–17). Mirrors the paper's §6.4 methodology:
//
//  O2O: half the clients send, half receive; a receiver echoes every chat
//  message back to its sender; a sender issues the next message upon the
//  echo. Throughput = completed send/receive pairs per second across all
//  senders.
//
//  O2M: all participants join one room; participant 0 sends a new group
//  message whenever it receives its previous one. Throughput = group
//  messages delivered per second (across all members).
//
// Each emulated client runs in its own thread (the paper spawns a thread
// per client).
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "util/bytes.hpp"
#include "xmpp/client.hpp"

namespace ea::bench {

// A population of connected-and-authenticated clients that never send:
// ballast for the connection-count sweep (the c100k question scaled into
// the figure benches — how much does an idle population cost the active
// one?). Under net=scan every idle connection adds a recv syscall to each
// READER round; under net=epoll idle connections are free after
// registration. Connections drop when the object goes out of scope.
class IdleClients {
 public:
  // Connects `count` idle clients; returns how many actually made it (the
  // benches report the attempt loudly rather than failing the run).
  int connect(std::uint16_t port, int count) {
    clients_.reserve(clients_.size() + static_cast<std::size_t>(count));
    int ok = 0;
    for (int i = 0; i < count; ++i) {
      xmpp::Client c;
      if (c.connect(port, "idle" + std::to_string(clients_.size()))) {
        clients_.push_back(std::move(c));
        ++ok;
      }
    }
    return ok;
  }
  std::size_t size() const noexcept { return clients_.size(); }

 private:
  std::vector<xmpp::Client> clients_;
};

// Idle-connection ballast column for the figure sweeps: when
// EA_XMPP_IDLE_SWEEP is set to N > 0, each EA series is additionally
// measured with N idle connections alongside and reported with an
// "+Nidle" series suffix. 0 (the default) keeps the classic figures.
inline int idle_sweep_count() {
  return static_cast<int>(util::env_int("EA_XMPP_IDLE_SWEEP", 0));
}

inline double xmpp_o2o_throughput(std::uint16_t port, int clients,
                                  double seconds) {
  const int pairs = clients / 2;
  if (pairs == 0) return 0;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<int> ready{0};

  std::vector<std::thread> threads;
  // Receivers: echo every chat back to its sender.
  for (int i = 0; i < pairs; ++i) {
    threads.emplace_back([&, i] {
      xmpp::Client client;
      if (!client.connect(port, "recv" + std::to_string(i))) {
        ready.fetch_add(1);
        return;
      }
      ready.fetch_add(1);
      while (!stop.load(std::memory_order_relaxed)) {
        auto msg = client.recv(20);
        if (msg.has_value() && msg->kind == "chat") {
          client.send_chat(msg->from, msg->body);
        }
      }
    });
  }
  // Senders.
  for (int i = 0; i < pairs; ++i) {
    threads.emplace_back([&, i] {
      xmpp::Client client;
      if (!client.connect(port, "send" + std::to_string(i))) {
        ready.fetch_add(1);
        return;
      }
      ready.fetch_add(1);
      // Wait until everyone connected so directories are populated.
      while (ready.load() < clients && !stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      std::string payload = util::random_printable(
          static_cast<std::uint64_t>(i), 150);
      std::string peer = "recv" + std::to_string(i);
      while (!stop.load(std::memory_order_relaxed)) {
        if (!client.send_chat(peer, payload)) break;
        // Wait for the echo.
        bool got = false;
        while (!got && !stop.load(std::memory_order_relaxed)) {
          auto msg = client.recv(20);
          if (msg.has_value() && msg->kind == "chat") got = true;
        }
        if (got) completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let connections settle, then measure.
  while (ready.load() < clients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::uint64_t before = completed.load();
  Timer timer;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  std::uint64_t delta = completed.load() - before;
  double elapsed = timer.seconds();
  stop.store(true);
  for (auto& t : threads) t.join();
  return static_cast<double>(delta) / elapsed;
}

inline double xmpp_o2m_throughput(std::uint16_t port, int participants,
                                  double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<int> joined{0};
  const std::string room = "bench-room";

  std::vector<std::thread> threads;
  // Passive members.
  for (int i = 1; i < participants; ++i) {
    threads.emplace_back([&, i] {
      xmpp::Client client;
      if (!client.connect(port, "member" + std::to_string(i)) ||
          !client.join_room(room)) {
        joined.fetch_add(1);
        return;
      }
      joined.fetch_add(1);
      while (!stop.load(std::memory_order_relaxed)) {
        auto msg = client.recv(20);
        if (msg.has_value() && msg->kind == "groupchat") {
          delivered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // The driving member: sends the next message upon receiving its own.
  threads.emplace_back([&] {
    xmpp::Client client;
    if (!client.connect(port, "member0") || !client.join_room(room)) {
      joined.fetch_add(1);
      return;
    }
    joined.fetch_add(1);
    while (joined.load() < participants && !stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::string payload = util::random_printable(99, 150);
    client.send_groupchat(room, payload);
    while (!stop.load(std::memory_order_relaxed)) {
      auto msg = client.recv(20);
      if (msg.has_value() && msg->kind == "groupchat") {
        delivered.fetch_add(1, std::memory_order_relaxed);
        client.send_groupchat(room, payload);
      }
    }
  });

  while (joined.load() < participants) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::uint64_t before = delivered.load();
  Timer timer;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  std::uint64_t delta = delivered.load() - before;
  double elapsed = timer.seconds();
  stop.store(true);
  for (auto& t : threads) t.join();
  return static_cast<double>(delta) / elapsed;
}

// Multiple independent groups, one driver per group (paper §6.4.2's first
// observation: total throughput is flat in the number of groups because
// each group works almost in isolation). Returns aggregate delivered/s.
inline double xmpp_o2m_multi_group(std::uint16_t port, int groups,
                                   int participants_per_group,
                                   double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<int> joined{0};
  const int total = groups * participants_per_group;

  std::vector<std::thread> threads;
  for (int g = 0; g < groups; ++g) {
    std::string room = "multi-room-" + std::to_string(g);
    for (int i = 0; i < participants_per_group; ++i) {
      bool driver = i == 0;
      threads.emplace_back([&, room, g, i, driver] {
        xmpp::Client client;
        std::string jid =
            "g" + std::to_string(g) + "m" + std::to_string(i);
        if (!client.connect(port, jid) || !client.join_room(room)) {
          joined.fetch_add(1);
          return;
        }
        joined.fetch_add(1);
        if (driver) {
          while (joined.load() < total && !stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          client.send_groupchat(room, "m");
        }
        while (!stop.load(std::memory_order_relaxed)) {
          auto msg = client.recv(20);
          if (msg.has_value() && msg->kind == "groupchat") {
            delivered.fetch_add(1, std::memory_order_relaxed);
            if (driver) client.send_groupchat(room, "m");
          }
        }
      });
    }
  }

  while (joined.load() < total) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::uint64_t before = delivered.load();
  Timer timer;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  std::uint64_t delta = delivered.load() - before;
  double elapsed = timer.seconds();
  stop.store(true);
  for (auto& t : threads) t.join();
  return static_cast<double>(delta) / elapsed;
}

}  // namespace ea::bench
