file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_colocated.dir/bench_ablation_colocated.cpp.o"
  "CMakeFiles/bench_ablation_colocated.dir/bench_ablation_colocated.cpp.o.d"
  "bench_ablation_colocated"
  "bench_ablation_colocated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_colocated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
