# Empty compiler generated dependencies file for bench_ablation_colocated.
# This may be replaced when dependencies are built.
