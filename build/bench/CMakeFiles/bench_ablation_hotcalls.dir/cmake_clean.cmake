file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hotcalls.dir/bench_ablation_hotcalls.cpp.o"
  "CMakeFiles/bench_ablation_hotcalls.dir/bench_ablation_hotcalls.cpp.o.d"
  "bench_ablation_hotcalls"
  "bench_ablation_hotcalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hotcalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
