# Empty dependencies file for bench_ablation_hotcalls.
# This may be replaced when dependencies are built.
