# Empty dependencies file for bench_ablation_transition.
# This may be replaced when dependencies are built.
