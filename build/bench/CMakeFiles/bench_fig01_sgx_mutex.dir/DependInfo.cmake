
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig01_sgx_mutex.cpp" "bench/CMakeFiles/bench_fig01_sgx_mutex.dir/bench_fig01_sgx_mutex.cpp.o" "gcc" "bench/CMakeFiles/bench_fig01_sgx_mutex.dir/bench_fig01_sgx_mutex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ea_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ea_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrent/CMakeFiles/ea_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/sgxsim/CMakeFiles/ea_sgxsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/ea_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ea_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xmpp/CMakeFiles/ea_xmpp.dir/DependInfo.cmake"
  "/root/repo/build/src/smc/CMakeFiles/ea_smc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
