file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_sgx_mutex.dir/bench_fig01_sgx_mutex.cpp.o"
  "CMakeFiles/bench_fig01_sgx_mutex.dir/bench_fig01_sgx_mutex.cpp.o.d"
  "bench_fig01_sgx_mutex"
  "bench_fig01_sgx_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_sgx_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
