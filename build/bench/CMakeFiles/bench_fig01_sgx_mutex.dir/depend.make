# Empty dependencies file for bench_fig01_sgx_mutex.
# This may be replaced when dependencies are built.
