file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_smc_plain.dir/bench_fig12_smc_plain.cpp.o"
  "CMakeFiles/bench_fig12_smc_plain.dir/bench_fig12_smc_plain.cpp.o.d"
  "bench_fig12_smc_plain"
  "bench_fig12_smc_plain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_smc_plain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
