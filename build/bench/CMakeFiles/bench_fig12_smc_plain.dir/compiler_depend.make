# Empty compiler generated dependencies file for bench_fig12_smc_plain.
# This may be replaced when dependencies are built.
