file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_xmpp_o2o.dir/bench_fig14_xmpp_o2o.cpp.o"
  "CMakeFiles/bench_fig14_xmpp_o2o.dir/bench_fig14_xmpp_o2o.cpp.o.d"
  "bench_fig14_xmpp_o2o"
  "bench_fig14_xmpp_o2o.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_xmpp_o2o.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
