# Empty compiler generated dependencies file for bench_fig14_xmpp_o2o.
# This may be replaced when dependencies are built.
