file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_xmpp_o2m.dir/bench_fig15_xmpp_o2m.cpp.o"
  "CMakeFiles/bench_fig15_xmpp_o2m.dir/bench_fig15_xmpp_o2m.cpp.o.d"
  "bench_fig15_xmpp_o2m"
  "bench_fig15_xmpp_o2m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_xmpp_o2m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
