# Empty compiler generated dependencies file for bench_fig15_xmpp_o2m.
# This may be replaced when dependencies are built.
