# Empty dependencies file for bench_fig16_enclave_count.
# This may be replaced when dependencies are built.
