file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_trusted_untrusted.dir/bench_fig17_trusted_untrusted.cpp.o"
  "CMakeFiles/bench_fig17_trusted_untrusted.dir/bench_fig17_trusted_untrusted.cpp.o.d"
  "bench_fig17_trusted_untrusted"
  "bench_fig17_trusted_untrusted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_trusted_untrusted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
