# Empty compiler generated dependencies file for bench_fig17_trusted_untrusted.
# This may be replaced when dependencies are built.
