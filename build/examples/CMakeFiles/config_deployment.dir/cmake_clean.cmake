file(REMOVE_RECURSE
  "CMakeFiles/config_deployment.dir/config_deployment.cpp.o"
  "CMakeFiles/config_deployment.dir/config_deployment.cpp.o.d"
  "config_deployment"
  "config_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
