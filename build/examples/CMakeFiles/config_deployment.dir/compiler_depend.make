# Empty compiler generated dependencies file for config_deployment.
# This may be replaced when dependencies are built.
