file(REMOVE_RECURSE
  "CMakeFiles/private_query.dir/private_query.cpp.o"
  "CMakeFiles/private_query.dir/private_query.cpp.o.d"
  "private_query"
  "private_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
