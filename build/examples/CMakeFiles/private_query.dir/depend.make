# Empty dependencies file for private_query.
# This may be replaced when dependencies are built.
