file(REMOVE_RECURSE
  "CMakeFiles/secure_chat.dir/secure_chat.cpp.o"
  "CMakeFiles/secure_chat.dir/secure_chat.cpp.o.d"
  "secure_chat"
  "secure_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
