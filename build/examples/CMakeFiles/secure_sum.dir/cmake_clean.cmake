file(REMOVE_RECURSE
  "CMakeFiles/secure_sum.dir/secure_sum.cpp.o"
  "CMakeFiles/secure_sum.dir/secure_sum.cpp.o.d"
  "secure_sum"
  "secure_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
