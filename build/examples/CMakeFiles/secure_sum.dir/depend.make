# Empty dependencies file for secure_sum.
# This may be replaced when dependencies are built.
