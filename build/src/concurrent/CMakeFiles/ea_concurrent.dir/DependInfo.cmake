
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concurrent/arena.cpp" "src/concurrent/CMakeFiles/ea_concurrent.dir/arena.cpp.o" "gcc" "src/concurrent/CMakeFiles/ea_concurrent.dir/arena.cpp.o.d"
  "/root/repo/src/concurrent/mbox.cpp" "src/concurrent/CMakeFiles/ea_concurrent.dir/mbox.cpp.o" "gcc" "src/concurrent/CMakeFiles/ea_concurrent.dir/mbox.cpp.o.d"
  "/root/repo/src/concurrent/pool.cpp" "src/concurrent/CMakeFiles/ea_concurrent.dir/pool.cpp.o" "gcc" "src/concurrent/CMakeFiles/ea_concurrent.dir/pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
