file(REMOVE_RECURSE
  "CMakeFiles/ea_concurrent.dir/arena.cpp.o"
  "CMakeFiles/ea_concurrent.dir/arena.cpp.o.d"
  "CMakeFiles/ea_concurrent.dir/mbox.cpp.o"
  "CMakeFiles/ea_concurrent.dir/mbox.cpp.o.d"
  "CMakeFiles/ea_concurrent.dir/pool.cpp.o"
  "CMakeFiles/ea_concurrent.dir/pool.cpp.o.d"
  "libea_concurrent.a"
  "libea_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
