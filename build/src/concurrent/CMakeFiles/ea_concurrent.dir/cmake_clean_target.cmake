file(REMOVE_RECURSE
  "libea_concurrent.a"
)
