# Empty dependencies file for ea_concurrent.
# This may be replaced when dependencies are built.
