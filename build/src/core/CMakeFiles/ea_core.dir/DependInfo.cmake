
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/actor.cpp" "src/core/CMakeFiles/ea_core.dir/actor.cpp.o" "gcc" "src/core/CMakeFiles/ea_core.dir/actor.cpp.o.d"
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/ea_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/ea_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/ea_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/ea_core.dir/config.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/ea_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/ea_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/worker.cpp" "src/core/CMakeFiles/ea_core.dir/worker.cpp.o" "gcc" "src/core/CMakeFiles/ea_core.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ea_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ea_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrent/CMakeFiles/ea_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/sgxsim/CMakeFiles/ea_sgxsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
