file(REMOVE_RECURSE
  "CMakeFiles/ea_core.dir/actor.cpp.o"
  "CMakeFiles/ea_core.dir/actor.cpp.o.d"
  "CMakeFiles/ea_core.dir/channel.cpp.o"
  "CMakeFiles/ea_core.dir/channel.cpp.o.d"
  "CMakeFiles/ea_core.dir/config.cpp.o"
  "CMakeFiles/ea_core.dir/config.cpp.o.d"
  "CMakeFiles/ea_core.dir/runtime.cpp.o"
  "CMakeFiles/ea_core.dir/runtime.cpp.o.d"
  "CMakeFiles/ea_core.dir/worker.cpp.o"
  "CMakeFiles/ea_core.dir/worker.cpp.o.d"
  "libea_core.a"
  "libea_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
