file(REMOVE_RECURSE
  "CMakeFiles/ea_crypto.dir/aead.cpp.o"
  "CMakeFiles/ea_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/ea_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/ea_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/ea_crypto.dir/deterministic.cpp.o"
  "CMakeFiles/ea_crypto.dir/deterministic.cpp.o.d"
  "CMakeFiles/ea_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/ea_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/ea_crypto.dir/hmac.cpp.o"
  "CMakeFiles/ea_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/ea_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/ea_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/ea_crypto.dir/rng.cpp.o"
  "CMakeFiles/ea_crypto.dir/rng.cpp.o.d"
  "CMakeFiles/ea_crypto.dir/sha256.cpp.o"
  "CMakeFiles/ea_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/ea_crypto.dir/x25519.cpp.o"
  "CMakeFiles/ea_crypto.dir/x25519.cpp.o.d"
  "libea_crypto.a"
  "libea_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
