file(REMOVE_RECURSE
  "libea_crypto.a"
)
