# Empty compiler generated dependencies file for ea_crypto.
# This may be replaced when dependencies are built.
