file(REMOVE_RECURSE
  "CMakeFiles/ea_fs.dir/file_actor.cpp.o"
  "CMakeFiles/ea_fs.dir/file_actor.cpp.o.d"
  "libea_fs.a"
  "libea_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
