file(REMOVE_RECURSE
  "libea_fs.a"
)
