# Empty dependencies file for ea_fs.
# This may be replaced when dependencies are built.
