file(REMOVE_RECURSE
  "CMakeFiles/ea_net.dir/actors.cpp.o"
  "CMakeFiles/ea_net.dir/actors.cpp.o.d"
  "CMakeFiles/ea_net.dir/socket.cpp.o"
  "CMakeFiles/ea_net.dir/socket.cpp.o.d"
  "CMakeFiles/ea_net.dir/socket_table.cpp.o"
  "CMakeFiles/ea_net.dir/socket_table.cpp.o.d"
  "libea_net.a"
  "libea_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
