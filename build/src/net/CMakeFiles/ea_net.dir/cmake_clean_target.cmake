file(REMOVE_RECURSE
  "libea_net.a"
)
