# Empty compiler generated dependencies file for ea_net.
# This may be replaced when dependencies are built.
