file(REMOVE_RECURSE
  "CMakeFiles/ea_partition.dir/actors.cpp.o"
  "CMakeFiles/ea_partition.dir/actors.cpp.o.d"
  "CMakeFiles/ea_partition.dir/record.cpp.o"
  "CMakeFiles/ea_partition.dir/record.cpp.o.d"
  "libea_partition.a"
  "libea_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
