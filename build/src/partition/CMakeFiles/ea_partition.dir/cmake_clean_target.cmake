file(REMOVE_RECURSE
  "libea_partition.a"
)
