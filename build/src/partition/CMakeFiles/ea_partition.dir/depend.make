# Empty dependencies file for ea_partition.
# This may be replaced when dependencies are built.
