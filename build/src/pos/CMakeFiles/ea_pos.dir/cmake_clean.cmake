file(REMOVE_RECURSE
  "CMakeFiles/ea_pos.dir/cleaner_actor.cpp.o"
  "CMakeFiles/ea_pos.dir/cleaner_actor.cpp.o.d"
  "CMakeFiles/ea_pos.dir/encrypted.cpp.o"
  "CMakeFiles/ea_pos.dir/encrypted.cpp.o.d"
  "CMakeFiles/ea_pos.dir/pos.cpp.o"
  "CMakeFiles/ea_pos.dir/pos.cpp.o.d"
  "libea_pos.a"
  "libea_pos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_pos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
