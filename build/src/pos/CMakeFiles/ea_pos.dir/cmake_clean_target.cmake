file(REMOVE_RECURSE
  "libea_pos.a"
)
