# Empty dependencies file for ea_pos.
# This may be replaced when dependencies are built.
