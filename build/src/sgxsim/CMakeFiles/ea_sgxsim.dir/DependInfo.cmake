
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgxsim/attestation.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/attestation.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/attestation.cpp.o.d"
  "/root/repo/src/sgxsim/attested_exchange.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/attested_exchange.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/attested_exchange.cpp.o.d"
  "/root/repo/src/sgxsim/cost_model.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/cost_model.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sgxsim/enclave.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/enclave.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/enclave.cpp.o.d"
  "/root/repo/src/sgxsim/hotcalls.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/hotcalls.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/hotcalls.cpp.o.d"
  "/root/repo/src/sgxsim/monotonic_counter.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/monotonic_counter.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/monotonic_counter.cpp.o.d"
  "/root/repo/src/sgxsim/remote_attestation.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/remote_attestation.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/remote_attestation.cpp.o.d"
  "/root/repo/src/sgxsim/sealing.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/sealing.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/sealing.cpp.o.d"
  "/root/repo/src/sgxsim/sgx_mutex.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/sgx_mutex.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/sgx_mutex.cpp.o.d"
  "/root/repo/src/sgxsim/transition.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/transition.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/transition.cpp.o.d"
  "/root/repo/src/sgxsim/trusted_rng.cpp" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/trusted_rng.cpp.o" "gcc" "src/sgxsim/CMakeFiles/ea_sgxsim.dir/trusted_rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ea_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ea_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
