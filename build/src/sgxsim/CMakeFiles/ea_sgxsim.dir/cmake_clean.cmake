file(REMOVE_RECURSE
  "CMakeFiles/ea_sgxsim.dir/attestation.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/attestation.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/attested_exchange.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/attested_exchange.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/cost_model.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/cost_model.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/enclave.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/enclave.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/hotcalls.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/hotcalls.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/monotonic_counter.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/monotonic_counter.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/remote_attestation.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/remote_attestation.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/sealing.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/sealing.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/sgx_mutex.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/sgx_mutex.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/transition.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/transition.cpp.o.d"
  "CMakeFiles/ea_sgxsim.dir/trusted_rng.cpp.o"
  "CMakeFiles/ea_sgxsim.dir/trusted_rng.cpp.o.d"
  "libea_sgxsim.a"
  "libea_sgxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_sgxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
