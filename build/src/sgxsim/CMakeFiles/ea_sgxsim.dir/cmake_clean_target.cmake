file(REMOVE_RECURSE
  "libea_sgxsim.a"
)
