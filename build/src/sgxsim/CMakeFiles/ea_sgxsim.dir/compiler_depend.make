# Empty compiler generated dependencies file for ea_sgxsim.
# This may be replaced when dependencies are built.
