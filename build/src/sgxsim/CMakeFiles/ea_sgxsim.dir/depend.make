# Empty dependencies file for ea_sgxsim.
# This may be replaced when dependencies are built.
