file(REMOVE_RECURSE
  "CMakeFiles/ea_smc.dir/party_actor.cpp.o"
  "CMakeFiles/ea_smc.dir/party_actor.cpp.o.d"
  "CMakeFiles/ea_smc.dir/sdk_ring.cpp.o"
  "CMakeFiles/ea_smc.dir/sdk_ring.cpp.o.d"
  "CMakeFiles/ea_smc.dir/secure_sum.cpp.o"
  "CMakeFiles/ea_smc.dir/secure_sum.cpp.o.d"
  "CMakeFiles/ea_smc.dir/tcp_ring.cpp.o"
  "CMakeFiles/ea_smc.dir/tcp_ring.cpp.o.d"
  "CMakeFiles/ea_smc.dir/voting.cpp.o"
  "CMakeFiles/ea_smc.dir/voting.cpp.o.d"
  "libea_smc.a"
  "libea_smc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
