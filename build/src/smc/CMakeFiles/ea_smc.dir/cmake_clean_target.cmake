file(REMOVE_RECURSE
  "libea_smc.a"
)
