# Empty compiler generated dependencies file for ea_smc.
# This may be replaced when dependencies are built.
