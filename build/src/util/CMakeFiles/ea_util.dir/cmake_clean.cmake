file(REMOVE_RECURSE
  "CMakeFiles/ea_util.dir/affinity.cpp.o"
  "CMakeFiles/ea_util.dir/affinity.cpp.o.d"
  "CMakeFiles/ea_util.dir/bytes.cpp.o"
  "CMakeFiles/ea_util.dir/bytes.cpp.o.d"
  "CMakeFiles/ea_util.dir/env.cpp.o"
  "CMakeFiles/ea_util.dir/env.cpp.o.d"
  "CMakeFiles/ea_util.dir/logging.cpp.o"
  "CMakeFiles/ea_util.dir/logging.cpp.o.d"
  "libea_util.a"
  "libea_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
