file(REMOVE_RECURSE
  "libea_util.a"
)
