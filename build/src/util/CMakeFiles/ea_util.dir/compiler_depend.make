# Empty compiler generated dependencies file for ea_util.
# This may be replaced when dependencies are built.
