file(REMOVE_RECURSE
  "CMakeFiles/ea_xmpp.dir/baseline_server.cpp.o"
  "CMakeFiles/ea_xmpp.dir/baseline_server.cpp.o.d"
  "CMakeFiles/ea_xmpp.dir/client.cpp.o"
  "CMakeFiles/ea_xmpp.dir/client.cpp.o.d"
  "CMakeFiles/ea_xmpp.dir/server.cpp.o"
  "CMakeFiles/ea_xmpp.dir/server.cpp.o.d"
  "CMakeFiles/ea_xmpp.dir/stanza.cpp.o"
  "CMakeFiles/ea_xmpp.dir/stanza.cpp.o.d"
  "libea_xmpp.a"
  "libea_xmpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ea_xmpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
