file(REMOVE_RECURSE
  "libea_xmpp.a"
)
