# Empty compiler generated dependencies file for ea_xmpp.
# This may be replaced when dependencies are built.
