file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_ext_test.dir/sgxsim_ext_test.cpp.o"
  "CMakeFiles/sgxsim_ext_test.dir/sgxsim_ext_test.cpp.o.d"
  "sgxsim_ext_test"
  "sgxsim_ext_test.pdb"
  "sgxsim_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
