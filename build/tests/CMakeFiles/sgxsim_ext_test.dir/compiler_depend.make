# Empty compiler generated dependencies file for sgxsim_ext_test.
# This may be replaced when dependencies are built.
