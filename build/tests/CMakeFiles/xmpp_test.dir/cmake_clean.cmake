file(REMOVE_RECURSE
  "CMakeFiles/xmpp_test.dir/xmpp_test.cpp.o"
  "CMakeFiles/xmpp_test.dir/xmpp_test.cpp.o.d"
  "xmpp_test"
  "xmpp_test.pdb"
  "xmpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
