# Empty compiler generated dependencies file for xmpp_test.
# This may be replaced when dependencies are built.
