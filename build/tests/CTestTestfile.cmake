# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/sgxsim_test[1]_include.cmake")
include("/root/repo/build/tests/sgxsim_ext_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pos_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/xmpp_test[1]_include.cmake")
include("/root/repo/build/tests/smc_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
