# Sanitizer / hardening knobs, threaded through every module via
# ea_harden(<target>).
#
#   -DEA_SANITIZE=address            ASan
#   -DEA_SANITIZE=address,undefined  ASan + UBSan (the check.sh default leg)
#   -DEA_SANITIZE=thread             TSan (use with `ctest -L tsan`)
#   -DEA_WERROR=ON                   promote warnings to errors (CI/check.sh)
#   -DEA_THREAD_SAFETY=ON            Clang Thread Safety Analysis as errors
#                                    (clang only; -Werror=thread-safety)
#
# ThreadSanitizer cannot be combined with AddressSanitizer; the combination
# is rejected at configure time rather than failing obscurely at link time.
# EA_THREAD_SAFETY requires clang: the capability attributes behind the
# EA_* macros (src/concurrent/thread_safety.hpp) are a clang analysis; on
# GCC they expand to nothing, so a GCC "thread-safety build" would silently
# verify nothing — rejected at configure time instead.

set(EA_SANITIZE "" CACHE STRING
    "Comma-separated sanitizer set: address, undefined, thread, leak")
option(EA_WERROR "Treat compiler warnings as errors" OFF)
option(EA_THREAD_SAFETY
    "Clang Thread Safety Analysis, promoted to errors (clang only)" OFF)

if(EA_THREAD_SAFETY)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
      "EA_THREAD_SAFETY=ON requires clang (found ${CMAKE_CXX_COMPILER_ID}); "
      "the EA_* capability macros are no-ops elsewhere, so the build would "
      "check nothing. Configure with -DCMAKE_CXX_COMPILER=clang++.")
  endif()
  message(STATUS "EActors: Clang Thread Safety Analysis enabled (-Werror)")
endif()

set(EA_SANITIZE_COMPILE_FLAGS "")
set(EA_SANITIZE_LINK_FLAGS "")

if(EA_SANITIZE)
  string(REPLACE "," ";" _ea_san_list "${EA_SANITIZE}")
  set(_ea_san_valid address undefined thread leak)
  foreach(_s IN LISTS _ea_san_list)
    if(NOT _s IN_LIST _ea_san_valid)
      message(FATAL_ERROR
        "EA_SANITIZE: unknown sanitizer '${_s}' (valid: ${_ea_san_valid})")
    endif()
  endforeach()
  if("thread" IN_LIST _ea_san_list AND
     ("address" IN_LIST _ea_san_list OR "leak" IN_LIST _ea_san_list))
    message(FATAL_ERROR
      "EA_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
  endif()
  string(REPLACE ";" "," _ea_san_joined "${_ea_san_list}")
  set(EA_SANITIZE_COMPILE_FLAGS
      -fsanitize=${_ea_san_joined} -fno-omit-frame-pointer -g)
  if("undefined" IN_LIST _ea_san_list)
    # Fail fast instead of logging and continuing.
    list(APPEND EA_SANITIZE_COMPILE_FLAGS -fno-sanitize-recover=undefined)
  endif()
  set(EA_SANITIZE_LINK_FLAGS -fsanitize=${_ea_san_joined})
  message(STATUS "EActors: sanitizers enabled: ${_ea_san_joined}")
endif()

function(ea_harden target)
  if(EA_WERROR)
    target_compile_options(${target} PRIVATE -Werror)
  endif()
  if(EA_THREAD_SAFETY)
    target_compile_options(${target} PRIVATE
      -Wthread-safety -Werror=thread-safety)
  endif()
  if(EA_SANITIZE_COMPILE_FLAGS)
    target_compile_options(${target} PRIVATE ${EA_SANITIZE_COMPILE_FLAGS})
    target_link_options(${target} PRIVATE ${EA_SANITIZE_LINK_FLAGS})
  endif()
endfunction()
