// Audit log: an enclaved actor persists sealed records through the
// untrusted FILE system actor (the §4.1 extension pattern: "dedicated
// untrusted eactors that execute the necessary system calls").
//
// The enclaved LOGGER actor never issues a syscall: it seals each record
// to its enclave identity, hands the ciphertext to the FILE actor via a
// mbox, and later reads the file back — only the same enclave identity can
// open the records, so the file is useless to the untrusted side.
//
// Build & run:  ./build/examples/audit_log
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include "core/runtime.hpp"
#include "fs/file_actor.hpp"
#include "sgxsim/sealing.hpp"
#include "util/bytes.hpp"

using namespace ea;

namespace {

constexpr int kRecords = 5;

class LoggerActor : public core::Actor {
 public:
  LoggerActor(std::string name, std::string path, fs::FileActor& file)
      : core::Actor(std::move(name)), path_(std::move(path)), file_(file) {}

  void construct(core::Runtime& rt) override {
    pool_ = &rt.public_pool();
    enclave_ = sgxsim::EnclaveManager::instance().find(placement());
  }

  bool body() override {
    switch (phase_) {
      case Phase::kAppend: {
        if (next_record_ >= kRecords) {
          phase_ = Phase::kReadBack;
          return true;
        }
        // Seal the record inside the enclave; length-prefix it so records
        // can be split again on read-back.
        std::string record =
            "event=" + std::to_string(next_record_) + " action=transfer";
        util::Bytes sealed = sgxsim::seal(*enclave_, util::to_bytes(record));
        util::Bytes framed(4 + sealed.size());
        util::store_le32(framed.data(),
                         static_cast<std::uint32_t>(sealed.size()));
        std::memcpy(framed.data() + 4, sealed.data(), sealed.size());

        fs::FileRequest request;
        request.op = fs::FileRequest::kAppend;
        std::snprintf(request.path, sizeof(request.path), "%s",
                      path_.c_str());
        request.reply = &replies_;
        request.pool = pool_;
        request.cookie = static_cast<std::uint64_t>(next_record_);
        concurrent::Node* node = pool_->get();
        if (node == nullptr || !fs::fill_file_request(*node, request, framed)) {
          if (node != nullptr) concurrent::NodeLease(node).reset();
          return false;
        }
        file_.requests().push(node);
        ++next_record_;
        ++pending_;
        return true;
      }
      case Phase::kReadBack: {
        // Wait for all appends to be acknowledged, then request the file.
        while (concurrent::Node* ack = replies_.pop()) {
          concurrent::NodeLease lease(ack);
          --pending_;
        }
        if (pending_ > 0) return false;
        fs::FileRequest request;
        request.op = fs::FileRequest::kRead;
        std::snprintf(request.path, sizeof(request.path), "%s",
                      path_.c_str());
        request.length = 1500;
        request.reply = &replies_;
        request.pool = pool_;
        concurrent::Node* node = pool_->get();
        if (node == nullptr) return false;
        if (!fs::fill_file_request(*node, request)) {
          concurrent::NodeLease(node).reset();
          return false;
        }
        file_.requests().push(node);
        phase_ = Phase::kVerify;
        return true;
      }
      case Phase::kVerify: {
        concurrent::Node* reply = replies_.pop();
        if (reply == nullptr) return false;
        concurrent::NodeLease lease(reply);
        fs::FileReplyHeader header;
        std::span<const std::uint8_t> data;
        if (!fs::parse_file_reply(*reply, header, data) || header.status < 0) {
          std::printf("read-back failed (%lld)\n",
                      static_cast<long long>(header.status));
          phase_ = Phase::kDone;
          return true;
        }
        std::size_t off = 0;
        while (off + 4 <= data.size()) {
          std::uint32_t len = util::load_le32(data.data() + off);
          off += 4;
          if (off + len > data.size()) break;
          auto plain =
              sgxsim::unseal(*enclave_, data.subspan(off, len));
          off += len;
          if (plain.has_value()) {
            std::printf("unsealed record: %s\n",
                        util::to_string(*plain).c_str());
            ++verified_;
          }
        }
        phase_ = Phase::kDone;
        return true;
      }
      case Phase::kDone:
        return false;
    }
    return false;
  }

  bool done() const { return phase_ == Phase::kDone; }
  int verified() const { return verified_; }

 private:
  enum class Phase { kAppend, kReadBack, kVerify, kDone };
  std::string path_;
  fs::FileActor& file_;
  concurrent::Pool* pool_ = nullptr;
  sgxsim::Enclave* enclave_ = nullptr;
  concurrent::Mbox replies_;
  Phase phase_ = Phase::kAppend;
  int next_record_ = 0;
  int pending_ = 0;
  int verified_ = 0;
};

}  // namespace

int main() {
  std::string path = "/tmp/eactors_audit_example.log";
  ::unlink(path.c_str());

  core::Runtime rt;
  auto file = std::make_unique<fs::FileActor>("file");
  fs::FileActor* file_ptr = file.get();
  rt.add_actor(std::move(file));  // untrusted: it executes the syscalls

  auto logger = std::make_unique<LoggerActor>("logger", path, *file_ptr);
  LoggerActor* logger_ptr = logger.get();
  rt.add_actor(std::move(logger), "audit-enclave");

  rt.add_worker("w-file", {0}, {"file"});
  rt.add_worker("w-logger", {1}, {"logger"});
  rt.start();
  while (!logger_ptr->done()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.stop();

  std::printf("verified %d/%d sealed records from %s\n",
              logger_ptr->verified(), kRecords, path.c_str());
  ::unlink(path.c_str());
  return logger_ptr->verified() == kRecords ? 0 : 1;
}
