// Flexible deployment (paper §3.2): the SAME actor code runs trusted or
// untrusted, co-located or separated, purely as a matter of configuration.
// This example parses two deployment descriptions — one placing the
// pipeline stages in two enclaves, one running everything untrusted — and
// executes both, reporting the transition counts and channel modes that
// result.
//
// Build & run:  ./build/examples/config_deployment
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/config.hpp"
#include "sgxsim/transition.hpp"

using namespace ea;

namespace {

// A two-stage pipeline: SOURCE emits numbers, SINK accumulates them.
class Source : public core::Actor {
 public:
  using core::Actor::Actor;
  void construct(core::Runtime&) override { out_ = connect("pipe"); }
  bool body() override {
    if (sent_ >= 1000) return false;
    if (out_->send(std::to_string(sent_))) ++sent_;
    return true;
  }

 private:
  core::ChannelEnd* out_ = nullptr;
  int sent_ = 0;
};

class Sink : public core::Actor {
 public:
  using core::Actor::Actor;
  void construct(core::Runtime&) override { in_ = connect("pipe"); }
  bool body() override {
    if (auto msg = in_->recv()) {
      sum_ += std::stol(std::string(msg->view()));
      ++count_;
      return true;
    }
    return false;
  }
  long sum() const { return sum_.load(); }
  int count() const { return count_.load(); }

 private:
  core::ChannelEnd* in_ = nullptr;
  std::atomic<long> sum_{0};
  std::atomic<int> count_{0};
};

constexpr const char* kTrustedConfig = R"(
# Two enclaves, one actor each: the channel crosses an enclave boundary
# and is therefore transparently encrypted.
pool nodes=256 payload=128
enclave stage1
enclave stage2
actor source type=source enclave=stage1
actor sink   type=sink   enclave=stage2
worker w1 cpus=0 actors=source
worker w2 cpus=1 actors=sink
)";

constexpr const char* kUntrustedConfig = R"(
# Identical actor code, no enclaves: plaintext channel, zero transitions.
pool nodes=256 payload=128
actor source type=source
actor sink   type=sink
worker w1 cpus=0 actors=source,sink
)";

constexpr const char* kStealConfig = R"(
# Same trusted pipeline, but scheduled by work stealing: each worker owns
# a run queue and may lend ready actors to an idle peer that has entered
# the same enclave (DESIGN.md section 14). Both workers enter "stage",
# so either may end up running source or sink.
sched steal
pool nodes=256 payload=128
enclave stage
actor source type=source enclave=stage
actor sink   type=sink   enclave=stage
worker w1 cpus=0 actors=source,sink
worker w2 cpus=1 actors=source,sink
)";

void run(const char* label, const char* config_text) {
  core::ActorRegistry registry;
  Sink* sink_ptr = nullptr;
  registry.register_type("source", [](const std::string& name) {
    return std::make_unique<Source>(name);
  });
  registry.register_type("sink", [&](const std::string& name) {
    auto sink = std::make_unique<Sink>(name);
    sink_ptr = sink.get();
    return sink;
  });

  auto config = core::DeploymentConfig::parse(config_text);
  auto rt = core::build_runtime(config, registry);
  sgxsim::reset_transition_stats();
  rt->start();
  while (sink_ptr->count() < 1000) {
    std::this_thread::yield();
  }
  rt->stop();

  auto stats = sgxsim::transition_stats();
  std::printf("%-10s channel encrypted: %-3s  sum=%ld  ecalls=%llu\n", label,
              rt->channel("pipe").encrypted() ? "yes" : "no",
              sink_ptr->sum(),
              static_cast<unsigned long long>(stats.ecalls));
}

}  // namespace

int main() {
  std::printf("same actors, three deployment configs:\n");
  run("trusted:", kTrustedConfig);
  run("untrusted:", kUntrustedConfig);
  run("stealing:", kStealConfig);
  std::printf("(sum should be %d in all cases)\n", 999 * 1000 / 2);
  return 0;
}
