// Persistent Object Store walk-through (paper §4.1): a file-backed,
// linearisable key-value store accessed without system calls on the data
// path, with deterministic key encryption, AEAD-protected combined pairs,
// a cleaner reclaiming superseded versions under epoch-based reclamation
// (every operation runs in an epoch section; frees wait out the safety
// horizon), and the encryption master key sealed to an enclave identity so
// it survives restarts.
//
// Build & run:  ./build/examples/keyvalue_store
#include <unistd.h>

#include <cstdio>

#include "crypto/rng.hpp"
#include "pos/cleaner_actor.hpp"
#include "pos/encrypted.hpp"
#include "pos/pos.hpp"
#include "sgxsim/enclave.hpp"
#include "util/bytes.hpp"

using namespace ea;

int main() {
  std::string path = "/tmp/eactors_kv_example.img";
  ::unlink(path.c_str());

  sgxsim::Enclave& owner =
      sgxsim::EnclaveManager::instance().create("kv-owner");

  // --- first "boot": create the store, seal the master key into it ---------
  {
    pos::PosOptions options;
    options.path = path;
    options.entry_count = 1024;
    options.entry_payload = 256;
    pos::Pos store(options);

    util::Bytes master(32);
    crypto::secure_random(master);
    pos::EncryptedPos enc(store, master);
    enc.store_sealed_master(owner, "__sealed_master", master);

    enc.set(util::to_bytes("alice"), util::to_bytes("balance=100"));
    enc.set(util::to_bytes("bob"), util::to_bytes("balance=250"));
    enc.set(util::to_bytes("alice"), util::to_bytes("balance=80"));  // update

    pos::PosStats stats = store.stats();
    std::printf("before cleaning: %llu live, %llu outdated entries\n",
                static_cast<unsigned long long>(stats.live),
                static_cast<unsigned long long>(stats.outdated));

    // The Cleaner runs as a housekeeping eactor; here we drive it by hand.
    pos::CleanerActor cleaner("cleaner", store);
    cleaner.body();  // gather outdated versions; first epoch advance
    cleaner.body();  // second advance passes the safety horizon: free
    stats = store.stats();
    std::printf("after cleaning:  %llu live, %llu outdated entries "
                "(%llu freed)\n",
                static_cast<unsigned long long>(stats.live),
                static_cast<unsigned long long>(stats.outdated),
                static_cast<unsigned long long>(cleaner.freed_total()));

    store.persist();  // single msync — the only syscall in the lifecycle
  }

  // --- second "boot": remap the file, recover the key by unsealing ---------
  {
    pos::PosOptions options;
    options.path = path;
    pos::Pos store(options);
    auto enc =
        pos::EncryptedPos::load_sealed_master(store, owner, "__sealed_master");
    if (!enc.has_value()) {
      std::fprintf(stderr, "unsealing failed\n");
      return 1;
    }
    auto alice = enc->get(util::to_bytes("alice"));
    auto bob = enc->get(util::to_bytes("bob"));
    std::printf("after reboot: alice -> %s, bob -> %s\n",
                alice ? util::to_string(*alice).c_str() : "(missing)",
                bob ? util::to_string(*bob).c_str() : "(missing)");

    // A different enclave identity cannot recover the key.
    sgxsim::Enclave& stranger =
        sgxsim::EnclaveManager::instance().create("kv-stranger");
    bool denied =
        !pos::EncryptedPos::load_sealed_master(store, stranger, "__sealed_master")
             .has_value();
    std::printf("foreign enclave denied access to the master key: %s\n",
                denied ? "yes" : "NO (bug!)");
  }

  ::unlink(path.c_str());
  return 0;
}
