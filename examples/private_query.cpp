// Privacy-preserving location-based search by data partitioning — the
// multi-enclave application class the paper's introduction motivates
// (KOI-style, §2.1): the request is split into identity, location and
// query slices, each processed by its own enclave. No single enclave ever
// holds who + where + what; the result travels back encrypted for the
// client, so even the identity enclave cannot read it.
//
// Build & run:  ./build/examples/private_query
#include <cstdio>
#include <thread>

#include "core/runtime.hpp"
#include "partition/actors.hpp"

using namespace ea;

int main() {
  core::Runtime rt;
  partition::QueryService service = partition::install_private_query(rt);
  rt.start();
  std::printf("private query service: frontend (untrusted) + identity / "
              "location / query enclaves\n");

  struct Case {
    const char* user;
    double lat, lon;
    const char* what;
  };
  const Case cases[] = {
      {"alice", 3.5, 2.5, "doctor"},
      {"bob", 7.2, 7.9, "cafe"},
      {"carol", 0.1, 0.9, "fuel"},
  };

  int id = 0;
  for (const Case& c : cases) {
    crypto::AeadKey reply_key;
    partition::Record request = partition::make_query_request(
        "req" + std::to_string(id++), c.user, c.lat, c.lon, c.what,
        reply_key);

    concurrent::Node* node = rt.public_pool().get();
    node->fill(request.serialize());
    service.requests->push(node);

    concurrent::Node* result_node = nullptr;
    while (result_node == nullptr) {
      result_node = service.results->pop();
      if (result_node == nullptr) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    concurrent::NodeLease lease(result_node);
    auto result = partition::Record::parse(result_node->view());
    auto pois = partition::open_query_result(*result, reply_key);
    std::printf("%s searching '%s' near (%.1f,%.1f): %s\n", c.user, c.what,
                c.lat, c.lon,
                pois.has_value() && !pois->empty()
                    ? pois->c_str()
                    : "(no match in this cell)");
  }

  rt.stop();
  std::printf("\nprivacy audit (fields each enclave observed):\n");
  auto print_audit = [](const char* who, const partition::FieldAudit& audit) {
    std::printf("  %-10s:", who);
    for (const std::string& field : audit.seen()) {
      std::printf(" %s", field.c_str());
    }
    std::printf("\n");
  };
  print_audit("identity", service.identity->audit());
  print_audit("location", service.location->audit());
  print_audit("query", service.query->audit());
  std::printf("note: no enclave saw identity+location+query together\n");
  return 0;
}
