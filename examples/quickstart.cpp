// Quickstart: the EActors programming model in one file.
//
// Two eactors, PING and PONG, each deployed into its own (simulated) SGX
// enclave and driven by its own worker. They exchange messages over a
// channel; because the endpoints live in *different* enclaves, the channel
// transparently encrypts every message with a session key established via
// local attestation — the actor code never mentions encryption.
//
// Build & run:  ./build/examples/quickstart
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/runtime.hpp"
#include "sgxsim/transition.hpp"

using namespace ea;

namespace {

// An eactor implements two hooks: construct() (connect channels, set up
// private state) and body() (one non-blocking scheduling quantum).
class Ping : public core::Actor {
 public:
  Ping(std::string name, int rounds)
      : core::Actor(std::move(name)), rounds_(rounds) {}

  void construct(core::Runtime&) override {
    out_ = connect("ping->pong");
    in_ = connect("pong->ping");
  }

  bool body() override {
    if (first_) {
      first_ = false;
      out_->send("ping 0");
      return true;
    }
    if (auto msg = in_->recv()) {
      int received = ++received_;
      if (received < rounds_) {
        out_->send("ping " + std::to_string(received));
      }
      return true;
    }
    return false;
  }

  int received() const { return received_.load(); }

 private:
  core::ChannelEnd* out_ = nullptr;
  core::ChannelEnd* in_ = nullptr;
  bool first_ = true;
  int rounds_;
  std::atomic<int> received_{0};
};

class Pong : public core::Actor {
 public:
  using core::Actor::Actor;

  void construct(core::Runtime&) override {
    in_ = connect("ping->pong");
    out_ = connect("pong->ping");
  }

  bool body() override {
    if (auto msg = in_->recv()) {
      out_->send("pong (" + std::string(msg->view()) + ")");
      return true;
    }
    return false;
  }

 private:
  core::ChannelEnd* in_ = nullptr;
  core::ChannelEnd* out_ = nullptr;
};

}  // namespace

int main() {
  constexpr int kRounds = 10000;
  core::Runtime rt;

  // Deployment is data, not code: the same actors run untrusted if the
  // enclave argument is dropped (see examples/config_deployment.cpp).
  auto ping = std::make_unique<Ping>("ping", kRounds);
  Ping* ping_ptr = ping.get();
  rt.add_actor(std::move(ping), "enclave-ping");
  rt.add_actor(std::make_unique<Pong>("pong"), "enclave-pong");
  rt.add_worker("worker-1", {0}, {"ping"});
  rt.add_worker("worker-2", {1}, {"pong"});

  sgxsim::reset_transition_stats();
  rt.start();
  std::printf("channel encrypted: %s\n",
              rt.channel("ping->pong").encrypted() ? "yes" : "no");

  while (ping_ptr->received() < kRounds) {
    std::this_thread::yield();
  }
  rt.stop();

  auto stats = sgxsim::transition_stats();
  std::printf("exchanged %d round trips\n", ping_ptr->received());
  std::printf("enclave transitions for the whole run: %llu ecalls, %llu "
              "ocalls (the workers entered their enclaves once and never "
              "left — this is the EActors fast path)\n",
              static_cast<unsigned long long>(stats.ecalls),
              static_cast<unsigned long long>(stats.ocalls));
  return 0;
}
