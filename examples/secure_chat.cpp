// Secure instant messaging (paper §5.1): starts the EActors XMPP service
// with two enclaved protocol instances, connects three clients over real
// loopback TCP, and demonstrates
//   * end-to-end-encrypted One-to-One chat (the server routes ciphertext),
//   * group chat, where the room's enclave decrypts the sender's message
//     and re-encrypts it for every member.
//
// Build & run:  ./build/examples/secure_chat
#include <cstdio>

#include "core/runtime.hpp"
#include "xmpp/client.hpp"
#include "xmpp/server.hpp"

using namespace ea;

int main() {
  core::RuntimeOptions options;
  options.pool_nodes = 2048;
  core::Runtime rt(options);

  xmpp::XmppServiceConfig config;
  config.instances = 2;  // two XMPP eactors, each in its own enclave
  xmpp::XmppService service = xmpp::install_xmpp_service(rt, config);
  rt.start();
  std::printf("XMPP service listening on 127.0.0.1:%u with %d enclaved "
              "instances\n",
              service.port, config.instances);

  xmpp::Client alice, bob, carol;
  if (!alice.connect(service.port, "alice") ||
      !bob.connect(service.port, "bob") ||
      !carol.connect(service.port, "carol")) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }
  std::printf("alice, bob and carol connected and authenticated\n");

  // --- One-to-One: end-to-end encrypted; the server never sees plaintext.
  alice.send_chat("bob", "hi bob — only you can read this");
  if (auto msg = bob.recv(5000)) {
    std::printf("[o2o] bob received from %s: \"%s\" (decrypt ok: %s)\n",
                msg->from.c_str(), msg->body.c_str(),
                msg->decrypt_ok ? "yes" : "no");
  }

  // --- Group chat: the room's enclave re-encrypts per member.
  alice.join_room("research");
  bob.join_room("research");
  carol.join_room("research");
  std::printf("all three joined room 'research'\n");

  bob.send_groupchat("research", "meeting at noon");
  for (xmpp::Client* c : {&alice, &bob, &carol}) {
    if (auto msg = c->recv(5000)) {
      std::printf("[o2m] %s received from %s: \"%s\"\n", c->jid().c_str(),
                  msg->from.c_str(), msg->body.c_str());
    }
  }

  rt.stop();
  std::printf("done\n");
  return 0;
}
