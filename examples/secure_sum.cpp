// Secure multi-party computation (paper §5.2): five parties, each confined
// to its own enclave, compute the sum of their secret vectors without any
// party (or the untrusted runtime) learning another party's input. Shows
// both deployments the paper compares:
//   * the EActors ring (one enclaved party eactor per worker, encrypted
//     channels, zero steady-state transitions), and
//   * the SGX-SDK-style ring (one thread entering/leaving one enclave
//     after another — 2 transitions per hop).
//
// Build & run:  ./build/examples/secure_sum
#include <cstdio>
#include <thread>

#include "core/runtime.hpp"
#include "sgxsim/transition.hpp"
#include "smc/party_actor.hpp"
#include "smc/sdk_ring.hpp"

using namespace ea;

int main() {
  smc::SmcConfig config;
  config.parties = 5;
  config.dim = 8;

  // --- SDK-style deployment ------------------------------------------------
  smc::SdkSecureSum sdk(config);
  smc::Vec expected = sdk.expected_sum();
  sgxsim::reset_transition_stats();
  smc::Vec sdk_sum = sdk.run_once();
  auto sdk_stats = sgxsim::transition_stats();
  std::printf("SDK-style ring: 1 invocation cost %llu ecalls\n",
              static_cast<unsigned long long>(sdk_stats.ecalls));

  // --- EActors deployment ----------------------------------------------------
  core::RuntimeOptions options;
  options.pool_nodes = 256;
  options.node_payload_bytes = 1024;
  core::Runtime rt(options);
  smc::SmcDeployment dep = smc::install_secure_sum(rt, config);
  rt.start();

  // Warm-up (workers enter their enclaves), then measure steady state.
  dep.requests->push(rt.public_pool().get());
  smc::Vec ea_sum;
  while (true) {
    if (concurrent::Node* node = dep.results->pop()) {
      concurrent::NodeLease lease(node);
      ea_sum = smc::deserialize(node->data());
      break;
    }
    std::this_thread::yield();
  }
  sgxsim::reset_transition_stats();
  for (int i = 0; i < 100; ++i) {
    dep.requests->push(rt.public_pool().get());
  }
  int received = 0;
  while (received < 100) {
    if (concurrent::Node* node = dep.results->pop()) {
      concurrent::NodeLease lease(node);
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  auto ea_stats = sgxsim::transition_stats();
  rt.stop();

  std::printf("EActors ring:   100 invocations cost %llu ecalls "
              "(workers never leave their enclaves)\n",
              static_cast<unsigned long long>(ea_stats.ecalls));

  bool correct = sdk_sum == expected && ea_sum == expected;
  std::printf("both deployments computed the correct sum: %s\n",
              correct ? "yes" : "NO (bug!)");
  std::printf("first elements: expected=%u sdk=%u eactors=%u\n", expected[0],
              sdk_sum[0], ea_sum[0]);
  return correct ? 0 : 1;
}
