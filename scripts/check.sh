#!/usr/bin/env bash
# Full verification matrix for the EActors runtime:
#
#   1. plain build (+ -Werror) and the entire ctest suite (incl. the
#      enclave-safety lint and its fixture self-test)
#   2. ASan+UBSan build, entire ctest suite
#   3. TSan build, concurrency suite (ctest -L tsan)
#   4. fault build (ASan+UBSan + -DEA_FAILPOINTS=ON), fault-injection and
#      crash-recovery suite (ctest -L fault), plus a check that the plain
#      tree contains no failpoint symbols (zero-overhead-when-off)
#   5. enclave-safety lint, standalone (fast feedback even if cmake fails)
#   6. bench smoke: bench_batching + bench_pos with tiny iterations, JSON
#      schema check (schema v2: git_sha / threads / timestamp headers)
#   7. clang-tidy over src/ (skipped with a notice when unavailable)
#
# Any leg failing fails the script. Usage:
#   scripts/check.sh [--quick]    # --quick: plain leg + lint only
#
# Build trees are kept per-leg (build-check, build-asan, build-tsan) so
# incremental re-runs stay cheap.

set -u
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

JOBS=${JOBS:-$(nproc)}
FAILED=()

note() { printf '\n\033[1;34m== %s ==\033[0m\n' "$*"; }
leg() {
  # leg <name> <cmd...> — runs a matrix leg, records failure, keeps going.
  local name=$1
  shift
  note "$name"
  if "$@"; then
    printf '\033[1;32mPASS\033[0m %s\n' "$name"
  else
    printf '\033[1;31mFAIL\033[0m %s\n' "$name"
    FAILED+=("$name")
  fi
}

build_and_test() {
  # build_and_test <dir> <ctest-extra-args...> -- <cmake-extra-args...>
  local dir=$1
  shift
  local ctest_args=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do
    ctest_args+=("$1")
    shift
  done
  [[ "${1:-}" == "--" ]] && shift
  cmake -B "$dir" -S . "$@" || return 1
  cmake --build "$dir" -j "$JOBS" || return 1
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "${ctest_args[@]}"
}

# --- 1. enclave lint first: cheapest signal --------------------------------
leg "enclave-lint (src/)" python3 tools/enclave_lint.py
leg "enclave-lint (fixture self-test)" python3 tools/enclave_lint.py --self-test

# --- 2. plain build + full suite, warnings as errors -----------------------
leg "plain build + ctest (-Werror)" \
  build_and_test build-check -- -DEA_WERROR=ON -DEA_SANITIZE=

if [[ $QUICK -eq 0 ]]; then
  # --- 3. ASan + UBSan, full suite -----------------------------------------
  leg "ASan+UBSan build + ctest" \
    build_and_test build-asan -- -DEA_WERROR=ON -DEA_SANITIZE=address,undefined

  # --- 4. TSan, concurrency suite ------------------------------------------
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
  leg "TSan build + ctest -L tsan" \
    build_and_test build-tsan -L tsan -- -DEA_WERROR=ON -DEA_SANITIZE=thread

  # --- 5. fault injection: failpoints compiled in, ASan+UBSan, the fault ---
  # suite (failpoint unit tests, channel/net protocol faults, POS cleaner
  # faults, and the fork-based crash-recovery torture).
  leg "fault build + ctest -L fault (ASan+UBSan)" \
    build_and_test build-fault -L fault -- \
    -DEA_WERROR=ON -DEA_SANITIZE=address,undefined -DEA_FAILPOINTS=ON

  # --- 5b. supervision: the containment/restart/reconnect unit suite plus
  # the fault-storm soaks (1% injected body throws + socket resets while the
  # XMPP echo and secure-sum ring must keep delivering). Reuses the fault
  # tree, so the soaks also run under ASan+UBSan.
  leg "supervise suite + soak (ASan+UBSan, failpoints)" \
    build_and_test build-fault -L supervise -- \
    -DEA_WERROR=ON -DEA_SANITIZE=address,undefined -DEA_FAILPOINTS=ON

  # --- 6. zero-overhead-when-off: the plain tree must contain no failpoint
  # machinery at all (uses the build-check tree from leg 2).
  check_no_failpoint_symbols() {
    local objs
    objs=$(find build-check -name 'libea_util.a' -o -name 'pos_test' |
      head -4)
    [[ -n "$objs" ]] || return 1
    # shellcheck disable=SC2086
    if nm -C $objs 2>/dev/null | grep -qi 'failpoint'; then
      echo "failpoint symbols leaked into the EA_FAILPOINTS=OFF build" >&2
      return 1
    fi
    echo "no failpoint symbols in plain build"
  }
  leg "no failpoint symbols in plain build" check_no_failpoint_symbols

  # --- 7. bench smoke: each bench runs end-to-end and its JSON report ------
  # parses with the expected v2 schema (uses the plain tree from leg 2).
  check_bench_json() {
    # check_bench_json <path> <bench-name> <expected-scenarios...>
    python3 - "$@" <<'EOF'
import json
import sys

path, name, *expected = sys.argv[1:]
with open(path) as f:
    doc = json.load(f)
assert doc.get("bench") == name, doc.get("bench")
assert doc.get("schema_version") == 2, doc.get("schema_version")
assert isinstance(doc.get("git_sha"), str) and doc["git_sha"], doc.get("git_sha")
assert isinstance(doc.get("threads"), int) and doc["threads"] >= 1, doc
assert isinstance(doc.get("timestamp"), str) and "T" in doc["timestamp"], doc
results = doc["results"]
assert results, "empty results"
for r in results:
    assert isinstance(r["scenario"], str) and r["scenario"], r
    assert isinstance(r["mode"], str) and r["mode"], r
    assert isinstance(r["x"], (int, float)), r
    assert isinstance(r["value"], (int, float)) and r["value"] >= 0, r
    assert isinstance(r["unit"], str) and r["unit"], r
scenarios = {r["scenario"] for r in results}
assert set(expected) <= scenarios, scenarios
print(f"{path} ok: {len(results)} results")
EOF
  }
  run_bench_smoke() {
    EA_BENCH_SECONDS=0.02 EA_BENCH_SCALE=0.01 \
      EA_BENCH_JSON=build-check/BENCH_batching.json \
      ./build-check/bench/bench_batching >/dev/null || return 1
    check_bench_json build-check/BENCH_batching.json batching \
      mbox channel_enc transition pool || return 1
    EA_BENCH_SECONDS=0.02 EA_BENCH_SCALE=0.01 \
      EA_BENCH_JSON=build-check/BENCH_pos.json \
      ./build-check/bench/bench_pos >/dev/null || return 1
    check_bench_json build-check/BENCH_pos.json pos \
      set get mixed cleaner
  }
  leg "bench smoke (bench_batching + bench_pos + JSON schema)" run_bench_smoke
fi

# --- 8. clang-tidy (optional tooling; never silently skipped) --------------
if command -v clang-tidy >/dev/null 2>&1; then
  run_tidy() {
    # Reuse the plain tree's compile commands.
    cmake -B build-check -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
      find src -name '*.cpp' -print0 |
      xargs -0 -n 8 -P "$JOBS" clang-tidy -p build-check --quiet
  }
  leg "clang-tidy (src/)" run_tidy
else
  note "clang-tidy not installed — leg skipped (install clang-tidy to run it)"
fi

# --- summary ---------------------------------------------------------------
note "matrix summary"
if [[ ${#FAILED[@]} -gt 0 ]]; then
  printf '\033[1;31m%d leg(s) failed:\033[0m\n' "${#FAILED[@]}"
  printf '  - %s\n' "${FAILED[@]}"
  exit 1
fi
echo "all legs passed"
