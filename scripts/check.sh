#!/usr/bin/env bash
# Full verification matrix for the EActors runtime:
#
#   lint        enclave-safety lint over src/ (incl. lock-order-cycle) and
#               the lint's own fixture self-test
#   plain       plain build (+ -Werror) and the entire ctest suite
#   asan        ASan+UBSan build, entire ctest suite
#   tsan        TSan build, concurrency suite (ctest -L tsan)
#   sched       work-stealing scheduler suite (ctest -L sched) on a TSan
#               tree with EA_LOCK_RANK=ON, so affinity/FIFO/steal-stress
#               run with both the race detector and the rank checker live
#   fault       fault build (ASan+UBSan + failpoints + lock-rank checker),
#               fault-injection and crash-recovery suite (ctest -L fault)
#   supervise   containment/restart/reconnect suite + fault-storm soaks on
#               the fault tree
#   lockrank    deadlock-order regression suite (ctest -L lockrank) on the
#               fault tree, where EA_LOCK_RANK=ON makes the checker live
#   migrate     live-migration suite (ctest -L migrate) on the fault tree:
#               sealed handoff, rollback + route quarantine, the
#               duplicate-resume fork guard and the EPC placement sweeps run
#               under ASan+UBSan with failpoints and the rank checker live
#   nofailpoint zero-overhead-when-off symbol check on the plain tree
#   bench       bench smoke: bench_batching + bench_pos + bench_sched,
#               JSON schema check (incl. the zero-copy counter guard)
#   posperf     perf-regression guard: a fresh `bench_pos --smoke` cleaner
#               sweep must hold >= 0.8x of the committed BENCH_pos.json
#               cleaner rows, per-mode geomean (the epoch-reclamation
#               throughput claim); skipped with a notice when no baseline
#               is committed
#   netperf     perf-regression guard: a fresh `bench_c100k --smoke` sweep
#               (scan vs epoll) must hold >= 0.8x throughput and <= 2.0x
#               p99 geomean on the epoll rows of the committed
#               BENCH_net.json (the readiness-core claim); skipped with a
#               notice when no baseline is committed or the RLIMIT_NOFILE
#               hard cap is too low for the client sweep
#   tsa         clang build with -DEA_THREAD_SAFETY=ON: the Clang Thread
#               Safety Analysis over every annotated lock, warnings as
#               errors (skipped with a notice when clang++ is absent)
#   tidy        clang-tidy over src/ (skipped with a notice when absent)
#
# Any leg failing fails the script. Usage:
#   scripts/check.sh              # full matrix
#   scripts/check.sh --quick      # lint + plain only
#   scripts/check.sh --leg NAME   # one leg by the name in the list above
#
# Build trees are kept per-leg (build-check, build-asan, build-tsan,
# build-sched, build-fault, build-clang-tsa) so incremental re-runs stay
# cheap.

set -u
cd "$(dirname "$0")/.."

QUICK=0
LEG_FILTER=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --leg)
      shift
      LEG_FILTER="${1:-}"
      if [[ -z "$LEG_FILTER" ]]; then
        echo "usage: scripts/check.sh [--quick] [--leg NAME]" >&2
        exit 2
      fi
      ;;
    *)
      echo "usage: scripts/check.sh [--quick] [--leg NAME]" >&2
      exit 2
      ;;
  esac
  shift
done

JOBS=${JOBS:-$(nproc)}
FAILED=()
MATCHED=0

note() { printf '\n\033[1;34m== %s ==\033[0m\n' "$*"; }

want() {
  # want <slug> — should this leg run under the current selection?
  local slug=$1
  if [[ -n "$LEG_FILTER" ]]; then
    [[ "$slug" == "$LEG_FILTER" ]] || return 1
    MATCHED=1
    return 0
  fi
  if [[ $QUICK -eq 1 ]]; then
    [[ "$slug" == "lint" || "$slug" == "plain" ]]
    return
  fi
  return 0
}

leg() {
  # leg <slug> <display-name> <cmd...> — runs a matrix leg, records failure,
  # keeps going.
  local slug=$1 name=$2
  shift 2
  want "$slug" || return 0
  note "$name"
  if "$@"; then
    printf '\033[1;32mPASS\033[0m %s\n' "$name"
  else
    printf '\033[1;31mFAIL\033[0m %s\n' "$name"
    FAILED+=("$name")
  fi
}

build_and_test() {
  # build_and_test <dir> <ctest-extra-args...> -- <cmake-extra-args...>
  local dir=$1
  shift
  local ctest_args=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do
    ctest_args+=("$1")
    shift
  done
  [[ "${1:-}" == "--" ]] && shift
  cmake -B "$dir" -S . "$@" || return 1
  cmake --build "$dir" -j "$JOBS" || return 1
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "${ctest_args[@]}"
}

# --- lint first: cheapest signal -------------------------------------------
leg lint "enclave-lint (src/ + fixture self-test)" bash -c "
  python3 tools/enclave_lint.py --jobs $JOBS &&
  python3 tools/enclave_lint.py --self-test"

# --- plain build + full suite, warnings as errors --------------------------
leg plain "plain build + ctest (-Werror)" \
  build_and_test build-check -- -DEA_WERROR=ON -DEA_SANITIZE=

# --- ASan + UBSan, full suite ----------------------------------------------
leg asan "ASan+UBSan build + ctest" \
  build_and_test build-asan -- -DEA_WERROR=ON -DEA_SANITIZE=address,undefined

# --- TSan, concurrency suite -----------------------------------------------
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
leg tsan "TSan build + ctest -L tsan" \
  build_and_test build-tsan -L tsan -- -DEA_WERROR=ON -DEA_SANITIZE=thread

# --- scheduler: the work-stealing suite under TSan *and* the lock-rank -----
# checker (its own tree: the plain tsan tree keeps EA_LOCK_RANK off).
# Covers the affinity invariant, FIFO-per-actor across migration, the
# skewed-home steal stress, and the zero-copy send_node path.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
leg sched "sched suite (ctest -L sched, TSan + lock-rank)" \
  build_and_test build-sched -L sched -- \
  -DEA_WERROR=ON -DEA_SANITIZE=thread -DEA_LOCK_RANK=ON

# --- fault injection: failpoints + lock-rank checker compiled in, ----------
# ASan+UBSan, the fault suite (failpoint unit tests, channel/net protocol
# faults, POS cleaner faults, and the fork-based crash-recovery torture).
# EA_LOCK_RANK=ON here means every ranked acquisition across the whole
# fault matrix is order-checked — a rank-table error surfaces as a
# contained LockRankError, not a hung test.
FAULT_FLAGS=(-DEA_WERROR=ON -DEA_SANITIZE=address,undefined
  -DEA_FAILPOINTS=ON -DEA_LOCK_RANK=ON)

leg fault "fault build + ctest -L fault (ASan+UBSan, lock-rank)" \
  build_and_test build-fault -L fault -- "${FAULT_FLAGS[@]}"

# --- supervision: the containment/restart/reconnect unit suite plus the
# fault-storm soaks (1% injected body throws + socket resets while the XMPP
# echo and secure-sum ring must keep delivering). Reuses the fault tree, so
# the soaks also run under ASan+UBSan with the rank checker live.
leg supervise "supervise suite + soak (ASan+UBSan, failpoints, lock-rank)" \
  build_and_test build-fault -L supervise -- "${FAULT_FLAGS[@]}"

# --- lock-rank deadlock regression: the two-thread inverted-order suite
# needs EA_LOCK_RANK=ON to exercise the checker (in plain builds it skips).
leg lockrank "lock-rank regression (ctest -L lockrank, checker on)" \
  build_and_test build-fault -L lockrank -- "${FAULT_FLAGS[@]}"

# --- live migration: sealed-state handoff, rollback + route quarantine, the
# duplicate-resume fork guard and the EPC placement sweeps, plus the XMPP
# mid-traffic soak. Reuses the fault tree so every rollback path runs under
# ASan+UBSan with injection compiled in and park/rebind ordering
# rank-checked.
leg migrate "migrate suite (ctest -L migrate, ASan+UBSan, failpoints, lock-rank)" \
  build_and_test build-fault -L migrate -- "${FAULT_FLAGS[@]}"

# --- zero-overhead-when-off: the plain tree must contain no failpoint
# machinery at all (uses the build-check tree from the plain leg).
check_no_failpoint_symbols() {
  local objs
  objs=$(find build-check -name 'libea_util.a' -o -name 'pos_test' |
    head -4)
  [[ -n "$objs" ]] || return 1
  # shellcheck disable=SC2086
  if nm -C $objs 2>/dev/null | grep -qi 'failpoint'; then
    echo "failpoint symbols leaked into the EA_FAILPOINTS=OFF build" >&2
    return 1
  fi
  echo "no failpoint symbols in plain build"
}
leg nofailpoint "no failpoint symbols in plain build" \
  check_no_failpoint_symbols

# --- bench smoke: each bench runs end-to-end and its JSON report parses ----
# with the expected v3 schema (uses the plain tree from the plain leg).
# v3 = v2 plus optional per-row p50_us/p99_us/p999_us percentile fields.
check_bench_json() {
  # check_bench_json <path> <bench-name> <expected-scenarios...>
  python3 - "$@" <<'EOF'
import json
import math
import sys

path, name, *expected = sys.argv[1:]
with open(path) as f:
    doc = json.load(f)
assert doc.get("bench") == name, doc.get("bench")
assert doc.get("schema_version") == 3, doc.get("schema_version")
assert isinstance(doc.get("git_sha"), str) and doc["git_sha"], doc.get("git_sha")
assert isinstance(doc.get("threads"), int) and doc["threads"] >= 1, doc
assert isinstance(doc.get("timestamp"), str) and "T" in doc["timestamp"], doc
results = doc["results"]
assert results, "empty results"
for r in results:
    assert isinstance(r["scenario"], str) and r["scenario"], r
    assert isinstance(r["mode"], str) and r["mode"], r
    assert isinstance(r["x"], (int, float)), r
    assert isinstance(r["value"], (int, float)) and r["value"] >= 0, r
    assert isinstance(r["unit"], str) and r["unit"], r
    for pct in ("p50_us", "p99_us", "p999_us"):
        if pct in r:
            assert isinstance(r[pct], (int, float)) and r[pct] >= 0, r
scenarios = {r["scenario"] for r in results}
assert set(expected) <= scenarios, scenarios
print(f"{path} ok: {len(results)} results")
EOF
}
run_bench_smoke() {
  EA_BENCH_SECONDS=0.02 EA_BENCH_SCALE=0.01 \
    EA_BENCH_JSON=build-check/BENCH_batching.json \
    ./build-check/bench/bench_batching >/dev/null || return 1
  check_bench_json build-check/BENCH_batching.json batching \
    mbox channel_enc transition pool || return 1
  EA_BENCH_SECONDS=0.02 EA_BENCH_SCALE=0.01 \
    EA_BENCH_JSON=build-check/BENCH_pos.json \
    ./build-check/bench/bench_pos >/dev/null || return 1
  check_bench_json build-check/BENCH_pos.json pos \
    set get mixed cleaner || return 1
  EA_BENCH_SECONDS=0.02 EA_BENCH_SCALE=0.01 \
    EA_BENCH_JSON=build-check/BENCH_sched.json \
    ./build-check/bench/bench_sched >/dev/null || return 1
  check_bench_json build-check/BENCH_sched.json sched \
    hot_skew zero_copy || return 1
  EA_BENCH_SECONDS=0.02 EA_BENCH_SCALE=0.01 \
    EA_BENCH_JSON=build-check/BENCH_migrate.json \
    ./build-check/bench/bench_migrate >/dev/null || return 1
  check_bench_json build-check/BENCH_migrate.json migrate \
    pause xmpp_echo
}
leg bench "bench smoke (bench_batching + bench_pos + bench_sched + bench_migrate + JSON schema)" \
  run_bench_smoke

# --- POS cleaner perf-regression guard: `--smoke` pins its own 0.25 s ------
# per-point window (EA_BENCH_SECONDS is ignored), so the fresh numbers are
# comparable to the committed BENCH_pos.json regardless of how the smoke
# leg above shrank its windows. Each mode's sweep must hold a 0.8x
# geometric mean against the committed rows — a cleaner-path regression
# fails the matrix even when every test still passes.
run_pos_perf_guard() {
  EA_BENCH_JSON=build-check/BENCH_pos_smoke.json \
    ./build-check/bench/bench_pos --smoke >/dev/null || return 1
  python3 - build-check/BENCH_pos_smoke.json BENCH_pos.json <<'EOF'
import json
import math
import sys

fresh_path, committed_path = sys.argv[1:3]
def cleaner_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        (r["mode"], r["x"]): r["value"]
        for r in doc["results"]
        if r["scenario"] == "cleaner"
    }

fresh = cleaner_rows(fresh_path)
committed = cleaner_rows(committed_path)
assert committed, f"no cleaner rows in {committed_path}"
missing = set(committed) - set(fresh)
assert not missing, f"smoke run missing cleaner rows: {sorted(missing)}"

# Single rows jitter +-30% on a loaded single-core host, but a real
# cleaner-path regression shifts a mode's whole thread sweep, so the gate
# is the per-mode geometric mean of fresh/committed ratios.
modes = sorted({mode for mode, _ in committed})
bad = []
for mode in modes:
    keys = [k for k in committed if k[0] == mode]
    log_sum = sum(math.log(fresh[k] / committed[k]) for k in keys)
    geomean = math.exp(log_sum / len(keys))
    line = f"  cleaner/{mode}: geomean {geomean:.2f}x over {len(keys)} rows"
    print(line)
    if geomean < 0.8:
        bad.append(line)
if bad:
    print("POS cleaner throughput regressed vs committed BENCH_pos.json:")
    print("\n".join(bad))
    sys.exit(1)
print(f"pos perf guard ok: {len(modes)} modes within 0.8x geomean")
EOF
}
if [[ -f BENCH_pos.json ]]; then
  leg posperf "POS cleaner perf guard (--smoke vs committed BENCH_pos.json)" \
    run_pos_perf_guard
else
  if want posperf; then
    note "SKIP posperf — no committed BENCH_pos.json baseline (run build-check/bench/bench_pos and commit the report to arm the guard)"
  fi
fi

# --- net readiness perf-regression guard: bench_c100k --smoke pins its own -
# 0.25 s window and sweeps {512, 2048} simulated clients in both net planes
# (scan and epoll), raising RLIMIT_NOFILE itself. The fresh epoll rows must
# hold a 0.8x throughput geomean AND stay under a 2.0x p99 latency geomean
# against the committed BENCH_net.json — a readiness-core regression fails
# the matrix even when every test still passes. Bounds are loose because CI
# runs single-core; the committed sweep-top gap (epoll ~100x scan) gives
# plenty of margin.
run_net_perf_guard() {
  EA_BENCH_JSON=build-check/BENCH_net_smoke.json \
    ./build-check/bench/bench_c100k --smoke >/dev/null || return 1
  check_bench_json build-check/BENCH_net_smoke.json c100k c100k || return 1
  python3 - build-check/BENCH_net_smoke.json BENCH_net.json <<'EOF'
import json
import math
import sys

fresh_path, committed_path = sys.argv[1:3]
def rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        (r["mode"], r["x"]): r
        for r in doc["results"]
        if r["scenario"] == "c100k"
    }

fresh = rows(fresh_path)
committed = rows(committed_path)
assert committed, f"no c100k rows in {committed_path}"
# The smoke sweep is a prefix of the committed full sweep; gate only on the
# epoll rows present in both (scan is the ablation baseline, not the
# product path).
keys = sorted(k for k in fresh if k in committed and k[0] == "epoll")
assert keys, f"no shared epoll rows between {fresh_path} and {committed_path}"

def geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

tput = geomean([fresh[k]["value"] / committed[k]["value"] for k in keys])
print(f"  c100k/epoll throughput: geomean {tput:.2f}x over {len(keys)} rows")
bad = []
if tput < 0.8:
    bad.append(f"epoll throughput geomean {tput:.2f}x < 0.8x")
p99_keys = [k for k in keys
            if "p99_us" in fresh[k] and "p99_us" in committed[k]]
if p99_keys:
    p99 = geomean([fresh[k]["p99_us"] / committed[k]["p99_us"]
                   for k in p99_keys])
    print(f"  c100k/epoll p99 latency: geomean {p99:.2f}x over "
          f"{len(p99_keys)} rows")
    if p99 > 2.0:
        bad.append(f"epoll p99 geomean {p99:.2f}x > 2.0x")
if bad:
    print("net readiness core regressed vs committed BENCH_net.json:")
    for line in bad:
        print("  " + line)
    sys.exit(1)
print(f"net perf guard ok: {len(keys)} epoll rows within bounds")
EOF
}
# bench_c100k raises its soft RLIMIT_NOFILE itself, but cannot exceed the
# hard cap; the 2048-client smoke point needs ~2 fds per simulated client
# plus headroom.
NOFILE_HARD=$(ulimit -Hn 2>/dev/null || echo 0)
if [[ ! -f BENCH_net.json ]]; then
  if want netperf; then
    note "SKIP netperf — no committed BENCH_net.json baseline (run build-check/bench/bench_c100k and commit the report to arm the guard)"
  fi
elif [[ "$NOFILE_HARD" != "unlimited" && "$NOFILE_HARD" -lt 8192 ]]; then
  if want netperf; then
    note "SKIP netperf — RLIMIT_NOFILE hard cap is $NOFILE_HARD (< 8192), too low for the c100k client sweep"
  fi
else
  leg netperf "net readiness perf guard (bench_c100k --smoke vs BENCH_net.json)" \
    run_net_perf_guard
fi

# --- clang thread-safety analysis: the whole annotation sweep is only ------
# *checked* by clang; this leg compiles the tree with -Werror=thread-safety
# so any unguarded access to an EA_GUARDED_BY member, missing EA_REQUIRES,
# or unbalanced acquire/release fails the build. ctest is not run here —
# the leg's product is the warning-clean compile.
run_clang_tsa() {
  cmake -B build-clang-tsa -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DEA_WERROR=ON -DEA_SANITIZE= -DEA_THREAD_SAFETY=ON || return 1
  cmake --build build-clang-tsa -j "$JOBS"
}
if command -v clang++ >/dev/null 2>&1; then
  leg tsa "clang -Werror=thread-safety build (EA_THREAD_SAFETY=ON)" \
    run_clang_tsa
else
  if want tsa; then
    note "clang++ not installed — thread-safety leg skipped (install clang to run the TSA sweep)"
  fi
fi

# --- clang-tidy (optional tooling; never silently skipped) -----------------
run_tidy() {
  # Reuse the plain tree's compile commands.
  cmake -B build-check -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
    find src -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "$JOBS" clang-tidy -p build-check --quiet
}
if command -v clang-tidy >/dev/null 2>&1; then
  leg tidy "clang-tidy (src/)" run_tidy
else
  if want tidy; then
    note "clang-tidy not installed — leg skipped (install clang-tidy to run it)"
  fi
fi

# --- summary ---------------------------------------------------------------
if [[ -n "$LEG_FILTER" && $MATCHED -eq 0 ]]; then
  echo "error: no leg named '$LEG_FILTER'" >&2
  echo "legs: lint plain asan tsan sched fault supervise lockrank migrate nofailpoint bench posperf netperf tsa tidy" >&2
  exit 2
fi
note "matrix summary"
if [[ ${#FAILED[@]} -gt 0 ]]; then
  printf '\033[1;31m%d leg(s) failed:\033[0m\n' "${#FAILED[@]}"
  printf '  - %s\n' "${FAILED[@]}"
  exit 1
fi
echo "all legs passed"
