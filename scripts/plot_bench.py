#!/usr/bin/env python3
"""Render the benchmark CSV output as ASCII charts, one per figure.

Usage:
    for b in build/bench/bench_*; do $b; done > bench_output.txt
    python3 scripts/plot_bench.py bench_output.txt [figure ...]

Rows look like:  figure,series,x,y,unit
Lines starting with '#' (the harness's claim notes) and anything that is
not a CSV row are ignored, so the raw tee'd output works as input.
"""
import sys
from collections import defaultdict


def load(path):
    figures = defaultdict(lambda: defaultdict(list))  # fig -> series -> [(x, y)]
    units = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 5 or parts[0] == "figure":
                continue
            fig, series, x, y, unit = parts
            try:
                figures[fig][series].append((float(x), float(y)))
            except ValueError:
                continue
            units[fig] = unit
    return figures, units


def fmt_x(x):
    if x >= 1024 and x == int(x) and int(x) % 1024 == 0:
        return f"{int(x) // 1024}Ki"
    if x == int(x):
        return str(int(x))
    return f"{x:g}"


def plot(fig, series_map, unit, width=50):
    print(f"\n=== {fig}  [{unit}] ===")
    peak = max(y for pts in series_map.values() for _, y in pts)
    if peak <= 0:
        peak = 1.0
    for series in sorted(series_map):
        print(f"  {series}")
        for x, y in sorted(series_map[series]):
            bar = "#" * max(1, int(width * y / peak))
            print(f"    {fmt_x(x):>8} | {bar} {y:g}")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    figures, units = load(sys.argv[1])
    wanted = sys.argv[2:]
    for fig in sorted(figures):
        if wanted and fig not in wanted:
            continue
        plot(fig, figures[fig], units.get(fig, ""))


if __name__ == "__main__":
    main()
