#include "concurrent/arena.hpp"

#include <new>

namespace ea::concurrent {
namespace {

constexpr std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

NodeArena::NodeArena(std::size_t count, std::size_t payload_capacity)
    : count_(count),
      payload_capacity_(payload_capacity),
      stride_(sizeof(Node) + round_up(payload_capacity, alignof(Node))),
      bytes_(stride_ * count + alignof(Node)) {
  storage_ = std::make_unique<std::byte[]>(bytes_);
  // Align the first node to the Node alignment.
  auto addr = reinterpret_cast<std::uintptr_t>(storage_.get());
  base_ = storage_.get() + (round_up(addr, alignof(Node)) - addr);
  for (std::size_t i = 0; i < count_; ++i) {
    auto* n = new (base_ + i * stride_) Node();
    n->capacity = static_cast<std::uint32_t>(payload_capacity_);
  }
}

Node* NodeArena::node(std::size_t i) noexcept {
  return std::launder(reinterpret_cast<Node*>(base_ + i * stride_));
}

}  // namespace ea::concurrent
