// NodeArena: a preallocated slab of fixed-capacity nodes.
//
// The framework "preallocates private and public pools at system start"
// (§3.3); arenas are that preallocation. An arena owns its memory; pools and
// mboxes only link nodes, they never allocate.
#pragma once

#include <cstddef>
#include <memory>

#include "concurrent/node.hpp"

namespace ea::concurrent {

class NodeArena {
 public:
  // Creates `count` nodes each with `payload_capacity` bytes of payload.
  NodeArena(std::size_t count, std::size_t payload_capacity);

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  std::size_t count() const noexcept { return count_; }
  std::size_t payload_capacity() const noexcept { return payload_capacity_; }

  // Total bytes the arena occupies (used by EPC accounting).
  std::size_t footprint_bytes() const noexcept { return bytes_; }

  // Returns node `i` (0-based). Nodes remain owned by the arena.
  Node* node(std::size_t i) noexcept;

 private:
  std::size_t count_;
  std::size_t payload_capacity_;
  std::size_t stride_;
  std::size_t bytes_;
  std::unique_ptr<std::byte[]> storage_;
  std::byte* base_ = nullptr;
};

}  // namespace ea::concurrent
