// Epoch-based reclamation domain (Fraser-style, three epochs).
//
// An EpochDomain coordinates read-side critical sections against deferred
// reclamation without per-operation locks: a thread entering a protected
// section *announces* the global epoch in a private, cache-line-padded slot;
// the reclaimer advances the global epoch only when every announced slot is
// either quiescent (0) or already at the current epoch; anything retired at
// epoch r is safe to free once the global epoch reaches r + 2 (the classic
// three-epoch argument: a section announced at r blocks the advance from
// r+1 to r+2, and a section entered at r+2 provably cannot reach objects
// unlinked at r — the unlink is sequenced before the advance store that its
// announce load reads from).
//
// Slot management mirrors concurrent/magazine.hpp: a static thread_local
// record table (one per template instantiation) maps (thread, domain) pairs
// to claimed slots, a registry list lets the domain disown records in its
// destructor, and a thread that exits releases its slot for reuse — so the
// slot array bounds *concurrent* section holders, not the total number of
// threads ever seen (the old POS grace counters leaked a slot per reader
// forever). Claim and release serialise on registry_lock_; the announce /
// leave fast path and the reclaimer's quiescence scan are lock-free.
//
// The global epoch itself lives wherever the owner wants it — attach()
// takes a pointer — so a persistent store can keep it inside its mapped
// superblock and have epoch monotonicity survive a flush + reopen.
//
// Lifetime contract (inherited from MagazineSet): the domain owner must
// outlive any concurrent use; the destructor's disown only races threads
// that would be touching a destroyed owner anyway.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "concurrent/hle_lock.hpp"

namespace ea::concurrent {

// MaxSlots bounds concurrent section holders per domain; MaxDomains bounds
// how many distinct domains a single thread may hold sections in.
template <std::size_t MaxSlots, std::size_t MaxDomains>
class EpochDomain {
 public:
  // One announcement cell. Padded so a thread's seq_cst announce store
  // never bounces another thread's line. `announced` is 0 when the slot is
  // quiescent (epochs start at 1), otherwise the epoch the holder pinned.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> announced{0};
    std::atomic<bool> claimed{false};
  };

  EpochDomain() = default;
  ~EpochDomain() { disown_all(); }
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // Points the domain at its global-epoch word (e.g. a superblock field).
  // Must be called before the first enter(); *global must be >= 1.
  void attach(std::atomic<std::uint64_t>* global) noexcept { global_ = global; }

  std::uint64_t global() const noexcept {
    return global_->load(std::memory_order_seq_cst);
  }

  // Enters a read-side section: claims a slot on first use (throwing when
  // MaxSlots threads already hold sections concurrently) and announces the
  // current global epoch. Re-entrant — nested enters pin the outermost
  // announcement, which is conservative (never unsafe). Returns the epoch
  // pinned by this section.
  std::uint64_t enter() {
    Record& rec = record_for_this_thread();
    if (rec.depth++ != 0) {
      return rec.slot->announced.load(std::memory_order_relaxed);
    }
    // Announce-and-recheck: after the seq_cst announce store, reload the
    // global; if an advance slipped between load and store our announcement
    // is stale (the scan may already have passed us), so re-announce. Once
    // the reload matches, seq_cst total order guarantees any later advance
    // scan observes our announcement.
    std::uint64_t g = global_->load(std::memory_order_seq_cst);
    for (;;) {
      rec.slot->announced.store(g, std::memory_order_seq_cst);
      const std::uint64_t now = global_->load(std::memory_order_seq_cst);
      if (now == g) return g;
      g = now;
    }
  }

  // Leaves the section; the outermost leave makes the slot quiescent. An
  // unbalanced leave (no record, or depth already 0) is ignored rather than
  // claiming a slot for a thread that never entered.
  void leave() noexcept {
    for (Record& rec : thread_records().recs) {
      if (rec.owner.load(std::memory_order_relaxed) == this) {
        if (rec.depth != 0 && --rec.depth == 0) {
          rec.slot->announced.store(0, std::memory_order_seq_cst);
        }
        return;
      }
    }
  }

  // True while the calling thread is inside a section of this domain.
  bool in_section() const noexcept {
    const Record* rec = find_record(this);
    return rec != nullptr && rec->depth != 0;
  }

  // True when every claimed slot is quiescent or announced exactly `g` —
  // i.e. advancing the global from g to g+1 cannot strand a section more
  // than one epoch behind. Lock-free: claim-in-progress threads are covered
  // by the announce-and-recheck loop in enter().
  bool quiescent_at(std::uint64_t g) const noexcept {
    for (const Slot& slot : slots_) {
      const std::uint64_t a = slot.announced.load(std::memory_order_seq_cst);
      if (a != 0 && a != g) return false;
    }
    return true;
  }

  // Bumps the global epoch by one. The caller decides when (normally only
  // after quiescent_at(global()) holds; tests force it to prove the
  // detector catches protocol violations).
  void advance() noexcept {
    global_->fetch_add(1, std::memory_order_seq_cst);
  }

  // Observability for tests and stats: currently announced (in-section)
  // slots, and claimed slots (a claimed-but-quiescent slot belongs to a
  // live thread between sections).
  std::size_t active_slots() const noexcept {
    std::size_t n = 0;
    for (const Slot& slot : slots_) {
      if (slot.announced.load(std::memory_order_seq_cst) != 0) ++n;
    }
    return n;
  }
  std::size_t claimed_slots() const noexcept {
    std::size_t n = 0;
    for (const Slot& slot : slots_) {
      if (slot.claimed.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

 private:
  // Per-(thread, domain) bookkeeping, owned by the thread's TLS table and
  // linked into the domain's registry so the domain destructor can disown
  // it. `owner` is atomic for the same reason as Magazine::owner: the slot
  // scan and the disown must not constitute data races.
  struct Record {
    std::atomic<EpochDomain*> owner{nullptr};
    Record* next_registered = nullptr;  // registry list, registry_lock_
    Slot* slot = nullptr;
    std::uint32_t depth = 0;  // owner thread only
  };

  struct ThreadRecords {
    Record recs[MaxDomains];

    ~ThreadRecords() {
      // Thread exit: release every claimed slot back to its domain so the
      // slot array bounds concurrent holders, not historical threads.
      for (Record& rec : recs) {
        EpochDomain* domain = rec.owner.load(std::memory_order_relaxed);
        if (domain != nullptr) domain->thread_exit(rec);
      }
    }
  };

  static ThreadRecords& thread_records() noexcept {
    static thread_local ThreadRecords records;
    return records;
  }

  static const Record* find_record(const EpochDomain* domain) noexcept {
    for (const Record& rec : thread_records().recs) {
      if (rec.owner.load(std::memory_order_relaxed) == domain) return &rec;
    }
    return nullptr;
  }

  Record& record_for_this_thread() {
    ThreadRecords& table = thread_records();
    Record* free_rec = nullptr;
    for (Record& rec : table.recs) {
      EpochDomain* owner = rec.owner.load(std::memory_order_relaxed);
      if (owner == this) return rec;
      if (owner == nullptr && free_rec == nullptr) free_rec = &rec;
    }
    if (free_rec == nullptr) {
      throw std::runtime_error("epoch: thread holds sections in too many domains");
    }
    claim_slot(*free_rec);
    return *free_rec;
  }

  void claim_slot(Record& rec) EA_EXCLUDES(registry_lock_) {
    HleGuard guard(registry_lock_);
    for (Slot& slot : slots_) {
      if (!slot.claimed.load(std::memory_order_relaxed)) {
        slot.claimed.store(true, std::memory_order_release);
        rec.slot = &slot;
        rec.depth = 0;
        rec.next_registered = records_;
        records_ = &rec;
        rec.owner.store(this, std::memory_order_relaxed);
        return;
      }
    }
    throw std::runtime_error("epoch: too many concurrent section holders");
  }

  void thread_exit(Record& rec) noexcept EA_EXCLUDES(registry_lock_) {
    HleGuard guard(registry_lock_);
    rec.slot->announced.store(0, std::memory_order_seq_cst);
    rec.slot->claimed.store(false, std::memory_order_release);
    Record** link = &records_;
    while (*link != nullptr) {
      if (*link == &rec) {
        *link = rec.next_registered;
        break;
      }
      link = &(*link)->next_registered;
    }
    rec.next_registered = nullptr;
    rec.slot = nullptr;
    rec.depth = 0;
    rec.owner.store(nullptr, std::memory_order_relaxed);
  }

  // Domain teardown: orphan every registered record so a later thread exit
  // (or stray leave()) touches only its own TLS, never this freed domain.
  void disown_all() EA_EXCLUDES(registry_lock_) {
    HleGuard guard(registry_lock_);
    for (Record* rec = records_; rec != nullptr;) {
      Record* next = rec->next_registered;
      rec->next_registered = nullptr;
      rec->slot = nullptr;
      rec->depth = 0;
      rec->owner.store(nullptr, std::memory_order_relaxed);
      rec = next;
    }
    records_ = nullptr;
  }

  std::atomic<std::uint64_t>* global_ = nullptr;
  Slot slots_[MaxSlots];
  mutable HleSpinLock registry_lock_{LockRank::kEpochRegistry};
  Record* records_ EA_GUARDED_BY(registry_lock_) = nullptr;
};

}  // namespace ea::concurrent
