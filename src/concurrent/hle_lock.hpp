// Spinlock with Hardware Lock Elision prefixes.
//
// The paper's mboxes and pools are "bi-directional double linked lists
// implemented on top of Hardware Lock Elision" (§3.3). HLE is encoded with
// the XACQUIRE/XRELEASE instruction prefixes, which are *ignored* on CPUs
// without TSX — the lock degrades to a plain TTAS spinlock, keeping exactly
// the paper's semantics. Crucially the lock never issues a system call, so
// it is safe to take inside an enclave (no enclave exit — this is the whole
// point versus sgx_mutex, cf. Fig. 1).
// Under ThreadSanitizer the HLE intrinsic path is replaced by a std::atomic
// TTAS loop (same semantics, no elision) with explicit happens-before
// annotations — see concurrent/tsan.hpp for why TSan cannot model the HLE
// flag bits.
//
// Concurrency-correctness hooks (DESIGN.md §13):
//   * the class is a Clang Thread Safety capability — members protected by
//     a lock carry EA_GUARDED_BY(lock_) and the analysis proves every
//     access happens under an HleGuard (-DEA_THREAD_SAFETY=ON);
//   * each lock carries a LockRank; -DEA_LOCK_RANK=ON builds verify at
//     runtime that every thread acquires ranks in strictly ascending order
//     (lock_rank.hpp), throwing LockRankError — contained by the worker
//     and handled by the supervisor like any other actor failure — on the
//     first out-of-order acquisition.
#pragma once

#include <atomic>
#include <cstdint>

#include "concurrent/lock_rank.hpp"
#include "concurrent/thread_safety.hpp"
#include "concurrent/tsan.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace ea::concurrent {

#if defined(__x86_64__) && !defined(EA_TSAN)
#define EA_HLE_LOCK_PATH 1
#endif

// lock() is noexcept in production; under EA_LOCK_RANK the rank checker's
// violation handler may throw (the default handler raises LockRankError so
// the supervisor can restart the offending actor), so the specification is
// relaxed only in checked builds.
#if defined(EA_LOCK_RANK)
#define EA_LOCK_NOEXCEPT
#else
#define EA_LOCK_NOEXCEPT noexcept
#endif

// Cache-line-aligned so a lock embedded in Mbox/Pool never shares a line
// with the data it protects: the flag ping-pongs between producer and
// consumer cores, and co-locating it with head/tail pointers would drag
// them along on every acquisition (false sharing).
class alignas(64) EA_CAPABILITY("spinlock") HleSpinLock {
 public:
  HleSpinLock() = default;
  explicit HleSpinLock(LockRank rank) noexcept { set_rank(rank); }
  HleSpinLock(const HleSpinLock&) = delete;
  HleSpinLock& operator=(const HleSpinLock&) = delete;

  // Assigns the lock's place in the global acquisition order. For locks
  // constructed in arrays (POS bucket/free shards) the constructor cannot
  // take arguments, so ranking happens post-construction — always before
  // the lock is visible to a second thread.
  void set_rank(LockRank rank) noexcept {
#if defined(EA_LOCK_RANK)
    rank_ = rank;
#else
    (void)rank;
#endif
  }

  void lock() EA_LOCK_NOEXCEPT EA_ACQUIRE() {
#if defined(EA_LOCK_RANK)
    // Checked before the first exchange: a violation throws out of here
    // with the lock untouched and the thread's held-rank stack intact.
    lock_rank::note_acquire(rank_);
#endif
#if defined(EA_HLE_LOCK_PATH)
    while (__atomic_exchange_n(&flag_, 1,
                               __ATOMIC_ACQUIRE | __ATOMIC_HLE_ACQUIRE) != 0) {
      while (__atomic_load_n(&flag_, __ATOMIC_RELAXED) != 0) {
        _mm_pause();
      }
    }
#else
    while (flag_atomic().exchange(1, std::memory_order_acquire) != 0) {
      while (flag_atomic().load(std::memory_order_relaxed) != 0) {
        cpu_relax();
      }
    }
    EA_TSAN_ACQUIRE(this);
#endif
  }

  void unlock() noexcept EA_RELEASE() {
#if defined(EA_HLE_LOCK_PATH)
    __atomic_store_n(&flag_, 0, __ATOMIC_RELEASE | __ATOMIC_HLE_RELEASE);
#else
    EA_TSAN_RELEASE(this);
    flag_atomic().store(0, std::memory_order_release);
#endif
#if defined(EA_LOCK_RANK)
    lock_rank::note_release(rank_);
#endif
  }

 private:
#if defined(EA_HLE_LOCK_PATH)
  // Plain int manipulated through __atomic builtins so the HLE prefixes can
  // be attached; alignas keeps it on its own cache line.
  alignas(64) int flag_ = 0;
#else
  static void cpu_relax() noexcept {
#if defined(__x86_64__)
    _mm_pause();
#endif
  }

  alignas(64) std::atomic<int> flag_{0};
  std::atomic<int>& flag_atomic() noexcept { return flag_; }
#endif
#if defined(EA_LOCK_RANK)
  LockRank rank_ = LockRank::kUnranked;
#endif
};

// RAII guard. A scoped capability: constructing one acquires the lock for
// the enclosing scope in the eyes of the thread-safety analysis.
class EA_SCOPED_CAPABILITY HleGuard {
 public:
  explicit HleGuard(HleSpinLock& lock) EA_LOCK_NOEXCEPT EA_ACQUIRE(lock)
      : lock_(lock) {
    lock_.lock();
  }
  ~HleGuard() EA_RELEASE() { lock_.unlock(); }
  HleGuard(const HleGuard&) = delete;
  HleGuard& operator=(const HleGuard&) = delete;

 private:
  HleSpinLock& lock_;
};

}  // namespace ea::concurrent
