// Spinlock with Hardware Lock Elision prefixes.
//
// The paper's mboxes and pools are "bi-directional double linked lists
// implemented on top of Hardware Lock Elision" (§3.3). HLE is encoded with
// the XACQUIRE/XRELEASE instruction prefixes, which are *ignored* on CPUs
// without TSX — the lock degrades to a plain TTAS spinlock, keeping exactly
// the paper's semantics. Crucially the lock never issues a system call, so
// it is safe to take inside an enclave (no enclave exit — this is the whole
// point versus sgx_mutex, cf. Fig. 1).
// Under ThreadSanitizer the HLE intrinsic path is replaced by a std::atomic
// TTAS loop (same semantics, no elision) with explicit happens-before
// annotations — see concurrent/tsan.hpp for why TSan cannot model the HLE
// flag bits.
#pragma once

#include <atomic>
#include <cstdint>

#include "concurrent/tsan.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace ea::concurrent {

#if defined(__x86_64__) && !defined(EA_TSAN)
#define EA_HLE_LOCK_PATH 1
#endif

// Cache-line-aligned so a lock embedded in Mbox/Pool never shares a line
// with the data it protects: the flag ping-pongs between producer and
// consumer cores, and co-locating it with head/tail pointers would drag
// them along on every acquisition (false sharing).
class alignas(64) HleSpinLock {
 public:
  HleSpinLock() = default;
  HleSpinLock(const HleSpinLock&) = delete;
  HleSpinLock& operator=(const HleSpinLock&) = delete;

  void lock() noexcept {
#if defined(EA_HLE_LOCK_PATH)
    while (__atomic_exchange_n(&flag_, 1,
                               __ATOMIC_ACQUIRE | __ATOMIC_HLE_ACQUIRE) != 0) {
      while (__atomic_load_n(&flag_, __ATOMIC_RELAXED) != 0) {
        _mm_pause();
      }
    }
#else
    while (flag_atomic().exchange(1, std::memory_order_acquire) != 0) {
      while (flag_atomic().load(std::memory_order_relaxed) != 0) {
        cpu_relax();
      }
    }
    EA_TSAN_ACQUIRE(this);
#endif
  }

  void unlock() noexcept {
#if defined(EA_HLE_LOCK_PATH)
    __atomic_store_n(&flag_, 0, __ATOMIC_RELEASE | __ATOMIC_HLE_RELEASE);
#else
    EA_TSAN_RELEASE(this);
    flag_atomic().store(0, std::memory_order_release);
#endif
  }

 private:
#if defined(EA_HLE_LOCK_PATH)
  // Plain int manipulated through __atomic builtins so the HLE prefixes can
  // be attached; alignas keeps it on its own cache line.
  alignas(64) int flag_ = 0;
#else
  static void cpu_relax() noexcept {
#if defined(__x86_64__)
    _mm_pause();
#endif
  }

  alignas(64) std::atomic<int> flag_{0};
  std::atomic<int>& flag_atomic() noexcept { return flag_; }
#endif
};

// RAII guard.
class HleGuard {
 public:
  explicit HleGuard(HleSpinLock& lock) noexcept : lock_(lock) { lock_.lock(); }
  ~HleGuard() { lock_.unlock(); }
  HleGuard(const HleGuard&) = delete;
  HleGuard& operator=(const HleGuard&) = delete;

 private:
  HleSpinLock& lock_;
};

}  // namespace ea::concurrent
