#include "concurrent/lock_rank.hpp"

namespace ea::concurrent {

const char* lock_rank_name(LockRank rank) noexcept {
  switch (rank) {
    case LockRank::kUnranked:
      return "kUnranked";
    case LockRank::kMigration:
      return "kMigration";
    case LockRank::kXmppDirectory:
      return "kXmppDirectory";
    case LockRank::kXmppRooms:
      return "kXmppRooms";
    case LockRank::kXmppRoster:
      return "kXmppRoster";
    case LockRank::kXmppOffline:
      return "kXmppOffline";
    case LockRank::kActorFailure:
      return "kActorFailure";
    case LockRank::kSocketTable:
      return "kSocketTable";
    case LockRank::kRunQueue:
      return "kRunQueue";
    case LockRank::kMbox:
      return "kMbox";
    case LockRank::kPoolShared:
      return "kPoolShared";
    case LockRank::kMagazineRegistry:
      return "kMagazineRegistry";
    case LockRank::kPosRetire:
      return "kPosRetire";
    case LockRank::kEpochRegistry:
      return "kEpochRegistry";
    case LockRank::kPosBucket:
      return "kPosBucket";
    case LockRank::kPosFree:
      return "kPosFree";
    case LockRank::kEnclaveManager:
      return "kEnclaveManager";
    case LockRank::kMonotonicCounter:
      return "kMonotonicCounter";
    case LockRank::kSgxMutex:
      return "kSgxMutex";
  }
  return "kUnknown";
}

}  // namespace ea::concurrent

#if defined(EA_LOCK_RANK)

#include <atomic>
#include <cstdio>

namespace ea::concurrent::lock_rank {

namespace {

// Deepest real nesting today is three (retire→bucket→free); sixteen leaves
// generous headroom before the checker silently stops tracking a thread.
constexpr int kMaxHeld = 16;

// Trivially constructible/destructible on purpose: thread_local caches
// elsewhere (MagazineSet::ThreadCache) run lock-taking code during TLS
// teardown, and this stack must still be usable then.
struct HeldStack {
  LockRank ranks[kMaxHeld];
  int depth;
};

thread_local HeldStack tls_held{{}, 0};

std::atomic<std::uint64_t> g_violations{0};
std::atomic<Handler> g_handler{nullptr};

void default_handler(const LockRankViolation& v) {
  char what[192];
  std::snprintf(what, sizeof(what),
                "lock-rank violation: acquiring %s(%u) while holding %s(%u); "
                "ranks must be strictly ascending (concurrent/lock_rank.hpp)",
                lock_rank_name(v.acquiring),
                static_cast<unsigned>(v.acquiring), lock_rank_name(v.held),
                static_cast<unsigned>(v.held));
  throw LockRankError(what);
}

}  // namespace

Handler set_violation_handler(Handler handler) noexcept {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

std::uint64_t violations() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

int held_count() noexcept { return tls_held.depth; }

void note_acquire(LockRank rank) {
  if (rank == LockRank::kUnranked) {
    return;
  }
  HeldStack& held = tls_held;
  if (held.depth > 0) {
    const LockRank top = held.ranks[held.depth - 1];
    if (static_cast<std::uint8_t>(top) >= static_cast<std::uint8_t>(rank)) {
      g_violations.fetch_add(1, std::memory_order_relaxed);
      Handler handler = g_handler.load(std::memory_order_acquire);
      if (handler == nullptr) {
        handler = default_handler;
      }
      // The default handler throws here, before the caller spins on the
      // lock, so the offending acquisition never happens and no lock is
      // left held. A returning handler lets the acquisition proceed (the
      // rank is still pushed so the matching release stays balanced).
      handler(LockRankViolation{top, rank});
    }
  }
  if (held.depth < kMaxHeld) {
    held.ranks[held.depth++] = rank;
  }
}

void note_release(LockRank rank) noexcept {
  if (rank == LockRank::kUnranked) {
    return;
  }
  HeldStack& held = tls_held;
  // Guards release LIFO, so the top entry matches in practice; scanning
  // downward tolerates hand-rolled non-LIFO unlock sequences in tests.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.ranks[i] == rank) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.ranks[j] = held.ranks[j + 1];
      }
      --held.depth;
      return;
    }
  }
}

}  // namespace ea::concurrent::lock_rank

#endif  // EA_LOCK_RANK
