// Lock-rank (lock hierarchy) deadlock detection.
//
// Every ranked lock in the runtime belongs to the global LockRank table
// below, ordered by acquisition: a thread may only acquire a lock whose
// rank is STRICTLY GREATER than every rank it already holds. Any two
// threads that each respect that rule can never deadlock on ranked locks,
// because a cycle in the waits-for graph would need at least one
// non-ascending acquisition.
//
// Two enforcement layers share this table:
//   * a debug-build runtime checker (-DEA_LOCK_RANK=ON): HleSpinLock calls
//     note_acquire()/note_release() around every acquisition, keeping a
//     per-thread stack of held ranks. An out-of-order acquisition invokes
//     the violation handler BEFORE the lock spins, so the default handler
//     can throw LockRankError without leaving the lock held — inside an
//     actor body the worker contains the exception and the supervisor
//     restarts the actor (DESIGN.md §12), i.e. the violation aborts the
//     actor, not the process;
//   * a static pass in tools/enclave_lint.py (rule `lock-order-cycle`)
//     that extracts guard-nesting pairs across the whole tree and fails on
//     any cycle in the resulting lock graph, catching orderings no test
//     happens to execute.
//
// Ranks are spaced so new locks can slot between existing ones without
// renumbering. Same-rank nesting is forbidden (the runtime never holds two
// bucket or free-shard locks at once — each walk locks one shard at a
// time), which keeps the rule strict and the checker trivial.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace ea::concurrent {

// Global acquisition order, outermost (acquired first) to innermost.
// DESIGN.md §13 documents who owns each rank and why the real nestings
// (limbo→bucket→free in the POS cleaner, magazine registry→free shard in
// the Pos destructor drain, XMPP offline spool→POS) are ascending.
enum class LockRank : std::uint8_t {
  kUnranked = 0,  // opted out of checking (never use for new locks)

  // core/migration — the coordinator's admission lock is the outermost
  // lock in the process: a migration holds it across park → seal →
  // transfer → resume, which touches mboxes, POS buckets, the enclave
  // manager and the counter service, so every other rank must be
  // acquirable under it.
  kMigration = 8,  // MigrationCoordinator::mu_

  // xmpp/ — server tables, entered first from the connection actors.
  kXmppDirectory = 10,   // xmpp::Directory::lock_
  kXmppRooms = 12,       // xmpp::RoomTable::lock_
  kXmppRoster = 14,      // xmpp::RosterTable::lock_
  kXmppOffline = 16,     // XmppShared::offline_lock (held across POS calls)

  // core/ — per-actor failure bookkeeping.
  kActorFailure = 24,    // Actor::failure_lock_

  // net/ — host-side socket registry.
  kSocketTable = 32,     // net::SocketTable::lock_

  // concurrent/ — scheduler and message-path primitives. The run queue
  // ranks BELOW the mbox lock: a worker may hold its queue lock while a
  // wakeup probe touches mailbox state, but nothing on a mailbox path may
  // reach back into a run queue.
  kRunQueue = 36,        // RunQueue::lock_ (per-worker ready queues)
  kMbox = 40,            // Mbox::lock_
  kPoolShared = 44,      // Pool::lock_ (shared free-list)
  kPosRetire = 46,       // Pos retire_lock_ — outermost POS lock: the
                         // cleaner holds it across the whole gather →
                         // advance → flush step (nesting bucket, epoch
                         // registry and free-shard locks), and a stats
                         // conservation snapshot holds it across the
                         // magazine accounting scan, so it must rank below
                         // kMagazineRegistry.
  kMagazineRegistry = 48,  // MagazineSet::registry_lock_ (held across the
                           // evict drain, which pushes into POS free shards)

  // pos/ — sealed store internals; the cleaner nests
  // retire→{bucket, epoch registry, free} in ascending order.
  kEpochRegistry = 58,   // EpochDomain::registry_lock_ (slot claim/release
                         // only; the announce fast path and the advance
                         // scan are lock-free)
  kPosBucket = 60,       // Pos bucket_locks_[]
  kPosFree = 64,         // Pos free_locks_[] (shard free-lists)

  // sgxsim/ — the SDK-baseline mutex, then the host-side management
  // services. SgxMutex ranks BELOW the manager because its contended path
  // sleeps via ocall() while logically held, and charging that transition
  // takes EnclaveManager::mu_ — the fault-tree run under EA_LOCK_RANK
  // caught exactly this nesting when the ranks were ordered the other way.
  kSgxMutex = 68,          // SgxMutex (baseline comparison lock)
  kEnclaveManager = 72,    // EnclaveManager::mu_
  kMonotonicCounter = 76,  // MonotonicCounterService::mu_ (leaf: held over
                           // pure map ops, never calls out)
};

// Human-readable rank name for diagnostics ("kPosBucket", …).
const char* lock_rank_name(LockRank rank) noexcept;

// Thrown by the default violation handler. Derives std::runtime_error so
// Actor::invoke_contained() catches it like any other actor failure: the
// offending actor fails, the supervisor restarts it, the process survives.
class LockRankError : public std::runtime_error {
 public:
  explicit LockRankError(const char* what) : std::runtime_error(what) {}
};

struct LockRankViolation {
  LockRank held;       // highest rank already held by this thread
  LockRank acquiring;  // rank the thread attempted to acquire
};

#if defined(EA_LOCK_RANK)

namespace lock_rank {

// Called by the thread that detected the violation, BEFORE the offending
// lock is acquired. May throw (the default handler throws LockRankError);
// a handler that returns lets the acquisition proceed (used by tests that
// only want to count).
using Handler = void (*)(const LockRankViolation&);

// Installs a process-wide handler; returns the previous one (nullptr means
// the default throwing handler).
Handler set_violation_handler(Handler handler) noexcept;

// Total out-of-order acquisitions observed since process start.
std::uint64_t violations() noexcept;

// Number of ranked locks the calling thread currently holds (test hook).
int held_count() noexcept;

// Checker entry points, called by HleSpinLock and sgxsim lock wrappers.
// note_acquire() throws (via the handler) before the lock is touched, so a
// contained violation leaves no lock dangling. kUnranked is never tracked.
void note_acquire(LockRank rank);
void note_release(LockRank rank) noexcept;

}  // namespace lock_rank

#else  // !EA_LOCK_RANK — release builds: the checker compiles away.

namespace lock_rank {

inline void note_acquire(LockRank) noexcept {}
inline void note_release(LockRank) noexcept {}
inline std::uint64_t violations() noexcept { return 0; }
inline int held_count() noexcept { return 0; }

}  // namespace lock_rank

#endif  // EA_LOCK_RANK

}  // namespace ea::concurrent
