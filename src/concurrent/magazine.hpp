// Per-thread magazines over a shared backing store (Bonwick-style).
//
// A magazine is a tiny LIFO cache owned by one (thread, store) pair so the
// steady-state alloc/free path touches no shared lock. The pattern first
// appeared fused into Pool (PR 2); it is extracted here so the POS free
// lists (and any future allocator) can reuse the registry and the
// thread-exit flush machinery without duplicating the lifetime reasoning.
//
// MagazineSet<Item, Capacity, MaxSlots> owns:
//   - the per-thread slot table (static thread_local, one per template
//     instantiation) and the claim/lookup scan,
//   - the registry of magazines currently caching for this set, so the
//     owner can account cached items and evict stragglers in its dtor,
//   - the thread-exit flush: a thread that dies hands its cached items back
//     through the return callback before its TLS is reclaimed.
//
// The *contents* of a magazine (items[], count) are only ever mutated by
// the owning thread; owners implement their own refill/flush batching on
// top (see Pool::refill / Pos::magazine_refill). `count` is atomic purely
// so cross-thread accounting reads (cached(), size()) are not data races;
// item ownership transfers between a magazine and the shared store only
// under the store's lock, which provides the happens-before edge for the
// item memory itself.
//
// Lifetime contract (inherited from Pool): the owner must outlive any
// concurrent use. Thread exit flushes and deregisters that thread's
// magazines; owner destruction evicts every remaining magazine (draining
// through evict_all(), or dropping contents in ~MagazineSet). Eviction only
// races with a thread that would be touching a destroyed owner anyway.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "concurrent/hle_lock.hpp"

namespace ea::concurrent {

template <typename Item, std::size_t Capacity, std::size_t MaxSlots>
class MagazineSet {
 public:
  // Hands a dying thread's cached items back to the shared store. Plain
  // function pointer + context (not std::function): no allocation, callable
  // from a TLS destructor.
  using ReturnFn = void (*)(void* ctx, Item* items, std::uint32_t count);

  struct Magazine {
    // Owning set; atomic only so the slot scan and eviction never
    // constitute a data race. Relaxed everywhere: cross-thread agreement is
    // provided by join/sequencing per the lifetime contract above.
    std::atomic<MagazineSet*> owner{nullptr};
    Magazine* next_registered = nullptr;  // registry list, registry_lock_
    std::atomic<std::uint32_t> count{0};  // written by owner thread only
    Item items[Capacity] = {};
  };

  MagazineSet() = default;
  ~MagazineSet() {
    // Late eviction drops contents: the arena/file that owns the item
    // memory is being torn down alongside the owner. Owners that need the
    // items back (e.g. POS splicing entries onto the persisted free lists)
    // call evict_all() with a draining callback first.
    evict_all([](Item*, std::uint32_t) {});
  }
  MagazineSet(const MagazineSet&) = delete;
  MagazineSet& operator=(const MagazineSet&) = delete;

  // Installs the thread-exit return path. Must be called before the first
  // acquire() if cached items must survive thread death.
  void set_return(void* ctx, ReturnFn fn) noexcept {
    return_ctx_ = ctx;
    return_fn_ = fn;
  }

  // Returns the calling thread's magazine for this set, claiming and
  // registering a free slot on first use; nullptr when the thread already
  // caches for MaxSlots other sets (callers fall back to the shared path —
  // correct, just uncached).
  Magazine* acquire() EA_LOCK_NOEXCEPT {
    ThreadCache& tc = thread_cache();
    Magazine* free_slot = nullptr;
    for (Magazine& mag : tc.slots) {
      MagazineSet* owner = mag.owner.load(std::memory_order_relaxed);
      if (owner == this) return &mag;
      if (owner == nullptr && free_slot == nullptr) free_slot = &mag;
    }
    if (free_slot == nullptr) return nullptr;
    free_slot->count.store(0, std::memory_order_relaxed);
    free_slot->owner.store(this, std::memory_order_relaxed);
    register_magazine(free_slot);
    return free_slot;
  }

  // Total items cached across every registered magazine (exact when
  // quiescent). Never touches the items themselves.
  std::size_t cached() const EA_LOCK_NOEXCEPT EA_EXCLUDES(registry_lock_) {
    HleGuard guard(registry_lock_);
    std::size_t total = 0;
    for (Magazine* mag = magazines_; mag != nullptr;
         mag = mag->next_registered) {
      total += mag->count.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Evicts every registered magazine: drain(items, count) receives the
  // cached items, then the magazine is emptied and unlinked. Used by owner
  // destructors; must not race live acquire()/mutation (lifetime contract).
  // Holds registry_lock_ (kMagazineRegistry) across the drain: a drain
  // callback may only take locks of HIGHER rank (the POS drain pushes into
  // free shards, kPosFree — ascending, checked under EA_LOCK_RANK).
  template <typename Drain>
  void evict_all(Drain&& drain) EA_EXCLUDES(registry_lock_) {
    HleGuard guard(registry_lock_);
    for (Magazine* mag = magazines_; mag != nullptr;) {
      Magazine* next = mag->next_registered;
      const std::uint32_t c = mag->count.load(std::memory_order_relaxed);
      if (c != 0) drain(mag->items, c);
      mag->count.store(0, std::memory_order_relaxed);
      mag->next_registered = nullptr;
      mag->owner.store(nullptr, std::memory_order_relaxed);
      mag = next;
    }
    magazines_ = nullptr;
  }

 private:
  struct ThreadCache {
    Magazine slots[MaxSlots];

    ~ThreadCache() {
      // Thread exit: hand every cached item back to its store so
      // conservation (store size == arena count when quiescent) holds
      // after join(), and unlink the magazine from the registry — this
      // storage is about to be freed with the rest of the thread's TLS.
      for (Magazine& mag : slots) {
        MagazineSet* set = mag.owner.load(std::memory_order_relaxed);
        if (set != nullptr) set->thread_exit(mag);
      }
    }
  };

  static ThreadCache& thread_cache() noexcept {
    static thread_local ThreadCache cache;
    return cache;
  }

  void thread_exit(Magazine& mag) noexcept {
    const std::uint32_t c = mag.count.load(std::memory_order_relaxed);
    if (c != 0 && return_fn_ != nullptr) {
      return_fn_(return_ctx_, mag.items, c);
    }
    mag.count.store(0, std::memory_order_relaxed);
    deregister_magazine(&mag);
    mag.owner.store(nullptr, std::memory_order_relaxed);
  }

  void register_magazine(Magazine* mag) EA_LOCK_NOEXCEPT
      EA_EXCLUDES(registry_lock_) {
    HleGuard guard(registry_lock_);
    mag->next_registered = magazines_;
    magazines_ = mag;
  }

  void deregister_magazine(Magazine* mag) EA_LOCK_NOEXCEPT
      EA_EXCLUDES(registry_lock_) {
    HleGuard guard(registry_lock_);
    Magazine** link = &magazines_;
    while (*link != nullptr) {
      if (*link == mag) {
        *link = mag->next_registered;
        mag->next_registered = nullptr;
        return;
      }
      link = &(*link)->next_registered;
    }
  }

  void* return_ctx_ = nullptr;
  ReturnFn return_fn_ = nullptr;
  mutable HleSpinLock registry_lock_{LockRank::kMagazineRegistry};
  Magazine* magazines_ EA_GUARDED_BY(registry_lock_) = nullptr;
};

}  // namespace ea::concurrent
