#include "concurrent/mbox.hpp"

namespace ea::concurrent {

void Mbox::push(Node* n) EA_LOCK_NOEXCEPT {
  if (n == nullptr) return;
  n->next = nullptr;
  HleGuard guard(lock_);
  n->prev = tail_;
  if (tail_ != nullptr) {
    tail_->next = n;
  } else {
    head_ = n;
  }
  tail_ = n;
  ++size_;
  count_.store(size_, std::memory_order_relaxed);
}

void Mbox::push_chain(Node* head, Node* tail, std::size_t n) EA_LOCK_NOEXCEPT {
  if (head == nullptr || tail == nullptr || n == 0) return;
  // The chain is still private here: fix up the links that don't depend on
  // the shared list outside the critical section.
  head->prev = nullptr;
  tail->next = nullptr;
  HleGuard guard(lock_);
  head->prev = tail_;
  if (tail_ != nullptr) {
    tail_->next = head;
  } else {
    head_ = head;
  }
  tail_ = tail;
  size_ += n;
  count_.store(size_, std::memory_order_relaxed);
}

Node* Mbox::pop() EA_LOCK_NOEXCEPT {
  Node* n;
  {
    HleGuard guard(lock_);
    n = head_;
    if (n == nullptr) return nullptr;
    head_ = n->next;
    if (head_ != nullptr) {
      head_->prev = nullptr;
    } else {
      tail_ = nullptr;
    }
    --size_;
    count_.store(size_, std::memory_order_relaxed);
  }
  n->next = nullptr;
  n->prev = nullptr;
  return n;
}

std::size_t Mbox::pop_burst(Node** out, std::size_t max) EA_LOCK_NOEXCEPT {
  if (out == nullptr || max == 0) return 0;
  Node* burst_head;
  std::size_t taken;
  {
    HleGuard guard(lock_);
    burst_head = head_;
    if (burst_head == nullptr) return 0;
    if (max >= size_) {
      // Full drain: detach the whole list in O(1).
      taken = size_;
      head_ = nullptr;
      tail_ = nullptr;
      size_ = 0;
    } else {
      // Partial burst: walk to the new head. O(max) under the lock, but it
      // replaces `max` separate acquisitions.
      taken = max;
      Node* cut = burst_head;
      for (std::size_t i = 1; i < max; ++i) cut = cut->next;
      head_ = cut->next;
      head_->prev = nullptr;
      cut->next = nullptr;
      size_ -= max;
    }
    count_.store(size_, std::memory_order_relaxed);
  }
  Node* n = burst_head;
  for (std::size_t i = 0; i < taken; ++i) {
    Node* next = n->next;
    n->next = nullptr;
    n->prev = nullptr;
    out[i] = n;
    n = next;
  }
  return taken;
}

}  // namespace ea::concurrent
