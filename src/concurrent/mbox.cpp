#include "concurrent/mbox.hpp"

namespace ea::concurrent {

void Mbox::push(Node* n) noexcept {
  if (n == nullptr) return;
  n->next = nullptr;
  HleGuard guard(lock_);
  n->prev = tail_;
  if (tail_ != nullptr) {
    tail_->next = n;
  } else {
    head_ = n;
  }
  tail_ = n;
  ++size_;
}

Node* Mbox::pop() noexcept {
  Node* n;
  {
    HleGuard guard(lock_);
    n = head_;
    if (n == nullptr) return nullptr;
    head_ = n->next;
    if (head_ != nullptr) {
      head_->prev = nullptr;
    } else {
      tail_ = nullptr;
    }
    --size_;
  }
  n->next = nullptr;
  n->prev = nullptr;
  return n;
}

bool Mbox::empty() const noexcept {
  HleGuard guard(lock_);
  return head_ == nullptr;
}

std::size_t Mbox::size() const noexcept {
  HleGuard guard(lock_);
  return size_;
}

}  // namespace ea::concurrent
