// Mbox: a FIFO multi-producer/multi-consumer mailbox of linked nodes
// (paper §3.3).
//
// "A mbox is an abstraction which refers to a set of linked nodes used for
// message exchange … mboxes offer FIFO semantic." The mbox abstraction is
// the backbone of all eactor communication and of the networking batch
// interface — it "enables concurrent access by multiple readers and multiple
// writers" (§4.2).
//
// Besides the per-node push/pop, mboxes support *burst* transfer:
// push_chain() splices a privately pre-linked chain of nodes under a single
// lock acquisition and pop_burst() detaches up to N nodes at once, so the
// per-message synchronisation cost is amortized over the whole burst. The
// emptiness/size probes never take the lock — actors poll their mboxes on
// every activation, and a locked probe would make idle polling contend with
// the producers it is waiting for.
#pragma once

#include <atomic>
#include <cstddef>

#include "concurrent/hle_lock.hpp"
#include "concurrent/node.hpp"

namespace ea::concurrent {

class alignas(64) Mbox {
 public:
  Mbox() = default;
  Mbox(const Mbox&) = delete;
  Mbox& operator=(const Mbox&) = delete;

  // Enqueues at the tail.
  void push(Node* n) EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);

  // Enqueues a chain of `n` nodes, linked head->...->tail via Node::next,
  // under one lock acquisition. The chain must be private to the caller
  // (no other thread may observe it) until push_chain returns; prev links
  // are fixed up here, outside the critical section. FIFO order of the
  // chain is preserved: head is dequeued first.
  void push_chain(Node* head, Node* tail, std::size_t n) EA_LOCK_NOEXCEPT
      EA_EXCLUDES(lock_);

  // Dequeues from the head; nullptr when empty (actors poll, they never
  // block — blocking would stall a worker and, inside an enclave, force an
  // expensive exit).
  Node* pop() EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);

  // Dequeues up to `max` nodes into `out` under one lock acquisition and
  // returns how many were dequeued (0 when empty). Order in `out` is the
  // FIFO dequeue order. When the burst drains the whole mailbox the list
  // head is detached in O(1); partial bursts walk the detached prefix.
  std::size_t pop_burst(Node** out, std::size_t max) EA_LOCK_NOEXCEPT
      EA_EXCLUDES(lock_);

  // Non-destructive emptiness probe. Lock-free: reads a relaxed atomic
  // counter maintained by push/pop, so the hot poll loop of every actor
  // never touches the mailbox lock. The value is a snapshot — exact only
  // when producers/consumers are quiescent.
  bool empty() const noexcept {
    return count_.load(std::memory_order_relaxed) == 0;
  }

  std::size_t size() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  // The lock occupies its own cache line (HleSpinLock aligns its flag);
  // head/tail/size share the next line (only touched under the lock); the
  // probe counter gets a third line so lock-free pollers never contend
  // with the list mutation traffic (no false sharing producer<->poller).
  // count_ is deliberately NOT guarded: it is the lock-free probe mirror
  // (an atomic, so the thread-safety analysis permits unguarded access).
  mutable HleSpinLock lock_{LockRank::kMbox};
  Node* head_ EA_GUARDED_BY(lock_) = nullptr;
  Node* tail_ EA_GUARDED_BY(lock_) = nullptr;
  std::size_t size_ EA_GUARDED_BY(lock_) = 0;
  alignas(64) std::atomic<std::size_t> count_{0};
};

// Accumulates a private chain of nodes for a single push_chain() splice —
// the producer-side half of the burst interface. Usage:
//
//   ChainBuilder chain;
//   while (...) chain.append(node);
//   chain.flush_into(mbox);   // one lock acquisition for the whole chain
class ChainBuilder {
 public:
  void append(Node* n) noexcept {
    if (n == nullptr) return;
    n->next = nullptr;
    n->prev = tail_;
    if (tail_ != nullptr) {
      tail_->next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
    ++count_;
  }

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  // Splices the accumulated chain into `mbox` and resets the builder.
  void flush_into(Mbox& mbox) noexcept {
    if (count_ == 0) return;
    mbox.push_chain(head_, tail_, count_);
    head_ = tail_ = nullptr;
    count_ = 0;
  }

 private:
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace ea::concurrent
