// Mbox: a FIFO multi-producer/multi-consumer mailbox of linked nodes
// (paper §3.3).
//
// "A mbox is an abstraction which refers to a set of linked nodes used for
// message exchange … mboxes offer FIFO semantic." The mbox abstraction is
// the backbone of all eactor communication and of the networking batch
// interface — it "enables concurrent access by multiple readers and multiple
// writers" (§4.2).
#pragma once

#include <cstddef>

#include "concurrent/hle_lock.hpp"
#include "concurrent/node.hpp"

namespace ea::concurrent {

class Mbox {
 public:
  Mbox() = default;
  Mbox(const Mbox&) = delete;
  Mbox& operator=(const Mbox&) = delete;

  // Enqueues at the tail.
  void push(Node* n) noexcept;

  // Dequeues from the head; nullptr when empty (actors poll, they never
  // block — blocking would stall a worker and, inside an enclave, force an
  // expensive exit).
  Node* pop() noexcept;

  // Non-destructive emptiness probe.
  bool empty() const noexcept;

  std::size_t size() const noexcept;

 private:
  mutable HleSpinLock lock_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ea::concurrent
