// Node: the unit of message memory (paper §3.3).
//
// A node is "a memory object which consists of two elements: a header and a
// payload". Nodes are preallocated in arenas at system start — the framework
// deliberately performs no dynamic allocation on the message path, keeping
// the enclave memory footprint fixed and EPC-friendly.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace ea::concurrent {

class Pool;

struct alignas(64) Node {
  // Intrusive doubly-linked list hooks; owned by whichever mbox/pool the
  // node currently sits in. Not atomic: list mutation happens under the
  // container's HLE lock.
  Node* prev = nullptr;
  Node* next = nullptr;

  // Pool the node was drawn from; receive paths return it there.
  Pool* home = nullptr;

  // Application-defined tag (e.g. the socket id a READER batch entry refers
  // to, or a protocol opcode).
  std::uint64_t tag = 0;

  std::uint32_t capacity = 0;  // payload bytes available
  std::uint32_t size = 0;      // payload bytes in use

  std::uint8_t* payload() noexcept {
    return reinterpret_cast<std::uint8_t*>(this) + sizeof(Node);
  }
  const std::uint8_t* payload() const noexcept {
    return reinterpret_cast<const std::uint8_t*>(this) + sizeof(Node);
  }

  std::span<std::uint8_t> writable() noexcept { return {payload(), capacity}; }
  std::span<const std::uint8_t> data() const noexcept {
    return {payload(), size};
  }

  std::string_view view() const noexcept {
    return {reinterpret_cast<const char*>(payload()), size};
  }

  // Copies `bytes` into the payload (truncating to capacity) and sets size.
  // Returns the number of bytes copied.
  std::size_t fill(std::span<const std::uint8_t> bytes) noexcept {
    std::size_t n = bytes.size() < capacity ? bytes.size() : capacity;
    // Empty spans may carry a null data(); memcpy from null is UB even
    // for zero lengths.
    if (n != 0) std::memcpy(payload(), bytes.data(), n);
    size = static_cast<std::uint32_t>(n);
    return n;
  }

  std::size_t fill(std::string_view s) noexcept {
    return fill(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
};

static_assert(sizeof(Node) == 64, "header occupies exactly one cache line");

}  // namespace ea::concurrent
