#include "concurrent/pool.hpp"

#include "util/env.hpp"
#include "util/failpoint.hpp"

namespace ea::concurrent {

// --- per-thread magazines ---------------------------------------------------
//
// The registry / slot-claim / thread-exit-flush machinery lives in
// concurrent/magazine.hpp (shared with the POS free lists); here only the
// Node-specific batching remains: refill() detaches a batch from the shared
// top, flush() splices the oldest cached nodes back as one chain, and
// return_cached() is the thread-exit path handing a dying thread's nodes
// back so conservation (pool.size() == arena.count() when quiescent) holds
// after join().

bool Pool::magazines_enabled() noexcept {
  static const bool enabled = util::env_int("EA_POOL_MAGAZINE", 1) != 0;
  return enabled;
}

Pool::Pool(bool use_magazines) : use_magazines_(use_magazines) {
  magazines_.set_return(
      this, [](void* ctx, Node** items, std::uint32_t count) {
        static_cast<Pool*>(ctx)->return_cached(items, count);
      });
}

void Pool::return_cached(Node** items, std::uint32_t count) EA_LOCK_NOEXCEPT {
  if (count == 0) return;
  // Chain oldest-first so the shared top receives items[0], matching the
  // order flush() would have produced.
  for (std::uint32_t i = 0; i + 1 < count; ++i) {
    items[i]->next = items[i + 1];
  }
  items[count - 1]->next = nullptr;
  shared_put_chain(items[0], items[count - 1], count);
}

void Pool::adopt(NodeArena& arena) {
  if (arena.count() == 0) return;
  capacity_.fetch_add(arena.count(), std::memory_order_relaxed);
  // Build one private chain and splice it in a single lock acquisition.
  Node* head = nullptr;
  Node* tail = nullptr;
  for (std::size_t i = 0; i < arena.count(); ++i) {
    Node* n = arena.node(i);
    n->home = this;
    n->prev = nullptr;
    n->next = head;
    if (head == nullptr) tail = n;
    head = n;
  }
  shared_put_chain(head, tail, arena.count());
}

// --- shared LIFO ------------------------------------------------------------

Node* Pool::shared_get() EA_LOCK_NOEXCEPT {
  Node* n;
  {
    HleGuard guard(lock_);
    n = top_;
    if (n == nullptr) return nullptr;
    // Pointer swap only: the list is singly linked, and the node reset
    // happens outside, in get().
    top_ = n->next;
    --size_;
    shared_count_.store(size_, std::memory_order_relaxed);
  }
  return n;
}

void Pool::shared_put(Node* n) EA_LOCK_NOEXCEPT {
  HleGuard guard(lock_);
  n->next = top_;
  top_ = n;
  ++size_;
  shared_count_.store(size_, std::memory_order_relaxed);
}

void Pool::shared_put_chain(Node* head, Node* tail,
                            std::size_t n) EA_LOCK_NOEXCEPT {
  if (head == nullptr || n == 0) return;
  HleGuard guard(lock_);
  tail->next = top_;
  top_ = head;
  size_ += n;
  shared_count_.store(size_, std::memory_order_relaxed);
}

// --- magazine plumbing ------------------------------------------------------

Pool::Magazine* Pool::magazine() EA_LOCK_NOEXCEPT {
  if (!use_magazines_) return nullptr;
  return magazines_.acquire();
}

std::uint32_t Pool::refill(Magazine& mag) EA_LOCK_NOEXCEPT {
  // Detach up to kMagazineBatch nodes from the shared top under one lock
  // acquisition.
  Node* head;
  std::uint32_t taken = 0;
  {
    HleGuard guard(lock_);
    head = top_;
    Node* cut = nullptr;
    Node* n = top_;
    while (n != nullptr && taken < kMagazineBatch) {
      cut = n;
      n = n->next;
      ++taken;
    }
    if (taken == 0) return 0;
    top_ = n;
    cut->next = nullptr;
    size_ -= taken;
    shared_count_.store(size_, std::memory_order_relaxed);
  }
  // The shared top is the hottest node; store it at the magazine top so
  // get() (which pops items[count-1]) keeps strict LIFO order.
  std::uint32_t c = taken;
  for (Node* n = head; n != nullptr; --c) {
    Node* next = n->next;
    mag.items[c - 1] = n;
    n = next;
  }
  mag.count.store(taken, std::memory_order_relaxed);
  return taken;
}

void Pool::flush(Magazine& mag, std::uint32_t keep) EA_LOCK_NOEXCEPT {
  std::uint32_t c = mag.count.load(std::memory_order_relaxed);
  if (c <= keep) return;
  std::uint32_t drop = c - keep;
  // Flush the *oldest* entries (bottom of the magazine) so the hottest
  // nodes stay cached; link them into a private chain and splice once.
  Node* head = mag.items[0];
  for (std::uint32_t i = 0; i + 1 < drop; ++i) {
    mag.items[i]->next = mag.items[i + 1];
  }
  Node* tail = mag.items[drop - 1];
  tail->next = nullptr;
  for (std::uint32_t i = 0; i < keep; ++i) {
    mag.items[i] = mag.items[drop + i];
  }
  mag.count.store(keep, std::memory_order_relaxed);
  shared_put_chain(head, tail, drop);
}

// --- public get/put ---------------------------------------------------------

Node* Pool::get() EA_LOCK_NOEXCEPT {
  // Injected exhaustion: every get() caller must already handle a full
  // pool returning nullptr, so fault tests can force that path at will.
  if (EA_FAIL_TRIGGERED("pool.get.exhausted")) {
    exhaustions_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Node* n = nullptr;
  Magazine* mag = magazine();
  if (mag != nullptr) {
    std::uint32_t c = mag->count.load(std::memory_order_relaxed);
    if (c == 0) c = refill(*mag);
    if (c != 0) {
      n = mag->items[c - 1];
      mag->count.store(c - 1, std::memory_order_relaxed);
    }
  } else {
    n = shared_get();
  }
  if (n != nullptr) {
    // Node reset deliberately happens here, outside every lock: the shared
    // critical section stays a pointer swap.
    n->next = nullptr;
    n->prev = nullptr;
    n->size = 0;
    n->tag = 0;
  } else {
    exhaustions_.fetch_add(1, std::memory_order_relaxed);
  }
  return n;
}

void Pool::put(Node* n) EA_LOCK_NOEXCEPT {
  if (n == nullptr) return;
  Magazine* mag = magazine();
  if (mag != nullptr) {
    std::uint32_t c = mag->count.load(std::memory_order_relaxed);
    if (c == kMagazineCapacity) {
      flush(*mag, kMagazineCapacity - kMagazineBatch);
      c = kMagazineCapacity - kMagazineBatch;
    }
    n->prev = nullptr;
    mag->items[c] = n;
    mag->count.store(c + 1, std::memory_order_relaxed);
    return;
  }
  n->prev = nullptr;
  shared_put(n);
}

std::size_t Pool::size() const noexcept {
  return shared_count_.load(std::memory_order_relaxed) + magazines_.cached();
}

void NodeLease::reset() noexcept {
  if (node_ != nullptr && node_->home != nullptr) {
    node_->home->put(node_);
  }
  node_ = nullptr;
}

}  // namespace ea::concurrent
