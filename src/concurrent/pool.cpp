#include "concurrent/pool.hpp"

namespace ea::concurrent {

void Pool::adopt(NodeArena& arena) {
  for (std::size_t i = 0; i < arena.count(); ++i) {
    Node* n = arena.node(i);
    n->home = this;
    put(n);
  }
}

Node* Pool::get() noexcept {
  Node* n;
  {
    HleGuard guard(lock_);
    n = top_;
    if (n != nullptr) {
      top_ = n->next;
      if (top_ != nullptr) top_->prev = nullptr;
      --size_;
    }
  }
  if (n != nullptr) {
    n->next = nullptr;
    n->prev = nullptr;
    n->size = 0;
    n->tag = 0;
  }
  return n;
}

void Pool::put(Node* n) noexcept {
  if (n == nullptr) return;
  HleGuard guard(lock_);
  n->prev = nullptr;
  n->next = top_;
  if (top_ != nullptr) top_->prev = n;
  top_ = n;
  ++size_;
}

std::size_t Pool::size() const noexcept {
  HleGuard guard(lock_);
  return size_;
}

void NodeLease::reset() noexcept {
  if (node_ != nullptr && node_->home != nullptr) {
    node_->home->put(node_);
  }
  node_ = nullptr;
}

}  // namespace ea::concurrent
