#include "concurrent/pool.hpp"

#include "util/env.hpp"
#include "util/failpoint.hpp"

namespace ea::concurrent {

// --- per-thread magazines ---------------------------------------------------
//
// A magazine is a tiny LIFO of free nodes owned by one (thread, pool) pair.
// items[] and the count are only mutated by the owning thread; the count is
// an atomic so Pool::size() on other threads can read a coherent snapshot.
// Node ownership transfers between a magazine and the shared list only under
// the pool's free-list lock, which provides the happens-before edge for the
// node memory itself.
//
// Lifetime: magazines live in thread-local storage. A thread exiting flushes
// its magazines back to their pools (PoolThreadCache destructor); a pool
// being destroyed evicts every magazine still pointing at it (~Pool). The
// pre-existing contract that a pool must outlive any concurrent get()/put()
// covers the remaining interleavings: eviction only races with a thread that
// would be using a destroyed pool anyway.

struct Pool::Magazine {
  // Owner pool; atomic only so eviction (~Pool) and the slot scan in
  // Pool::magazine() never constitute a data race. Relaxed everywhere:
  // cross-thread agreement is provided by join/sequencing per the lifetime
  // contract above.
  std::atomic<Pool*> owner{nullptr};
  Magazine* next_registered = nullptr;  // pool registry list, registry_lock_
  std::atomic<std::uint32_t> count{0};  // written by owner thread only
  Node* items[kMagazineCapacity] = {};
};

struct PoolThreadCache {
  Pool::Magazine slots[kMaxThreadMagazines];

  ~PoolThreadCache() {
    // Thread exit: hand every cached node back to its pool so conservation
    // (pool.size() == arena.count() when quiescent) holds after join(), and
    // unlink the magazine from the pool's registry — this storage is about
    // to be freed with the rest of the thread's TLS.
    for (Pool::Magazine& mag : slots) {
      Pool* pool = mag.owner.load(std::memory_order_relaxed);
      if (pool != nullptr) {
        pool->flush(mag, 0);
        pool->deregister_magazine(&mag);
        mag.owner.store(nullptr, std::memory_order_relaxed);
      }
    }
  }
};

namespace {
thread_local PoolThreadCache t_pool_cache;
}  // namespace

bool Pool::magazines_enabled() noexcept {
  static const bool enabled = util::env_int("EA_POOL_MAGAZINE", 1) != 0;
  return enabled;
}

Pool::~Pool() {
  // Evict every magazine still caching for this pool. Cached nodes are
  // simply dropped — the arena owns their memory, and it is being torn
  // down alongside the pool.
  HleGuard guard(registry_lock_);
  for (Magazine* mag = magazines_; mag != nullptr;) {
    Magazine* next = mag->next_registered;
    mag->count.store(0, std::memory_order_relaxed);
    mag->next_registered = nullptr;
    mag->owner.store(nullptr, std::memory_order_relaxed);
    mag = next;
  }
  magazines_ = nullptr;
}

void Pool::adopt(NodeArena& arena) {
  if (arena.count() == 0) return;
  // Build one private chain and splice it in a single lock acquisition.
  Node* head = nullptr;
  Node* tail = nullptr;
  for (std::size_t i = 0; i < arena.count(); ++i) {
    Node* n = arena.node(i);
    n->home = this;
    n->prev = nullptr;
    n->next = head;
    if (head == nullptr) tail = n;
    head = n;
  }
  shared_put_chain(head, tail, arena.count());
}

// --- shared LIFO ------------------------------------------------------------

Node* Pool::shared_get() noexcept {
  Node* n;
  {
    HleGuard guard(lock_);
    n = top_;
    if (n == nullptr) return nullptr;
    // Pointer swap only: the list is singly linked, and the node reset
    // happens outside, in get().
    top_ = n->next;
    --size_;
    shared_count_.store(size_, std::memory_order_relaxed);
  }
  return n;
}

void Pool::shared_put(Node* n) noexcept {
  HleGuard guard(lock_);
  n->next = top_;
  top_ = n;
  ++size_;
  shared_count_.store(size_, std::memory_order_relaxed);
}

void Pool::shared_put_chain(Node* head, Node* tail, std::size_t n) noexcept {
  if (head == nullptr || n == 0) return;
  HleGuard guard(lock_);
  tail->next = top_;
  top_ = head;
  size_ += n;
  shared_count_.store(size_, std::memory_order_relaxed);
}

// --- magazine plumbing ------------------------------------------------------

Pool::Magazine* Pool::magazine() noexcept {
  if (!use_magazines_) return nullptr;
  PoolThreadCache& tc = t_pool_cache;
  Magazine* free_slot = nullptr;
  for (Magazine& mag : tc.slots) {
    Pool* owner = mag.owner.load(std::memory_order_relaxed);
    if (owner == this) return &mag;
    if (owner == nullptr && free_slot == nullptr) free_slot = &mag;
  }
  if (free_slot == nullptr) return nullptr;  // thread touches >8 pools: uncached
  free_slot->count.store(0, std::memory_order_relaxed);
  free_slot->owner.store(this, std::memory_order_relaxed);
  register_magazine(free_slot);
  return free_slot;
}

void Pool::register_magazine(Magazine* mag) noexcept {
  HleGuard guard(registry_lock_);
  mag->next_registered = magazines_;
  magazines_ = mag;
}

void Pool::deregister_magazine(Magazine* mag) noexcept {
  HleGuard guard(registry_lock_);
  Magazine** link = &magazines_;
  while (*link != nullptr) {
    if (*link == mag) {
      *link = mag->next_registered;
      mag->next_registered = nullptr;
      return;
    }
    link = &(*link)->next_registered;
  }
}

std::uint32_t Pool::refill(Magazine& mag) noexcept {
  // Detach up to kMagazineBatch nodes from the shared top under one lock
  // acquisition.
  Node* head;
  std::uint32_t taken = 0;
  {
    HleGuard guard(lock_);
    head = top_;
    Node* cut = nullptr;
    Node* n = top_;
    while (n != nullptr && taken < kMagazineBatch) {
      cut = n;
      n = n->next;
      ++taken;
    }
    if (taken == 0) return 0;
    top_ = n;
    cut->next = nullptr;
    size_ -= taken;
    shared_count_.store(size_, std::memory_order_relaxed);
  }
  // The shared top is the hottest node; store it at the magazine top so
  // get() (which pops items[count-1]) keeps strict LIFO order.
  std::uint32_t c = taken;
  for (Node* n = head; n != nullptr; --c) {
    Node* next = n->next;
    mag.items[c - 1] = n;
    n = next;
  }
  mag.count.store(taken, std::memory_order_relaxed);
  return taken;
}

void Pool::flush(Magazine& mag, std::uint32_t keep) noexcept {
  std::uint32_t c = mag.count.load(std::memory_order_relaxed);
  if (c <= keep) return;
  std::uint32_t drop = c - keep;
  // Flush the *oldest* entries (bottom of the magazine) so the hottest
  // nodes stay cached; link them into a private chain and splice once.
  Node* head = mag.items[0];
  for (std::uint32_t i = 0; i + 1 < drop; ++i) {
    mag.items[i]->next = mag.items[i + 1];
  }
  Node* tail = mag.items[drop - 1];
  tail->next = nullptr;
  for (std::uint32_t i = 0; i < keep; ++i) {
    mag.items[i] = mag.items[drop + i];
  }
  mag.count.store(keep, std::memory_order_relaxed);
  shared_put_chain(head, tail, drop);
}

// --- public get/put ---------------------------------------------------------

Node* Pool::get() noexcept {
  // Injected exhaustion: every get() caller must already handle a full
  // pool returning nullptr, so fault tests can force that path at will.
  if (EA_FAIL_TRIGGERED("pool.get.exhausted")) return nullptr;
  Node* n = nullptr;
  Magazine* mag = magazine();
  if (mag != nullptr) {
    std::uint32_t c = mag->count.load(std::memory_order_relaxed);
    if (c == 0) c = refill(*mag);
    if (c != 0) {
      n = mag->items[c - 1];
      mag->count.store(c - 1, std::memory_order_relaxed);
    }
  } else {
    n = shared_get();
  }
  if (n != nullptr) {
    // Node reset deliberately happens here, outside every lock: the shared
    // critical section stays a pointer swap.
    n->next = nullptr;
    n->prev = nullptr;
    n->size = 0;
    n->tag = 0;
  }
  return n;
}

void Pool::put(Node* n) noexcept {
  if (n == nullptr) return;
  Magazine* mag = magazine();
  if (mag != nullptr) {
    std::uint32_t c = mag->count.load(std::memory_order_relaxed);
    if (c == kMagazineCapacity) {
      flush(*mag, kMagazineCapacity - kMagazineBatch);
      c = kMagazineCapacity - kMagazineBatch;
    }
    n->prev = nullptr;
    mag->items[c] = n;
    mag->count.store(c + 1, std::memory_order_relaxed);
    return;
  }
  n->prev = nullptr;
  shared_put(n);
}

std::size_t Pool::size() const noexcept {
  std::size_t total = shared_count_.load(std::memory_order_relaxed);
  HleGuard guard(registry_lock_);
  for (Magazine* mag = magazines_; mag != nullptr;
       mag = mag->next_registered) {
    total += mag->count.load(std::memory_order_relaxed);
  }
  return total;
}

void NodeLease::reset() noexcept {
  if (node_ != nullptr && node_->home != nullptr) {
    node_->home->put(node_);
  }
  node_ = nullptr;
}

}  // namespace ea::concurrent
