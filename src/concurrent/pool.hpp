// Pool: a LIFO free-list of empty nodes (paper §3.3).
//
// "A pool is an abstraction which refers to a set of empty nodes … pools
// implement LIFO semantic." LIFO keeps recently-used node payloads hot in
// cache. Thread-safe for any number of concurrent producers/consumers via
// the HLE lock; no system calls are ever made, so pools are enclave-safe.
#pragma once

#include <cstddef>

#include "concurrent/arena.hpp"
#include "concurrent/hle_lock.hpp"
#include "concurrent/node.hpp"

namespace ea::concurrent {

class Pool {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Adopts all nodes of `arena` into the pool and marks them as homed here.
  void adopt(NodeArena& arena);

  // Pops a free node, or nullptr if the pool is exhausted. The node's size
  // is reset to 0 and its tag cleared.
  Node* get() noexcept;

  // Pushes a node back. The node must not be linked in any mbox.
  void put(Node* n) noexcept;

  // Approximate number of free nodes (exact when quiescent).
  std::size_t size() const noexcept;

  bool empty() const noexcept { return size() == 0; }

 private:
  mutable HleSpinLock lock_;
  Node* top_ = nullptr;
  std::size_t size_ = 0;
};

// RAII lease: returns the node to its pool on destruction unless released.
class NodeLease {
 public:
  NodeLease() = default;
  explicit NodeLease(Node* n) noexcept : node_(n) {}
  NodeLease(NodeLease&& other) noexcept : node_(other.node_) {
    other.node_ = nullptr;
  }
  NodeLease& operator=(NodeLease&& other) noexcept {
    if (this != &other) {
      reset();
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }
  NodeLease(const NodeLease&) = delete;
  NodeLease& operator=(const NodeLease&) = delete;
  ~NodeLease() { reset(); }

  Node* get() const noexcept { return node_; }
  Node* operator->() const noexcept { return node_; }
  explicit operator bool() const noexcept { return node_ != nullptr; }

  // Detaches the node (e.g. after handing it to an mbox).
  Node* release() noexcept {
    Node* n = node_;
    node_ = nullptr;
    return n;
  }

  void reset() noexcept;

 private:
  Node* node_ = nullptr;
};

}  // namespace ea::concurrent
