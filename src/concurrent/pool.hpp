// Pool: a LIFO free-list of empty nodes (paper §3.3).
//
// "A pool is an abstraction which refers to a set of empty nodes … pools
// implement LIFO semantic." LIFO keeps recently-used node payloads hot in
// cache. Thread-safe for any number of concurrent producers/consumers via
// the HLE lock; no system calls are ever made, so pools are enclave-safe.
//
// The shared free-list is fronted by per-thread *magazines*: small
// thread-local node caches refilled from / flushed to the shared LIFO in
// batches of kMagazineBatch, so the steady-state get()/put() path touches
// no shared lock at all (cf. the per-worker free-list caching that lets
// CAF-style actor runtimes scale past a few cores). Set EA_POOL_MAGAZINE=0
// to disable the caches and fall back to the pure shared-LIFO path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "concurrent/arena.hpp"
#include "concurrent/hle_lock.hpp"
#include "concurrent/magazine.hpp"
#include "concurrent/node.hpp"

namespace ea::concurrent {

// Nodes a thread may cache per pool. Kept small so tiny test pools cannot
// be starved by caches hoarding the whole arena.
inline constexpr std::size_t kMagazineCapacity = 16;
// Refill/flush batch K: one shared-lock acquisition moves K nodes.
inline constexpr std::size_t kMagazineBatch = 8;
// Distinct pools a single thread can cache for; further pools fall back to
// the shared path (correct, just uncached).
inline constexpr std::size_t kMaxThreadMagazines = 8;

static_assert(kMagazineBatch <= kMagazineCapacity);

class alignas(64) Pool {
 public:
  // `use_magazines` defaults to the EA_POOL_MAGAZINE environment toggle
  // (on unless set to 0); benchmarks construct both variants explicitly to
  // quantify the magazines' contribution.
  Pool() : Pool(magazines_enabled()) {}
  explicit Pool(bool use_magazines);
  // Destruction evicts every magazine still caching for this pool; the
  // cached nodes are dropped (the arena owns their memory and is being
  // torn down alongside the pool).
  ~Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Adopts all nodes of `arena` into the pool and marks them as homed here.
  // Bypasses the magazines: one splice into the shared list.
  void adopt(NodeArena& arena) EA_EXCLUDES(lock_);

  // Pops a free node, or nullptr if the pool is exhausted. The node's size
  // is reset to 0 and its tag cleared (outside any lock). Steady state hits
  // the calling thread's magazine; misses refill kMagazineBatch nodes under
  // a single lock acquisition.
  Node* get() EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);

  // Pushes a node back. The node must not be linked in any mbox. Steady
  // state hits the magazine; a full magazine flushes kMagazineBatch nodes
  // under a single lock acquisition.
  void put(Node* n) EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);

  // Approximate number of free nodes — shared list plus every registered
  // magazine (exact when quiescent). Never takes the free-list lock.
  std::size_t size() const noexcept;

  bool empty() const noexcept { return size() == 0; }

  // Nodes ever adopted into this pool (its conservation baseline).
  std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  // get() calls that found the pool empty — the backpressure signal the
  // health snapshot (core/health.hpp) surfaces as pool exhaustion.
  std::uint64_t exhaustions() const noexcept {
    return exhaustions_.load(std::memory_order_relaxed);
  }

  // Process-wide default for the magazine layer (EA_POOL_MAGAZINE != "0").
  static bool magazines_enabled() noexcept;

 private:
  // The magazine registry / per-thread slot machinery is shared with the
  // POS free lists (concurrent/magazine.hpp); the Node-chain refill and
  // flush batching stays here.
  using Magazines =
      MagazineSet<Node*, kMagazineCapacity, kMaxThreadMagazines>;
  using Magazine = Magazines::Magazine;

  // Shared-LIFO primitives; the critical section is a pointer swap plus a
  // counter update (the list is singly linked via Node::next — prev is
  // only maintained by mboxes).
  Node* shared_get() EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);
  void shared_put(Node* n) EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);
  // Splices a private chain (linked via next) of `n` nodes; one lock op.
  void shared_put_chain(Node* head, Node* tail, std::size_t n)
      EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);

  Magazine* magazine() EA_LOCK_NOEXCEPT;
  std::uint32_t refill(Magazine& mag) EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);
  void flush(Magazine& mag, std::uint32_t keep) EA_LOCK_NOEXCEPT
      EA_EXCLUDES(lock_);
  // Thread-exit return path: splices a dying thread's cached nodes back
  // (MagazineSet::ReturnFn thunk target).
  void return_cached(Node** items, std::uint32_t count) EA_LOCK_NOEXCEPT
      EA_EXCLUDES(lock_);

  const bool use_magazines_;

  mutable HleSpinLock lock_{LockRank::kPoolShared};
  Node* top_ EA_GUARDED_BY(lock_) = nullptr;
  std::size_t size_ EA_GUARDED_BY(lock_) = 0;  // shared-list population
  // Lock-free probe mirror of size_ (relaxed; see Mbox::count_).
  alignas(64) std::atomic<std::size_t> shared_count_{0};
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::uint64_t> exhaustions_{0};

  Magazines magazines_;
};

// RAII lease: returns the node to its pool on destruction unless released.
class NodeLease {
 public:
  NodeLease() = default;
  explicit NodeLease(Node* n) noexcept : node_(n) {}
  NodeLease(NodeLease&& other) noexcept : node_(other.node_) {
    other.node_ = nullptr;
  }
  NodeLease& operator=(NodeLease&& other) noexcept {
    if (this != &other) {
      reset();
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }
  NodeLease(const NodeLease&) = delete;
  NodeLease& operator=(const NodeLease&) = delete;
  ~NodeLease() { reset(); }

  Node* get() const noexcept { return node_; }
  Node* operator->() const noexcept { return node_; }
  explicit operator bool() const noexcept { return node_ != nullptr; }

  // Detaches the node (e.g. after handing it to an mbox).
  Node* release() noexcept {
    Node* n = node_;
    node_ = nullptr;
    return n;
  }

  void reset() noexcept;

 private:
  Node* node_ = nullptr;
};

}  // namespace ea::concurrent
