#include "concurrent/runqueue.hpp"

namespace ea::concurrent {

void RunQueue::reserve(std::size_t capacity) {
  HleGuard guard(lock_);
  ring_.assign(capacity, nullptr);
  head_ = 0;
  count_ = 0;
  approx_.store(0, std::memory_order_relaxed);
}

bool RunQueue::push_front(void* item) EA_LOCK_NOEXCEPT {
  HleGuard guard(lock_);
  if (count_ == ring_.size()) return false;
  head_ = (head_ + ring_.size() - 1) % ring_.size();
  ring_[head_] = item;
  ++count_;
  approx_.store(count_, std::memory_order_relaxed);
  return true;
}

bool RunQueue::push_back(void* item) EA_LOCK_NOEXCEPT {
  HleGuard guard(lock_);
  if (count_ == ring_.size()) return false;
  ring_[slot(count_)] = item;
  ++count_;
  approx_.store(count_, std::memory_order_relaxed);
  return true;
}

void* RunQueue::pop_front() EA_LOCK_NOEXCEPT {
  HleGuard guard(lock_);
  if (count_ == 0) return nullptr;
  void* item = ring_[head_];
  ring_[head_] = nullptr;
  head_ = (head_ + 1) % ring_.size();
  --count_;
  approx_.store(count_, std::memory_order_relaxed);
  return item;
}

void* RunQueue::steal_back(StealFilter filter, const void* ctx) EA_LOCK_NOEXCEPT {
  HleGuard guard(lock_);
  for (std::size_t i = count_; i > 0; --i) {
    void* item = ring_[slot(i - 1)];
    if (filter != nullptr && !filter(item, ctx)) continue;
    // Close the gap towards the back: entries behind the stolen slot shift
    // forward one position. The scan already prefers the back, so the
    // shifted span is short in the common (hindmost eligible) case.
    for (std::size_t j = i - 1; j + 1 < count_; ++j) {
      ring_[slot(j)] = ring_[slot(j + 1)];
    }
    ring_[slot(count_ - 1)] = nullptr;
    --count_;
    approx_.store(count_, std::memory_order_relaxed);
    return item;
  }
  return nullptr;
}

}  // namespace ea::concurrent
