// RunQueue: a per-worker ready queue for the stealing scheduler.
//
// Each worker owns run queues of ready actors (stored as opaque items so
// this layer stays below core/). The access pattern is the classic
// work-stealing split, adapted to actors that *circulate* rather than
// complete:
//
//   * the owner pushes fresh wakeups at the FRONT (pop_front() returns them
//     next — LIFO, their mailbox lines are still warm in this core's cache);
//   * an actor that stays ready after running is re-queued at the BACK, so
//     continuously-ready actors round-robin among themselves instead of one
//     hot actor monopolising the owner via the LIFO end;
//   * thieves take from the BACK (steal_back()) — exactly where the
//     continuously-hot actors circulate, so load balancing migrates the
//     actors that are worth migrating. A steal filter lets the thief skip
//     items its enclave affinity mask cannot legally run.
//
// The queue is a preallocated ring (capacity fixed before the workers
// start — the scheduler never allocates on the dispatch path) under one
// ranked HleSpinLock (kRunQueue, below kMbox: a worker may hold the queue
// lock while an actor wakeup probes mailbox counters, never the reverse).
// size() mirrors the count in a lock-free atomic for health snapshots and
// the thief's cheap "is the victim worth locking" probe.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "concurrent/hle_lock.hpp"

namespace ea::concurrent {

class RunQueue {
 public:
  // Returns true when `item` may be taken by the calling thief.
  using StealFilter = bool (*)(void* item, const void* ctx);

  RunQueue() = default;
  RunQueue(const RunQueue&) = delete;
  RunQueue& operator=(const RunQueue&) = delete;

  // Sizes the ring. Must be called before the queue is shared between
  // threads (capacity 0 rejects every push).
  void reserve(std::size_t capacity);

  // Owner: enqueue a fresh wakeup at the front (runs next). False when full.
  bool push_front(void* item) EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);

  // Owner: re-enqueue a still-ready item at the back (fair rotation).
  // False when full.
  bool push_back(void* item) EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);

  // Owner: dequeue from the front; nullptr when empty.
  void* pop_front() EA_LOCK_NOEXCEPT EA_EXCLUDES(lock_);

  // Thief: dequeue the hindmost item accepted by `filter` (nullptr ctx is
  // passed through). Scans back-to-front so the thief prefers the oldest /
  // circulating work; nullptr when nothing eligible.
  void* steal_back(StealFilter filter, const void* ctx) EA_LOCK_NOEXCEPT
      EA_EXCLUDES(lock_);

  // Lock-free approximate occupancy (exact only at quiescence) — the
  // thief's victim probe and the health snapshot read this, never the lock.
  std::size_t size() const noexcept {
    return approx_.load(std::memory_order_relaxed);
  }
  bool empty() const noexcept { return size() == 0; }

 private:
  std::size_t slot(std::size_t logical) const EA_REQUIRES(lock_) {
    return (head_ + logical) % ring_.size();
  }

  mutable HleSpinLock lock_{LockRank::kRunQueue};
  std::vector<void*> ring_ EA_GUARDED_BY(lock_);
  std::size_t head_ EA_GUARDED_BY(lock_) = 0;   // index of front element
  std::size_t count_ EA_GUARDED_BY(lock_) = 0;  // elements in the ring
  alignas(64) std::atomic<std::size_t> approx_{0};
};

}  // namespace ea::concurrent
