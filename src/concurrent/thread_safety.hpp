// Clang Thread Safety Analysis capability macros.
//
// Every hand-rolled HleSpinLock protocol in the runtime (mbox chains, pool
// magazines, sharded POS free lists, socket tables, supervisor state) is a
// correctness contract that, before this header existed, was only checked
// when a TSan run happened to interleave the offending pair. These macros
// move the contract to compile time: locks are *capabilities*, guarded
// members are tagged with the capability that protects them, and functions
// declare what they acquire, release or require. Build with
// -DEA_THREAD_SAFETY=ON (clang only, see cmake/EaSanitize.cmake) and the
// analysis runs under -Werror=thread-safety.
//
// On GCC (and any compiler without the attributes) every macro expands to
// nothing — tests/thread_safety_test.cpp asserts the expansion is literally
// empty so the annotations can never change codegen or layout.
//
// Conventions (DESIGN.md §13):
//   * every HleSpinLock/HostMutex member is a named capability;
//   * every member written under a lock carries EA_GUARDED_BY(lock);
//   * functions with a "caller must hold X" contract carry EA_REQUIRES(X);
//   * deliberately lock-free paths (probe counters, RCU-style walks under
//     the POS epoch sections) are marked EA_NO_THREAD_SAFETY_ANALYSIS and
//     MUST carry an inline `// tsa: <why this is safe>` justification on
//     the same or the preceding line — enclave-lint v2 fails the build
//     otherwise (rule `tsa-unjustified`).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define EA_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef EA_THREAD_ANNOTATION__
#define EA_THREAD_ANNOTATION__(x)
#endif

// Type-level: the class is a capability (a lock). The string names the
// capability kind in diagnostics ("spinlock", "mutex").
#define EA_CAPABILITY(x) EA_THREAD_ANNOTATION__(capability(x))

// Type-level: RAII guard that acquires in its constructor and releases in
// its destructor (HleGuard, HostMutexGuard).
#define EA_SCOPED_CAPABILITY EA_THREAD_ANNOTATION__(scoped_lockable)

// Member-level: reads/writes require holding the given capability.
#define EA_GUARDED_BY(x) EA_THREAD_ANNOTATION__(guarded_by(x))

// Member-level: the *pointee* is protected by the capability (the pointer
// itself may be read freely, e.g. a null check before taking the lock).
#define EA_PT_GUARDED_BY(x) EA_THREAD_ANNOTATION__(pt_guarded_by(x))

// Function-level: caller must already hold the capabilities.
#define EA_REQUIRES(...) \
  EA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

// Function-level: acquires the capabilities (no args = `this`).
#define EA_ACQUIRE(...) \
  EA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

// Function-level: releases the capabilities (no args = `this`).
#define EA_RELEASE(...) \
  EA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

// Function-level: acquires iff the return value equals the first argument.
#define EA_TRY_ACQUIRE(...) \
  EA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// Function-level: caller must NOT hold the capabilities (deadlock guard for
// non-reentrant locks — every HleSpinLock is non-reentrant).
#define EA_EXCLUDES(...) EA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Function-level: asserts the capability is held without acquiring it.
#define EA_ASSERT_CAPABILITY(x) \
  EA_THREAD_ANNOTATION__(assert_capability(x))

// Function-level: the function returns a reference to the capability.
#define EA_RETURN_CAPABILITY(x) EA_THREAD_ANNOTATION__(lock_returned(x))

// Function-level opt-out. Reserved for protocols the analysis cannot
// express (lock-free probes, epoch-protected walks); enclave-lint v2
// requires an adjacent `// tsa:` justification for every use.
#define EA_NO_THREAD_SAFETY_ANALYSIS \
  EA_THREAD_ANNOTATION__(no_thread_safety_analysis)
