// ThreadSanitizer detection and happens-before annotations.
//
// TSan cannot see through the raw `__atomic_*` intrinsics carrying the
// XACQUIRE/XRELEASE HLE flag bits that HleSpinLock uses on x86: it would
// report every structure guarded by the lock as racy. Builds with
// -fsanitize=thread therefore (a) take a std::atomic lock path TSan models
// natively and (b) annotate the lock's synchronisation edges explicitly via
// __tsan_acquire/__tsan_release, so the happens-before relation stays
// declared even if the fallback path's atomics are ever weakened.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define EA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EA_TSAN 1
#endif
#endif

#if defined(EA_TSAN)
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
// NOLINTBEGIN(cppcoreguidelines-macro-usage)
#define EA_TSAN_ACQUIRE(addr) __tsan_acquire(static_cast<void*>(addr))
#define EA_TSAN_RELEASE(addr) __tsan_release(static_cast<void*>(addr))
// NOLINTEND(cppcoreguidelines-macro-usage)
#else
#define EA_TSAN_ACQUIRE(addr) (static_cast<void>(0))
#define EA_TSAN_RELEASE(addr) (static_cast<void>(0))
#endif
