#include "core/actor.hpp"

#include <exception>
#include <stdexcept>

#include "core/runtime.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::core {

const char* to_string(ActorState state) noexcept {
  switch (state) {
    case ActorState::kRunnable:
      return "runnable";
    case ActorState::kFailed:
      return "failed";
    case ActorState::kRestarting:
      return "restarting";
    case ActorState::kQuarantined:
      return "quarantined";
    case ActorState::kMigrating:
      return "migrating";
  }
  return "unknown";
}

ChannelEnd* Actor::connect(const std::string& channel_name) {
  return runtime_->connect_channel(channel_name, placement(), this);
}

void Actor::record_failure(const char* what) noexcept {
  {
    concurrent::HleGuard guard(failure_lock_);
    last_error_ = what != nullptr ? what : "unknown";
    last_failure_invocation_ = invocations();
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  // Release: the supervisor's acquire load of state_ must observe the
  // failure record and every private-state write the body made before
  // throwing.
  state_.store(ActorState::kFailed, std::memory_order_release);
  EA_WARN("core", "actor %s failed (failure #%llu): %s", name_.c_str(),
          static_cast<unsigned long long>(failures()),
          what != nullptr ? what : "unknown");
}

FailureInfo Actor::last_failure() const {
  FailureInfo info;
  info.actor = name_;
  info.enclave = placement();
  info.failure_count = failures();
  concurrent::HleGuard guard(failure_lock_);
  info.what = last_error_;
  info.at_invocation = last_failure_invocation_;
  return info;
}

bool Actor::begin_restart() noexcept {
  ActorState expected = ActorState::kFailed;
  return state_.compare_exchange_strong(expected, ActorState::kRestarting,
                                        std::memory_order_acq_rel);
}

void Actor::complete_restart() noexcept {
  restarts_.fetch_add(1, std::memory_order_relaxed);
  stalled_.store(false, std::memory_order_relaxed);
  // Release: the worker's acquire load of kRunnable must observe every
  // reset on_restart() performed.
  state_.store(ActorState::kRunnable, std::memory_order_release);
}

void Actor::enter_quarantine() noexcept {
  state_.store(ActorState::kQuarantined, std::memory_order_release);
}

bool invoke_contained(Actor& actor) {
  // Migration-barrier handshake (Dekker): publish "a body may be running"
  // BEFORE checking the lifecycle. The coordinator does the mirror-image
  // store(kMigrating, seq_cst) → load(executing_), so one of the two sides
  // always observes the other; a body can never slip in after the
  // coordinator concluded the actor is parked.
  actor.executing_.store(true, std::memory_order_seq_cst);
  if (actor.state_.load(std::memory_order_seq_cst) != ActorState::kRunnable) {
    actor.executing_.store(false, std::memory_order_release);
    return false;
  }
  actor.invocations_.fetch_add(1, std::memory_order_relaxed);
  try {
    // Injected abort-class fault, surfaced as an exception so the
    // containment path (rather than the process) absorbs it. Supervision
    // infrastructure is exempt: the tree's root heals others, nothing
    // heals it.
    if (!actor.fault_exempt_ && EA_FAIL_TRIGGERED("actor.body.throw")) {
      throw std::runtime_error("injected fault: actor.body.throw");
    }
    const bool progress = actor.body();
    actor.executing_.store(false, std::memory_order_release);
    return progress;
  } catch (const std::exception& e) {
    actor.record_failure(e.what());
  } catch (...) {
    actor.record_failure("non-standard exception");
  }
  actor.executing_.store(false, std::memory_order_release);
  return false;
}

}  // namespace ea::core
