#include "core/actor.hpp"

#include "core/runtime.hpp"

namespace ea::core {

ChannelEnd* Actor::connect(const std::string& channel_name) {
  return runtime_->connect_channel(channel_name, placement_);
}

}  // namespace ea::core
