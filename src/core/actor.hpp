// The eactor abstraction (paper §3.1) plus its failure-containment
// lifecycle.
//
// An eactor is a self-contained computational entity with a constructor
// (runs once at startup, inside the eactor's enclave, to connect channels
// and initialise private state) and a body (run repeatedly, round-robin, by
// the worker the eactor is assigned to). Bodies must not block: they poll
// their mailboxes and return when there is nothing to do.
//
// Lifecycle (DESIGN.md §12): actor isolation only pays off when failures
// are contained per-actor instead of killing the process (cf. CAF's
// monitors/supervision). An exception escaping construct() or body() is
// caught by the worker, recorded as a FailureInfo, and moves the actor
//
//     Runnable ──failure──▶ Failed ──supervisor──▶ Restarting ──▶ Runnable
//                              │                        │
//                              └──budget exhausted──────┴──▶ Quarantined
//
// Workers skip any actor that is not Runnable, so a Failed/Quarantined
// actor consumes zero cycles while the rest of the deployment keeps
// running. The SupervisorActor (core/supervisor.hpp) owns the
// Failed → Restarting → Runnable | Quarantined transitions.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "concurrent/hle_lock.hpp"
#include "sgxsim/enclave.hpp"
#include "util/bytes.hpp"

namespace ea::core {

class Runtime;
class ChannelEnd;

// Where an actor is in its failure-containment lifecycle.
enum class ActorState : std::uint8_t {
  kRunnable = 0,     // scheduled normally by its worker
  kFailed = 1,       // body()/construct() threw; awaiting the supervisor
  kRestarting = 2,   // supervisor is running on_restart()
  kQuarantined = 3,  // restart budget exhausted; permanently parked
  kMigrating = 4,    // parked at the migration barrier (DESIGN.md §17);
                     // workers skip it, the supervisor leaves it alone, and
                     // the MigrationCoordinator owns the exit transition
                     // back to kRunnable (success or rollback)
};

const char* to_string(ActorState state) noexcept;

// Dispatch priority under the stealing scheduler (DESIGN.md §14). High
// priority actors are popped (and stolen) before normal ones — the
// supervisor and the fd-facing net actors run high so containment sweeps
// and socket readiness never queue behind bulk message churn. The static
// scheduler ignores priorities (it executes the fixed list round-robin).
enum class ActorPriority : std::uint8_t {
  kNormal = 0,
  kHigh = 1,
};

// Where an actor is in the stealing scheduler's ready/idle protocol
// (DESIGN.md §14). Idle actors occupy no queue slot; their home worker
// re-polls them on its poll ticks. Exactly one worker may hold an actor in
// kQueued/kDispatched at any time — that exclusivity is what preserves
// FIFO-per-actor message order across migrations.
enum class SchedState : std::uint8_t {
  kParked = 0,      // idle: in no run queue; home worker polls it
  kQueued = 1,      // ready: sitting in exactly one worker's run queue
  kDispatched = 2,  // running: a worker is executing its body
};

// Snapshot of an actor's most recent failure, recorded by the worker at
// containment time and consumed by the supervisor / health reporting.
struct FailureInfo {
  std::string actor;                                // actor name
  sgxsim::EnclaveId enclave = sgxsim::kUntrusted;   // its placement
  std::string what;                                 // exception what()
  std::uint64_t at_invocation = 0;                  // invocations() when it failed
  std::uint64_t failure_count = 0;                  // total failures so far
};

class Actor {
 public:
  explicit Actor(std::string name) : name_(std::move(name)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& name() const noexcept { return name_; }

  // Enclave this actor is deployed into (kUntrusted when outside). Atomic:
  // migration rewrites it while workers concurrently read it for dispatch
  // (the stealing scheduler re-reads the placement on every dispatch, which
  // is what makes live migration possible at all — DESIGN.md §17).
  sgxsim::EnclaveId placement() const noexcept {
    return placement_.load(std::memory_order_acquire);
  }

  // --- hooks implemented by the application ------------------------------

  // Constructor function: connect channels, initialise private state.
  // Runs inside the actor's enclave.
  virtual void construct(Runtime& rt) { (void)rt; }

  // Body function: one scheduling quantum. Returns true if the actor made
  // progress (processed or produced a message); workers use this to back
  // off when a whole round was idle.
  virtual bool body() = 0;

  // Restart hook: runs (inside the actor's enclave) when the supervisor
  // moves the actor Failed → Restarting. Reset whatever private state the
  // failure may have corrupted and re-arm subscriptions/channels; throwing
  // here counts as a failed restart attempt (back to Failed, backoff
  // doubles). The default keeps all state — pure message-pump actors are
  // restartable as-is.
  virtual void on_restart() {}

  // Quarantine hook: runs when the supervisor gives up on this actor.
  // Implementations MUST drain privately held nodes (mboxes, pending
  // queues) back to their pools so node conservation holds for the rest of
  // the deployment.
  virtual void on_quarantine() {}

  // Pending-work signal for the supervisor's stall watchdog: true when the
  // actor has input queued (non-empty mboxes/channels) that body() should
  // be consuming. Must be thread-safe and cheap (lock-free mbox counters);
  // the default (no pending work) opts the actor out of stall detection.
  virtual bool has_pending_work() const { return false; }

  // --- migration hooks (DESIGN.md §17) ------------------------------------
  //
  // An actor opts into live migration by overriding migratable() plus the
  // state hooks below. export/import run inside the respective enclave with
  // the actor parked at the migration barrier, so they may touch private
  // state freely. The POS hooks keep ea_core decoupled from ea_pos: an
  // actor that keys a POS partition exports it itself (the coordinator only
  // carries the resulting bytes inside the sealed bundle).

  // Whether this actor can be migrated at all. Actors pinned to host
  // resources (raw fds, thread affinity) stay put.
  virtual bool migratable() const { return false; }

  // Serialises private state at the source (runs in the source enclave).
  virtual util::Bytes export_state() { return {}; }

  // Rebuilds private state at the destination (runs in the target enclave).
  // Returning false fails the migration — the coordinator rolls back to the
  // source copy.
  virtual bool import_state(std::span<const std::uint8_t> state) {
    return state.empty();
  }

  // Exports AND erases this actor's POS partition at the current placement
  // (the erase is what makes resume-at-target the only live copy).
  virtual util::Bytes export_pos_partition() { return {}; }

  // Replays the POS partition at the destination.
  virtual bool import_pos_partition(std::span<const std::uint8_t> blob) {
    return blob.empty();
  }

  // Runs in the target enclave after a successful resume (re-derive keys,
  // re-register with shared tables, …).
  virtual void on_migrated(sgxsim::EnclaveId from, sgxsim::EnclaveId to) {
    (void)from;
    (void)to;
  }

  // --- runtime plumbing ---------------------------------------------------

  // Connects this actor to a named channel (creating it on first use) and
  // returns the endpoint. Only valid during construct().
  ChannelEnd* connect(const std::string& channel_name);

  // Approximate private-state size for EPC accounting. Override when an
  // actor owns large buffers.
  virtual std::uint64_t state_bytes() const { return 4096; }

  // Scheduling priority (stealing scheduler only). Set before start();
  // system actors (supervisor, net fd pumps) default themselves high.
  void set_priority(ActorPriority priority) noexcept { priority_ = priority; }
  ActorPriority priority() const noexcept { return priority_; }

  std::uint64_t invocations() const noexcept {
    return invocations_.load(std::memory_order_relaxed);
  }

  // --- lifecycle observation ---------------------------------------------

  ActorState lifecycle() const noexcept {
    return state_.load(std::memory_order_acquire);
  }

  // Total contained failures (construct() + body() + on_restart() throws).
  std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

  // Successful supervisor restarts.
  std::uint32_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }

  // Set by the supervisor's watchdog: invocations stopped moving while
  // pending work was queued. Cleared when the actor progresses again.
  bool stalled() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
  }

  // Copy of the most recent failure record (empty `what` if none).
  FailureInfo last_failure() const EA_EXCLUDES(failure_lock_);

 private:
  friend class Runtime;
  friend class Worker;
  friend class SupervisorActor;
  friend class MigrationCoordinator;
  friend bool invoke_contained(Actor& actor);

  // Containment bookkeeping: stores the failure record and moves the actor
  // to Failed. Called by the worker (body), the runtime (construct) and the
  // supervisor (on_restart); never throws into the caller.
  void record_failure(const char* what) noexcept EA_EXCLUDES(failure_lock_);

  // Supervisor-side transitions (see the state machine above).
  bool begin_restart() noexcept;     // Failed -> Restarting (CAS)
  void complete_restart() noexcept;  // Restarting -> Runnable
  void enter_quarantine() noexcept;  // Failed|Restarting -> Quarantined

  std::string name_;
  std::atomic<sgxsim::EnclaveId> placement_{sgxsim::kUntrusted};
  Runtime* runtime_ = nullptr;
  std::atomic<std::uint64_t> invocations_{0};

  // --- stealing-scheduler state (owned by core/worker.cpp) ----------------
  // sched_state_ is the exclusivity token: kParked -> kQueued happens via
  // CAS (poll ticks may race between two home workers sharing an actor),
  // kQueued -> kDispatched is done by the worker that popped the queue
  // entry (it holds the only reference), and the dispatching worker alone
  // performs the kDispatched -> kQueued/kParked hand-back with release
  // ordering so the next dispatcher observes the body's private state.
  ActorPriority priority_ = ActorPriority::kNormal;
  std::atomic<SchedState> sched_state_{SchedState::kParked};

  std::atomic<ActorState> state_{ActorState::kRunnable};
  // Dekker flag for the migration barrier: invoke_contained() publishes
  // executing_=true (seq_cst) BEFORE it loads state_, and the coordinator
  // stores kMigrating (seq_cst) before it loads executing_. Either the body
  // sees kMigrating and declines to run, or the coordinator sees
  // executing_=true and waits — a body can never start after the barrier
  // check passed.
  std::atomic<bool> executing_{false};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint32_t> restarts_{0};
  std::atomic<bool> stalled_{false};
  // Supervision infrastructure (the supervisor itself) opts out of
  // injected body faults — the root of the supervision tree has no
  // supervisor above it to heal it.
  bool fault_exempt_ = false;

  mutable concurrent::HleSpinLock failure_lock_{
      concurrent::LockRank::kActorFailure};
  std::string last_error_ EA_GUARDED_BY(failure_lock_);
  std::uint64_t last_failure_invocation_ EA_GUARDED_BY(failure_lock_) = 0;
};

// Runs one contained scheduling quantum of `actor`: skips it unless
// Runnable, counts the invocation, executes body() and converts an escaping
// exception (or an injected `actor.body.throw` failpoint fault) into a
// Failed transition instead of crashing the process. Does NOT enter the
// actor's enclave — callers (workers) manage placement. Returns body()'s
// progress flag; false when skipped or failed.
bool invoke_contained(Actor& actor);

}  // namespace ea::core
