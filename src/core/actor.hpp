// The eactor abstraction (paper §3.1).
//
// An eactor is a self-contained computational entity with a constructor
// (runs once at startup, inside the eactor's enclave, to connect channels
// and initialise private state) and a body (run repeatedly, round-robin, by
// the worker the eactor is assigned to). Bodies must not block: they poll
// their mailboxes and return when there is nothing to do.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sgxsim/enclave.hpp"

namespace ea::core {

class Runtime;
class ChannelEnd;

class Actor {
 public:
  explicit Actor(std::string name) : name_(std::move(name)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& name() const noexcept { return name_; }

  // Enclave this actor is deployed into (kUntrusted when outside).
  sgxsim::EnclaveId placement() const noexcept { return placement_; }

  // --- hooks implemented by the application ------------------------------

  // Constructor function: connect channels, initialise private state.
  // Runs inside the actor's enclave.
  virtual void construct(Runtime& rt) { (void)rt; }

  // Body function: one scheduling quantum. Returns true if the actor made
  // progress (processed or produced a message); workers use this to back
  // off when a whole round was idle.
  virtual bool body() = 0;

  // --- runtime plumbing ---------------------------------------------------

  // Connects this actor to a named channel (creating it on first use) and
  // returns the endpoint. Only valid during construct().
  ChannelEnd* connect(const std::string& channel_name);

  // Approximate private-state size for EPC accounting. Override when an
  // actor owns large buffers.
  virtual std::uint64_t state_bytes() const { return 4096; }

  std::uint64_t invocations() const noexcept {
    return invocations_.load(std::memory_order_relaxed);
  }

 private:
  friend class Runtime;
  friend class Worker;

  std::string name_;
  sgxsim::EnclaveId placement_ = sgxsim::kUntrusted;
  Runtime* runtime_ = nullptr;
  std::atomic<std::uint64_t> invocations_{0};
};

}  // namespace ea::core
