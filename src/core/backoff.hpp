// Deterministic exponential backoff with jitter.
//
// Shared by the supervision layer (restart pacing), the network
// reconnector (re-open pacing) and the XMPP client (reconnect pacing), so
// every retry loop in the system obeys the same shape: exponential growth
// from `initial_us`, hard-capped at `max_us`, with a ±`jitter_pct` spread
// so a fleet of retriers does not synchronise into thundering herds.
//
// The jitter source is an explicitly seeded xorshift generator: two
// schedules constructed with the same policy and seed produce bit-identical
// delay sequences, which is what makes restart behaviour testable (the
// supervision unit tests assert the schedule, not a distribution).
#pragma once

#include <cstdint>

namespace ea::core {

struct BackoffPolicy {
  std::uint32_t initial_us = 1000;   // first delay
  std::uint32_t max_us = 100000;     // cap (also bounds a single retry wait)
  std::uint32_t multiplier = 2;      // growth factor per attempt
  std::uint32_t jitter_pct = 20;     // ± percent spread around the base
};

class BackoffSchedule {
 public:
  explicit BackoffSchedule(BackoffPolicy policy = {}, std::uint64_t seed = 1)
      : policy_(policy), rng_(seed != 0 ? seed : 1), base_us_(policy.initial_us) {}

  // Delay for the next attempt, advancing the schedule. Deterministic for
  // a given (policy, seed, attempt index).
  std::uint64_t next_delay_us() noexcept {
    ++attempts_;
    const std::uint64_t base = base_us_;
    // Advance the exponential base, saturating at the cap.
    if (base_us_ < policy_.max_us) {
      const std::uint64_t grown =
          base_us_ * (policy_.multiplier > 1 ? policy_.multiplier : 2);
      base_us_ = grown > policy_.max_us ? policy_.max_us : grown;
    }
    if (policy_.jitter_pct == 0) return base;
    // base * (1 ± jitter): pick a point in [base - spread, base + spread].
    const std::uint64_t spread = base * policy_.jitter_pct / 100;
    if (spread == 0) return base;
    const std::uint64_t lo = base - spread;
    return lo + next_rand() % (2 * spread + 1);
  }

  // Number of attempts issued since construction / the last reset.
  std::uint32_t attempts() const noexcept { return attempts_; }

  // Back to the initial delay (after a period of stability). The jitter
  // stream is NOT rewound — only the exponential base resets.
  void reset() noexcept {
    base_us_ = policy_.initial_us;
    attempts_ = 0;
  }

  const BackoffPolicy& policy() const noexcept { return policy_; }

 private:
  std::uint64_t next_rand() noexcept {
    // xorshift64*: cheap, seedable, good enough for jitter.
    std::uint64_t x = rng_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  BackoffPolicy policy_;
  std::uint64_t rng_;
  std::uint64_t base_us_;
  std::uint32_t attempts_ = 0;
};

}  // namespace ea::core
