#include "core/channel.hpp"

#include <cstring>

#include "crypto/rng.hpp"
#include "sgxsim/attestation.hpp"
#include "util/logging.hpp"

namespace ea::core {
namespace {

// --- hardware-AEAD performance model (see CipherModel::kHardwareModel) ----
//
// Frame: counter(8) || body (payload XOR keystream) || checksum(8).

std::uint64_t key_seed(const crypto::AeadKey& key) {
  return util::load_le64(key.data());
}

void fast_transform(std::uint64_t seed, std::span<std::uint8_t> body) {
  crypto::FastRng rng(seed);
  std::size_t i = 0;
  while (i + 8 <= body.size()) {
    std::uint64_t ks = rng.next();
    std::uint64_t word = util::load_le64(body.data() + i);
    util::store_le64(body.data() + i, word ^ ks);
    i += 8;
  }
  if (i < body.size()) {
    std::uint64_t ks = rng.next();
    for (std::size_t j = 0; i + j < body.size(); ++j) {
      body[i + j] ^= static_cast<std::uint8_t>(ks >> (8 * j));
    }
  }
}

std::uint64_t fast_checksum(std::uint64_t seed,
                            std::span<const std::uint8_t> body) {
  std::uint64_t sum = seed * 0x9e3779b97f4a7c15ull;
  std::size_t i = 0;
  while (i + 8 <= body.size()) {
    sum += util::load_le64(body.data() + i) * 0xff51afd7ed558ccdull;
    i += 8;
  }
  for (; i < body.size(); ++i) sum += std::uint64_t{body[i]} << (i % 56);
  return sum;
}

}  // namespace

Channel::Channel(std::string name, ChannelOptions options,
                 concurrent::Pool& pool)
    : name_(std::move(name)), options_(options), pool_(pool) {
  ends_[0].channel_ = this;
  ends_[0].side_ = 0;
  ends_[1].channel_ = this;
  ends_[1].side_ = 1;
}

ChannelEnd* Channel::connect(sgxsim::EnclaveId placement) {
  if (connected_ >= 2) return nullptr;
  int side = connected_++;
  placements_[side] = placement;
  if (connected_ == 2) {
    // Both placements known: decide the wire format once.
    const bool cross_enclave = placements_[0] != placements_[1] &&
                               placements_[0] != sgxsim::kUntrusted &&
                               placements_[1] != sgxsim::kUntrusted;
    if (cross_enclave && !options_.force_plain) {
      auto& mgr = sgxsim::EnclaveManager::instance();
      sgxsim::Enclave* a = mgr.find(placements_[0]);
      sgxsim::Enclave* b = mgr.find(placements_[1]);
      if (a != nullptr && b != nullptr) {
        key_ = sgxsim::establish_session_key(*a, *b);
        encrypted_ = key_.has_value();
      }
      if (!encrypted_) {
        EA_WARN("core", "channel %s: attestation failed, staying plain",
                name_.c_str());
      }
    }
    EA_DEBUG("core", "channel %s connected (%u <-> %u) %s", name_.c_str(),
             placements_[0], placements_[1],
             encrypted_ ? "encrypted" : "plain");
  }
  return &ends_[side];
}

bool Channel::send_from(int side, std::span<const std::uint8_t> bytes) {
  concurrent::Node* node = pool_.get();
  if (node == nullptr) return false;  // pool exhausted; caller retries
  if (encrypted_ && options_.cipher == CipherModel::kHardwareModel) {
    if (bytes.size() + 16 > node->capacity) {
      pool_.put(node);
      return false;
    }
    std::uint64_t ctr =
        send_counter_[side].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seed = key_seed(*key_) ^ (ctr * 2 + side);
    std::uint8_t* p = node->payload();
    util::store_le64(p, ctr);
    if (!bytes.empty()) std::memcpy(p + 8, bytes.data(), bytes.size());
    fast_transform(seed, std::span<std::uint8_t>(p + 8, bytes.size()));
    util::store_le64(p + 8 + bytes.size(),
                     fast_checksum(seed, bytes));
    node->size = static_cast<std::uint32_t>(bytes.size() + 16);
    dir_[side == 0 ? 0 : 1].push(node);
    return true;
  }
  if (encrypted_) {
    std::uint64_t ctr =
        send_counter_[side].fetch_add(1, std::memory_order_relaxed);
    // The AAD pins direction so a malicious runtime cannot reflect
    // messages back at their sender.
    std::uint8_t aad[1] = {static_cast<std::uint8_t>(side)};
    util::Bytes framed = crypto::seal_with_counter(*key_, ctr, aad, bytes);
    if (framed.size() > node->capacity) {
      pool_.put(node);
      return false;
    }
    node->fill(framed);
  } else {
    if (bytes.size() > node->capacity) {
      pool_.put(node);
      return false;
    }
    node->fill(bytes);
  }
  dir_[side == 0 ? 0 : 1].push(node);
  return true;
}

concurrent::NodeLease Channel::recv_at(int side) {
  // Side A receives from dir_[1] (B->A); side B from dir_[0].
  concurrent::Node* node = dir_[side == 0 ? 1 : 0].pop();
  if (node == nullptr) return concurrent::NodeLease();
  concurrent::NodeLease lease(node);
  if (encrypted_ && options_.cipher == CipherModel::kHardwareModel) {
    if (node->size < 16) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      return concurrent::NodeLease();
    }
    std::uint8_t* p = node->payload();
    std::size_t body_len = node->size - 16;
    std::uint64_t ctr = util::load_le64(p);
    std::uint64_t seed = key_seed(*key_) ^ (ctr * 2 + (1 - side));
    fast_transform(seed, std::span<std::uint8_t>(p + 8, body_len));
    std::uint64_t expected = util::load_le64(p + 8 + body_len);
    std::uint64_t actual = fast_checksum(
        seed, std::span<const std::uint8_t>(p + 8, body_len));
    if (expected != actual) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      return concurrent::NodeLease();
    }
    std::memmove(p, p + 8, body_len);
    node->size = static_cast<std::uint32_t>(body_len);
    return lease;
  }
  if (encrypted_) {
    std::uint8_t aad[1] = {static_cast<std::uint8_t>(1 - side)};
    std::optional<util::Bytes> plain =
        crypto::open_framed(*key_, aad, node->data());
    if (!plain.has_value()) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      EA_WARN("core", "channel %s: dropping message failing authentication",
              name_.c_str());
      return concurrent::NodeLease();  // lease returns node to pool
    }
    node->fill(*plain);
  }
  return lease;
}

bool ChannelEnd::send(std::span<const std::uint8_t> bytes) {
  return channel_->send_from(side_, bytes);
}

concurrent::NodeLease ChannelEnd::recv() { return channel_->recv_at(side_); }

bool ChannelEnd::pending() const {
  return !channel_->dir_[side_ == 0 ? 1 : 0].empty();
}

bool ChannelEnd::encrypted() const { return channel_->encrypted_; }

}  // namespace ea::core
