#include "core/channel.hpp"

#include <cstring>
#include <vector>

#include "crypto/rng.hpp"
#include "sgxsim/attestation.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::core {
namespace {

// --- hardware-AEAD performance model (see CipherModel::kHardwareModel) ----
//
// Frame: counter(8) || body (payload XOR keystream) || checksum(8).

std::uint64_t key_seed(const crypto::AeadKey& key) {
  return util::load_le64(key.data());
}

// Domain separation for batch frames in the hardware model: a different
// keystream/checksum seed, mirroring the extra AAD byte the real AEAD path
// uses. A runtime re-tagging a frame makes the checksum fail.
constexpr std::uint64_t kBatchSeedTweak = 0x9d5c0fb3a7e41d2bull;

void fast_transform(std::uint64_t seed, std::span<std::uint8_t> body) {
  crypto::FastRng rng(seed);
  std::size_t i = 0;
  while (i + 8 <= body.size()) {
    std::uint64_t ks = rng.next();
    std::uint64_t word = util::load_le64(body.data() + i);
    util::store_le64(body.data() + i, word ^ ks);
    i += 8;
  }
  if (i < body.size()) {
    std::uint64_t ks = rng.next();
    for (std::size_t j = 0; i + j < body.size(); ++j) {
      body[i + j] ^= static_cast<std::uint8_t>(ks >> (8 * j));
    }
  }
}

std::uint64_t fast_checksum(std::uint64_t seed,
                            std::span<const std::uint8_t> body) {
  std::uint64_t sum = seed * 0x9e3779b97f4a7c15ull;
  std::size_t i = 0;
  while (i + 8 <= body.size()) {
    sum += util::load_le64(body.data() + i) * 0xff51afd7ed558ccdull;
    i += 8;
  }
  for (; i < body.size(); ++i) sum += std::uint64_t{body[i]} << (i % 56);
  return sum;
}

}  // namespace

Channel::Channel(std::string name, ChannelOptions options,
                 concurrent::Pool& pool)
    : name_(std::move(name)), options_(options), pool_(pool) {
  ends_[0].channel_ = this;
  ends_[0].side_ = 0;
  ends_[1].channel_ = this;
  ends_[1].side_ = 1;
}

void Channel::decide_wire_format() {
  encrypted_ = false;
  key_.reset();
  const bool cross_enclave = placements_[0] != placements_[1] &&
                             placements_[0] != sgxsim::kUntrusted &&
                             placements_[1] != sgxsim::kUntrusted;
  if (cross_enclave && !options_.force_plain) {
    auto& mgr = sgxsim::EnclaveManager::instance();
    sgxsim::Enclave* a = mgr.find(placements_[0]);
    sgxsim::Enclave* b = mgr.find(placements_[1]);
    if (a != nullptr && b != nullptr) {
      key_ = sgxsim::establish_session_key(*a, *b);
      encrypted_ = key_.has_value();
    }
    if (!encrypted_) {
      EA_WARN("core", "channel %s: attestation failed, staying plain",
              name_.c_str());
    }
  }
}

ChannelEnd* Channel::connect(sgxsim::EnclaveId placement, Actor* owner) {
  if (connected_ >= 2) return nullptr;
  int side = connected_++;
  placements_[side] = placement;
  owners_[side] = owner;
  if (connected_ == 2) {
    // Both placements known: decide the wire format once.
    decide_wire_format();
    EA_DEBUG("core", "channel %s connected (%u <-> %u) %s", name_.c_str(),
             placements_[0], placements_[1],
             encrypted_ ? "encrypted" : "plain");
  }
  return &ends_[side];
}

std::size_t Channel::rebind_for_migration(const Actor& owner,
                                          sgxsim::EnclaveId new_placement) {
  bool owned = false;
  for (int side = 0; side < 2; ++side) {
    if (owners_[side] == &owner) {
      placements_[side] = new_placement;
      owned = true;
    }
  }
  if (!owned || connected_ < 2) return 0;

  // Both endpoint actors are parked (coordinator contract), so the drain
  // below races nothing. Pop everything through recv_at — it decrypts under
  // the current (old) key and unpacks batch frames — before the format
  // flips; re-injection below re-seals under the new format.
  std::vector<concurrent::NodeLease> in_flight[2];
  for (int recv_side = 0; recv_side < 2; ++recv_side) {
    const int from_dir = recv_side == 0 ? 1 : 0;
    while (true) {
      const bool mbox_empty = dir_[from_dir].empty();
      const std::uint32_t batch_left = pending_batch_[recv_side].remaining;
      if (mbox_empty && batch_left == 0) break;
      concurrent::NodeLease lease = recv_at(recv_side);
      if (lease) {
        in_flight[from_dir].push_back(std::move(lease));
        continue;
      }
      // Empty lease while input remained: either a message was consumed
      // and dropped (auth failure) — progress — or a batch unpack parked on
      // pool exhaustion — no progress, so stop rather than spin. The frame
      // stays queued for the resumed actor; nothing is freed here.
      if (dir_[from_dir].empty() == mbox_empty &&
          pending_batch_[recv_side].remaining == batch_left) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        EA_WARN("core",
                "channel %s: rebind could not drain a batch frame "
                "(pool exhausted); frame left in place",
                name_.c_str());
        break;
      }
    }
  }

  decide_wire_format();

  std::size_t carried = 0;
  for (int d = 0; d < 2; ++d) {
    for (auto& lease : in_flight[d]) {
      // dir_[0] carries side-0 sends; re-inject from the same sender so the
      // AAD direction byte stays truthful under the new key.
      if (send_node_from(/*side=*/d, std::move(lease))) {
        ++carried;
      } else {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        EA_WARN("core", "channel %s: message did not survive rebind re-seal",
                name_.c_str());
      }
    }
  }
  EA_DEBUG("core", "channel %s rebound (%u <-> %u) %s, %zu in-flight carried",
           name_.c_str(), placements_[0], placements_[1],
           encrypted_ ? "encrypted" : "plain", carried);
  return carried;
}

// --- sealing / opening ------------------------------------------------------

std::size_t Channel::plaintext_offset() const noexcept {
  if (!encrypted_) return 0;
  return options_.cipher == CipherModel::kHardwareModel
             ? 8  // counter header
             : crypto::kAeadNonceSize;
}

std::size_t Channel::cipher_overhead() const noexcept {
  if (!encrypted_) return 0;
  return options_.cipher == CipherModel::kHardwareModel
             ? 16  // counter(8) + checksum(8)
             : crypto::kAeadOverhead;
}

void Channel::seal_in_place(int side, concurrent::Node& node, std::size_t len,
                            bool batch) {
  std::uint8_t* p = node.payload();
  if (!encrypted_) {
    node.size = static_cast<std::uint32_t>(len);
    return;
  }
  std::uint64_t ctr =
      send_counter_[side].fetch_add(1, std::memory_order_relaxed);
  if (options_.cipher == CipherModel::kHardwareModel) {
    std::uint64_t seed = key_seed(*key_) ^ (ctr * 2 + side);
    if (batch) seed ^= kBatchSeedTweak;
    util::store_le64(p, ctr);
    std::uint64_t sum =
        fast_checksum(seed, std::span<const std::uint8_t>(p + 8, len));
    fast_transform(seed, std::span<std::uint8_t>(p + 8, len));
    util::store_le64(p + 8 + len, sum);
    node.size = static_cast<std::uint32_t>(len + 16);
    return;
  }
  // The AAD pins direction so a malicious runtime cannot reflect messages
  // back at their sender; the second byte separates batch frames from
  // single messages so re-tagging a node fails to open.
  std::uint8_t aad[2] = {static_cast<std::uint8_t>(side), 1};
  std::span<const std::uint8_t> aad_span(aad, batch ? 2u : 1u);
  const std::size_t total = len + crypto::kAeadOverhead;
  crypto::seal_framed_into(*key_, ctr, aad_span,
                           std::span<std::uint8_t>(p, total));
  node.size = static_cast<std::uint32_t>(total);
}

bool Channel::seal_into(int side, concurrent::Node& node,
                        std::span<const std::uint8_t> bytes, bool batch) {
  if (bytes.size() + cipher_overhead() > node.capacity) return false;
  if (!bytes.empty()) {
    std::memcpy(node.payload() + plaintext_offset(), bytes.data(),
                bytes.size());
  }
  seal_in_place(side, node, bytes.size(), batch);
  return true;
}

bool Channel::open_in_place(int side, concurrent::Node& node, bool batch) {
  if (!encrypted_) return true;
  const int sender = 1 - side;
  std::uint8_t* p = node.payload();
  if (options_.cipher == CipherModel::kHardwareModel) {
    if (node.size < 16) return false;
    std::size_t body_len = node.size - 16;
    std::uint64_t ctr = util::load_le64(p);
    std::uint64_t seed = key_seed(*key_) ^ (ctr * 2 + sender);
    if (batch) seed ^= kBatchSeedTweak;
    fast_transform(seed, std::span<std::uint8_t>(p + 8, body_len));
    std::uint64_t expected = util::load_le64(p + 8 + body_len);
    std::uint64_t actual =
        fast_checksum(seed, std::span<const std::uint8_t>(p + 8, body_len));
    if (expected != actual) return false;
    std::memmove(p, p + 8, body_len);
    node.size = static_cast<std::uint32_t>(body_len);
    return true;
  }
  std::uint8_t aad[2] = {static_cast<std::uint8_t>(sender), 1};
  std::span<const std::uint8_t> aad_span(aad, batch ? 2u : 1u);
  std::size_t plain_len = 0;
  if (!crypto::open_framed_in_place(
          *key_, aad_span, std::span<std::uint8_t>(p, node.size),
          plain_len)) {
    return false;
  }
  std::memmove(p, p + crypto::kAeadNonceSize, plain_len);
  node.size = static_cast<std::uint32_t>(plain_len);
  return true;
}

// --- single-message path ----------------------------------------------------

bool Channel::send_from(int side, std::span<const std::uint8_t> bytes) {
  concurrent::Node* node = pool_.get();
  if (node == nullptr) return false;  // pool exhausted; caller retries
  if (!seal_into(side, *node, bytes, /*batch=*/false)) {
    pool_.put(node);
    return false;
  }
  payload_copies_.fetch_add(1, std::memory_order_relaxed);
  dir_[side == 0 ? 0 : 1].push(node);
  return true;
}

bool Channel::send_node_from(int side, concurrent::NodeLease&& lease) {
  concurrent::Node* node = lease.get();
  if (node == nullptr) return false;
  // The frame tag is reserved wire metadata; a donated node must never
  // impersonate a batch frame.
  if (node->tag == kBatchFrameTag) node->tag = 0;
  if (!encrypted_) {
    // Co-located (or explicitly plain) fast path: donate the node pointer.
    // The payload is not touched — EActors' "only pointers are passed
    // around" discipline applied to channel sends.
    moved_sends_.fetch_add(1, std::memory_order_relaxed);
    dir_[side == 0 ? 0 : 1].push(lease.release());
    return true;
  }
  // Cross-enclave: the node memory is untrusted, so the payload must still
  // be sealed. Stage it to the wire's plaintext offset (the one copy this
  // path pays) and seal in place; AEAD framing is identical to send().
  const std::size_t len = node->size;
  if (len + cipher_overhead() > node->capacity) return false;  // lease frees
  std::uint8_t* p = node->payload();
  const std::size_t off = plaintext_offset();
  if (off != 0 && len != 0) std::memmove(p + off, p, len);
  seal_in_place(side, *node, len, /*batch=*/false);
  payload_copies_.fetch_add(1, std::memory_order_relaxed);
  dir_[side == 0 ? 0 : 1].push(lease.release());
  return true;
}

concurrent::NodeLease Channel::recv_at(int side) {
  // A batch frame in flight hands out its next message first (FIFO: the
  // frame was popped before anything still queued behind it).
  if (pending_batch_[side].remaining > 0) return next_from_batch(side);
  // Side A receives from dir_[1] (B->A); side B from dir_[0].
  concurrent::Node* node = dir_[side == 0 ? 1 : 0].pop();
  if (node == nullptr) return concurrent::NodeLease();
  concurrent::NodeLease lease(node);
  const bool batch = node->tag == kBatchFrameTag;
  // Injected wire corruption: flip one ciphertext byte before opening, as a
  // tampering runtime would. Authentication must reject the node.
  if (EA_FAIL_TRIGGERED("channel.recv.corrupt") && node->size > 0) {
    node->payload()[node->size - 1] ^= 0x01;
  }
  if (!open_in_place(side, *node, batch)) {
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
    EA_WARN("core", "channel %s: dropping message failing authentication",
            name_.c_str());
    return concurrent::NodeLease();  // lease returns node to pool
  }
  if (!batch) return lease;
  // Injected truncation *after* authentication: models a parser bug or a
  // sender whose frame claims more sub-messages than it carries. The batch
  // walk must count a frame error and drop the remainder, never over-read.
  if (EA_FAIL_TRIGGERED("channel.batch.truncate") && node->size > 6) {
    node->size = 6;  // count field survives; the first length field cannot
  }
  if (node->size < 4) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    return concurrent::NodeLease();
  }
  std::uint32_t count = util::load_le32(node->payload());
  if (count == 0) return concurrent::NodeLease();  // empty frame: drop
  pending_batch_[side] = PendingBatch{std::move(lease), count, 4};
  return next_from_batch(side);
}

concurrent::NodeLease Channel::next_from_batch(int side) {
  PendingBatch& pb = pending_batch_[side];
  concurrent::Node* frame = pb.frame.get();
  const std::uint8_t* p = frame->payload();
  if (pb.offset + 4 > frame->size) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    EA_WARN("core", "channel %s: malformed batch frame, dropping remainder",
            name_.c_str());
    pb = PendingBatch{};
    return concurrent::NodeLease();
  }
  std::uint32_t len = util::load_le32(p + pb.offset);
  if (pb.offset + 4 + len > frame->size) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    EA_WARN("core", "channel %s: malformed batch frame, dropping remainder",
            name_.c_str());
    pb = PendingBatch{};
    return concurrent::NodeLease();
  }
  if (pb.remaining == 1) {
    // Last sub-message: deliver it in the frame node itself (memmove to the
    // front) instead of drawing a fresh node. A frame therefore needs at
    // most count-1 free nodes to unpack, and a frame of one is pool-neutral
    // exactly like a single message.
    std::uint8_t* wp = frame->payload();
    std::memmove(wp, wp + pb.offset + 4, len);
    frame->size = len;
    frame->tag = 0;
    concurrent::NodeLease out_lease = std::move(pb.frame);
    pb = PendingBatch{};
    return out_lease;
  }
  concurrent::Node* out = pool_.get();
  if (out == nullptr) {
    // Pool exhausted: keep the frame parked without advancing — nothing is
    // lost, the caller simply retries on its next activation.
    return concurrent::NodeLease();
  }
  concurrent::NodeLease out_lease(out);
  if (len > out->capacity) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    pb = PendingBatch{};
    return concurrent::NodeLease();
  }
  out->fill(std::span<const std::uint8_t>(p + pb.offset + 4, len));
  pb.offset += 4 + len;
  if (--pb.remaining == 0) pb = PendingBatch{};  // frame node back to pool
  return out_lease;
}

// --- batch path -------------------------------------------------------------

std::size_t Channel::send_batch_from(
    int side, std::span<const std::span<const std::uint8_t>> msgs) {
  if (msgs.empty()) return 0;
  concurrent::Node* node = pool_.get();
  if (node == nullptr) return 0;
  // Budget for the inner frame: node capacity minus the cipher expansion.
  const std::size_t overhead = cipher_overhead();
  if (node->capacity <= overhead + 4) {
    pool_.put(node);
    return 0;
  }
  const std::size_t budget = node->capacity - overhead;
  std::size_t used = 4;  // u32 message count
  std::size_t packed = 0;
  for (const auto& msg : msgs) {
    std::size_t need = 4 + msg.size();
    if (used + need > budget) break;
    used += need;
    ++packed;
  }
  if (packed == 0) {
    pool_.put(node);
    return 0;
  }
  // Inner frame: count(4) || (len(4) || bytes)*. Assembled directly at the
  // node's plaintext offset and sealed in place — the whole batch path
  // performs exactly one copy per message and no allocation.
  std::uint8_t* inner = node->payload() + plaintext_offset();
  util::store_le32(inner, static_cast<std::uint32_t>(packed));
  std::size_t off = 4;
  for (std::size_t i = 0; i < packed; ++i) {
    util::store_le32(inner + off, static_cast<std::uint32_t>(msgs[i].size()));
    off += 4;
    if (!msgs[i].empty()) {
      std::memcpy(inner + off, msgs[i].data(), msgs[i].size());
    }
    off += msgs[i].size();
  }
  seal_in_place(side, *node, used, /*batch=*/true);
  node->tag = kBatchFrameTag;
  payload_copies_.fetch_add(packed, std::memory_order_relaxed);
  dir_[side == 0 ? 0 : 1].push(node);
  return packed;
}

std::size_t Channel::recv_burst_at(int side, concurrent::NodeLease* out,
                                   std::size_t max) {
  std::size_t got = 0;
  while (got < max) {
    concurrent::NodeLease lease = recv_at(side);
    if (!lease) break;
    out[got++] = std::move(lease);
  }
  return got;
}

// --- ChannelEnd -------------------------------------------------------------

bool ChannelEnd::send(std::span<const std::uint8_t> bytes) {
  return channel_->send_from(side_, bytes);
}

std::size_t ChannelEnd::send_batch(
    std::span<const std::span<const std::uint8_t>> msgs) {
  return channel_->send_batch_from(side_, msgs);
}

bool ChannelEnd::send_node(concurrent::NodeLease&& lease) {
  return channel_->send_node_from(side_, std::move(lease));
}

concurrent::NodeLease ChannelEnd::recv() { return channel_->recv_at(side_); }

std::size_t ChannelEnd::recv_burst(concurrent::NodeLease* out,
                                   std::size_t max) {
  return channel_->recv_burst_at(side_, out, max);
}

bool ChannelEnd::pending() const {
  return channel_->pending_batch_[side_].remaining > 0 ||
         !channel_->dir_[side_ == 0 ? 1 : 0].empty();
}

bool ChannelEnd::encrypted() const { return channel_->encrypted_; }

}  // namespace ea::core
