// Uniform communication primitives (paper §3.3).
//
// A Channel is a bi-directional link between two eactors built from two
// mboxes. Channels hide the location of the endpoints: if both eactors sit
// in the same enclave (or both untrusted) messages travel in plaintext; if
// they sit in *different* enclaves the channel transparently encrypts every
// message with a session key established via (simulated) SGX local
// attestation — the underlying node memory is untrusted, so the runtime
// must not be able to read or forge messages. A channel can also be
// explicitly configured plain (§3.3: "except if the channel is configured
// as non-encrypted").
//
// The two-phase connect mirrors the paper: the first endpoint to connect is
// the *initiator*, the second the *client*; the encryption decision is made
// once both placements are known.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "crypto/aead.hpp"
#include "sgxsim/enclave.hpp"

namespace ea::core {

class Runtime;
class Channel;

// How a cross-enclave channel protects messages.
enum class CipherModel {
  // Real ChaCha20-Poly1305 (default). Software implementation: ~15-20
  // cycles/byte, an order of magnitude slower than the AES-NI hardware the
  // paper's testbed used.
  kSoftwareAead,
  // Performance model of AES-NI-class hardware AEAD (~2 cycles/byte):
  // a keyed XOR stream plus an additive checksum. NOT cryptographically
  // secure — exists so throughput benchmarks can reproduce the paper's
  // encrypted-channel numbers; never use outside benchmarks.
  kHardwareModel,
};

struct ChannelOptions {
  // Forces plaintext even across enclaves (the application may do its own
  // end-to-end encryption, as the XMPP service does).
  bool force_plain = false;
  CipherModel cipher = CipherModel::kSoftwareAead;
};

// One side of a channel. send() never blocks: it fails (returns false) when
// the node pool is exhausted, and the actor retries on its next activation.
class ChannelEnd {
 public:
  // Copies `bytes` into a fresh node (encrypting if the channel crosses an
  // enclave boundary) and enqueues it towards the peer.
  bool send(std::span<const std::uint8_t> bytes);
  bool send(std::string_view s) {
    return send(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  // Dequeues the next message; empty lease when the mailbox is empty or a
  // cross-enclave message fails authentication (it is then dropped).
  // The payload is already decrypted.
  concurrent::NodeLease recv();

  // True if a recv() would find a message.
  bool pending() const;

  // Whether this channel transparently encrypts.
  bool encrypted() const;

  Channel& channel() noexcept { return *channel_; }

 private:
  friend class Channel;
  Channel* channel_ = nullptr;
  int side_ = 0;  // 0 = initiator (A), 1 = client (B)
};

class Channel {
 public:
  Channel(std::string name, ChannelOptions options, concurrent::Pool& pool);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const std::string& name() const noexcept { return name_; }

  // Binds the next free endpoint for an actor placed in `placement`.
  // First call returns the initiator end, second the client end; further
  // calls return nullptr (channels are point-to-point; mboxes themselves
  // support MPMC and are used directly where fan-in is needed).
  ChannelEnd* connect(sgxsim::EnclaveId placement);

  bool encrypted() const noexcept { return encrypted_; }

  // Number of messages dropped due to failed authentication.
  std::uint64_t auth_failures() const noexcept {
    return auth_failures_.load(std::memory_order_relaxed);
  }

 private:
  friend class ChannelEnd;

  bool send_from(int side, std::span<const std::uint8_t> bytes);
  concurrent::NodeLease recv_at(int side);

  std::string name_;
  ChannelOptions options_;
  concurrent::Pool& pool_;

  ChannelEnd ends_[2];
  sgxsim::EnclaveId placements_[2] = {sgxsim::kUntrusted, sgxsim::kUntrusted};
  int connected_ = 0;

  concurrent::Mbox dir_[2];  // dir_[0]: A->B, dir_[1]: B->A

  bool encrypted_ = false;
  std::optional<crypto::AeadKey> key_;
  std::atomic<std::uint64_t> send_counter_[2] = {0, 0};
  std::atomic<std::uint64_t> auth_failures_{0};
};

}  // namespace ea::core
