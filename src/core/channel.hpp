// Uniform communication primitives (paper §3.3).
//
// A Channel is a bi-directional link between two eactors built from two
// mboxes. Channels hide the location of the endpoints: if both eactors sit
// in the same enclave (or both untrusted) messages travel in plaintext; if
// they sit in *different* enclaves the channel transparently encrypts every
// message with a session key established via (simulated) SGX local
// attestation — the underlying node memory is untrusted, so the runtime
// must not be able to read or forge messages. A channel can also be
// explicitly configured plain (§3.3: "except if the channel is configured
// as non-encrypted").
//
// The two-phase connect mirrors the paper: the first endpoint to connect is
// the *initiator*, the second the *client*; the encryption decision is made
// once both placements are known.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "crypto/aead.hpp"
#include "sgxsim/enclave.hpp"

namespace ea::core {

class Actor;
class Runtime;
class Channel;

// How a cross-enclave channel protects messages.
enum class CipherModel {
  // Real ChaCha20-Poly1305 (default). Software implementation: ~15-20
  // cycles/byte, an order of magnitude slower than the AES-NI hardware the
  // paper's testbed used.
  kSoftwareAead,
  // Performance model of AES-NI-class hardware AEAD (~2 cycles/byte):
  // a keyed XOR stream plus an additive checksum. NOT cryptographically
  // secure — exists so throughput benchmarks can reproduce the paper's
  // encrypted-channel numbers; never use outside benchmarks.
  kHardwareModel,
};

struct ChannelOptions {
  // Forces plaintext even across enclaves (the application may do its own
  // end-to-end encryption, as the XMPP service does).
  bool force_plain = false;
  CipherModel cipher = CipherModel::kSoftwareAead;
};

// Node tag marking a coalesced multi-message frame produced by
// ChannelEnd::send_batch. The tag travels through untrusted memory, so it
// is also bound into the AEAD associated data — a runtime flipping it makes
// authentication fail instead of confusing frame layouts.
inline constexpr std::uint64_t kBatchFrameTag = 0xEAB10000000001ull;

// One side of a channel. send() never blocks: it fails (returns false) when
// the node pool is exhausted, and the actor retries on its next activation.
class ChannelEnd {
 public:
  // Copies `bytes` into a fresh node (encrypting if the channel crosses an
  // enclave boundary) and enqueues it towards the peer.
  bool send(std::span<const std::uint8_t> bytes);
  bool send(std::string_view s) {
    return send(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  // Coalesces as many of `msgs` as fit into ONE node and ONE counter-sealed
  // AEAD frame, so the crypto setup (key schedule, Poly1305 init), the
  // counter bump and the mailbox lock are paid once per frame instead of
  // once per message. Returns how many messages were packed and sent (0 on
  // pool exhaustion or when the first message does not fit); callers loop
  // over the remainder. FIFO order is preserved.
  std::size_t send_batch(std::span<const std::span<const std::uint8_t>> msgs);

  // Zero-copy send: donates an owned node (payload at offset 0, node.size
  // set) to the peer. On a plain channel — in particular between co-located
  // actors — the node pointer is pushed directly into the peer's mailbox:
  // no payload bytes are copied, no pool allocation happens, and the
  // receiver's recv() lease is the very node the sender filled. On an
  // encrypted channel the payload is staged to the wire offset and sealed
  // in place (one copy — counted in Channel::payload_copies()). Returns
  // false only when a sealed payload cannot fit the node's capacity
  // (node.size + cipher overhead > capacity — a static property of the
  // pool's payload size); the node is then released back to its pool.
  bool send_node(concurrent::NodeLease&& lease);

  // Dequeues the next message; empty lease when the mailbox is empty or a
  // cross-enclave message fails authentication (it is then dropped).
  // The payload is already decrypted. Batch frames are transparent: their
  // sub-messages are handed out one per recv() in send order (the frame is
  // unsealed only once, when it is first popped).
  concurrent::NodeLease recv();

  // Dequeues up to `max` messages into `out`; returns the count. Unpacks
  // batch frames with one unseal per frame.
  std::size_t recv_burst(concurrent::NodeLease* out, std::size_t max);

  // True if a recv() would find a message.
  bool pending() const;

  // Whether this channel transparently encrypts.
  bool encrypted() const;

  Channel& channel() noexcept { return *channel_; }

 private:
  friend class Channel;
  Channel* channel_ = nullptr;
  int side_ = 0;  // 0 = initiator (A), 1 = client (B)
};

class Channel {
 public:
  Channel(std::string name, ChannelOptions options, concurrent::Pool& pool);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const std::string& name() const noexcept { return name_; }

  // Binds the next free endpoint for an actor placed in `placement`.
  // First call returns the initiator end, second the client end; further
  // calls return nullptr (channels are point-to-point; mboxes themselves
  // support MPMC and are used directly where fan-in is needed). `owner`
  // (may be null for test harnesses that connect endpoints directly)
  // records which actor holds the end, so migration can find and rebind
  // the channels of a moving actor.
  ChannelEnd* connect(sgxsim::EnclaveId placement, Actor* owner = nullptr);

  // The actor bound to `side` (nullptr for harness-connected ends).
  Actor* owner(int side) const noexcept { return owners_[side]; }

  // Rewrites the placement of every end owned by `owner` to
  // `new_placement` and re-derives the wire format (plain vs encrypted,
  // session key) for the new enclave pair. Messages already queued were
  // sealed under the OLD format, so both directions are drained (decrypted,
  // batch frames unpacked) and re-injected under the new format, preserving
  // FIFO order. Caller contract (MigrationCoordinator): BOTH endpoint
  // actors are parked, so no concurrent send/recv runs. Returns the number
  // of in-flight messages carried across; messages that cannot be re-sealed
  // (pool exhaustion mid-unpack) are counted in frame_errors().
  std::size_t rebind_for_migration(const Actor& owner,
                                   sgxsim::EnclaveId new_placement);

  bool encrypted() const noexcept { return encrypted_; }

  // Number of messages dropped due to failed authentication.
  std::uint64_t auth_failures() const noexcept {
    return auth_failures_.load(std::memory_order_relaxed);
  }

  // Messages dropped because a batch frame was malformed after successful
  // authentication (only possible on plain channels or a buggy peer).
  std::uint64_t frame_errors() const noexcept {
    return frame_errors_.load(std::memory_order_relaxed);
  }

  // Send-side payload copies performed by this channel: one per message for
  // send()/send_batch() (the memcpy into the fresh node) and one per
  // send_node() on an encrypted channel (the stage-to-wire-offset move).
  // Intra-enclave send_node() performs none — the zero-copy tests and the
  // bench assert this counter stays at zero on that path.
  std::uint64_t payload_copies() const noexcept {
    return payload_copies_.load(std::memory_order_relaxed);
  }

  // Messages that travelled by node donation without any payload copy.
  std::uint64_t moved_sends() const noexcept {
    return moved_sends_.load(std::memory_order_relaxed);
  }

 private:
  friend class ChannelEnd;

  // A batch frame being handed out message-by-message at one side. Owned by
  // the receiving actor's thread (channel ends are point-to-point), i.e.
  // protected by thread affinity rather than a lock — a protocol the
  // thread-safety analysis cannot express (DESIGN.md §13), so it stays
  // unannotated and relies on the TSan matrix leg instead. The underlying
  // mboxes carry their own capability annotations.
  struct PendingBatch {
    concurrent::NodeLease frame;
    std::uint32_t remaining = 0;
    std::size_t offset = 0;
  };

  bool send_from(int side, std::span<const std::uint8_t> bytes);
  std::size_t send_batch_from(int side,
                              std::span<const std::span<const std::uint8_t>> msgs);
  bool send_node_from(int side, concurrent::NodeLease&& lease);
  concurrent::NodeLease recv_at(int side);
  std::size_t recv_burst_at(int side, concurrent::NodeLease* out,
                            std::size_t max);
  concurrent::NodeLease next_from_batch(int side);
  // Byte offset inside a node payload where plaintext begins for this
  // channel's wire format (after the nonce / counter header), and the
  // total cipher expansion. Batch frames are assembled directly at the
  // offset so sealing never copies or allocates.
  std::size_t plaintext_offset() const noexcept;
  std::size_t cipher_overhead() const noexcept;
  // Seals the `len` plaintext bytes already sitting at plaintext_offset()
  // inside `node`; writes header and trailer in place and sets node.size.
  // `batch` selects the batch AAD domain.
  void seal_in_place(int side, concurrent::Node& node, std::size_t len,
                     bool batch);
  // Copies `bytes` into `node` and seals; false if they cannot fit.
  bool seal_into(int side, concurrent::Node& node,
                 std::span<const std::uint8_t> bytes, bool batch);
  bool open_in_place(int side, concurrent::Node& node, bool batch);

  std::string name_;
  ChannelOptions options_;
  concurrent::Pool& pool_;

  // Re-evaluates the encryption decision for the current placements
  // (connect() runs it once when both ends are known; rebind re-runs it).
  void decide_wire_format();

  ChannelEnd ends_[2];
  sgxsim::EnclaveId placements_[2] = {sgxsim::kUntrusted, sgxsim::kUntrusted};
  Actor* owners_[2] = {nullptr, nullptr};
  int connected_ = 0;

  concurrent::Mbox dir_[2];  // dir_[0]: A->B, dir_[1]: B->A

  PendingBatch pending_batch_[2];

  bool encrypted_ = false;
  std::optional<crypto::AeadKey> key_;
  std::atomic<std::uint64_t> send_counter_[2] = {0, 0};
  std::atomic<std::uint64_t> auth_failures_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> payload_copies_{0};
  std::atomic<std::uint64_t> moved_sends_{0};
};

}  // namespace ea::core
