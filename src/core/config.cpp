#include "core/config.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace ea::core {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::invalid_argument("config line " + std::to_string(line) + ": " +
                              msg);
}

int parse_int(int line, const std::string& s) {
  int value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    fail(line, "expected integer, got '" + s + "'");
  }
  return value;
}

// Splits "key=value" tokens into a map; bare tokens map to "".
std::map<std::string, std::string> keyvals(
    const std::vector<std::string>& tokens, std::size_t start) {
  std::map<std::string, std::string> out;
  for (std::size_t i = start; i < tokens.size(); ++i) {
    auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      out[tokens[i]] = "";
    } else {
      out[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
  }
  return out;
}

}  // namespace

DeploymentConfig DeploymentConfig::parse(std::string_view text) {
  DeploymentConfig config;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::vector<std::string> tokens;
    std::string tok;
    while (line >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;

    const std::string& kind = tokens[0];
    if (kind == "pool") {
      auto kv = keyvals(tokens, 1);
      if (kv.count("nodes")) {
        config.runtime.pool_nodes =
            static_cast<std::size_t>(parse_int(line_no, kv["nodes"]));
      }
      if (kv.count("payload")) {
        config.runtime.node_payload_bytes =
            static_cast<std::size_t>(parse_int(line_no, kv["payload"]));
      }
    } else if (kind == "enclave") {
      if (tokens.size() < 2) fail(line_no, "enclave needs a name");
      config.enclaves.push_back(tokens[1]);
    } else if (kind == "actor") {
      if (tokens.size() < 2) fail(line_no, "actor needs a name");
      ConfigActor actor;
      actor.name = tokens[1];
      auto kv = keyvals(tokens, 2);
      if (!kv.count("type")) fail(line_no, "actor needs type=");
      actor.type = kv["type"];
      if (kv.count("enclave")) actor.enclave = kv["enclave"];
      config.actors.push_back(std::move(actor));
    } else if (kind == "worker") {
      if (tokens.size() < 2) fail(line_no, "worker needs a name");
      ConfigWorker worker;
      worker.name = tokens[1];
      auto kv = keyvals(tokens, 2);
      if (kv.count("cpus")) {
        for (const auto& c : split(kv["cpus"], ',')) {
          worker.cpus.push_back(parse_int(line_no, c));
        }
      }
      if (!kv.count("actors")) fail(line_no, "worker needs actors=");
      worker.actors = split(kv["actors"], ',');
      if (worker.actors.empty()) fail(line_no, "worker needs >=1 actor");
      config.workers.push_back(std::move(worker));
    } else if (kind == "sched") {
      // `sched steal` or `sched mode=steal`; default stays kStatic so
      // existing deployment files keep the paper's fixed mapping.
      if (tokens.size() < 2) fail(line_no, "sched needs static|steal");
      std::string mode = tokens[1];
      auto eq = mode.find('=');
      if (eq != std::string::npos) {
        if (mode.substr(0, eq) != "mode") {
          fail(line_no, "sched: unknown key '" + mode.substr(0, eq) + "'");
        }
        mode = mode.substr(eq + 1);
      }
      if (mode == "static") {
        config.runtime.sched = SchedMode::kStatic;
      } else if (mode == "steal") {
        config.runtime.sched = SchedMode::kSteal;
      } else {
        fail(line_no, "sched: expected static|steal, got '" + mode + "'");
      }
    } else if (kind == "net") {
      // `net epoll` or `net mode=epoll`; default stays kScan so existing
      // deployment files keep the paper's per-round socket sweep.
      if (tokens.size() < 2) fail(line_no, "net needs scan|epoll");
      std::string mode = tokens[1];
      auto eq = mode.find('=');
      if (eq != std::string::npos) {
        if (mode.substr(0, eq) != "mode") {
          fail(line_no, "net: unknown key '" + mode.substr(0, eq) + "'");
        }
        mode = mode.substr(eq + 1);
      }
      if (mode == "scan") {
        config.runtime.net = NetMode::kScan;
      } else if (mode == "epoll") {
        config.runtime.net = NetMode::kEpoll;
      } else {
        fail(line_no, "net: expected scan|epoll, got '" + mode + "'");
      }
    } else if (kind == "channel") {
      if (tokens.size() < 2) fail(line_no, "channel needs a name");
      ConfigChannel channel;
      channel.name = tokens[1];
      auto kv = keyvals(tokens, 2);
      channel.force_plain = kv.count("plain") > 0;
      config.channels.push_back(std::move(channel));
    } else {
      fail(line_no, "unknown directive '" + kind + "'");
    }
  }
  return config;
}

void ActorRegistry::register_type(const std::string& type, Factory factory) {
  factories_[type] = std::move(factory);
}

const ActorRegistry::Factory* ActorRegistry::find(
    const std::string& type) const {
  auto it = factories_.find(type);
  return it == factories_.end() ? nullptr : &it->second;
}

std::unique_ptr<Runtime> build_runtime(const DeploymentConfig& config,
                                       const ActorRegistry& registry) {
  auto runtime = std::make_unique<Runtime>(config.runtime);
  for (const std::string& name : config.enclaves) {
    runtime->enclave(name);
  }
  for (const ConfigChannel& ch : config.channels) {
    ChannelOptions options;
    options.force_plain = ch.force_plain;
    runtime->channel(ch.name, options);
  }
  for (const ConfigActor& spec : config.actors) {
    const ActorRegistry::Factory* factory = registry.find(spec.type);
    if (factory == nullptr) {
      throw std::invalid_argument("no factory for actor type " + spec.type);
    }
    runtime->add_actor((*factory)(spec.name), spec.enclave);
  }
  for (const ConfigWorker& spec : config.workers) {
    runtime->add_worker(spec.name, spec.cpus, spec.actors);
  }
  return runtime;
}

}  // namespace ea::core
