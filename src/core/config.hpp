// Deployment configuration (paper §3.2).
//
// "The developer defines the necessary mapping of computational resources
// and trusted execution contexts of eactors in a special configuration
// file." The paper feeds that file into a source-generation step; here the
// same description is parsed at startup and instantiates a Runtime — same
// flexibility (trusted execution is a deployment decision, not a code
// change), without a code generator in the loop.
//
// Grammar (line-based, '#' comments):
//   pool    nodes=<n> payload=<bytes>
//   enclave <name>
//   actor   <name> type=<registered-type> [enclave=<name>]
//   worker  <name> cpus=<c0,c1,...> actors=<a0,a1,...>
//   channel <name> [plain]
//   sched   static|steal          (also: sched mode=static|steal)
//   net     scan|epoll            (also: net mode=scan|epoll)
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace ea::core {

struct ConfigActor {
  std::string name;
  std::string type;
  std::string enclave;  // empty = untrusted
};

struct ConfigWorker {
  std::string name;
  std::vector<int> cpus;
  std::vector<std::string> actors;
};

struct ConfigChannel {
  std::string name;
  bool force_plain = false;
};

struct DeploymentConfig {
  RuntimeOptions runtime;
  std::vector<std::string> enclaves;
  std::vector<ConfigActor> actors;
  std::vector<ConfigWorker> workers;
  std::vector<ConfigChannel> channels;

  // Parses the textual format; throws std::invalid_argument with a
  // line-numbered message on malformed input.
  static DeploymentConfig parse(std::string_view text);
};

// Maps config `type=` names to actor constructors. The factory receives the
// instance name from the config.
class ActorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Actor>(const std::string&)>;

  void register_type(const std::string& type, Factory factory);
  const Factory* find(const std::string& type) const;

 private:
  std::map<std::string, Factory> factories_;
};

// Instantiates a runtime from a parsed config. Channels named in the config
// are pre-created (with their options); actors connect to them by name.
std::unique_ptr<Runtime> build_runtime(const DeploymentConfig& config,
                                       const ActorRegistry& registry);

}  // namespace ea::core
