#include "core/health.hpp"

namespace ea::core {

const ActorHealth* HealthSnapshot::actor(std::string_view name) const noexcept {
  for (const ActorHealth& a : actors) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const WorkerHealth* HealthSnapshot::worker(
    std::string_view name) const noexcept {
  for (const WorkerHealth& w : workers) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

const EnclaveHealth* HealthSnapshot::enclave_by_name(
    std::string_view name) const noexcept {
  for (const EnclaveHealth& e : enclaves) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::size_t HealthSnapshot::count_in_state(ActorState state) const noexcept {
  std::size_t n = 0;
  for (const ActorHealth& a : actors) {
    if (a.state == state) ++n;
  }
  return n;
}

bool HealthSnapshot::any_stalled() const noexcept {
  for (const ActorHealth& a : actors) {
    if (a.stalled) return true;
  }
  return false;
}

std::string HealthSnapshot::to_string() const {
  std::string out;
  out += "health: pool " + std::to_string(pool.free) + "/" +
         std::to_string(pool.capacity) + " free, " +
         std::to_string(pool.exhaustions) + " exhaustions\n";
  for (const ActorHealth& a : actors) {
    out += "  actor " + a.name + ": " + ea::core::to_string(a.state) + ", " +
           std::to_string(a.invocations) + " activations, " +
           std::to_string(a.failures) + " failures, " +
           std::to_string(a.restarts) + " restarts" +
           (a.stalled ? ", STALLED" : "");
    if (!a.last_error.empty()) out += " (last: " + a.last_error + ")";
    out += '\n';
  }
  for (const ChannelHealth& c : channels) {
    out += "  channel " + c.name + ": " +
           (c.encrypted ? "encrypted" : "plain") + ", " +
           std::to_string(c.auth_failures) + " auth failures, " +
           std::to_string(c.frame_errors) + " frame errors\n";
  }
  for (const WorkerHealth& w : workers) {
    out += "  worker " + w.name + ": " + std::to_string(w.rounds) +
           " rounds, " + std::to_string(w.dispatches) + " dispatches, " +
           std::to_string(w.steals) + " steals, queue_depth " +
           std::to_string(w.queue_depth) + ", ready_actors " +
           std::to_string(w.ready_actors) + '\n';
  }
  for (const EnclaveHealth& e : enclaves) {
    out += "  enclave " + e.name + " (id " + std::to_string(e.id) + "): " +
           std::to_string(e.committed) + " bytes committed of " +
           std::to_string(e.epc_usable) + " usable EPC\n";
  }
  return out;
}

}  // namespace ea::core
