// Runtime health snapshot (DESIGN.md §12).
//
// A single structured view of the deployment's liveness — per-actor
// lifecycle state and restart counters, channel integrity counters, pool
// exhaustion — assembled by Runtime::health(). The supervisor's escalation
// callbacks, operators and the test suite consume this instead of poking
// runtime internals; everything here is computed from lock-free or
// briefly-locked counters and is safe to read while workers run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/actor.hpp"
#include "sgxsim/enclave.hpp"

namespace ea::core {

struct ActorHealth {
  std::string name;
  ActorState state = ActorState::kRunnable;
  sgxsim::EnclaveId enclave = sgxsim::kUntrusted;
  std::uint64_t invocations = 0;
  std::uint64_t failures = 0;   // contained construct()/body()/restart throws
  std::uint32_t restarts = 0;   // successful supervisor restarts
  bool stalled = false;         // watchdog: queued work but no progress
  std::string last_error;       // what() of the most recent failure
};

struct ChannelHealth {
  std::string name;
  bool encrypted = false;
  std::uint64_t auth_failures = 0;  // dropped: AEAD authentication failed
  std::uint64_t frame_errors = 0;   // dropped: malformed batch frame
};

struct PoolHealth {
  std::size_t free = 0;           // approximate free nodes right now
  std::size_t capacity = 0;       // nodes ever adopted
  std::uint64_t exhaustions = 0;  // get() calls that found the pool empty
};

struct WorkerHealth {
  std::string name;
  std::uint64_t rounds = 0;
  std::uint64_t dispatches = 0;   // actor executions by this worker
  std::uint64_t steals = 0;       // dispatches taken from a victim's queue
  std::size_t queue_depth = 0;    // ready actors sitting in its run queues
  std::size_t ready_actors = 0;   // home actors not parked (queued/running)
};

// Per-enclave EPC accounting (DESIGN.md §17): `committed` is the enclave's
// registered footprint (base pages + actor state, migration moves the
// actor's share between enclaves), `epc_usable` the machine-wide usable EPC
// from the cost model (~93 MiB before paging). The placement controller
// watches committed/epc_usable per enclave against its watermark.
struct EnclaveHealth {
  sgxsim::EnclaveId id = sgxsim::kUntrusted;
  std::string name;
  std::uint64_t committed = 0;
  std::uint64_t epc_usable = 0;
};

struct HealthSnapshot {
  std::vector<ActorHealth> actors;
  std::vector<ChannelHealth> channels;
  std::vector<WorkerHealth> workers;
  std::vector<EnclaveHealth> enclaves;
  PoolHealth pool;  // the runtime's public pool

  // Lookup helpers; nullptr when `name` is unknown.
  const ActorHealth* actor(std::string_view name) const noexcept;
  const WorkerHealth* worker(std::string_view name) const noexcept;
  const EnclaveHealth* enclave_by_name(std::string_view name) const noexcept;

  // Deployment-level predicates the soak tests assert on.
  std::size_t count_in_state(ActorState state) const noexcept;
  bool any_stalled() const noexcept;

  std::string to_string() const;
};

}  // namespace ea::core
