#include "core/migration.hpp"

#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "core/channel.hpp"
#include "core/runtime.hpp"
#include "core/worker.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "sgxsim/attested_exchange.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/monotonic_counter.hpp"
#include "sgxsim/sealing.hpp"
#include "sgxsim/transition.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::core {
namespace {

// Monotonic-counter namespace for migration tickets: one logical counter
// per actor (slot = FNV-1a of the name), shared by every enclave identity —
// departure increments it, resume consumes it (ROTE-style shared counter).
const crypto::Sha256Digest& migration_namespace() {
  static const crypto::Sha256Digest ns = crypto::sha256("ea-migration-ticket");
  return ns;
}

std::uint32_t ticket_slot(const std::string& actor_name) {
  std::uint32_t h = 2166136261u;  // FNV-1a
  for (char c : actor_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

std::uint64_t fresh_nonce() {
  std::uint8_t buf[8];
  crypto::secure_random(buf);
  return util::load_le64(buf);
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// AAD pinning the transfer frames to this protocol (a migration bundle can
// never be confused with channel traffic under the same key).
constexpr char kTransferAad[] = "ea-migrate-bundle";

std::span<const std::uint8_t> aad_span() {
  return {reinterpret_cast<const std::uint8_t*>(kTransferAad),
          sizeof(kTransferAad) - 1};
}

constexpr char kBundleMagic[8] = {'E', 'A', 'M', 'I', 'G', 'R', '0', '1'};

}  // namespace

const char* to_string(MigrateResult result) noexcept {
  switch (result) {
    case MigrateResult::kOk:
      return "ok";
    case MigrateResult::kNotFound:
      return "not-found";
    case MigrateResult::kNotMigratable:
      return "not-migratable";
    case MigrateResult::kBusy:
      return "busy";
    case MigrateResult::kSchedUnsupported:
      return "sched-unsupported";
    case MigrateResult::kSamePlacement:
      return "same-placement";
    case MigrateResult::kRouteQuarantined:
      return "route-quarantined";
    case MigrateResult::kSealFailed:
      return "seal-failed";
    case MigrateResult::kTransferFailed:
      return "transfer-failed";
    case MigrateResult::kResumeRefused:
      return "resume-refused";
    case MigrateResult::kImportFailed:
      return "import-failed";
    case MigrateResult::kAffinityFailed:
      return "affinity-failed";
  }
  return "unknown";
}

// Wire layout: magic(8) ‖ ticket(8) ‖ source(4) ‖ target(4) ‖
// state_len(4) ‖ state ‖ pos_len(4) ‖ pos, little-endian.
struct MigrationCoordinator::Bundle {
  std::uint64_t ticket = 0;
  sgxsim::EnclaveId source = sgxsim::kUntrusted;
  sgxsim::EnclaveId target = sgxsim::kUntrusted;
  util::Bytes state;
  util::Bytes pos;

  util::Bytes serialize() const {
    util::Bytes out(8 + 8 + 4 + 4 + 4 + state.size() + 4 + pos.size());
    std::uint8_t* p = out.data();
    std::memcpy(p, kBundleMagic, 8);
    util::store_le64(p + 8, ticket);
    util::store_le32(p + 16, source);
    util::store_le32(p + 20, target);
    util::store_le32(p + 24, static_cast<std::uint32_t>(state.size()));
    if (!state.empty()) std::memcpy(p + 28, state.data(), state.size());
    std::size_t at = 28 + state.size();
    util::store_le32(p + at, static_cast<std::uint32_t>(pos.size()));
    if (!pos.empty()) std::memcpy(p + at + 4, pos.data(), pos.size());
    return out;
  }

  static bool parse(std::span<const std::uint8_t> in, Bundle& out) {
    if (in.size() < 32 || std::memcmp(in.data(), kBundleMagic, 8) != 0) {
      return false;
    }
    out.ticket = util::load_le64(in.data() + 8);
    out.source = util::load_le32(in.data() + 16);
    out.target = util::load_le32(in.data() + 20);
    const std::uint32_t state_len = util::load_le32(in.data() + 24);
    if (in.size() - 28 < static_cast<std::size_t>(state_len) + 4) return false;
    out.state.assign(in.begin() + 28, in.begin() + 28 + state_len);
    const std::size_t at = 28 + state_len;
    const std::uint32_t pos_len = util::load_le32(in.data() + at);
    if (in.size() - at - 4 < pos_len) return false;
    out.pos.assign(in.begin() + at + 4, in.begin() + at + 4 + pos_len);
    return true;
  }
};

// --- park/unpark barrier ----------------------------------------------------

bool MigrationCoordinator::park(Actor& actor) {
  ActorState expected = ActorState::kRunnable;
  if (!actor.state_.compare_exchange_strong(expected, ActorState::kMigrating,
                                            std::memory_order_seq_cst)) {
    return false;
  }
  // Dekker wait (see Actor::executing_): after this loop no body quantum of
  // the actor runs anywhere — a dispatch that raced the store above either
  // finished (executing_ observed false) or will observe kMigrating and
  // decline. Bodies are non-blocking by contract, so the wait is bounded by
  // one quantum.
  while (actor.executing_.load(std::memory_order_seq_cst)) {
    std::this_thread::yield();
  }
  return true;
}

void MigrationCoordinator::unpark(Actor& actor) {
  // Release: the next dispatcher's acquire load of kRunnable must observe
  // every state write the import performed.
  actor.state_.store(ActorState::kRunnable, std::memory_order_release);
}

// --- coordinator ------------------------------------------------------------

MigrateResult MigrationCoordinator::migrate(const std::string& actor_name,
                                            const std::string& target_enclave) {
  Actor* actor = rt_.find_actor(actor_name);
  if (actor == nullptr) return MigrateResult::kNotFound;
  // Find-only while running: creating an enclave mid-run would mutate the
  // runtime's enclave map under concurrent health() walks.
  auto it = rt_.enclaves().find(target_enclave);
  sgxsim::Enclave* target =
      it != rt_.enclaves().end() ? it->second : nullptr;
  if (target == nullptr) {
    if (rt_.running()) return MigrateResult::kNotFound;
    target = &rt_.enclave(target_enclave);
  }
  return migrate(*actor, *target);
}

MigrateResult MigrationCoordinator::migrate(Actor& actor,
                                            sgxsim::Enclave& target) {
  // The static scheduler's uniform-affinity fast path enters the enclave
  // once and never re-reads placements (worker.cpp run_single_enclave);
  // only the stealing scheduler re-evaluates placement per dispatch.
  if (rt_.running() && rt_.options().sched != SchedMode::kSteal) {
    return MigrateResult::kSchedUnsupported;
  }
  if (!actor.migratable()) return MigrateResult::kNotMigratable;
  const sgxsim::EnclaveId src_id = actor.placement();
  // Untrusted actors have no sealed identity to hand off (and nothing an
  // EPC watermark would want to move).
  if (src_id == sgxsim::kUntrusted) return MigrateResult::kNotMigratable;
  if (src_id == target.id()) return MigrateResult::kSamePlacement;
  sgxsim::Enclave* source = sgxsim::EnclaveManager::instance().find(src_id);
  if (source == nullptr) return MigrateResult::kNotFound;

  concurrent::HleGuard guard(mu_);
  for (const auto& [from, to] : quarantined_routes_) {
    if (from == src_id && to == target.id()) {
      return MigrateResult::kRouteQuarantined;
    }
  }
  return migrate_locked(actor, *source, target);
}

bool MigrationCoordinator::route_quarantined(sgxsim::EnclaveId source,
                                             sgxsim::EnclaveId target) const {
  concurrent::HleGuard guard(mu_);
  for (const auto& [from, to] : quarantined_routes_) {
    if (from == source && to == target) return true;
  }
  return false;
}

MigrationStats MigrationCoordinator::stats() const {
  MigrationStats s;
  s.attempted = attempted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rolled_back = rolled_back_.load(std::memory_order_relaxed);
  s.forks_prevented = forks_prevented_.load(std::memory_order_relaxed);
  s.in_flight_carried = in_flight_carried_.load(std::memory_order_relaxed);
  return s;
}

void MigrationCoordinator::quarantine_route(sgxsim::EnclaveId source,
                                            sgxsim::EnclaveId target) {
  quarantined_routes_.emplace_back(source, target);
  EA_WARN("core", "migration route %u -> %u quarantined", source, target);
}

void MigrationCoordinator::restore_at_source(
    Actor& actor, sgxsim::Enclave& source,
    std::span<const std::uint8_t> rollback_blob, const Bundle& in_hand) {
  // The canonical restore path unseals the rollback copy — proving the
  // sealed bundle alone suffices to bring the source back. The in-hand
  // plaintext is only a belt-and-braces fallback for a broken sealer.
  Bundle restored;
  bool from_seal = false;
  std::optional<util::Bytes> plain = sgxsim::unseal(source, rollback_blob);
  if (plain.has_value()) {
    from_seal = Bundle::parse(*plain, restored);
    util::secure_zero(*plain);
  }
  const Bundle& use = from_seal ? restored : in_hand;
  {
    sgxsim::EnclaveScope scope(source);
    try {
      actor.import_state(use.state);
      actor.import_pos_partition(use.pos);
    } catch (const std::exception& e) {
      EA_WARN("core", "migration rollback import threw for %s: %s",
              actor.name().c_str(), e.what());
    } catch (...) {
      EA_WARN("core", "migration rollback import threw for %s",
              actor.name().c_str());
    }
  }
  util::secure_zero(restored.state);
  util::secure_zero(restored.pos);
}

MigrateResult MigrationCoordinator::migrate_locked(Actor& actor,
                                                   sgxsim::Enclave& source,
                                                   sgxsim::Enclave& target) {
  attempted_.fetch_add(1, std::memory_order_relaxed);
  if (!park(actor)) return MigrateResult::kBusy;
  const std::uint64_t pause_start_us = steady_now_us();

  // --- export inside the source enclave ----------------------------------
  Bundle bundle;
  bundle.source = source.id();
  bundle.target = target.id();
  bool export_ok = true;
  {
    sgxsim::EnclaveScope scope(source);
    try {
      bundle.state = actor.export_state();
      bundle.pos = actor.export_pos_partition();  // exports AND erases
    } catch (const std::exception& e) {
      EA_WARN("core", "migration export threw for %s: %s",
              actor.name().c_str(), e.what());
      export_ok = false;
    } catch (...) {
      export_ok = false;
    }
  }
  auto wipe_bundle = [&bundle] {
    util::secure_zero(bundle.state);
    util::secure_zero(bundle.pos);
  };
  if (!export_ok || EA_FAIL_TRIGGERED("migrate.seal.fail")) {
    // Source-local failure before anything left the enclave: put the POS
    // partition back (export erased it) and resume in place. No route
    // blame — the wire was never touched.
    if (!bundle.pos.empty()) {
      sgxsim::EnclaveScope scope(source);
      actor.import_pos_partition(bundle.pos);
    }
    wipe_bundle();
    unpark(actor);
    rolled_back_.fetch_add(1, std::memory_order_relaxed);
    return MigrateResult::kSealFailed;
  }

  // --- departure ticket ----------------------------------------------------
  const crypto::Sha256Digest& ns = migration_namespace();
  const std::uint32_t slot = ticket_slot(actor.name());
  auto& counters = sgxsim::MonotonicCounterService::instance();
  bundle.ticket = counters.increment_ns(ns, slot);

  util::Bytes plain = bundle.serialize();
  // Rollback copy, sealed to the source identity: only the source enclave
  // can restore it, and the embedded ticket keeps even the rollback replay
  // honest (the restore path consumes the ticket as the winner).
  util::Bytes rollback_blob = sgxsim::seal(source, plain);

  auto wipe_all = [&] {
    wipe_bundle();
    util::secure_zero(plain);
  };

  // --- attested transfer ---------------------------------------------------
  const std::uint64_t nonce_src = fresh_nonce();
  const std::uint64_t nonce_tgt = fresh_nonce();
  sgxsim::AttestedExchange ex_src(source, nonce_tgt);
  sgxsim::AttestedExchange ex_tgt(target, nonce_src);
  sgxsim::AttestationVerifier verifier;
  // Each side pins the peer's expected measurement: a runtime substituting
  // a different enclave on either end fails the handshake.
  std::optional<crypto::AeadKey> key_src = ex_src.complete(
      ex_tgt.quote(), nonce_src, verifier, &target.measurement());
  std::optional<crypto::AeadKey> key_tgt = ex_tgt.complete(
      ex_src.quote(), nonce_tgt, verifier, &source.measurement());

  std::optional<util::Bytes> received_plain;
  if (key_src.has_value() && key_tgt.has_value()) {
    util::Bytes wire = crypto::seal_with_counter(*key_src, bundle.ticket,
                                                 aad_span(), plain);
    if (!EA_FAIL_TRIGGERED("migrate.transfer.drop")) {
      received_plain = crypto::open_framed(*key_tgt, aad_span(), wire);
    }
    util::secure_zero(wire);
  }
  Bundle received;
  const bool transfer_ok = received_plain.has_value() &&
                           Bundle::parse(*received_plain, received) &&
                           received.ticket == bundle.ticket &&
                           received.source == source.id() &&
                           received.target == target.id();
  if (received_plain.has_value()) util::secure_zero(*received_plain);
  if (!transfer_ok) {
    // The bundle never (verifiably) reached the target: restore the source
    // from the SEALED copy, consume the ticket as the restore winner — if a
    // copy of the transfer ever surfaces later, its resume finds the ticket
    // spent — and quarantine the route, never the actor.
    restore_at_source(actor, source, rollback_blob, bundle);
    counters.consume(ns, slot, bundle.ticket);
    quarantine_route(source.id(), target.id());
    rolled_back_.fetch_add(1, std::memory_order_relaxed);
    wipe_all();
    unpark(actor);
    EA_WARN("core", "migration of %s %s -> %s failed in transfer; rolled back",
            actor.name().c_str(), source.name().c_str(),
            target.name().c_str());
    return MigrateResult::kTransferFailed;
  }

  // --- worker affinity (grant BEFORE the placement flip so there is never
  // a placement no worker may dispatch) -------------------------------------
  bool granted = !rt_.running();  // pre-start: configure_sched derives it
  for (const auto& worker : rt_.workers()) {
    for (Actor* home : worker->actors()) {
      if (home == &actor) {
        granted |= worker->grant_affinity(target.id());
        break;
      }
    }
  }
  if (!granted) {
    restore_at_source(actor, source, rollback_blob, received);
    counters.consume(ns, slot, bundle.ticket);
    rolled_back_.fetch_add(1, std::memory_order_relaxed);
    wipe_all();
    util::secure_zero(received.state);
    util::secure_zero(received.pos);
    unpark(actor);
    return MigrateResult::kAffinityFailed;
  }

  // --- resume-once ticket consume ------------------------------------------
  const bool consumed = counters.consume(ns, slot, received.ticket);
  if (consumed && EA_FAIL_TRIGGERED("migrate.resume.dup")) {
    // Injected duplicate resume of the SAME bundle: the compare-and-
    // increment must refuse it — if it did not, the fork guard is broken.
    if (counters.consume(ns, slot, received.ticket)) {
      EA_WARN("core",
              "migration fork guard BROKEN: duplicate ticket consume "
              "succeeded for %s",
              actor.name().c_str());
    } else {
      forks_prevented_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!consumed) {
    // The ticket was already spent — this resume is the second copy of a
    // fork. Refuse it; the source copy (restored below) is the only
    // survivor.
    forks_prevented_.fetch_add(1, std::memory_order_relaxed);
    restore_at_source(actor, source, rollback_blob, received);
    quarantine_route(source.id(), target.id());
    rolled_back_.fetch_add(1, std::memory_order_relaxed);
    wipe_all();
    util::secure_zero(received.state);
    util::secure_zero(received.pos);
    unpark(actor);
    return MigrateResult::kResumeRefused;
  }

  // --- placement flip + EPC accounting move --------------------------------
  source.sub_committed(actor.state_bytes());
  target.add_committed(actor.state_bytes());
  actor.placement_.store(target.id(), std::memory_order_release);

  // --- channel route rewrite ------------------------------------------------
  // Peers are parked through the same barrier so the drain/re-seal races
  // nothing; a peer that is Failed/Quarantined is not running bodies and
  // needs no barrier.
  std::size_t carried = 0;
  for (const auto& [name, ch] : rt_.channels()) {
    Actor* o0 = ch->owner(0);
    Actor* o1 = ch->owner(1);
    if (o0 != &actor && o1 != &actor) continue;
    Actor* peer = (o0 == &actor) ? o1 : o0;
    bool peer_parked = false;
    if (peer != nullptr && peer != &actor) peer_parked = park(*peer);
    carried += ch->rebind_for_migration(actor, target.id());
    if (peer_parked) unpark(*peer);
  }
  in_flight_carried_.fetch_add(carried, std::memory_order_relaxed);

  // --- import inside the target enclave ------------------------------------
  bool import_ok = false;
  {
    sgxsim::EnclaveScope scope(target);
    try {
      import_ok = actor.import_state(received.state) &&
                  actor.import_pos_partition(received.pos);
      if (import_ok) actor.on_migrated(source.id(), target.id());
    } catch (const std::exception& e) {
      EA_WARN("core", "migration import threw for %s: %s",
              actor.name().c_str(), e.what());
      import_ok = false;
    } catch (...) {
      import_ok = false;
    }
  }
  if (!import_ok) {
    // Undo the flip, rewrite the routes back, restore from the sealed copy.
    actor.placement_.store(source.id(), std::memory_order_release);
    target.sub_committed(actor.state_bytes());
    source.add_committed(actor.state_bytes());
    for (const auto& [name, ch] : rt_.channels()) {
      Actor* o0 = ch->owner(0);
      Actor* o1 = ch->owner(1);
      if (o0 != &actor && o1 != &actor) continue;
      Actor* peer = (o0 == &actor) ? o1 : o0;
      bool peer_parked = false;
      if (peer != nullptr && peer != &actor) peer_parked = park(*peer);
      ch->rebind_for_migration(actor, source.id());
      if (peer_parked) unpark(*peer);
    }
    restore_at_source(actor, source, rollback_blob, received);
    quarantine_route(source.id(), target.id());
    rolled_back_.fetch_add(1, std::memory_order_relaxed);
    wipe_all();
    util::secure_zero(received.state);
    util::secure_zero(received.pos);
    unpark(actor);
    return MigrateResult::kImportFailed;
  }

  unpark(actor);
  pause_hist_.record(steady_now_us() - pause_start_us);
  completed_.fetch_add(1, std::memory_order_relaxed);
  wipe_all();
  util::secure_zero(received.state);
  util::secure_zero(received.pos);
  EA_INFO("core", "actor %s migrated %s -> %s (%zu in-flight carried)",
          actor.name().c_str(), source.name().c_str(), target.name().c_str(),
          carried);
  return MigrateResult::kOk;
}

// --- placement controller ---------------------------------------------------

PlacementControllerActor::PlacementControllerActor(
    MigrationCoordinator& coordinator, PlacementControllerOptions options)
    : Actor("core.placement"), coordinator_(coordinator), options_(options) {
  // Pressure response should not queue behind bulk message churn.
  set_priority(ActorPriority::kHigh);
}

bool PlacementControllerActor::body() {
  const std::uint64_t now_us = steady_now_us();
  if (now_us - last_sweep_us_ < options_.sweep_interval_us) return false;
  last_sweep_us_ = now_us;
  return sweep();
}

bool PlacementControllerActor::sweep() {
  probes_.fetch_add(1, std::memory_order_relaxed);
  Runtime& rt = coordinator_.runtime();
  const std::uint64_t budget = options_.epc_budget_bytes != 0
                                   ? options_.epc_budget_bytes
                                   : sgxsim::cost_model().epc_usable_bytes;
  const auto watermark_bytes = static_cast<std::uint64_t>(
      options_.watermark * static_cast<double>(budget));

  // Probe every enclave; the worst overcommitted one is the eviction
  // source. The failpoint overrides the probed value so tests can model an
  // enclave marching toward the cliff without allocating 90 MiB.
  sgxsim::Enclave* worst = nullptr;
  std::uint64_t worst_committed = 0;
  for (const auto& [name, enclave] : rt.enclaves()) {
    long probed = static_cast<long>(enclave->committed_bytes());
    (void)EA_FAIL_VALUE("migrate.epc.probe", probed);
    const auto committed = static_cast<std::uint64_t>(probed);
    if (committed >= watermark_bytes && committed > worst_committed) {
      worst = enclave;
      worst_committed = committed;
    }
  }
  if (worst == nullptr) return false;

  // Cheapest-to-move: the migratable Runnable actor with the smallest
  // declared state footprint (smallest pause, smallest transfer).
  Actor* victim = nullptr;
  for (const auto& a : rt.actors()) {
    if (a->placement() != worst->id()) continue;
    if (!a->migratable() || a->lifecycle() != ActorState::kRunnable) continue;
    if (victim == nullptr || a->state_bytes() < victim->state_bytes()) {
      victim = a.get();
    }
  }
  if (victim == nullptr) return false;

  // Target: the least-committed other enclave reachable over a clean route.
  sgxsim::Enclave* target = nullptr;
  for (const auto& [name, enclave] : rt.enclaves()) {
    if (enclave == worst) continue;
    if (coordinator_.route_quarantined(worst->id(), enclave->id())) continue;
    if (target == nullptr ||
        enclave->committed_bytes() < target->committed_bytes()) {
      target = enclave;
    }
  }
  if (target == nullptr) return false;

  const MigrateResult r = coordinator_.migrate(*victim, *target);
  if (r == MigrateResult::kOk) {
    migrations_triggered_.fetch_add(1, std::memory_order_relaxed);
    EA_INFO("core",
            "placement: evicted %s off %s (%llu committed >= watermark %llu)",
            victim->name().c_str(), worst->name().c_str(),
            static_cast<unsigned long long>(worst_committed),
            static_cast<unsigned long long>(watermark_bytes));
    return true;
  }
  EA_DEBUG("core", "placement: eviction of %s failed: %s",
           victim->name().c_str(), to_string(r));
  return false;
}

}  // namespace ea::core
