// Live actor migration with sealed-state handoff (DESIGN.md §17).
//
// The paper's deployment flexibility is static: actor-to-enclave placement
// is fixed by the config at startup, so an enclave drifting toward the
// ~93 MiB EPC cliff degrades every co-located actor with no recourse. This
// module makes placement dynamic, following *Migrating SGX Enclaves with
// Persistent State* for the handoff protocol and *SGX-Aware Container
// Orchestration* for the EPC-driven placement policy:
//
//   park ──▶ export ──▶ seal ──▶ transfer ──▶ consume-ticket ──▶ resume
//     │         │         │          │              │
//     └─────────┴─────────┴──────────┴──────────────┴──▶ rollback (source)
//
//  * park      — CAS Runnable→kMigrating plus a Dekker handshake with
//                invoke_contained()'s executing_ flag: after the barrier no
//                body quantum of the actor can run anywhere. Messages keep
//                queueing in the actor's mboxes — those ARE the tombstone
//                mailboxes; nothing is dropped, delivery merely stalls for
//                the pause window.
//  * export    — the actor serialises its private state and its POS
//                partition inside the SOURCE enclave (the POS hooks keep
//                ea_core decoupled from ea_pos).
//  * seal      — the bundle is sealed to the source enclave's identity
//                (MRENCLAVE) as the rollback copy, then transferred under a
//                fresh AEAD key from an attested X25519 exchange in which
//                each side pins the other's expected measurement.
//  * ticket    — a monotonic-counter ticket (namespace "ea-migration-
//                ticket", slot = hash(actor)) is incremented at departure
//                and embedded in the bundle; resuming CONSUMES it with a
//                compare-and-increment. A second resume of the same bundle
//                — the resume-twice fork — finds the counter already
//                advanced and is refused.
//  * resume    — scheduler affinity masks are extended (the stealing
//                scheduler re-reads placement per dispatch, which is what
//                makes live migration possible; the static scheduler's
//                enter-once fast path is rejected while running), the
//                placement flips, channel routes are rewritten in place
//                (in-flight messages re-sealed under the new pair key,
//                FIFO preserved), and the actor imports its state inside
//                the TARGET enclave.
//  * rollback  — any failure after export restores the source copy from
//                the sealed bundle and quarantines the (source, target)
//                ROUTE, never the actor: the actor resumes at the source
//                and later migrations simply avoid the bad route.
//
// PlacementControllerActor closes the loop: it polls per-enclave EPC
// accounting (sgxsim committed-bytes, surfaced through Runtime::health())
// and migrates the cheapest-to-move actor off any enclave crossing a
// configurable EPC watermark.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "concurrent/hle_lock.hpp"
#include "core/actor.hpp"
#include "sgxsim/enclave.hpp"
#include "util/latency_hist.hpp"

namespace ea::core {

class Runtime;

enum class MigrateResult : std::uint8_t {
  kOk = 0,
  kNotFound,          // unknown actor or enclave
  kNotMigratable,     // actor did not opt in (or is placed untrusted)
  kBusy,              // actor not Runnable (failed/restarting/migrating)
  kSchedUnsupported,  // runtime running with the static scheduler, whose
                      // enter-once fast path never re-reads placement
  kSamePlacement,     // source == target
  kRouteQuarantined,  // a previous migration failed on this route
  kSealFailed,        // export/seal failed; actor restored at source
  kTransferFailed,    // attested transfer failed; rolled back, route
                      // quarantined
  kResumeRefused,     // ticket already consumed (resume-twice fork); the
                      // duplicate resume was refused and the source restored
  kImportFailed,      // target-side import failed; rolled back
  kAffinityFailed,    // no home worker could extend its affinity mask
};

const char* to_string(MigrateResult result) noexcept;

struct MigrationStats {
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rolled_back = 0;       // source restored from sealed bundle
  std::uint64_t forks_prevented = 0;   // duplicate resumes refused by ticket
  std::uint64_t in_flight_carried = 0; // channel messages re-sealed across
                                       // rebinds (zero lost by construction)
};

// Serialises migrations process-wide (one in flight at a time) and owns the
// rollback/quarantine bookkeeping. Its lock ranks kMigration — the
// outermost rank in the table — because a migration reaches into mboxes,
// POS buckets, the enclave manager and the counter service while holding it.
class MigrationCoordinator {
 public:
  explicit MigrationCoordinator(Runtime& rt) : rt_(rt) {}

  MigrationCoordinator(const MigrationCoordinator&) = delete;
  MigrationCoordinator& operator=(const MigrationCoordinator&) = delete;

  // Migrates `actor_name` into the named enclave (created on first use,
  // like Runtime::enclave()). Safe to call while the runtime runs iff the
  // stealing scheduler is active; always allowed before start().
  MigrateResult migrate(const std::string& actor_name,
                        const std::string& target_enclave);
  MigrateResult migrate(Actor& actor, sgxsim::Enclave& target);

  // True when a failed migration quarantined source→target (directional).
  bool route_quarantined(sgxsim::EnclaveId source,
                         sgxsim::EnclaveId target) const;

  MigrationStats stats() const;

  // Migration pause time (park → resume) in microseconds.
  const util::LatencyHist& pause_hist() const noexcept { return pause_hist_; }

  // The runtime this coordinator migrates within (the placement controller
  // walks its enclave and actor tables).
  Runtime& runtime() const noexcept { return rt_; }

 private:
  struct Bundle;

  // Park/unpark protocol (see actor.hpp's executing_ comment). park()
  // returns false when the actor is not Runnable.
  static bool park(Actor& actor);
  static void unpark(Actor& actor);

  MigrateResult migrate_locked(Actor& actor, sgxsim::Enclave& source,
                               sgxsim::Enclave& target)
      EA_REQUIRES(mu_);
  // Restores the actor at the source from the sealed rollback blob (falling
  // back to the in-hand bundle if unsealing fails, which cannot happen
  // outside a broken sealing service).
  void restore_at_source(Actor& actor, sgxsim::Enclave& source,
                         std::span<const std::uint8_t> rollback_blob,
                         const Bundle& in_hand) EA_REQUIRES(mu_);
  void quarantine_route(sgxsim::EnclaveId source, sgxsim::EnclaveId target)
      EA_REQUIRES(mu_);

  Runtime& rt_;
  mutable concurrent::HleSpinLock mu_{concurrent::LockRank::kMigration};
  std::vector<std::pair<sgxsim::EnclaveId, sgxsim::EnclaveId>>
      quarantined_routes_ EA_GUARDED_BY(mu_);
  util::LatencyHist pause_hist_ EA_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> attempted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rolled_back_{0};
  std::atomic<std::uint64_t> forks_prevented_{0};
  std::atomic<std::uint64_t> in_flight_carried_{0};
};

// EPC-watermark placement policy (the *SGX-Aware Container Orchestration*
// idea at actor granularity): watch per-enclave committed bytes and evict
// the cheapest migratable actor BEFORE an enclave crosses the paging cliff.
struct PlacementControllerOptions {
  // Fraction of the EPC budget at which an enclave is considered
  // overcommitted and an eviction is triggered.
  double watermark = 0.80;
  // Per-enclave EPC budget in bytes; 0 uses the machine-wide usable EPC
  // from the cost model (~93 MiB). Tests set a small budget so the
  // watermark is reachable without allocating real memory.
  std::uint64_t epc_budget_bytes = 0;
  // Minimum microseconds between probe sweeps (the controller is a normal
  // actor; its body paces itself and reports no pending work).
  std::uint64_t sweep_interval_us = 2000;
};

class PlacementControllerActor : public Actor {
 public:
  PlacementControllerActor(MigrationCoordinator& coordinator,
                           PlacementControllerOptions options = {});

  bool body() override;

  std::uint64_t migrations_triggered() const noexcept {
    return migrations_triggered_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes() const noexcept {
    return probes_.load(std::memory_order_relaxed);
  }

 private:
  // One sweep: probe every enclave, evict off the worst overcommitted one.
  bool sweep();

  MigrationCoordinator& coordinator_;
  PlacementControllerOptions options_;
  std::uint64_t last_sweep_us_ = 0;
  std::atomic<std::uint64_t> migrations_triggered_{0};
  std::atomic<std::uint64_t> probes_{0};
};

}  // namespace ea::core
