#include "core/runtime.hpp"

#include <stdexcept>

#include "sgxsim/transition.hpp"
#include "util/logging.hpp"

namespace ea::core {

const char* to_string(NetMode mode) noexcept {
  switch (mode) {
    case NetMode::kScan:
      return "scan";
    case NetMode::kEpoll:
      return "epoll";
  }
  return "?";
}

Runtime::Runtime(RuntimeOptions options)
    : options_(options),
      arena_(options_.pool_nodes, options_.node_payload_bytes) {
  pool_.adopt(arena_);
}

Runtime::~Runtime() { stop(); }

sgxsim::Enclave& Runtime::enclave(const std::string& name) {
  auto it = enclaves_.find(name);
  if (it != enclaves_.end()) return *it->second;
  sgxsim::Enclave& e = sgxsim::EnclaveManager::instance().create(name);
  enclaves_.emplace(name, &e);
  return e;
}

Actor& Runtime::add_actor(std::unique_ptr<Actor> actor,
                          const std::string& enclave_name) {
  if (started_) throw std::logic_error("add_actor after start");
  actor->runtime_ = this;
  if (!enclave_name.empty()) {
    sgxsim::Enclave& e = enclave(enclave_name);
    actor->placement_ = e.id();
    e.add_committed(actor->state_bytes());
  }
  actors_.push_back(std::move(actor));
  return *actors_.back();
}

Worker& Runtime::add_worker(const std::string& name, std::vector<int> cpus,
                            const std::vector<std::string>& actor_names) {
  if (started_) throw std::logic_error("add_worker after start");
  auto worker = std::make_unique<Worker>(name, std::move(cpus));
  for (const std::string& actor_name : actor_names) {
    Actor* actor = find_actor(actor_name);
    if (actor == nullptr) {
      throw std::invalid_argument("worker " + name + ": unknown actor " +
                                  actor_name);
    }
    worker->assign(actor);
  }
  workers_.push_back(std::move(worker));
  return *workers_.back();
}

Channel& Runtime::channel(const std::string& name, ChannelOptions options) {
  auto it = channels_.find(name);
  if (it != channels_.end()) return *it->second;
  auto ch = std::make_unique<Channel>(name, options, pool_);
  Channel& ref = *ch;
  channels_.emplace(name, std::move(ch));
  return ref;
}

Actor* Runtime::find_actor(const std::string& name) {
  for (auto& actor : actors_) {
    if (actor->name() == name) return actor.get();
  }
  return nullptr;
}

ChannelEnd* Runtime::connect_channel(const std::string& name,
                                     sgxsim::EnclaveId placement,
                                     Actor* owner) {
  ChannelEnd* end = channel(name).connect(placement, owner);
  if (end == nullptr) {
    throw std::logic_error("channel " + name + " already fully connected");
  }
  return end;
}

void Runtime::start() {
  if (started_) return;
  started_ = true;
  // Constructor functions run inside their actor's enclave, as the
  // generated EActors runtime does after creating the enclaves. A throwing
  // constructor is contained like a throwing body (DESIGN.md §12): the
  // actor starts out Failed and the rest of the deployment comes up — the
  // supervisor may later restart it via on_restart().
  for (auto& actor : actors_) {
    try {
      if (actor->placement() != sgxsim::kUntrusted) {
        sgxsim::Enclave* e =
            sgxsim::EnclaveManager::instance().find(actor->placement());
        sgxsim::EnclaveScope scope(*e);
        actor->construct(*this);
      } else {
        actor->construct(*this);
      }
    } catch (const std::exception& e) {
      actor->record_failure(e.what());
    } catch (...) {
      actor->record_failure("non-standard exception in construct()");
    }
  }
  // Wire the scheduler before any thread runs: in steal mode every worker
  // learns the full worker list (steal victims), derives its enclave
  // affinity mask from its home actors, and sizes its run queues to the
  // total actor count (an actor occupies at most one queue slot
  // system-wide, so the queues can never overflow).
  std::vector<Worker*> peers;
  peers.reserve(workers_.size());
  for (auto& worker : workers_) peers.push_back(worker.get());
  for (auto& worker : workers_) {
    worker->configure_sched(options_.sched, peers, actors_.size());
  }
  for (auto& worker : workers_) worker->start();
  running_.store(true, std::memory_order_release);
  EA_INFO("core",
          "runtime started: %zu actors, %zu workers, %zu enclaves, sched=%s",
          actors_.size(), workers_.size(), enclaves_.size(),
          to_string(options_.sched));
}

void Runtime::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  for (auto& worker : workers_) worker->request_stop();
  for (auto& worker : workers_) worker->join();
  running_.store(false, std::memory_order_release);
}

std::string Runtime::stats_string() const {
  std::string out;
  auto append = [&out](const std::string& line) {
    out += line;
    out += '\n';
  };
  append("runtime: " + std::to_string(actors_.size()) + " actors, " +
         std::to_string(workers_.size()) + " workers, " +
         std::to_string(enclaves_.size()) + " enclaves, sched " +
         to_string(options_.sched) + ", pool free " +
         std::to_string(pool_.size()) + "/" +
         std::to_string(options_.pool_nodes));
  for (const auto& worker : workers_) {
    append("  worker " + worker->name() + ": " +
           std::to_string(worker->rounds()) + " rounds, " +
           std::to_string(worker->dispatches()) + " dispatches, " +
           std::to_string(worker->steals()) + " steals, queue_depth " +
           std::to_string(worker->queue_depth()));
  }
  for (const auto& actor : actors_) {
    append("  actor " + actor->name() + ": " +
           std::to_string(actor->invocations()) + " activations" +
           (actor->placement() != sgxsim::kUntrusted
                ? " (enclave " + std::to_string(actor->placement()) + ")"
                : "") +
           (actor->lifecycle() != ActorState::kRunnable
                ? std::string(" [") + to_string(actor->lifecycle()) + "]"
                : ""));
  }
  for (const auto& [name, channel] : channels_) {
    append("  channel " + name + ": " +
           (channel->encrypted() ? "encrypted" : "plain") + ", " +
           std::to_string(channel->auth_failures()) + " auth failures");
  }
  auto stats = sgxsim::transition_stats();
  append("  transitions: " + std::to_string(stats.ecalls) + " ecalls, " +
         std::to_string(stats.ocalls) + " ocalls, " +
         std::to_string(stats.paging_events) + " paging events");
  return out;
}

HealthSnapshot Runtime::health() const {
  HealthSnapshot snap;
  snap.actors.reserve(actors_.size());
  for (const auto& actor : actors_) {
    ActorHealth a;
    a.name = actor->name();
    a.state = actor->lifecycle();
    a.enclave = actor->placement();
    a.invocations = actor->invocations();
    a.failures = actor->failures();
    a.restarts = actor->restarts();
    a.stalled = actor->stalled();
    if (a.failures != 0) a.last_error = actor->last_failure().what;
    snap.actors.push_back(std::move(a));
  }
  snap.channels.reserve(channels_.size());
  for (const auto& [name, channel] : channels_) {
    ChannelHealth c;
    c.name = name;
    c.encrypted = channel->encrypted();
    c.auth_failures = channel->auth_failures();
    c.frame_errors = channel->frame_errors();
    snap.channels.push_back(std::move(c));
  }
  snap.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    WorkerHealth w;
    w.name = worker->name();
    w.rounds = worker->rounds();
    w.dispatches = worker->dispatches();
    w.steals = worker->steals();
    w.queue_depth = worker->queue_depth();
    w.ready_actors = worker->ready_home_actors();
    snap.workers.push_back(std::move(w));
  }
  snap.enclaves.reserve(enclaves_.size());
  const std::uint64_t epc_usable = sgxsim::cost_model().epc_usable_bytes;
  for (const auto& [name, enclave] : enclaves_) {
    EnclaveHealth e;
    e.id = enclave->id();
    e.name = name;
    e.committed = enclave->committed_bytes();
    e.epc_usable = epc_usable;
    snap.enclaves.push_back(std::move(e));
  }
  snap.pool.free = pool_.size();
  snap.pool.capacity = pool_.capacity();
  snap.pool.exhaustions = pool_.exhaustions();
  return snap;
}

concurrent::Pool& Runtime::make_pool(std::size_t nodes,
                                     std::size_t payload_bytes) {
  extra_arenas_.push_back(
      std::make_unique<concurrent::NodeArena>(nodes, payload_bytes));
  extra_pools_.push_back(std::make_unique<concurrent::Pool>());
  extra_pools_.back()->adopt(*extra_arenas_.back());
  return *extra_pools_.back();
}

}  // namespace ea::core
