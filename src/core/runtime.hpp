// The EActors runtime (paper §3.2).
//
// The runtime owns enclaves, actors, workers, channels and the preallocated
// public node pool. Startup order follows the paper: create the enclaves,
// allocate private state, call the actors' constructors (inside their
// enclaves), then create and start the workers.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "concurrent/arena.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"
#include "core/channel.hpp"
#include "core/health.hpp"
#include "core/worker.hpp"
#include "sgxsim/enclave.hpp"

namespace ea::core {

// Network readiness plane (DESIGN.md §16): kScan is the paper's Fig. 6
// behaviour — READER/WRITER poll every registered socket non-blockingly
// each round (and the ablation baseline, mirroring SchedMode::kStatic);
// kEpoll adds an fd-watcher actor per net worker that owns an
// edge-triggered epoll instance and feeds readiness notes to READER/WRITER
// so idle sockets cost zero syscalls.
enum class NetMode : std::uint8_t {
  kScan = 0,
  kEpoll = 1,
};

const char* to_string(NetMode mode) noexcept;

struct RuntimeOptions {
  // Public message pool preallocation.
  std::size_t pool_nodes = 4096;
  std::size_t node_payload_bytes = 2048;
  // Scheduler (DESIGN.md §14): kStatic is the paper's fixed round-robin
  // mapping (and the ablation baseline); kSteal enables per-worker run
  // queues with affinity-filtered work stealing.
  SchedMode sched = SchedMode::kStatic;
  // Network plane (DESIGN.md §16): scan keeps the paper's per-round
  // socket sweep; epoll installs the readiness core.
  NetMode net = NetMode::kScan;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- deployment construction -------------------------------------------

  // Returns the named enclave, creating it on first use.
  sgxsim::Enclave& enclave(const std::string& name);

  // Adds an actor, deployed untrusted (enclave_name empty) or into the
  // named enclave. Returns a reference to the stored actor.
  Actor& add_actor(std::unique_ptr<Actor> actor,
                   const std::string& enclave_name = "");

  // Creates a worker bound to `cpus` executing `actor_names` round-robin.
  Worker& add_worker(const std::string& name, std::vector<int> cpus,
                     const std::vector<std::string>& actor_names);

  // Declares (or retrieves) a channel. Actors bind to it via
  // Actor::connect() inside their constructor functions.
  Channel& channel(const std::string& name, ChannelOptions options = {});

  Actor* find_actor(const std::string& name);

  // --- execution ----------------------------------------------------------

  // Calls every actor's constructor (inside its enclave) and starts all
  // workers. Idempotent per runtime instance.
  void start();

  // Stops and joins all workers.
  void stop();

  // True while workers are running. Read from worker threads (the
  // migration coordinator gates live-vs-prestart paths on it), so the
  // flag is atomic: start()'s store releases, readers acquire.
  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  // --- shared resources ----------------------------------------------------

  concurrent::Pool& public_pool() noexcept { return pool_; }

  // The options this runtime was built with (net/sched mode selection for
  // subsystem installers like net::install_networking).
  const RuntimeOptions& options() const noexcept { return options_; }

  // Allocates a dedicated arena + pool (e.g. a large-payload pool for a
  // high-throughput channel). The runtime owns the memory.
  concurrent::Pool& make_pool(std::size_t nodes, std::size_t payload_bytes);

  const std::vector<std::unique_ptr<Worker>>& workers() const noexcept {
    return workers_;
  }

  const std::vector<std::unique_ptr<Actor>>& actors() const noexcept {
    return actors_;
  }

  // Human-readable diagnostics: per-worker rounds, per-actor activations,
  // channel modes, enclave transition totals. Safe to call while running.
  std::string stats_string() const;

  // Structured health snapshot (per-actor lifecycle state, restart counts,
  // channel frame/auth errors, pool exhaustion) — the supervision layer and
  // tests consume this instead of poking runtime internals. Safe to call
  // while running.
  HealthSnapshot health() const;

  // All channels, keyed by name (migration walks these to find the ends a
  // moving actor owns; also handy for diagnostics).
  const std::map<std::string, std::unique_ptr<Channel>>& channels()
      const noexcept {
    return channels_;
  }

  // Enclaves this runtime created, keyed by name.
  const std::map<std::string, sgxsim::Enclave*>& enclaves() const noexcept {
    return enclaves_;
  }

 private:
  friend class Actor;
  ChannelEnd* connect_channel(const std::string& name,
                              sgxsim::EnclaveId placement, Actor* owner);

  RuntimeOptions options_;
  concurrent::NodeArena arena_;
  concurrent::Pool pool_;
  std::vector<std::unique_ptr<concurrent::NodeArena>> extra_arenas_;
  std::vector<std::unique_ptr<concurrent::Pool>> extra_pools_;

  std::map<std::string, sgxsim::Enclave*> enclaves_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<std::string, std::unique_ptr<Channel>> channels_;
  bool started_ = false;
  std::atomic<bool> running_{false};
};

}  // namespace ea::core
