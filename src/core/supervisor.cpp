#include "core/supervisor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/runtime.hpp"
#include "sgxsim/transition.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::core {

namespace {

// Runs a lifecycle hook inside the actor's enclave (the same placement rule
// runtime.cpp applies to construct()).
template <typename Fn>
void run_in_placement(Actor& actor, Fn&& fn) {
  if (actor.placement() != sgxsim::kUntrusted) {
    sgxsim::Enclave* e =
        sgxsim::EnclaveManager::instance().find(actor.placement());
    sgxsim::EnclaveScope scope(*e);
    fn();
  } else {
    fn();
  }
}

}  // namespace

SupervisorActor::SupervisorActor(std::string name, Options options)
    : Actor(std::move(name)), options_(options) {
  // Root of the supervision tree: injected body faults are absorbed by
  // everyone *below* it; nothing heals the healer.
  fault_exempt_ = true;
  // Containment sweeps run high priority under the stealing scheduler so
  // failed actors are healed even when the run queues are saturated.
  set_priority(ActorPriority::kHigh);
}

void SupervisorActor::set_policy(const std::string& actor,
                                 RestartPolicy policy) {
  policies_[actor] = policy;
}

void SupervisorActor::ignore(const std::string& actor) {
  ignored_.push_back(actor);
}

void SupervisorActor::construct(Runtime& rt) {
  // Snapshot the deployment. Actors are never removed from the runtime, so
  // the raw pointers stay valid for the runtime's lifetime. Install the
  // supervisor *last* so this sees every actor.
  for (const auto& actor : rt.actors()) {
    if (actor.get() == this) continue;
    if (std::find(ignored_.begin(), ignored_.end(), actor->name()) !=
        ignored_.end()) {
      continue;
    }
    Watch w;
    w.actor = actor.get();
    auto it = policies_.find(actor->name());
    w.policy = it != policies_.end() ? it->second : options_.default_policy;
    // Distinct jitter stream per watch, deterministic given options_.seed.
    ++seed_counter_;
    w.backoff = BackoffSchedule(w.policy.backoff,
                                options_.seed + seed_counter_ * 0x9e3779b9ULL);
    w.last_invocations = actor->invocations();
    watches_.push_back(std::move(w));
  }
  next_sweep_ = Clock::now();
  EA_INFO("core", "supervisor %s watching %zu actors", name().c_str(),
          watches_.size());
}

bool SupervisorActor::body() {
  Clock::time_point now = Clock::now();
  if (now < next_sweep_) return false;
  next_sweep_ = now + std::chrono::microseconds(options_.sweep_interval_us);
  std::uint64_t before = restarts_ + restart_failures_ + quarantines_;
  sweep(now);
  ++sweeps_;
  return restarts_ + restart_failures_ + quarantines_ != before;
}

void SupervisorActor::sweep(Clock::time_point now) {
  for (Watch& w : watches_) {
    switch (w.actor->lifecycle()) {
      case ActorState::kFailed:
        handle_failed(w, now);
        break;
      case ActorState::kRunnable:
        // A full healthy window earns the actor a fresh backoff schedule.
        prune_window(w, now);
        if (w.window.empty() && w.backoff.attempts() != 0) w.backoff.reset();
        watchdog(w);
        break;
      case ActorState::kRestarting:   // only this thread restarts; unreachable
      case ActorState::kQuarantined:  // terminal
      case ActorState::kMigrating:    // parked at the migration barrier; the
                                      // coordinator owns the exit transition
                                      // and rolls back on failure — never
                                      // restart or quarantine a mid-flight
                                      // actor (DESIGN.md §17)
        break;
    }
  }
}

void SupervisorActor::handle_failed(Watch& w, Clock::time_point now) {
  if (!w.restart_pending) {
    prune_window(w, now);
    if (w.window.size() >= w.policy.max_restarts) {
      quarantine(w);
      return;
    }
    std::uint64_t delay_us = w.backoff.next_delay_us();
    w.restart_at = now + std::chrono::microseconds(delay_us);
    w.restart_pending = true;
    w.failures_seen = w.actor->failures();
    EA_INFO("core", "supervisor: restart of %s in %llu us (attempt %llu)",
            w.actor->name().c_str(), static_cast<unsigned long long>(delay_us),
            static_cast<unsigned long long>(w.backoff.attempts()));
    return;
  }
  if (now >= w.restart_at) perform_restart(w, now);
}

void SupervisorActor::perform_restart(Watch& w, Clock::time_point now) {
  w.restart_pending = false;
  if (!w.actor->begin_restart()) return;  // lost a race; re-evaluate next sweep
  try {
    if (EA_FAIL_TRIGGERED("supervisor.restart.fail")) {
      throw std::runtime_error("injected fault: supervisor.restart.fail");
    }
    run_in_placement(*w.actor, [&] { w.actor->on_restart(); });
    w.actor->complete_restart();
    w.window.push_back(now);
    w.failures_seen = w.actor->failures();
    w.last_invocations = w.actor->invocations();
    w.idle_sweeps = 0;
    ++restarts_;
    EA_INFO("core", "supervisor: restarted %s (restart #%u)",
            w.actor->name().c_str(), w.actor->restarts());
  } catch (const std::exception& e) {
    // A throwing on_restart() counts as a fresh failure: back to Failed,
    // the backoff keeps growing (the window only records *completed*
    // restarts, so it cannot mask a restart loop).
    w.actor->record_failure(e.what());
    ++restart_failures_;
  } catch (...) {
    w.actor->record_failure("non-standard exception in on_restart()");
    ++restart_failures_;
  }
}

void SupervisorActor::quarantine(Watch& w) {
  FailureInfo info = w.actor->last_failure();
  w.actor->enter_quarantine();
  try {
    run_in_placement(*w.actor, [&] { w.actor->on_quarantine(); });
  } catch (const std::exception& e) {
    EA_WARN("core", "supervisor: on_quarantine() of %s threw: %s",
            w.actor->name().c_str(), e.what());
  } catch (...) {
    EA_WARN("core", "supervisor: on_quarantine() of %s threw",
            w.actor->name().c_str());
  }
  ++quarantines_;
  EA_WARN("core", "supervisor: quarantined %s after %llu failures (last: %s)",
          w.actor->name().c_str(),
          static_cast<unsigned long long>(info.failure_count),
          info.what.c_str());
  if (escalate_) escalate_(info);
}

void SupervisorActor::watchdog(Watch& w) {
  std::uint64_t inv = w.actor->invocations();
  if (inv != w.last_invocations) {
    w.last_invocations = inv;
    w.idle_sweeps = 0;
    if (w.actor->stalled()) {
      w.actor->stalled_.store(false, std::memory_order_relaxed);
    }
    return;
  }
  if (!w.actor->has_pending_work()) {
    w.idle_sweeps = 0;  // idle with an empty inbox is healthy
    return;
  }
  if (++w.idle_sweeps >= w.policy.stall_rounds && !w.actor->stalled()) {
    w.actor->stalled_.store(true, std::memory_order_relaxed);
    ++stalls_flagged_;
    EA_WARN("core", "supervisor: %s stalled (%llu invocations, work pending)",
            w.actor->name().c_str(), static_cast<unsigned long long>(inv));
  }
}

void SupervisorActor::prune_window(Watch& w, Clock::time_point now) const {
  Clock::time_point cutoff =
      now - std::chrono::microseconds(w.policy.window_us);
  w.window.erase(
      std::remove_if(w.window.begin(), w.window.end(),
                     [cutoff](Clock::time_point t) { return t < cutoff; }),
      w.window.end());
}

SupervisorActor& install_supervisor(Runtime& rt,
                                    SupervisorActor::Options options,
                                    const std::string& name,
                                    std::vector<int> cpus) {
  auto sup = std::make_unique<SupervisorActor>(name, options);
  SupervisorActor& ref = *sup;
  rt.add_actor(std::move(sup));  // untrusted: it enters enclaves on demand
  rt.add_worker(name + ".worker", std::move(cpus), {name});
  return ref;
}

}  // namespace ea::core
