// Supervision system actor (DESIGN.md §12).
//
// The worker loop contains failures (core/actor.hpp: an exception escaping
// body() moves the actor to Failed); this actor is the policy half — the
// CAF-style monitor that turns containment into self-healing:
//
//   * one-for-one restart: a Failed actor is restarted (on_restart(), run
//     inside its enclave) after an exponential-backoff-with-jitter delay;
//   * restart budget: more than `max_restarts` restarts within a sliding
//     `window_us` window quarantines the actor (on_quarantine() drains its
//     pending nodes back to their pools so conservation holds) and fires
//     the escalation callback;
//   * stall watchdog: an actor whose invocations() counter has not moved
//     across `stall_rounds` supervisor sweeps while has_pending_work()
//     reports queued input is flagged stalled in the health snapshot.
//
// The supervisor is itself an eactor: it runs on a worker, never blocks,
// and paces itself with a steady-clock sweep interval. It is the root of
// the supervision tree — nothing restarts it, so it is exempt from the
// injected `actor.body.throw` fault (see invoke_contained()).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/actor.hpp"
#include "core/backoff.hpp"

namespace ea::core {

class Runtime;

// Per-actor restart policy.
struct RestartPolicy {
  BackoffPolicy backoff{/*initial_us=*/1000, /*max_us=*/100000,
                        /*multiplier=*/2, /*jitter_pct=*/20};
  std::uint32_t max_restarts = 5;        // budget within the sliding window
  std::uint64_t window_us = 10'000'000;  // sliding-window length
  std::uint32_t stall_rounds = 8;        // sweeps without progress => stalled
};

// Namespace-scope (not nested) so it can serve as a defaulted constructor
// argument while SupervisorActor is still incomplete.
struct SupervisorOptions {
  std::uint64_t sweep_interval_us = 500;  // min distance between sweeps
  RestartPolicy default_policy;
  std::uint64_t seed = 0x5eed;  // jitter seed (deterministic tests)
};

class SupervisorActor : public Actor {
 public:
  using Options = SupervisorOptions;
  using EscalationFn = std::function<void(const FailureInfo&)>;

  explicit SupervisorActor(std::string name, Options options = {});

  // Overrides the default policy for one actor (by name). Pre-start only.
  void set_policy(const std::string& actor, RestartPolicy policy);

  // Excludes an actor from supervision entirely. Pre-start only.
  void ignore(const std::string& actor);

  // Called (from the supervisor's worker thread) when an actor is
  // quarantined. Pre-start only.
  void set_escalation(EscalationFn fn) { escalate_ = std::move(fn); }

  // Snapshots the runtime's actor list: every actor except this one (and
  // the ignored set) is watched.
  void construct(Runtime& rt) override;

  bool body() override;

  // --- counters for tests / health ---------------------------------------
  std::uint64_t sweeps() const noexcept { return sweeps_; }
  std::uint64_t restarts_performed() const noexcept { return restarts_; }
  std::uint64_t restart_failures() const noexcept { return restart_failures_; }
  std::uint64_t quarantines() const noexcept { return quarantines_; }
  std::uint64_t stalls_flagged() const noexcept { return stalls_flagged_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Watch {
    Actor* actor = nullptr;
    RestartPolicy policy;
    BackoffSchedule backoff;
    // Failure generation already scheduled/handled (vs actor->failures()).
    std::uint64_t failures_seen = 0;
    bool restart_pending = false;
    Clock::time_point restart_at{};
    // Completed restart timestamps inside the sliding window.
    std::vector<Clock::time_point> window;
    // Stall watchdog.
    std::uint64_t last_invocations = 0;
    std::uint32_t idle_sweeps = 0;
  };

  void sweep(Clock::time_point now);
  void handle_failed(Watch& w, Clock::time_point now);
  void perform_restart(Watch& w, Clock::time_point now);
  void quarantine(Watch& w);
  void watchdog(Watch& w);
  void prune_window(Watch& w, Clock::time_point now) const;

  // All supervisor state below is single-threaded by construction: it is
  // built during construct() (pre-start) and then touched only from body()
  // on the supervisor's own worker — thread affinity, not a lock, so no
  // capability annotations apply (DESIGN.md §13). Cross-thread reads of
  // watched actors go through the atomics in core/actor.hpp; the actors'
  // failure records are behind Actor::failure_lock_ (kActorFailure).
  Options options_;
  std::map<std::string, RestartPolicy> policies_;
  std::vector<std::string> ignored_;
  EscalationFn escalate_;

  std::vector<Watch> watches_;
  Clock::time_point next_sweep_{};
  std::uint64_t seed_counter_ = 0;

  std::uint64_t sweeps_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t restart_failures_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t stalls_flagged_ = 0;
};

// Adds a SupervisorActor (untrusted) on its own worker. Call after every
// other actor has been added and before rt.start(). Returns the actor so
// callers can set policies/escalation before start.
SupervisorActor& install_supervisor(Runtime& rt,
                                    SupervisorActor::Options options = {},
                                    const std::string& name = "core.supervisor",
                                    std::vector<int> cpus = {0});

}  // namespace ea::core
