#include "core/worker.hpp"

#include <chrono>

#include "sgxsim/transition.hpp"
#include "util/affinity.hpp"
#include "util/logging.hpp"

namespace ea::core {
namespace {

// Parks the thread per the backoff's verdict after an idle round (see
// IdleBackoff in worker.hpp for the ramp rationale). The sleep only ever
// runs on the all-idle path — never while any actor makes progress — so it
// cannot stall the message path the enclave-safety rules protect.
void park_idle(IdleBackoff& backoff) {
  const std::uint32_t us = backoff.next_idle();
  if (us == 0) {
    std::this_thread::yield();
  } else {
    // ea-lint: allow-next-line(blocking-syscall) -- idle-only parking, bounded by kMaxSleepUs
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

}  // namespace

Worker::Worker(std::string name, std::vector<int> cpus)
    : name_(std::move(name)), cpus_(std::move(cpus)) {}

Worker::~Worker() {
  request_stop();
  join();
}

void Worker::start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

bool Worker::round() {
  bool progress = false;
  for (Actor* actor : actors_) {
    // Containment (DESIGN.md §12): an exception escaping body() fails the
    // actor, not the process. Non-Runnable actors are skipped — one
    // relaxed-ish load per actor per round; the try/catch itself is free
    // on the no-throw path.
    progress |= invoke_contained(*actor);
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
  return progress;
}

void Worker::run() {
  util::pin_current_thread(cpus_);

  // Determine whether all actors share one enclave.
  bool uniform = true;
  sgxsim::EnclaveId common = sgxsim::kUntrusted;
  if (!actors_.empty()) {
    common = actors_.front()->placement();
    for (Actor* a : actors_) {
      if (a->placement() != common) {
        uniform = false;
        break;
      }
    }
  }

  if (uniform && common != sgxsim::kUntrusted) {
    sgxsim::Enclave* enclave =
        sgxsim::EnclaveManager::instance().find(common);
    if (enclave != nullptr) {
      run_single_enclave(*enclave);
      return;
    }
  }
  run_mixed();
}

void Worker::run_single_enclave(sgxsim::Enclave& enclave) {
  // Enter once, stay inside: the EActors fast path.
  sgxsim::EnclaveScope scope(enclave);
  IdleBackoff backoff;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (round()) {
      backoff.reset();
    } else {
      park_idle(backoff);
    }
  }
}

void Worker::run_mixed() {
  IdleBackoff backoff;
  while (!stop_.load(std::memory_order_relaxed)) {
    bool progress = false;
    for (Actor* actor : actors_) {
      if (actor->placement() != sgxsim::kUntrusted) {
        sgxsim::Enclave* enclave =
            sgxsim::EnclaveManager::instance().find(actor->placement());
        if (enclave != nullptr) {
          // Migrate into the actor's enclave for this activation only.
          sgxsim::EnclaveScope scope(*enclave);
          progress |= invoke_contained(*actor);
          continue;
        }
      }
      progress |= invoke_contained(*actor);
    }
    rounds_.fetch_add(1, std::memory_order_relaxed);
    if (progress) {
      backoff.reset();
    } else {
      park_idle(backoff);
    }
  }
}

}  // namespace ea::core
