#include "core/worker.hpp"

#include "sgxsim/transition.hpp"
#include "util/affinity.hpp"
#include "util/logging.hpp"

namespace ea::core {
namespace {

// After this many consecutive idle rounds the worker yields its timeslice.
// Real EActors workers spin (they own a hardware thread); on machines with
// fewer cores than workers the yield stands in for the hardware thread the
// paper's testbed would have provided. It does not touch the cost model.
// Kept small: on an oversubscribed CPU, prompt yields approximate the
// all-workers-runnable concurrency of the paper's testbed.
constexpr int kIdleRoundsBeforeYield = 4;

}  // namespace

Worker::Worker(std::string name, std::vector<int> cpus)
    : name_(std::move(name)), cpus_(std::move(cpus)) {}

Worker::~Worker() {
  request_stop();
  join();
}

void Worker::start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

bool Worker::round() {
  bool progress = false;
  for (Actor* actor : actors_) {
    ++actor->invocations_;
    progress |= actor->body();
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
  return progress;
}

void Worker::run() {
  util::pin_current_thread(cpus_);

  // Determine whether all actors share one enclave.
  bool uniform = true;
  sgxsim::EnclaveId common = sgxsim::kUntrusted;
  if (!actors_.empty()) {
    common = actors_.front()->placement();
    for (Actor* a : actors_) {
      if (a->placement() != common) {
        uniform = false;
        break;
      }
    }
  }

  if (uniform && common != sgxsim::kUntrusted) {
    sgxsim::Enclave* enclave =
        sgxsim::EnclaveManager::instance().find(common);
    if (enclave != nullptr) {
      run_single_enclave(*enclave);
      return;
    }
  }
  run_mixed();
}

void Worker::run_single_enclave(sgxsim::Enclave& enclave) {
  // Enter once, stay inside: the EActors fast path.
  sgxsim::EnclaveScope scope(enclave);
  int idle_rounds = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (round()) {
      idle_rounds = 0;
    } else if (++idle_rounds >= kIdleRoundsBeforeYield) {
      std::this_thread::yield();
      idle_rounds = 0;
    }
  }
}

void Worker::run_mixed() {
  int idle_rounds = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    bool progress = false;
    for (Actor* actor : actors_) {
      actor->invocations_.fetch_add(1, std::memory_order_relaxed);
      if (actor->placement() != sgxsim::kUntrusted) {
        sgxsim::Enclave* enclave =
            sgxsim::EnclaveManager::instance().find(actor->placement());
        if (enclave != nullptr) {
          // Migrate into the actor's enclave for this activation only.
          sgxsim::EnclaveScope scope(*enclave);
          progress |= actor->body();
          continue;
        }
      }
      progress |= actor->body();
    }
    rounds_.fetch_add(1, std::memory_order_relaxed);
    if (progress) {
      idle_rounds = 0;
    } else if (++idle_rounds >= kIdleRoundsBeforeYield) {
      std::this_thread::yield();
      idle_rounds = 0;
    }
  }
}

}  // namespace ea::core
