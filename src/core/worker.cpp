#include "core/worker.hpp"

#include <algorithm>
#include <chrono>

#include "sgxsim/transition.hpp"
#include "util/affinity.hpp"
#include "util/logging.hpp"

namespace ea::core {
namespace {

// Parks the thread per the backoff's verdict after an idle round (see
// IdleBackoff in worker.hpp for the ramp rationale). The sleep only ever
// runs on the all-idle path — never while any actor makes progress — so it
// cannot stall the message path the enclave-safety rules protect.
void park_idle(IdleBackoff& backoff) {
  const std::uint32_t us = backoff.next_idle();
  if (us == 0) {
    std::this_thread::yield();
  } else {
    // ea-lint: allow-next-line(blocking-syscall) -- idle-only parking, bounded by kMaxSleepUs
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

thread_local Worker* tls_current_worker = nullptr;

}  // namespace

const char* to_string(SchedMode mode) noexcept {
  switch (mode) {
    case SchedMode::kStatic:
      return "static";
    case SchedMode::kSteal:
      return "steal";
  }
  return "unknown";
}

Worker::Worker(std::string name, std::vector<int> cpus)
    : name_(std::move(name)), cpus_(std::move(cpus)) {}

Worker::~Worker() {
  request_stop();
  join();
}

Worker* Worker::current() noexcept { return tls_current_worker; }

void Worker::configure_sched(SchedMode mode, std::vector<Worker*> peers,
                             std::size_t queue_capacity) {
  mode_ = mode;
  peers_ = std::move(peers);
  affinity_count_.store(0, std::memory_order_relaxed);
  for (Actor* a : actors_) {
    if (a->placement() != sgxsim::kUntrusted) {
      grant_affinity(a->placement());
    }
  }
  if (mode_ == SchedMode::kSteal) {
    high_q_.reserve(queue_capacity);
    norm_q_.reserve(queue_capacity);
    // Distinct per-worker victim streams; derived from the name so runs
    // are reproducible (no wall-clock entropy in the scheduler).
    victim_rng_ = 0x9e3779b97f4a7c15ull;
    for (char c : name_) victim_rng_ = victim_rng_ * 131 + static_cast<unsigned char>(c);
  }
}

bool Worker::can_run(sgxsim::EnclaveId enclave) const noexcept {
  if (enclave == sgxsim::kUntrusted) return true;
  // Acquire on the count pairs with grant_affinity's release store, so a
  // reader that sees the new count sees the slot value. Linear scan over a
  // handful of slots beats the old sorted vector's binary search anyway.
  const std::uint32_t n = affinity_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (affinity_slots_[i].load(std::memory_order_relaxed) == enclave) {
      return true;
    }
  }
  return false;
}

std::vector<sgxsim::EnclaveId> Worker::affinity() const {
  const std::uint32_t n = affinity_count_.load(std::memory_order_acquire);
  std::vector<sgxsim::EnclaveId> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(affinity_slots_[i].load(std::memory_order_relaxed));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Worker::grant_affinity(sgxsim::EnclaveId enclave) {
  if (enclave == sgxsim::kUntrusted) return true;
  const std::uint32_t n = affinity_count_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (affinity_slots_[i].load(std::memory_order_relaxed) == enclave) {
      return true;  // already granted
    }
  }
  if (n >= kMaxAffinity) return false;
  // Slot first, count second (release): a concurrent can_run() either sees
  // the old count (misses the new grant, conservative) or the new count
  // with an initialised slot. Single writer by the coordinator contract.
  affinity_slots_[n].store(enclave, std::memory_order_relaxed);
  affinity_count_.store(n + 1, std::memory_order_release);
  return true;
}

std::size_t Worker::ready_home_actors() const noexcept {
  std::size_t n = 0;
  for (const Actor* a : actors_) {
    if (a->sched_state_.load(std::memory_order_relaxed) !=
        SchedState::kParked) {
      ++n;
    }
  }
  return n;
}

void Worker::start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

bool Worker::round() {
  bool progress = false;
  for (Actor* actor : actors_) {
    // Containment (DESIGN.md §12): an exception escaping body() fails the
    // actor, not the process. Non-Runnable actors are skipped — one
    // relaxed-ish load per actor per round; the try/catch itself is free
    // on the no-throw path.
    progress |= invoke_contained(*actor);
  }
  dispatches_.fetch_add(actors_.size(), std::memory_order_relaxed);
  rounds_.fetch_add(1, std::memory_order_relaxed);
  return progress;
}

void Worker::run() {
  util::pin_current_thread(cpus_);
  tls_current_worker = this;

  if (mode_ == SchedMode::kSteal) {
    run_steal();
    tls_current_worker = nullptr;
    return;
  }

  // Determine whether all actors share one enclave.
  bool uniform = true;
  sgxsim::EnclaveId common = sgxsim::kUntrusted;
  if (!actors_.empty()) {
    common = actors_.front()->placement();
    for (Actor* a : actors_) {
      if (a->placement() != common) {
        uniform = false;
        break;
      }
    }
  }

  if (uniform && common != sgxsim::kUntrusted) {
    sgxsim::Enclave* enclave =
        sgxsim::EnclaveManager::instance().find(common);
    if (enclave != nullptr) {
      run_single_enclave(*enclave);
      tls_current_worker = nullptr;
      return;
    }
  }
  run_mixed();
  tls_current_worker = nullptr;
}

void Worker::run_single_enclave(sgxsim::Enclave& enclave) {
  // Enter once, stay inside: the EActors fast path.
  sgxsim::EnclaveScope scope(enclave);
  IdleBackoff backoff;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (round()) {
      backoff.reset();
    } else {
      park_idle(backoff);
    }
  }
}

void Worker::run_mixed() {
  IdleBackoff backoff;
  while (!stop_.load(std::memory_order_relaxed)) {
    bool progress = false;
    for (Actor* actor : actors_) {
      if (actor->placement() != sgxsim::kUntrusted) {
        sgxsim::Enclave* enclave =
            sgxsim::EnclaveManager::instance().find(actor->placement());
        if (enclave != nullptr) {
          // Migrate into the actor's enclave for this activation only.
          sgxsim::EnclaveScope scope(*enclave);
          progress |= invoke_contained(*actor);
          continue;
        }
      }
      progress |= invoke_contained(*actor);
    }
    dispatches_.fetch_add(actors_.size(), std::memory_order_relaxed);
    rounds_.fetch_add(1, std::memory_order_relaxed);
    if (progress) {
      backoff.reset();
    } else {
      park_idle(backoff);
    }
  }
}

// --- stealing scheduler ------------------------------------------------------

void Worker::switch_enclave(sgxsim::EnclaveId enclave) {
  if (enclave == entered_) return;
  if (entered_ != sgxsim::kUntrusted) {
    sgxsim::detail::exit_enclave();
    entered_ = sgxsim::kUntrusted;
  }
  if (enclave != sgxsim::kUntrusted) {
    sgxsim::Enclave* e = sgxsim::EnclaveManager::instance().find(enclave);
    if (e != nullptr) {
      sgxsim::detail::enter_enclave(*e);
      entered_ = enclave;
    }
  }
}

void Worker::push_own(Actor* actor, bool fresh_wakeup) {
  concurrent::RunQueue& q =
      actor->priority() == ActorPriority::kHigh ? high_q_ : norm_q_;
  // Fresh wakeups go to the front (their mailbox lines are warm); actors
  // that stayed ready after a run rotate to the back, which doubles as the
  // steal end — continuously-hot actors are exactly the ones worth
  // migrating. The queue cannot be full (capacity = total actors, and an
  // actor occupies at most one slot system-wide), but if a push is ever
  // refused the actor parks and the home poll tick rediscovers it — work
  // is delayed, never lost.
  const bool pushed = fresh_wakeup ? q.push_front(actor) : q.push_back(actor);
  if (!pushed) {
    actor->sched_state_.store(SchedState::kParked, std::memory_order_release);
  }
}

Actor* Worker::pop_own() {
  void* item = high_q_.pop_front();
  if (item == nullptr) item = norm_q_.pop_front();
  return static_cast<Actor*>(item);
}

bool Worker::steal_filter(void* item, const void* ctx) {
  const auto* thief = static_cast<const Worker*>(ctx);
  return thief->can_run(static_cast<Actor*>(item)->placement());
}

Actor* Worker::try_steal() {
  const std::size_t n = peers_.size();
  if (n <= 1) return nullptr;
  // xorshift64* victim rotation — cheap, deterministic per worker.
  victim_rng_ ^= victim_rng_ << 13;
  victim_rng_ ^= victim_rng_ >> 7;
  victim_rng_ ^= victim_rng_ << 17;
  const std::size_t start = static_cast<std::size_t>(victim_rng_ % n);
  for (std::size_t i = 0; i < n; ++i) {
    Worker* victim = peers_[(start + i) % n];
    if (victim == this) continue;
    if (victim->queue_depth() == 0) continue;  // lock-free probe
    void* item = victim->high_q_.steal_back(&Worker::steal_filter, this);
    if (item == nullptr) {
      item = victim->norm_q_.steal_back(&Worker::steal_filter, this);
    }
    if (item != nullptr) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return static_cast<Actor*>(item);
    }
  }
  return nullptr;
}

bool Worker::dispatch_steal(Actor& actor) {
  // Precondition: this thread holds the actor exclusively (it either
  // popped/stole the only queue reference or won the kParked CAS).
  actor.sched_state_.store(SchedState::kDispatched,
                           std::memory_order_relaxed);
  switch_enclave(actor.placement());
  const bool progress = invoke_contained(actor);
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  // Ready/idle transition, driven by the body's own progress and the
  // lock-free mailbox counters: an actor with nothing to do occupies no
  // queue slot. Failed/quarantined actors always park — the supervisor
  // heals them and the home poll tick rediscovers them once Runnable,
  // wherever they had migrated to.
  const bool keep = (progress || actor.has_pending_work()) &&
                    actor.lifecycle() == ActorState::kRunnable;
  if (keep) {
    // Release: the next dispatcher (possibly another worker, via steal)
    // must observe every private-state write this body performed.
    actor.sched_state_.store(SchedState::kQueued, std::memory_order_release);
    push_own(&actor, /*fresh_wakeup=*/false);
  } else {
    actor.sched_state_.store(SchedState::kParked, std::memory_order_release);
  }
  return progress;
}

bool Worker::poll_parked_home() {
  bool progress = false;
  for (Actor* actor : actors_) {
    if (actor->sched_state_.load(std::memory_order_relaxed) !=
        SchedState::kParked) {
      continue;
    }
    if (actor->has_pending_work()) {
      // Mailbox activity: wake into the queue's hot end without running
      // the body here — the pop path dispatches it with full accounting.
      SchedState expected = SchedState::kParked;
      if (actor->sched_state_.compare_exchange_strong(
              expected, SchedState::kQueued, std::memory_order_acq_rel)) {
        push_own(actor, /*fresh_wakeup=*/true);
        progress = true;  // there is work now; don't back off
      }
      continue;
    }
    // No readiness signal (sources default has_pending_work() to false):
    // body-poll it. The CAS arbitrates with another home worker sharing
    // this actor.
    SchedState expected = SchedState::kParked;
    if (actor->sched_state_.compare_exchange_strong(
            expected, SchedState::kDispatched, std::memory_order_acq_rel)) {
      progress |= dispatch_steal(*actor);
    }
  }
  return progress;
}

void Worker::run_steal() {
  IdleBackoff backoff;
  std::uint32_t rounds_since_poll = kIdlePollRounds;  // poll on round one
  while (!stop_.load(std::memory_order_relaxed)) {
    bool progress = false;
    // Phase 1: drain ready work — own queues, then a random victim.
    std::size_t budget = kStealRoundBudget;
    while (budget-- > 0 && !stop_.load(std::memory_order_relaxed)) {
      Actor* actor = pop_own();
      if (actor == nullptr) actor = try_steal();
      if (actor == nullptr) break;
      progress |= dispatch_steal(*actor);
    }
    // Phase 2: paced poll of parked home actors — immediately when the
    // round found no ready work, every kIdlePollRounds rounds under load.
    if (!progress || ++rounds_since_poll >= kIdlePollRounds) {
      rounds_since_poll = 0;
      progress |= poll_parked_home();
    }
    rounds_.fetch_add(1, std::memory_order_relaxed);
    if (progress) {
      backoff.reset();
    } else {
      park_idle(backoff);
    }
  }
  switch_enclave(sgxsim::kUntrusted);
}

}  // namespace ea::core
