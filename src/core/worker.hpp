// Workers (paper §3.2).
//
// A worker manages one POSIX thread, is bound to a CPU set, and executes
// the body functions of its assigned eactors in round-robin order. The key
// optimisation: if every actor of a worker lives in the same enclave, the
// worker enters that enclave once and never leaves — zero transitions on
// the steady-state path. Mixed assignments are allowed but each round pays
// the migration transitions, which the paper advises to reserve for rarely
// activated actors.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/actor.hpp"

namespace ea::core {

class Worker {
 public:
  Worker(std::string name, std::vector<int> cpus);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  const std::string& name() const noexcept { return name_; }

  void assign(Actor* actor) { actors_.push_back(actor); }
  const std::vector<Actor*>& actors() const noexcept { return actors_; }

  void start();
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }
  void join();

  std::uint64_t rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void run_single_enclave(sgxsim::Enclave& enclave);
  void run_mixed();
  // One round-robin pass over the assigned actors; returns true if any
  // actor reported progress.
  bool round();

  std::string name_;
  std::vector<int> cpus_;
  std::vector<Actor*> actors_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> rounds_{0};
};

}  // namespace ea::core
