// Workers (paper §3.2) and the two scheduling modes (DESIGN.md §14).
//
// A worker manages one POSIX thread, is bound to a CPU set, and executes
// eactor body functions. Two schedulers are available, selected per
// deployment (`sched=static|steal` in the config grammar):
//
//  * kStatic — the paper's scheduler and the ablation baseline: the worker
//    executes its fixed actor list round-robin. If every actor of a worker
//    lives in the same enclave, the worker enters that enclave once and
//    never leaves — zero transitions on the steady-state path.
//
//  * kSteal — per-worker run queues with work stealing (CAF-style, see
//    *Revisiting Actor Programming in C++*): the worker drains its own
//    ready queues (high priority first), then steals from a random victim,
//    respecting enclave affinity — an actor may only run on workers entered
//    into its enclave, so every worker carries an affinity mask (the
//    enclaves of its home actors) and steals filter candidates by it.
//    Actors carry a ready/idle state driven by mailbox activity: an actor
//    whose body made no progress and whose mailboxes are empty parks,
//    occupying no queue slot, until a home-worker poll tick wakes it. The
//    thread stays inside the enclave of the last dispatched actor
//    ("sticky" entry), so uniform-affinity workers keep the zero-transition
//    fast path of the static scheduler.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/runqueue.hpp"
#include "core/actor.hpp"

namespace ea::core {

// Deployment-wide scheduler selection (RuntimeOptions::sched, config
// directive `sched static|steal`). Static is the default: existing
// deployments keep the paper's fixed mapping bit-for-bit.
enum class SchedMode : std::uint8_t {
  kStatic = 0,
  kSteal = 1,
};

const char* to_string(SchedMode mode) noexcept;

// Idle pacing for a worker's scheduling loop. Real EActors workers spin
// (they own a hardware thread); on machines with fewer cores than workers
// the backoff stands in for the hardware thread the paper's testbed would
// have provided. The ramp is: kYieldRounds consecutive idle rounds of
// plain yields (cheap, keeps wake latency minimal for bursty traffic),
// then exponentially growing sleeps from kMinSleepUs capped at kMaxSleepUs
// so a fully idle worker stops burning an oversubscribed CPU while still
// observing request_stop() within ~a millisecond. Any progress resets the
// ramp. It does not touch the cost model.
class IdleBackoff {
 public:
  // kYieldRounds yields before the first sleep; sleeps double from
  // kMinSleepUs up to kMaxSleepUs (the cap bounds stop/wake latency).
  static constexpr int kYieldRounds = 16;
  static constexpr std::uint32_t kMinSleepUs = 16;
  static constexpr std::uint32_t kMaxSleepUs = 1000;

  // Called after an idle round: returns 0 while still in the yield phase,
  // otherwise the number of microseconds the caller should sleep.
  std::uint32_t next_idle() noexcept {
    if (idle_rounds_ < kYieldRounds) {
      ++idle_rounds_;
      return 0;
    }
    const std::uint32_t us = sleep_us_;
    if (sleep_us_ < kMaxSleepUs) {
      sleep_us_ = sleep_us_ * 2 > kMaxSleepUs ? kMaxSleepUs : sleep_us_ * 2;
    }
    return us;
  }

  // Called after a productive round.
  void reset() noexcept {
    idle_rounds_ = 0;
    sleep_us_ = kMinSleepUs;
  }

 private:
  int idle_rounds_ = 0;
  std::uint32_t sleep_us_ = kMinSleepUs;
};

class Worker {
 public:
  // Stealing-scheduler pacing. A round drains at most kStealRoundBudget
  // dispatches before re-checking stop/poll duties; parked home actors are
  // re-polled every kIdlePollRounds rounds while the worker is busy (and
  // immediately on an empty round), bounding both the poll overhead under
  // load and the wake latency of sources that cannot signal pending work.
  static constexpr std::size_t kStealRoundBudget = 128;
  static constexpr std::uint32_t kIdlePollRounds = 16;

  Worker(std::string name, std::vector<int> cpus);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  const std::string& name() const noexcept { return name_; }

  void assign(Actor* actor) { actors_.push_back(actor); }
  const std::vector<Actor*>& actors() const noexcept { return actors_; }

  // Selects the scheduler and, for kSteal, wires the steal topology: the
  // full worker list (victims) and the run-queue capacity (total actors in
  // the deployment — a queue can never overflow because an actor occupies
  // at most one slot system-wide). Also derives the enclave-affinity mask
  // from the home actors. Called by Runtime::start() before threads run.
  void configure_sched(SchedMode mode, std::vector<Worker*> peers,
                       std::size_t queue_capacity);

  SchedMode sched_mode() const noexcept { return mode_; }

  // True when this worker may legally dispatch an actor placed in
  // `enclave`: untrusted actors run anywhere; enclave actors only on
  // workers whose home set entered that enclave.
  bool can_run(sgxsim::EnclaveId enclave) const noexcept;

  // Snapshot of the enclaves this worker is entitled to enter.
  std::vector<sgxsim::EnclaveId> affinity() const;

  // Extends the affinity mask at runtime — migration grants the migrated
  // actor's home workers entry to the target enclave so dispatch and
  // steal-filtering keep working after the placement flip. Single-writer
  // (the MigrationCoordinator serialises under its admission lock) against
  // concurrent lock-free can_run() readers. No-op when already granted;
  // returns false only when the fixed slot table is full.
  bool grant_affinity(sgxsim::EnclaveId enclave);

  // Worker currently executing on this thread (nullptr off worker
  // threads). Tests use this to assert the affinity invariant on every
  // dispatch.
  static Worker* current() noexcept;

  void start();
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }
  void join();

  std::uint64_t rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }

  // --- stealing-scheduler observability (health snapshot) -----------------

  // Actors dispatched by this worker (both modes; static counts per-actor
  // executions of its round-robin list).
  std::uint64_t dispatches() const noexcept {
    return dispatches_.load(std::memory_order_relaxed);
  }

  // Actors this worker took from a victim's queue.
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  // Ready actors currently sitting in this worker's run queues.
  std::size_t queue_depth() const noexcept {
    return high_q_.size() + norm_q_.size();
  }

  // Home actors currently not parked (queued or running, here or on the
  // worker that stole them).
  std::size_t ready_home_actors() const noexcept;

 private:
  void run();
  void run_single_enclave(sgxsim::Enclave& enclave);
  void run_mixed();
  // One round-robin pass over the assigned actors; returns true if any
  // actor reported progress.
  bool round();

  // --- stealing scheduler --------------------------------------------------
  void run_steal();
  // Moves the thread into `enclave` (sticky: stays until a dispatch needs a
  // different placement; kUntrusted exits).
  void switch_enclave(sgxsim::EnclaveId enclave);
  // Runs one dispatch of an actor this thread holds exclusively
  // (kDispatched) and hands it back to kQueued (re-push) or kParked.
  bool dispatch_steal(Actor& actor);
  // Pops the next ready actor from the own queues (high first) and claims
  // it; nullptr when both are empty.
  Actor* pop_own();
  void push_own(Actor* actor, bool fresh_wakeup);
  // Random-victim steal, filtered by this worker's affinity mask.
  Actor* try_steal();
  // Poll tick: wakes parked home actors with pending mailbox work into the
  // queue's hot end and body-polls the ones that cannot signal readiness.
  // Returns true when any dispatch progressed or any actor was woken.
  bool poll_parked_home();
  static bool steal_filter(void* item, const void* ctx);

  std::string name_;
  std::vector<int> cpus_;
  std::vector<Actor*> actors_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> rounds_{0};

  SchedMode mode_ = SchedMode::kStatic;
  std::vector<Worker*> peers_;  // all workers incl. this one (steal victims)
  // Affinity mask as a fixed table of atomic slots so can_run() — called on
  // every steal probe, possibly by other workers' threads — stays lock-free
  // while grant_affinity() appends concurrently. The count is published
  // with release AFTER the slot value, so a reader that observes the new
  // count observes the slot. 32 enclaves per worker is far beyond any
  // deployment here (the paper's testbed tops out at 8).
  static constexpr std::size_t kMaxAffinity = 32;
  std::array<std::atomic<sgxsim::EnclaveId>, kMaxAffinity> affinity_slots_{};
  std::atomic<std::uint32_t> affinity_count_{0};
  concurrent::RunQueue high_q_;
  concurrent::RunQueue norm_q_;
  sgxsim::EnclaveId entered_ = sgxsim::kUntrusted;  // sticky enclave context
  std::uint64_t victim_rng_ = 0;
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace ea::core
