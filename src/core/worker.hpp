// Workers (paper §3.2).
//
// A worker manages one POSIX thread, is bound to a CPU set, and executes
// the body functions of its assigned eactors in round-robin order. The key
// optimisation: if every actor of a worker lives in the same enclave, the
// worker enters that enclave once and never leaves — zero transitions on
// the steady-state path. Mixed assignments are allowed but each round pays
// the migration transitions, which the paper advises to reserve for rarely
// activated actors.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/actor.hpp"

namespace ea::core {

// Idle pacing for a worker's scheduling loop. Real EActors workers spin
// (they own a hardware thread); on machines with fewer cores than workers
// the backoff stands in for the hardware thread the paper's testbed would
// have provided. The ramp is: kYieldRounds consecutive idle rounds of
// plain yields (cheap, keeps wake latency minimal for bursty traffic),
// then exponentially growing sleeps from kMinSleepUs capped at kMaxSleepUs
// so a fully idle worker stops burning an oversubscribed CPU while still
// observing request_stop() within ~a millisecond. Any progress resets the
// ramp. It does not touch the cost model.
class IdleBackoff {
 public:
  // kYieldRounds yields before the first sleep; sleeps double from
  // kMinSleepUs up to kMaxSleepUs (the cap bounds stop/wake latency).
  static constexpr int kYieldRounds = 16;
  static constexpr std::uint32_t kMinSleepUs = 16;
  static constexpr std::uint32_t kMaxSleepUs = 1000;

  // Called after an idle round: returns 0 while still in the yield phase,
  // otherwise the number of microseconds the caller should sleep.
  std::uint32_t next_idle() noexcept {
    if (idle_rounds_ < kYieldRounds) {
      ++idle_rounds_;
      return 0;
    }
    const std::uint32_t us = sleep_us_;
    if (sleep_us_ < kMaxSleepUs) {
      sleep_us_ = sleep_us_ * 2 > kMaxSleepUs ? kMaxSleepUs : sleep_us_ * 2;
    }
    return us;
  }

  // Called after a productive round.
  void reset() noexcept {
    idle_rounds_ = 0;
    sleep_us_ = kMinSleepUs;
  }

 private:
  int idle_rounds_ = 0;
  std::uint32_t sleep_us_ = kMinSleepUs;
};

class Worker {
 public:
  Worker(std::string name, std::vector<int> cpus);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  const std::string& name() const noexcept { return name_; }

  void assign(Actor* actor) { actors_.push_back(actor); }
  const std::vector<Actor*>& actors() const noexcept { return actors_; }

  void start();
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }
  void join();

  std::uint64_t rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void run_single_enclave(sgxsim::Enclave& enclave);
  void run_mixed();
  // One round-robin pass over the assigned actors; returns true if any
  // actor reported progress.
  bool round();

  std::string name_;
  std::vector<int> cpus_;
  std::vector<Actor*> actors_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> rounds_{0};
};

}  // namespace ea::core
