#include "crypto/aead.hpp"

#include <cstring>

#include "util/failpoint.hpp"

namespace ea::crypto {
namespace {

PolyTag compute_tag(const AeadKey& key, const AeadNonce& nonce,
                    std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext) {
  std::uint8_t block0[64];
  chacha20_block(key, 0, nonce, block0);
  PolyKey poly_key;
  std::memcpy(poly_key.data(), block0, poly_key.size());

  Poly1305 mac(poly_key);
  static constexpr std::uint8_t kZeros[16] = {};
  mac.update(aad);
  if (aad.size() % 16 != 0) {
    mac.update(std::span<const std::uint8_t>(kZeros, 16 - aad.size() % 16));
  }
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0) {
    mac.update(
        std::span<const std::uint8_t>(kZeros, 16 - ciphertext.size() % 16));
  }
  std::uint8_t lengths[16];
  util::store_le64(lengths, aad.size());
  util::store_le64(lengths + 8, ciphertext.size());
  mac.update(lengths);
  return mac.finish();
}

}  // namespace

util::Bytes aead_encrypt(const AeadKey& key, const AeadNonce& nonce,
                         std::span<const std::uint8_t> aad,
                         std::span<const std::uint8_t> plaintext) {
  util::Bytes out(plaintext.begin(), plaintext.end());
  chacha20_xor(key, 1, nonce, out);
  PolyTag tag = compute_tag(key, nonce, aad, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<util::Bytes> aead_decrypt(const AeadKey& key,
                                        const AeadNonce& nonce,
                                        std::span<const std::uint8_t> aad,
                                        std::span<const std::uint8_t> sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  // Injected tag mismatch: behaves exactly like a corrupted frame without
  // having to craft one, so fault tests can hit every open() call site.
  if (EA_FAIL_TRIGGERED("crypto.aead.open")) return std::nullopt;
  auto ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  auto tag = sealed.last(kAeadTagSize);
  PolyTag expected = compute_tag(key, nonce, aad, ciphertext);
  if (!util::ct_equal(tag, expected)) return std::nullopt;
  util::Bytes out(ciphertext.begin(), ciphertext.end());
  chacha20_xor(key, 1, nonce, out);
  return out;
}

util::Bytes seal_with_counter(const AeadKey& key, std::uint64_t counter,
                              std::span<const std::uint8_t> aad,
                              std::span<const std::uint8_t> plaintext) {
  AeadNonce nonce{};
  util::store_le64(nonce.data() + 4, counter);
  util::Bytes body = aead_encrypt(key, nonce, aad, plaintext);
  util::Bytes out;
  out.reserve(nonce.size() + body.size());
  out.insert(out.end(), nonce.begin(), nonce.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<util::Bytes> open_framed(const AeadKey& key,
                                       std::span<const std::uint8_t> aad,
                                       std::span<const std::uint8_t> framed) {
  if (framed.size() < kAeadOverhead) return std::nullopt;
  AeadNonce nonce;
  std::memcpy(nonce.data(), framed.data(), nonce.size());
  return aead_decrypt(key, nonce, aad, framed.subspan(nonce.size()));
}

void seal_framed_into(const AeadKey& key, std::uint64_t counter,
                      std::span<const std::uint8_t> aad,
                      std::span<std::uint8_t> frame) {
  AeadNonce nonce{};
  util::store_le64(nonce.data() + 4, counter);
  std::memcpy(frame.data(), nonce.data(), nonce.size());
  auto body = frame.subspan(nonce.size(), frame.size() - kAeadOverhead);
  chacha20_xor(key, 1, nonce, body);
  PolyTag tag = compute_tag(key, nonce, aad, body);
  std::memcpy(frame.data() + frame.size() - tag.size(), tag.data(),
              tag.size());
}

bool open_framed_in_place(const AeadKey& key,
                          std::span<const std::uint8_t> aad,
                          std::span<std::uint8_t> framed,
                          std::size_t& plaintext_len) {
  if (framed.size() < kAeadOverhead) return false;
  if (EA_FAIL_TRIGGERED("crypto.aead.open")) return false;
  AeadNonce nonce;
  std::memcpy(nonce.data(), framed.data(), nonce.size());
  auto ciphertext =
      framed.subspan(nonce.size(), framed.size() - kAeadOverhead);
  auto tag = framed.last(kAeadTagSize);
  PolyTag expected = compute_tag(key, nonce, aad, ciphertext);
  if (!util::ct_equal(tag, expected)) return false;
  chacha20_xor(key, 1, nonce, ciphertext);
  plaintext_len = ciphertext.size();
  return true;
}

}  // namespace ea::crypto
