// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// This is the cipher used by encrypted channels between enclaves and by the
// secure multi-party computation ring. Sealing in the SGX simulator reuses
// it with sealing keys.
#pragma once

#include <optional>
#include <span>

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"
#include "util/bytes.hpp"

namespace ea::crypto {

inline constexpr std::size_t kAeadKeySize = kChaChaKeySize;
inline constexpr std::size_t kAeadNonceSize = kChaChaNonceSize;
inline constexpr std::size_t kAeadTagSize = kPolyTagSize;
// Bytes an encrypted message grows by: nonce prefix + tag suffix
// (see seal_with_counter framing).
inline constexpr std::size_t kAeadOverhead = kAeadNonceSize + kAeadTagSize;

using AeadKey = ChaChaKey;
using AeadNonce = ChaChaNonce;

// Encrypts `plaintext`; returns ciphertext||tag. Low-level primitive — most
// callers want seal_with_counter below, which also frames the nonce.
util::Bytes aead_encrypt(const AeadKey& key, const AeadNonce& nonce,
                         std::span<const std::uint8_t> aad,
                         std::span<const std::uint8_t> plaintext);

// Decrypts ciphertext||tag; returns nullopt on authentication failure.
std::optional<util::Bytes> aead_decrypt(const AeadKey& key,
                                        const AeadNonce& nonce,
                                        std::span<const std::uint8_t> aad,
                                        std::span<const std::uint8_t> sealed);

// Message framing used by channels: out = nonce(12) || ciphertext || tag(16),
// with the nonce derived from a monotonically increasing counter. The counter
// makes nonce reuse impossible within a channel direction.
util::Bytes seal_with_counter(const AeadKey& key, std::uint64_t counter,
                              std::span<const std::uint8_t> aad,
                              std::span<const std::uint8_t> plaintext);

std::optional<util::Bytes> open_framed(const AeadKey& key,
                                       std::span<const std::uint8_t> aad,
                                       std::span<const std::uint8_t> framed);

// Zero-allocation variants used on the channel fast path (§3.3 forbids
// dynamic allocation on the message path: nodes are the only buffers).
//
// seal_framed_into seals a frame the caller has already laid out in place:
// `frame` must be kAeadNonceSize + plaintext + kAeadTagSize bytes with the
// plaintext starting at offset kAeadNonceSize. The nonce prefix and tag
// suffix are written and the plaintext encrypted in place.
void seal_framed_into(const AeadKey& key, std::uint64_t counter,
                      std::span<const std::uint8_t> aad,
                      std::span<std::uint8_t> frame);

// Authenticates and decrypts `framed` (nonce || ciphertext || tag) in
// place. On success the plaintext sits at offset kAeadNonceSize inside
// `framed`, its length stored in `plaintext_len`. Returns false (leaving
// the ciphertext untouched) on authentication failure.
bool open_framed_in_place(const AeadKey& key,
                          std::span<const std::uint8_t> aad,
                          std::span<std::uint8_t> framed,
                          std::size_t& plaintext_len);

}  // namespace ea::crypto
