// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// This is the cipher used by encrypted channels between enclaves and by the
// secure multi-party computation ring. Sealing in the SGX simulator reuses
// it with sealing keys.
#pragma once

#include <optional>
#include <span>

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"
#include "util/bytes.hpp"

namespace ea::crypto {

inline constexpr std::size_t kAeadKeySize = kChaChaKeySize;
inline constexpr std::size_t kAeadNonceSize = kChaChaNonceSize;
inline constexpr std::size_t kAeadTagSize = kPolyTagSize;
// Bytes an encrypted message grows by: nonce prefix + tag suffix
// (see seal_with_counter framing).
inline constexpr std::size_t kAeadOverhead = kAeadNonceSize + kAeadTagSize;

using AeadKey = ChaChaKey;
using AeadNonce = ChaChaNonce;

// Encrypts `plaintext`; returns ciphertext||tag. Low-level primitive — most
// callers want seal_with_counter below, which also frames the nonce.
util::Bytes aead_encrypt(const AeadKey& key, const AeadNonce& nonce,
                         std::span<const std::uint8_t> aad,
                         std::span<const std::uint8_t> plaintext);

// Decrypts ciphertext||tag; returns nullopt on authentication failure.
std::optional<util::Bytes> aead_decrypt(const AeadKey& key,
                                        const AeadNonce& nonce,
                                        std::span<const std::uint8_t> aad,
                                        std::span<const std::uint8_t> sealed);

// Message framing used by channels: out = nonce(12) || ciphertext || tag(16),
// with the nonce derived from a monotonically increasing counter. The counter
// makes nonce reuse impossible within a channel direction.
util::Bytes seal_with_counter(const AeadKey& key, std::uint64_t counter,
                              std::span<const std::uint8_t> aad,
                              std::span<const std::uint8_t> plaintext);

std::optional<util::Bytes> open_framed(const AeadKey& key,
                                       std::span<const std::uint8_t> aad,
                                       std::span<const std::uint8_t> framed);

}  // namespace ea::crypto
