#include "crypto/chacha20.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace ea::crypto {
namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d = util::rotl32(d ^ a, 16);
  c += d;
  b = util::rotl32(b ^ c, 12);
  a += b;
  d = util::rotl32(d ^ a, 8);
  c += d;
  b = util::rotl32(b ^ c, 7);
}

}  // namespace

void chacha20_block(const ChaChaKey& key, std::uint32_t counter,
                    const ChaChaNonce& nonce, std::uint8_t out[64]) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = util::load_le32(key.data() + i * 4);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = util::load_le32(nonce.data() + i * 4);

  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    util::store_le32(out + i * 4, x[i] + state[i]);
  }
}

void chacha20_xor(const ChaChaKey& key, std::uint32_t counter,
                  const ChaChaNonce& nonce, std::span<std::uint8_t> data) {
  std::uint8_t block[64];
  std::size_t off = 0;
  while (off < data.size()) {
    chacha20_block(key, counter++, nonce, block);
    std::size_t take = std::min<std::size_t>(64, data.size() - off);
    for (std::size_t i = 0; i < take; ++i) data[off + i] ^= block[i];
    off += take;
  }
}

}  // namespace ea::crypto
