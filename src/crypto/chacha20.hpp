// ChaCha20 stream cipher (RFC 8439 §2.4).
//
// Stands in for the AES the paper gets from the Intel IPP library: both are
// per-byte-linear symmetric ciphers, which is the property the inter-enclave
// throughput experiments exercise.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ea::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

// Generates one 64-byte keystream block (exposed for Poly1305 key gen).
void chacha20_block(const ChaChaKey& key, std::uint32_t counter,
                    const ChaChaNonce& nonce, std::uint8_t out[64]);

// XORs `data` with the ChaCha20 keystream in place, starting at block
// `counter`.
void chacha20_xor(const ChaChaKey& key, std::uint32_t counter,
                  const ChaChaNonce& nonce, std::span<std::uint8_t> data);

}  // namespace ea::crypto
