#include "crypto/deterministic.hpp"

#include <cstring>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"

namespace ea::crypto {

DetKey derive_det_key(std::span<const std::uint8_t> master) {
  static constexpr std::uint8_t kInfo[] = "ea-pos-deterministic";
  util::Bytes okm = hkdf({}, master, std::span<const std::uint8_t>(kInfo, sizeof(kInfo) - 1), 64);
  DetKey out;
  std::memcpy(out.enc_key.data(), okm.data(), out.enc_key.size());
  std::memcpy(out.mac_key.data(), okm.data() + 32, out.mac_key.size());
  return out;
}

util::Bytes det_encrypt(const DetKey& key,
                        std::span<const std::uint8_t> plaintext) {
  Sha256Digest siv_full = hmac_sha256(key.mac_key, plaintext);
  AeadNonce nonce;
  std::memcpy(nonce.data(), siv_full.data(), nonce.size());
  util::Bytes body(plaintext.begin(), plaintext.end());
  chacha20_xor(key.enc_key, 1, nonce, body);
  util::Bytes out;
  out.reserve(nonce.size() + body.size());
  out.insert(out.end(), nonce.begin(), nonce.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<util::Bytes> det_decrypt(const DetKey& key,
                                       std::span<const std::uint8_t> sealed) {
  if (sealed.size() < kAeadNonceSize) return std::nullopt;
  AeadNonce nonce;
  std::memcpy(nonce.data(), sealed.data(), nonce.size());
  util::Bytes body(sealed.begin() + nonce.size(), sealed.end());
  chacha20_xor(key.enc_key, 1, nonce, body);
  // Recompute the synthetic IV over the recovered plaintext; mismatch means
  // tampering or the wrong key.
  Sha256Digest siv_full = hmac_sha256(key.mac_key, body);
  if (!util::ct_equal(std::span<const std::uint8_t>(nonce.data(), nonce.size()),
                      std::span<const std::uint8_t>(siv_full.data(), nonce.size()))) {
    return std::nullopt;
  }
  return body;
}

}  // namespace ea::crypto
