// Deterministic (SIV-style) encryption for Persistent Object Store keys.
//
// The paper (§4.1) encrypts POS keys *deterministically* so the store can
// locate a value by comparing encrypted keys without decrypting. We build a
// miniature SIV: the synthetic IV is HMAC(key_mac, plaintext), truncated to
// the nonce size, and doubles as the authentication tag.
#pragma once

#include <optional>
#include <span>

#include "crypto/aead.hpp"
#include "util/bytes.hpp"

namespace ea::crypto {

struct DetKey {
  AeadKey enc_key{};
  std::array<std::uint8_t, 32> mac_key{};
};

// Derives the two sub-keys from a single 32-byte master via HKDF.
DetKey derive_det_key(std::span<const std::uint8_t> master);

// Deterministic: same (key, plaintext) always yields the same ciphertext.
util::Bytes det_encrypt(const DetKey& key, std::span<const std::uint8_t> plaintext);

// Returns nullopt if the synthetic IV does not verify.
std::optional<util::Bytes> det_decrypt(const DetKey& key,
                                       std::span<const std::uint8_t> sealed);

}  // namespace ea::crypto
