#include "crypto/hkdf.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace ea::crypto {

Sha256Digest hkdf_extract(std::span<const std::uint8_t> salt,
                          std::span<const std::uint8_t> ikm) {
  return hmac_sha256(salt, ikm);
}

util::Bytes hkdf_expand(std::span<const std::uint8_t> prk,
                        std::span<const std::uint8_t> info,
                        std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  util::Bytes out;
  out.reserve(length);
  Sha256Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 mac(prk);
    mac.update(std::span<const std::uint8_t>(t.data(), t_len));
    mac.update(info);
    mac.update(std::span<const std::uint8_t>(&counter, 1));
    t = mac.finish();
    t_len = t.size();
    std::size_t take = std::min(length - out.size(), t_len);
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

util::Bytes hkdf(std::span<const std::uint8_t> salt,
                 std::span<const std::uint8_t> ikm,
                 std::span<const std::uint8_t> info, std::size_t length) {
  Sha256Digest prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace ea::crypto
