// HKDF-SHA-256 (RFC 5869) — the key schedule for channel session keys (the
// simulated local attestation derives a per-enclave-pair key) and for the
// persistent object store's deterministic key-encryption keys.
#pragma once

#include <span>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace ea::crypto {

// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(std::span<const std::uint8_t> salt,
                          std::span<const std::uint8_t> ikm);

// HKDF-Expand: derives `length` bytes of output keying material.
util::Bytes hkdf_expand(std::span<const std::uint8_t> prk,
                        std::span<const std::uint8_t> info, std::size_t length);

// Convenience: extract-then-expand.
util::Bytes hkdf(std::span<const std::uint8_t> salt,
                 std::span<const std::uint8_t> ikm,
                 std::span<const std::uint8_t> info, std::size_t length);

}  // namespace ea::crypto
