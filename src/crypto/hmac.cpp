#include "crypto/hmac.hpp"

#include <cstring>

namespace ea::crypto {

HmacSha256::HmacSha256(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    Sha256Digest digest = sha256(key);
    std::memcpy(block.data(), digest.data(), digest.size());
  } else if (!key.empty()) {
    // Guard: HKDF passes an empty salt as a null span, and
    // memcpy(dst, nullptr, 0) is undefined behaviour.
    std::memcpy(block.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> ipad_key{};
  for (std::size_t i = 0; i < block.size(); ++i) {
    ipad_key[i] = block[i] ^ 0x36;
    opad_key_[i] = block[i] ^ 0x5c;
  }
  inner_.update(ipad_key);
}

void HmacSha256::update(std::span<const std::uint8_t> data) {
  inner_.update(data);
}

Sha256Digest HmacSha256::finish() {
  Sha256Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finish();
}

}  // namespace ea::crypto
