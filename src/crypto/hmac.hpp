// HMAC-SHA-256 (RFC 2104). Used by HKDF and by the simulated SGX sealing /
// local-attestation key schedule (the real SDK uses AES-CMAC; an HMAC is the
// equivalent PRF for simulation purposes).
#pragma once

#include <span>

#include "crypto/sha256.hpp"

namespace ea::crypto {

class HmacSha256 {
 public:
  explicit HmacSha256(std::span<const std::uint8_t> key);

  void update(std::span<const std::uint8_t> data);
  Sha256Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, 64> opad_key_{};
};

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data);

}  // namespace ea::crypto
