#include "crypto/poly1305.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace ea::crypto {

Poly1305::Poly1305(const PolyKey& key) {
  // r is clamped per RFC 8439 §2.5.
  std::uint32_t t0 = util::load_le32(key.data() + 0);
  std::uint32_t t1 = util::load_le32(key.data() + 4);
  std::uint32_t t2 = util::load_le32(key.data() + 8);
  std::uint32_t t3 = util::load_le32(key.data() + 12);
  r_[0] = t0 & 0x3ffffff;
  r_[1] = ((t0 >> 26) | (t1 << 6)) & 0x3ffff03;
  r_[2] = ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff;
  r_[3] = ((t2 >> 14) | (t3 << 18)) & 0x3f03fff;
  r_[4] = (t3 >> 8) & 0x00fffff;
  std::memcpy(pad_, key.data() + 16, 16);
}

void Poly1305::process_block(const std::uint8_t block[16], bool final_partial) {
  const std::uint32_t hibit = final_partial ? 0 : (1u << 24);
  std::uint32_t t0 = util::load_le32(block + 0);
  std::uint32_t t1 = util::load_le32(block + 4);
  std::uint32_t t2 = util::load_le32(block + 8);
  std::uint32_t t3 = util::load_le32(block + 12);

  std::uint64_t h0 = h_[0] + (t0 & 0x3ffffff);
  std::uint64_t h1 = h_[1] + (((t0 >> 26) | (t1 << 6)) & 0x3ffffff);
  std::uint64_t h2 = h_[2] + (((t1 >> 20) | (t2 << 12)) & 0x3ffffff);
  std::uint64_t h3 = h_[3] + (((t2 >> 14) | (t3 << 18)) & 0x3ffffff);
  std::uint64_t h4 = h_[4] + ((t3 >> 8) | hibit);

  const std::uint64_t r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3], r4 = r_[4];
  const std::uint64_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint64_t d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
  std::uint64_t d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
  std::uint64_t d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
  std::uint64_t d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
  std::uint64_t d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

  std::uint64_t c;
  c = d0 >> 26;
  h0 = d0 & 0x3ffffff;
  d1 += c;
  c = d1 >> 26;
  h1 = d1 & 0x3ffffff;
  d2 += c;
  c = d2 >> 26;
  h2 = d2 & 0x3ffffff;
  d3 += c;
  c = d3 >> 26;
  h3 = d3 & 0x3ffffff;
  d4 += c;
  c = d4 >> 26;
  h4 = d4 & 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  h_[0] = static_cast<std::uint32_t>(h0);
  h_[1] = static_cast<std::uint32_t>(h1);
  h_[2] = static_cast<std::uint32_t>(h2);
  h_[3] = static_cast<std::uint32_t>(h3);
  h_[4] = static_cast<std::uint32_t>(h4);
}

void Poly1305::update(std::span<const std::uint8_t> data) {
  std::size_t pos = 0;
  if (buffer_len_ > 0) {
    std::size_t take = std::min(data.size(), std::size_t{16} - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    pos += take;
    if (buffer_len_ == 16) {
      process_block(buffer_, /*final_partial=*/false);
      buffer_len_ = 0;
    }
  }
  while (data.size() - pos >= 16) {
    process_block(data.data() + pos, /*final_partial=*/false);
    pos += 16;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffer_len_ = data.size() - pos;
  }
}

PolyTag Poly1305::finish() {
  if (buffer_len_ > 0) {
    // Pad the final partial block with 0x01 then zeros; the hibit is omitted.
    buffer_[buffer_len_] = 1;
    std::memset(buffer_ + buffer_len_ + 1, 0, 16 - buffer_len_ - 1);
    process_block(buffer_, /*final_partial=*/true);
    buffer_len_ = 0;
  }

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  std::uint32_t c;
  c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + -p and select.
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  g0 &= mask;
  g1 &= mask;
  g2 &= mask;
  g3 &= mask;
  g4 &= mask;
  mask = ~mask;
  h0 = (h0 & mask) | g0;
  h1 = (h1 & mask) | g1;
  h2 = (h2 & mask) | g2;
  h3 = (h3 & mask) | g3;
  h4 = (h4 & mask) | g4;

  // Serialise to 128 bits and add the pad.
  std::uint32_t f0 = h0 | (h1 << 26);
  std::uint32_t f1 = (h1 >> 6) | (h2 << 20);
  std::uint32_t f2 = (h2 >> 12) | (h3 << 14);
  std::uint32_t f3 = (h3 >> 18) | (h4 << 8);

  std::uint64_t acc;
  PolyTag tag{};
  acc = std::uint64_t{f0} + util::load_le32(pad_ + 0);
  util::store_le32(tag.data() + 0, static_cast<std::uint32_t>(acc));
  acc = std::uint64_t{f1} + util::load_le32(pad_ + 4) + (acc >> 32);
  util::store_le32(tag.data() + 4, static_cast<std::uint32_t>(acc));
  acc = std::uint64_t{f2} + util::load_le32(pad_ + 8) + (acc >> 32);
  util::store_le32(tag.data() + 8, static_cast<std::uint32_t>(acc));
  acc = std::uint64_t{f3} + util::load_le32(pad_ + 12) + (acc >> 32);
  util::store_le32(tag.data() + 12, static_cast<std::uint32_t>(acc));
  return tag;
}

PolyTag poly1305(const PolyKey& key, std::span<const std::uint8_t> data) {
  Poly1305 mac(key);
  mac.update(data);
  return mac.finish();
}

}  // namespace ea::crypto
