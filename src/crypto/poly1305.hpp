// Poly1305 one-time authenticator (RFC 8439 §2.5).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ea::crypto {

inline constexpr std::size_t kPolyKeySize = 32;
inline constexpr std::size_t kPolyTagSize = 16;

using PolyKey = std::array<std::uint8_t, kPolyKeySize>;
using PolyTag = std::array<std::uint8_t, kPolyTagSize>;

// Incremental Poly1305 over a one-time key.
class Poly1305 {
 public:
  explicit Poly1305(const PolyKey& key);

  void update(std::span<const std::uint8_t> data);
  PolyTag finish();

 private:
  void process_block(const std::uint8_t block[16], bool final_partial);

  // 26-bit limb representation as in the reference "floodyberry" design.
  std::uint32_t r_[5]{};
  std::uint32_t h_[5]{};
  std::uint8_t pad_[16]{};
  std::uint8_t buffer_[16]{};
  std::size_t buffer_len_ = 0;
};

PolyTag poly1305(const PolyKey& key, std::span<const std::uint8_t> data);

}  // namespace ea::crypto
