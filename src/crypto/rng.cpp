#include "crypto/rng.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>

#include "crypto/chacha20.hpp"
#include "util/bytes.hpp"

namespace ea::crypto {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl64(std::uint64_t v, int c) {
  return (v << c) | (v >> (64 - c));
}

}  // namespace

FastRng::FastRng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t FastRng::next() {
  std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t FastRng::next_below(std::uint64_t bound) {
  // Lemire-style rejection-free enough for benchmark payloads.
  return next() % bound;
}

void FastRng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    std::uint64_t v = next();
    std::memcpy(out.data() + i, &v, 8);
    i += 8;
  }
  if (i < out.size()) {
    std::uint64_t v = next();
    std::memcpy(out.data() + i, &v, out.size() - i);
  }
}

void secure_random(std::span<std::uint8_t> out) {
  static std::once_flag seeded;
  static ChaChaKey key;
  static std::atomic<std::uint64_t> counter{0};
  std::call_once(seeded, [] {
    int fd = ::open("/dev/urandom", O_RDONLY);
    if (fd >= 0) {
      ssize_t got = ::read(fd, key.data(), key.size());
      ::close(fd);
      if (got == static_cast<ssize_t>(key.size())) return;
    }
    // Degraded fallback: derive from clock. Fine for a simulator.
    std::uint64_t x = static_cast<std::uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ull;
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    x ^= static_cast<std::uint64_t>(ts.tv_nsec) << 17;
    for (std::size_t i = 0; i < key.size(); i += 8) {
      std::uint64_t v = splitmix64(x);
      std::memcpy(key.data() + i, &v, std::min<std::size_t>(8, key.size() - i));
    }
  });
  ChaChaNonce nonce{};
  std::uint64_t c = counter.fetch_add(1, std::memory_order_relaxed);
  util::store_le64(nonce.data() + 4, c);
  std::memset(out.data(), 0, out.size());
  chacha20_xor(key, 0, nonce, out);
}

}  // namespace ea::crypto
