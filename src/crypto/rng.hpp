// Random number generation.
//
// Two generators, matching the paper's performance discussion (§6.3.1):
//  * FastRng — xoshiro256** for untrusted/benchmark use; negligible cost.
//  * TrustedRng lives in sgxsim (sgx_read_rand simulation) and charges the
//    cost model; the paper identifies the SDK's sgx_read_rand as the SMC
//    bottleneck for large vectors.
#pragma once

#include <cstdint>
#include <span>

namespace ea::crypto {

// xoshiro256** seeded via splitmix64. Deterministic per seed.
class FastRng {
 public:
  explicit FastRng(std::uint64_t seed);

  std::uint64_t next();

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  void fill(std::span<std::uint8_t> out);

 private:
  std::uint64_t s_[4];
};

// Process-wide entropy for key generation (reads /dev/urandom once, then
// expands with a fast stream). Suitable for the simulator's keys.
void secure_random(std::span<std::uint8_t> out);

}  // namespace ea::crypto
