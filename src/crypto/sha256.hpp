// SHA-256 (FIPS 180-4), implemented from the specification.
//
// The SGX simulator uses SHA-256 for enclave measurements and sealing-key
// derivation; the channel layer uses it (via HKDF) for session keys; the
// persistent object store hashes (encrypted) keys into bucket stacks.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace ea::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

// Incremental SHA-256. Copyable; copying forks the hash state.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  // Finalises and returns the digest. The object must be reset() before
  // further use.
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

// One-shot convenience.
Sha256Digest sha256(std::span<const std::uint8_t> data);
Sha256Digest sha256(std::string_view data);

}  // namespace ea::crypto
