#include "crypto/x25519.hpp"

#include <cstring>

#include "crypto/rng.hpp"

namespace ea::crypto {
namespace {

// Field arithmetic over 2^255 - 19 using ten 25.5-bit limbs
// (the "ref10"-style representation, written from the RFC's description).
using Fe = std::array<std::int64_t, 10>;

void fe_frombytes(Fe& h, const std::uint8_t* s) {
  auto load3 = [](const std::uint8_t* in) -> std::int64_t {
    return static_cast<std::int64_t>(in[0]) |
           (static_cast<std::int64_t>(in[1]) << 8) |
           (static_cast<std::int64_t>(in[2]) << 16);
  };
  auto load4 = [](const std::uint8_t* in) -> std::int64_t {
    return static_cast<std::int64_t>(in[0]) |
           (static_cast<std::int64_t>(in[1]) << 8) |
           (static_cast<std::int64_t>(in[2]) << 16) |
           (static_cast<std::int64_t>(in[3]) << 24);
  };
  std::int64_t h0 = load4(s);
  std::int64_t h1 = load3(s + 4) << 6;
  std::int64_t h2 = load3(s + 7) << 5;
  std::int64_t h3 = load3(s + 10) << 3;
  std::int64_t h4 = load3(s + 13) << 2;
  std::int64_t h5 = load4(s + 16);
  std::int64_t h6 = load3(s + 20) << 7;
  std::int64_t h7 = load3(s + 23) << 5;
  std::int64_t h8 = load3(s + 26) << 4;
  std::int64_t h9 = (load3(s + 29) & 8388607) << 2;

  std::int64_t carry;
  carry = (h9 + (1 << 24)) >> 25;
  h0 += carry * 19;
  h9 -= carry << 25;
  carry = (h1 + (1 << 24)) >> 25;
  h2 += carry;
  h1 -= carry << 25;
  carry = (h3 + (1 << 24)) >> 25;
  h4 += carry;
  h3 -= carry << 25;
  carry = (h5 + (1 << 24)) >> 25;
  h6 += carry;
  h5 -= carry << 25;
  carry = (h7 + (1 << 24)) >> 25;
  h8 += carry;
  h7 -= carry << 25;
  carry = (h0 + (1 << 25)) >> 26;
  h1 += carry;
  h0 -= carry << 26;
  carry = (h2 + (1 << 25)) >> 26;
  h3 += carry;
  h2 -= carry << 26;
  carry = (h4 + (1 << 25)) >> 26;
  h5 += carry;
  h4 -= carry << 26;
  carry = (h6 + (1 << 25)) >> 26;
  h7 += carry;
  h6 -= carry << 26;
  carry = (h8 + (1 << 25)) >> 26;
  h9 += carry;
  h8 -= carry << 26;

  h = {h0, h1, h2, h3, h4, h5, h6, h7, h8, h9};
}

void fe_reduce_carries(Fe& h) {
  std::int64_t carry;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      int shift = (i % 2 == 0) ? 26 : 25;
      carry = h[i] >> shift;
      h[i] -= carry << shift;
      if (i == 9) {
        h[0] += carry * 19;
      } else {
        h[static_cast<std::size_t>(i) + 1] += carry;
      }
    }
  }
}

void fe_tobytes(std::uint8_t* s, const Fe& in) {
  Fe h = in;
  fe_reduce_carries(h);
  // Freeze: add 19, carry, then subtract 2^255 by masking the top bit.
  std::int64_t q = (19 * h[9] + (std::int64_t{1} << 24)) >> 25;
  for (int i = 0; i < 10; ++i) {
    int shift = (i % 2 == 0) ? 26 : 25;
    q = (h[i] + q) >> shift;
  }
  h[0] += 19 * q;
  std::int64_t carry;
  for (int i = 0; i < 9; ++i) {
    int shift = (i % 2 == 0) ? 26 : 25;
    carry = h[i] >> shift;
    h[static_cast<std::size_t>(i) + 1] += carry;
    h[i] -= carry << shift;
  }
  carry = h[9] >> 25;
  h[9] -= carry << 25;

  std::uint64_t out[10];
  for (int i = 0; i < 10; ++i) out[i] = static_cast<std::uint64_t>(h[i]);
  s[0] = static_cast<std::uint8_t>(out[0]);
  s[1] = static_cast<std::uint8_t>(out[0] >> 8);
  s[2] = static_cast<std::uint8_t>(out[0] >> 16);
  s[3] = static_cast<std::uint8_t>((out[0] >> 24) | (out[1] << 2));
  s[4] = static_cast<std::uint8_t>(out[1] >> 6);
  s[5] = static_cast<std::uint8_t>(out[1] >> 14);
  s[6] = static_cast<std::uint8_t>((out[1] >> 22) | (out[2] << 3));
  s[7] = static_cast<std::uint8_t>(out[2] >> 5);
  s[8] = static_cast<std::uint8_t>(out[2] >> 13);
  s[9] = static_cast<std::uint8_t>((out[2] >> 21) | (out[3] << 5));
  s[10] = static_cast<std::uint8_t>(out[3] >> 3);
  s[11] = static_cast<std::uint8_t>(out[3] >> 11);
  s[12] = static_cast<std::uint8_t>((out[3] >> 19) | (out[4] << 6));
  s[13] = static_cast<std::uint8_t>(out[4] >> 2);
  s[14] = static_cast<std::uint8_t>(out[4] >> 10);
  s[15] = static_cast<std::uint8_t>(out[4] >> 18);
  s[16] = static_cast<std::uint8_t>(out[5]);
  s[17] = static_cast<std::uint8_t>(out[5] >> 8);
  s[18] = static_cast<std::uint8_t>(out[5] >> 16);
  s[19] = static_cast<std::uint8_t>((out[5] >> 24) | (out[6] << 1));
  s[20] = static_cast<std::uint8_t>(out[6] >> 7);
  s[21] = static_cast<std::uint8_t>(out[6] >> 15);
  s[22] = static_cast<std::uint8_t>((out[6] >> 23) | (out[7] << 3));
  s[23] = static_cast<std::uint8_t>(out[7] >> 5);
  s[24] = static_cast<std::uint8_t>(out[7] >> 13);
  s[25] = static_cast<std::uint8_t>((out[7] >> 21) | (out[8] << 4));
  s[26] = static_cast<std::uint8_t>(out[8] >> 4);
  s[27] = static_cast<std::uint8_t>(out[8] >> 12);
  s[28] = static_cast<std::uint8_t>((out[8] >> 20) | (out[9] << 6));
  s[29] = static_cast<std::uint8_t>(out[9] >> 2);
  s[30] = static_cast<std::uint8_t>(out[9] >> 10);
  s[31] = static_cast<std::uint8_t>(out[9] >> 18);
}

void fe_add(Fe& h, const Fe& f, const Fe& g) {
  for (int i = 0; i < 10; ++i) h[i] = f[i] + g[i];
}

void fe_sub(Fe& h, const Fe& f, const Fe& g) {
  for (int i = 0; i < 10; ++i) h[i] = f[i] - g[i];
}

void fe_mul(Fe& h, const Fe& f, const Fe& g) {
  // Schoolbook with the 19-fold wraparound; 128-bit intermediates.
  __int128 t[19] = {};
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      std::int64_t factor = 1;
      // Odd limbs are 25-bit; products of two odd-index limbs pick up a
      // doubling from the mixed radix.
      if ((i % 2 == 1) && (j % 2 == 1)) factor = 2;
      t[i + j] += static_cast<__int128>(f[i]) * g[j] * factor;
    }
  }
  for (int i = 10; i < 19; ++i) {
    t[i - 10] += 19 * t[i];
  }
  // Carry chain into the limb bounds.
  std::int64_t r[10];
  __int128 carry = 0;
  for (int i = 0; i < 10; ++i) {
    int shift = (i % 2 == 0) ? 26 : 25;
    __int128 v = t[i] + carry;
    carry = v >> shift;
    r[i] = static_cast<std::int64_t>(v - (carry << shift));
  }
  r[0] += static_cast<std::int64_t>(carry) * 19;
  for (int i = 0; i < 10; ++i) h[i] = r[i];
  fe_reduce_carries(h);
}

void fe_sq(Fe& h, const Fe& f) { fe_mul(h, f, f); }

void fe_mul121666(Fe& h, const Fe& f) {
  __int128 t[10];
  for (int i = 0; i < 10; ++i) t[i] = static_cast<__int128>(f[i]) * 121666;
  __int128 carry = 0;
  std::int64_t r[10];
  for (int i = 0; i < 10; ++i) {
    int shift = (i % 2 == 0) ? 26 : 25;
    __int128 v = t[i] + carry;
    carry = v >> shift;
    r[i] = static_cast<std::int64_t>(v - (carry << shift));
  }
  r[0] += static_cast<std::int64_t>(carry) * 19;
  for (int i = 0; i < 10; ++i) h[i] = r[i];
}

void fe_invert(Fe& out, const Fe& z) {
  // z^(p-2) via the standard addition chain.
  Fe t0, t1, t2, t3;
  fe_sq(t0, z);
  fe_sq(t1, t0);
  fe_sq(t1, t1);
  fe_mul(t1, z, t1);
  fe_mul(t0, t0, t1);
  fe_sq(t2, t0);
  fe_mul(t1, t1, t2);
  fe_sq(t2, t1);
  for (int i = 1; i < 5; ++i) fe_sq(t2, t2);
  fe_mul(t1, t2, t1);
  fe_sq(t2, t1);
  for (int i = 1; i < 10; ++i) fe_sq(t2, t2);
  fe_mul(t2, t2, t1);
  fe_sq(t3, t2);
  for (int i = 1; i < 20; ++i) fe_sq(t3, t3);
  fe_mul(t2, t3, t2);
  fe_sq(t2, t2);
  for (int i = 1; i < 10; ++i) fe_sq(t2, t2);
  fe_mul(t1, t2, t1);
  fe_sq(t2, t1);
  for (int i = 1; i < 50; ++i) fe_sq(t2, t2);
  fe_mul(t2, t2, t1);
  fe_sq(t3, t2);
  for (int i = 1; i < 100; ++i) fe_sq(t3, t3);
  fe_mul(t2, t3, t2);
  fe_sq(t2, t2);
  for (int i = 1; i < 50; ++i) fe_sq(t2, t2);
  fe_mul(t1, t2, t1);
  fe_sq(t1, t1);
  for (int i = 1; i < 5; ++i) fe_sq(t1, t1);
  fe_mul(out, t1, t0);
}

void fe_cswap(Fe& f, Fe& g, std::int64_t swap) {
  std::int64_t mask = -swap;
  for (int i = 0; i < 10; ++i) {
    std::int64_t x = mask & (f[i] ^ g[i]);
    f[i] ^= x;
    g[i] ^= x;
  }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  Fe x1;
  fe_frombytes(x1, point.data());
  Fe x2 = {1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  Fe z2 = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  Fe x3 = x1;
  Fe z3 = {1, 0, 0, 0, 0, 0, 0, 0, 0, 0};

  std::int64_t swap = 0;
  for (int pos = 254; pos >= 0; --pos) {
    std::int64_t b = (e[pos / 8] >> (pos & 7)) & 1;
    swap ^= b;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = b;

    Fe tmp0, tmp1, a, b2, aa, bb, c, d, cb, da;
    fe_sub(tmp0, x3, z3);
    fe_sub(tmp1, x2, z2);
    fe_add(a, x2, z2);
    fe_add(b2, x3, z3);
    fe_mul(da, tmp0, a);   // (x3-z3)(x2+z2)
    fe_mul(cb, tmp1, b2);  // (x2-z2)(x3+z3)
    fe_add(x3, da, cb);
    fe_sub(z3, da, cb);
    fe_sq(x3, x3);
    fe_sq(z3, z3);
    fe_mul(z3, z3, x1);
    fe_sq(aa, a);
    fe_sq(bb, tmp1);
    fe_sub(c, aa, bb);  // E = AA - BB
    fe_mul121666(d, c);
    fe_add(d, d, bb);
    fe_mul(x2, aa, bb);
    fe_mul(z2, c, d);
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  Fe zinv;
  fe_invert(zinv, z2);
  Fe out;
  fe_mul(out, x2, zinv);
  X25519Key result{};
  fe_tobytes(result.data(), out);
  return result;
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

X25519Key x25519_keygen() {
  X25519Key key;
  secure_random(key);
  key[0] &= 248;
  key[31] &= 127;
  key[31] |= 64;
  return key;
}

}  // namespace ea::crypto
