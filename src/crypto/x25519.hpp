// X25519 Diffie-Hellman (RFC 7748), implemented from the specification.
//
// Used by the remote-attestation key exchange: each enclave binds an
// ephemeral X25519 public key into its quote's report data, so the derived
// session key is authenticated by the attestation signature — the standard
// SGX remote-provisioning pattern.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ea::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

// scalar * point (the X25519 function). `scalar` is clamped per RFC 7748.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

// scalar * base point (public key derivation).
X25519Key x25519_base(const X25519Key& scalar);

// Generates a random private key (already clamped).
X25519Key x25519_keygen();

}  // namespace ea::crypto
