#include "fs/file_actor.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/logging.hpp"

namespace ea::fs {

bool fill_file_request(concurrent::Node& node, const FileRequest& request,
                       std::span<const std::uint8_t> payload) {
  if (sizeof(FileRequest) + payload.size() > node.capacity) return false;
  std::memcpy(node.payload(), &request, sizeof(FileRequest));
  if (!payload.empty()) {
    std::memcpy(node.payload() + sizeof(FileRequest), payload.data(),
                payload.size());
  }
  node.size = static_cast<std::uint32_t>(sizeof(FileRequest) + payload.size());
  return true;
}

bool parse_file_reply(const concurrent::Node& node, FileReplyHeader& header,
                      std::span<const std::uint8_t>& data) {
  if (node.size < sizeof(FileReplyHeader)) return false;
  std::memcpy(&header, node.payload(), sizeof(FileReplyHeader));
  data = node.data().subspan(sizeof(FileReplyHeader));
  return true;
}

bool FileActor::body() {
  bool progress = false;
  while (concurrent::Node* node = requests_.pop()) {
    concurrent::NodeLease lease(node);
    serve(*node);
    progress = true;
  }
  return progress;
}

void FileActor::serve(const concurrent::Node& node) {
  FileRequest request;
  if (node.size < sizeof(FileRequest)) return;
  std::memcpy(&request, node.payload(), sizeof(FileRequest));
  if (request.reply == nullptr || request.pool == nullptr) return;
  request.path[kMaxPath - 1] = '\0';

  concurrent::Node* reply = request.pool->get();
  if (reply == nullptr) {
    EA_WARN("fs", "file actor: reply pool exhausted, dropping request");
    return;
  }
  FileReplyHeader header;
  header.cookie = request.cookie;

  auto payload = node.data().subspan(sizeof(FileRequest));
  std::size_t data_len = 0;

  switch (request.op) {
    case FileRequest::kRead: {
      int fd = ::open(request.path, O_RDONLY);
      if (fd < 0) {
        header.status = -errno;
        break;
      }
      std::size_t want = std::min<std::size_t>(
          request.length, reply->capacity - sizeof(FileReplyHeader));
      ssize_t got = ::pread(fd, reply->payload() + sizeof(FileReplyHeader),
                            want, static_cast<off_t>(request.offset));
      ::close(fd);
      if (got < 0) {
        header.status = -errno;
      } else {
        header.status = got;
        data_len = static_cast<std::size_t>(got);
      }
      break;
    }
    case FileRequest::kWrite:
    case FileRequest::kAppend: {
      int flags = O_WRONLY | O_CREAT;
      if (request.op == FileRequest::kAppend) flags |= O_APPEND;
      int fd = ::open(request.path, flags, 0644);
      if (fd < 0) {
        header.status = -errno;
        break;
      }
      ssize_t wrote;
      if (request.op == FileRequest::kAppend) {
        wrote = ::write(fd, payload.data(), payload.size());
      } else {
        wrote = ::pwrite(fd, payload.data(), payload.size(),
                         static_cast<off_t>(request.offset));
      }
      ::close(fd);
      header.status = wrote < 0 ? -errno : wrote;
      break;
    }
    case FileRequest::kDelete:
      header.status = ::unlink(request.path) == 0 ? 0 : -errno;
      break;
    case FileRequest::kSize: {
      struct stat st {};
      header.status = ::stat(request.path, &st) == 0
                          ? static_cast<std::int64_t>(st.st_size)
                          : -errno;
      break;
    }
    default:
      header.status = -EINVAL;
      break;
  }

  std::memcpy(reply->payload(), &header, sizeof(header));
  reply->size = static_cast<std::uint32_t>(sizeof(header) + data_len);
  reply->tag = request.cookie;
  request.reply->push(reply);
}

}  // namespace ea::fs
