// File-system system actor.
//
// Paper §4.1: "If a common file system storage is required, EActors can be
// extended similarly to the networking support described in Section 4.2 by
// implementing dedicated untrusted eactors that execute the necessary
// system calls." This module is that extension: an untrusted FILE eactor
// executing open/read/write/unlink on behalf of enclaved actors, with
// requests and replies carried through mboxes exactly like the networking
// actors' protocol.
#pragma once

#include <cstring>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"

namespace ea::fs {

inline constexpr std::size_t kMaxPath = 192;

struct FileRequest {
  enum Op : std::uint32_t {
    kRead = 0,    // read up to `length` bytes at `offset`
    kWrite = 1,   // write payload bytes at `offset` (creates the file)
    kAppend = 2,  // append payload bytes
    kDelete = 3,  // unlink
    kSize = 4,    // stat file size
  };
  std::uint32_t op = kRead;
  char path[kMaxPath] = {};
  std::uint64_t offset = 0;
  std::uint32_t length = 0;  // read only
  std::uint64_t cookie = 0;  // echoed in the reply
  concurrent::Mbox* reply = nullptr;
  concurrent::Pool* pool = nullptr;  // reply nodes come from here
};

struct FileReplyHeader {
  std::uint64_t cookie = 0;
  std::int64_t status = 0;  // >=0: bytes transferred / file size; <0: -errno
};

// Builds a request node: FileRequest header followed by optional payload
// (the data to write/append). Returns false if it does not fit.
bool fill_file_request(concurrent::Node& node, const FileRequest& request,
                       std::span<const std::uint8_t> payload = {});

// Parses a reply node into the header plus the data span (for reads).
bool parse_file_reply(const concurrent::Node& node, FileReplyHeader& header,
                      std::span<const std::uint8_t>& data);

// The untrusted FILE system actor.
class FileActor : public core::Actor {
 public:
  explicit FileActor(std::string name) : core::Actor(std::move(name)) {}

  concurrent::Mbox& requests() noexcept { return requests_; }
  bool body() override;

 private:
  void serve(const concurrent::Node& node);
  concurrent::Mbox requests_;
};

}  // namespace ea::fs
