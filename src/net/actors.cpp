#include "net/actors.hpp"

#include <cstring>

#include "core/runtime.hpp"
#include "net/readiness.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::net {

namespace {

// Quarantine path: returns every node still queued in `mbox` to its pool so
// conservation holds after the supervisor parks the actor.
void drain_to_pools(concurrent::Mbox& mbox) noexcept {
  concurrent::Node* burst[kWriteBurst];
  std::size_t got;
  while ((got = mbox.pop_burst(burst, kWriteBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease(burst[b]).reset();
    }
  }
}

}  // namespace

void OpenerActor::on_quarantine() { drain_to_pools(requests_); }
void AccepterActor::on_quarantine() { drain_to_pools(requests_); }
void CloserActor::on_quarantine() { drain_to_pools(input_); }

void ReaderActor::on_quarantine() {
  drain_to_pools(requests_);
  drain_to_pools(ready_);
}

bool OpenerActor::body() {
  bool progress = false;
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = requests_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease req_lease(burst[b]);
      OpenRequest req;
      if (!read_struct(*burst[b], req) || req.reply == nullptr) continue;
      progress = true;

      OpenReply reply;
      reply.cookie = req.cookie;
      if (req.kind == OpenRequest::kListen) {
        Socket socket = Socket::listen_on(req.port);
        if (socket.valid()) {
          reply.port = socket.local_port();
          reply.id = table_->add(std::move(socket));
        }
      } else {
        Socket socket = Socket::connect_to(req.host, req.port);
        if (socket.valid()) {
          reply.id = table_->add(std::move(socket));
        }
      }

      concurrent::Node* reply_node = pool_.get();
      if (reply_node == nullptr) {
        EA_WARN("net", "opener: reply pool exhausted, dropping reply");
        continue;
      }
      write_struct(*reply_node, reply);
      req.reply->push(reply_node);
    }
  }
  return progress;
}

bool AccepterActor::body() {
  bool progress = false;
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = requests_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease req_lease(burst[b]);
      AcceptSubscribe sub;
      if (read_struct(*burst[b], sub) && sub.reply != nullptr) {
        listeners_.push_back(sub);
        progress = true;
      }
    }
  }
  for (const AcceptSubscribe& sub : listeners_) {
    // Accept as many pending connections as are queued.
    while (true) {
      std::optional<Socket> accepted;
      bool alive = table_->with(sub.listener, [&](Socket& listener) {
        accepted = listener.accept_nb();
      });
      if (!alive || !accepted.has_value()) break;
      SocketId id = table_->add(std::move(*accepted));
      concurrent::Node* note = pool_.get();
      if (note == nullptr) {
        // No node to notify with: close the connection rather than leak it.
        table_->close(id);
        EA_WARN("net", "accepter: pool exhausted, dropping connection");
        break;
      }
      note->tag = static_cast<std::uint64_t>(id);
      note->size = 0;
      sub.reply->push(note);
      progress = true;
    }
  }
  return progress;
}

// Drains up to kReadBurst reads from one socket, accumulating the data
// nodes in a private chain handed to the consumer's mbox with a single
// push_chain — one lock acquisition per burst instead of one per TCP
// segment. The result classifies why the burst stopped; under epoll that
// classification IS the re-arm contract (DESIGN.md §16): only kIdle (a
// read that returned EAGAIN) may clear the socket's ready state, because
// only then is the next kernel edge guaranteed.
ReaderActor::Drain ReaderActor::drain_socket(SocketId id, Sub& sub,
                                             bool& progress) {
  concurrent::ChainBuilder chain;
  Drain result = Drain::kMore;
  for (std::size_t b = 0; b < kReadBurst; ++b) {
    // Injected exhaustion of the subscription's pool: the reader must
    // back off for the round without dropping the subscription or data.
    if (EA_FAIL_TRIGGERED("net.reader.pool_empty")) {
      result = Drain::kNoNodes;
      break;
    }
    concurrent::Node* node = sub.pool->get();
    if (node == nullptr) {
      result = Drain::kNoNodes;  // backpressure: retry next round
      break;
    }
    long n = 0;
    bool alive = table_->with(id, [&](Socket& socket) {
      n = socket.read_nb(node->writable());
    });
    if (!alive || n < 0) {
      // EOF or closed: deliver a zero-length node as the close signal
      // and drop the subscription.
      node->tag = static_cast<std::uint64_t>(id);
      node->size = 0;
      chain.append(node);
      result = Drain::kClosed;
      break;
    }
    if (n == 0) {
      sub.pool->put(node);
      result = Drain::kIdle;
      break;
    }
    node->tag = static_cast<std::uint64_t>(id);
    node->size = static_cast<std::uint32_t>(n);
    chain.append(node);
  }
  if (!chain.empty()) {
    progress = true;
    chain.flush_into(*sub.data);
  }
  return result;
}

void ReaderActor::flush_watch_requests() {
  while (!unwatched_.empty()) {
    concurrent::Node* node = watch_pool_->get();
    if (node == nullptr) return;  // retry next round
    WatchRequest req;
    req.op = WatchRequest::kWatch;
    req.socket = unwatched_.back();
    req.read_ready = &ready_;
    write_struct(*node, req);
    watch_requests_->push(node);
    unwatched_.pop_back();
  }
}

bool ReaderActor::body() {
  bool progress = false;
  concurrent::Node* burst[kWriteBurst];
  std::size_t got;
  while ((got = requests_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease req_lease(burst[b]);
      ReadSubscribe req;
      if (read_struct(*burst[b], req) && req.data != nullptr &&
          req.socket >= 0) {
        Sub sub;
        sub.data = req.data;
        sub.pool = req.pool != nullptr ? req.pool : &default_pool_;
        subs_[req.socket] = sub;
        if (watch_requests_ != nullptr) unwatched_.push_back(req.socket);
        progress = true;
      }
    }
  }

  if (watch_requests_ != nullptr) {
    // Epoll mode: register new subscriptions with the watcher, then drain
    // only the sockets the readiness core has flagged.
    flush_watch_requests();
    while ((got = ready_.pop_burst(burst, kWriteBurst)) != 0) {
      for (std::size_t b = 0; b < got; ++b) {
        concurrent::NodeLease note(burst[b]);
        auto id = static_cast<SocketId>(burst[b]->tag);
        auto it = subs_.find(id);
        // Notes for unknown ids (closed mid-flight) or already-ready
        // sockets are tolerated spurious wakeups: the node just returns
        // to its pool.
        if (it == subs_.end() || it->second.ready) continue;
        it->second.ready = true;
        ready_ids_.push_back(id);
      }
      progress = true;
    }
    // Budget = the queue length at round start: a socket re-queued by
    // kMore yields to every other ready socket before its next burst
    // (drain fairness), and the round terminates even under a firehose.
    std::size_t budget = ready_ids_.size();
    while (budget > 0 && !ready_ids_.empty()) {
      --budget;
      SocketId id = ready_ids_.front();
      ready_ids_.pop_front();
      auto it = subs_.find(id);
      if (it == subs_.end()) continue;
      switch (drain_socket(id, it->second, progress)) {
        case Drain::kIdle:
          // EAGAIN seen: the ET re-arm point — the next kernel edge will
          // flag the socket again.
          it->second.ready = false;
          break;
        case Drain::kMore:
          ready_ids_.push_back(id);  // still buffered: stays ready
          break;
        case Drain::kClosed:
          subs_.erase(it);
          break;
        case Drain::kNoNodes:
          ready_ids_.push_front(id);  // pool dry: keep FIFO position
          budget = 0;
          break;
      }
    }
  } else if (!subs_.empty()) {
    // Scan mode (the paper's Fig. 6 sweep), rotated like the WRITER's
    // drain: resume after the id the previous round started at, so a hot
    // early socket that eats the pool cannot starve later ids round after
    // round.
    auto it = subs_.upper_bound(scan_cursor_);
    if (it == subs_.end()) it = subs_.begin();
    scan_cursor_ = it->first;
    std::size_t remaining = subs_.size();
    while (remaining-- > 0) {
      SocketId id = it->first;
      if (drain_socket(id, it->second, progress) == Drain::kClosed) {
        it = subs_.erase(it);
      } else {
        ++it;
      }
      if (subs_.empty()) break;
      if (it == subs_.end()) it = subs_.begin();
    }
  }
  return progress;
}

bool WriterActor::body() {
  bool progress = false;
  concurrent::Node* burst[kWriteBurst];
  std::size_t got;
  while ((got = input_.pop_burst(burst, kWriteBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::Node* node = burst[b];
      pending_[static_cast<SocketId>(node->tag)].q.push_back(
          Pending{node, 0});
    }
    progress = true;
  }

  if (watch_requests_ != nullptr) {
    // Epoll mode: EPOLLOUT notes un-park blocked sockets; a hangup note
    // means the peer is gone, so the queued bytes can never be delivered.
    while ((got = ready_.pop_burst(burst, kWriteBurst)) != 0) {
      for (std::size_t b = 0; b < got; ++b) {
        concurrent::NodeLease note(burst[b]);
        auto id = static_cast<SocketId>(burst[b]->tag);
        auto it = pending_.find(id);
        if (it == pending_.end()) continue;  // spurious: tolerated
        ReadinessNote rn{};
        read_struct(*burst[b], rn);
        if ((rn.mask & kReadinessHup) != 0) {
          for (Pending& p : it->second.q) {
            concurrent::NodeLease(p.node).reset();
          }
          pending_.erase(it);
        } else {
          it->second.writable = true;
        }
      }
      progress = true;
    }
  }

  // Rotate the drain starting point: resume after the id the previous round
  // started at, wrapping around. Without this, iteration always began at the
  // lowest socket id, and one slow socket whose kernel buffer kept filling
  // (write_nb == 0 after partial progress) would be revisited first every
  // round while high ids waited — unfair under many connections.
  if (!pending_.empty()) {
    auto it = pending_.upper_bound(drain_cursor_);
    if (it == pending_.end()) it = pending_.begin();
    drain_cursor_ = it->first;
    std::size_t remaining = pending_.size();
    while (remaining-- > 0) {
      SocketId id = it->first;
      Queue& entry = it->second;
      bool drop_socket = false;
      // Epoll mode: a parked socket waits for its EPOLLOUT note instead of
      // burning a write syscall per round on a full kernel buffer.
      bool parked = watch_requests_ != nullptr && !entry.writable;
      while (!parked && !entry.q.empty()) {
        Pending& p = entry.q.front();
        long n = -1;
        bool alive = table_->with(id, [&](Socket& socket) {
          n = socket.write_nb(p.node->data().subspan(p.offset));
        });
        if (!alive || n < 0) {
          drop_socket = true;
          break;
        }
        if (n == 0) {
          // Kernel buffer full. Epoll mode: arm EPOLLOUT with the watcher
          // and park until the readiness note arrives (if the request pool
          // is dry the socket stays un-parked and retries next round, the
          // scan behaviour). Scan mode: retry next round.
          if (watch_requests_ != nullptr) {
            concurrent::Node* rn = watch_pool_->get();
            if (rn != nullptr) {
              WatchRequest req;
              req.op = WatchRequest::kWatch;
              req.socket = id;
              req.write_ready = &ready_;
              write_struct(*rn, req);
              watch_requests_->push(rn);
              entry.armed = true;
              entry.writable = false;
            }
          }
          break;
        }
        p.offset += static_cast<std::size_t>(n);
        progress = true;
        if (p.offset >= p.node->size) {
          concurrent::NodeLease(p.node).reset();  // return to its pool
          entry.q.pop_front();
        }
      }
      if (drop_socket) {
        for (Pending& p : entry.q) concurrent::NodeLease(p.node).reset();
        it = pending_.erase(it);
      } else if (entry.q.empty()) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
      if (pending_.empty()) break;
      if (it == pending_.end()) it = pending_.begin();
    }
  }
  return progress;
}

void WriterActor::park_pending() noexcept {
  drain_to_pools(input_);
  drain_to_pools(ready_);
  for (auto& [id, entry] : pending_) {
    for (Pending& p : entry.q) concurrent::NodeLease(p.node).reset();
  }
  pending_.clear();
}

WriterActor::~WriterActor() { park_pending(); }

void WriterActor::on_quarantine() { park_pending(); }

bool CloserActor::body() {
  bool progress = false;
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = input_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease lease(burst[b]);
      if (table_->close(static_cast<SocketId>(burst[b]->tag))) {
        closes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    progress = true;
  }
  return progress;
}

NetSubsystem install_networking(core::Runtime& rt,
                                const std::string& worker_name,
                                std::vector<int> cpus) {
  NetSubsystem sub;
  sub.table = std::make_shared<SocketTable>();
  concurrent::Pool& pool = rt.public_pool();

  auto opener =
      std::make_unique<OpenerActor>(worker_name + ".opener", sub.table, pool);
  auto accepter = std::make_unique<AccepterActor>(worker_name + ".accepter",
                                                  sub.table, pool);
  auto reader =
      std::make_unique<ReaderActor>(worker_name + ".reader", sub.table, pool);
  auto writer =
      std::make_unique<WriterActor>(worker_name + ".writer", sub.table);
  auto closer =
      std::make_unique<CloserActor>(worker_name + ".closer", sub.table);

  sub.opener = opener.get();
  sub.accepter = accepter.get();
  sub.reader = reader.get();
  sub.writer = writer.get();
  sub.closer = closer.get();

  std::vector<std::string> actor_names;
  if (rt.options().net == core::NetMode::kEpoll) {
    // Readiness core in front of READER/WRITER. The watcher runs first in
    // the worker's round so events translated this round are drained by
    // the reader/writer in the same round.
    auto watcher = std::make_unique<FdWatcherActor>(worker_name + ".watcher",
                                                    sub.table, pool);
    watcher->set_closer_input(&closer->input());
    reader->enable_readiness(&watcher->requests(), &pool);
    writer->enable_readiness(&watcher->requests(), &pool);
    sub.watcher = watcher.get();
    rt.add_actor(std::move(watcher));
    actor_names.push_back(worker_name + ".watcher");
  }

  rt.add_actor(std::move(opener));
  rt.add_actor(std::move(accepter));
  rt.add_actor(std::move(reader));
  rt.add_actor(std::move(writer));
  rt.add_actor(std::move(closer));

  for (const char* suffix :
       {".opener", ".accepter", ".reader", ".writer", ".closer"}) {
    actor_names.push_back(worker_name + suffix);
  }
  rt.add_worker(worker_name, std::move(cpus), actor_names);
  return sub;
}

}  // namespace ea::net
