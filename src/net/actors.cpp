#include "net/actors.hpp"

#include <cstring>

#include "core/runtime.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::net {

namespace {

// Quarantine path: returns every node still queued in `mbox` to its pool so
// conservation holds after the supervisor parks the actor.
void drain_to_pools(concurrent::Mbox& mbox) noexcept {
  concurrent::Node* burst[kWriteBurst];
  std::size_t got;
  while ((got = mbox.pop_burst(burst, kWriteBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease(burst[b]).reset();
    }
  }
}

}  // namespace

void OpenerActor::on_quarantine() { drain_to_pools(requests_); }
void AccepterActor::on_quarantine() { drain_to_pools(requests_); }
void ReaderActor::on_quarantine() { drain_to_pools(requests_); }
void CloserActor::on_quarantine() { drain_to_pools(input_); }

bool OpenerActor::body() {
  bool progress = false;
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = requests_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease req_lease(burst[b]);
      OpenRequest req;
      if (!read_struct(*burst[b], req) || req.reply == nullptr) continue;
      progress = true;

      OpenReply reply;
      reply.cookie = req.cookie;
      if (req.kind == OpenRequest::kListen) {
        Socket socket = Socket::listen_on(req.port);
        if (socket.valid()) {
          reply.port = socket.local_port();
          reply.id = table_->add(std::move(socket));
        }
      } else {
        Socket socket = Socket::connect_to(req.host, req.port);
        if (socket.valid()) {
          reply.id = table_->add(std::move(socket));
        }
      }

      concurrent::Node* reply_node = pool_.get();
      if (reply_node == nullptr) {
        EA_WARN("net", "opener: reply pool exhausted, dropping reply");
        continue;
      }
      write_struct(*reply_node, reply);
      req.reply->push(reply_node);
    }
  }
  return progress;
}

bool AccepterActor::body() {
  bool progress = false;
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = requests_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease req_lease(burst[b]);
      AcceptSubscribe sub;
      if (read_struct(*burst[b], sub) && sub.reply != nullptr) {
        listeners_.push_back(sub);
        progress = true;
      }
    }
  }
  for (const AcceptSubscribe& sub : listeners_) {
    // Accept as many pending connections as are queued.
    while (true) {
      std::optional<Socket> accepted;
      bool alive = table_->with(sub.listener, [&](Socket& listener) {
        accepted = listener.accept_nb();
      });
      if (!alive || !accepted.has_value()) break;
      SocketId id = table_->add(std::move(*accepted));
      concurrent::Node* note = pool_.get();
      if (note == nullptr) {
        // No node to notify with: close the connection rather than leak it.
        table_->close(id);
        EA_WARN("net", "accepter: pool exhausted, dropping connection");
        break;
      }
      note->tag = static_cast<std::uint64_t>(id);
      note->size = 0;
      sub.reply->push(note);
      progress = true;
    }
  }
  return progress;
}

bool ReaderActor::body() {
  bool progress = false;
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = requests_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease req_lease(burst[b]);
      ReadSubscribe sub;
      if (read_struct(*burst[b], sub) && sub.data != nullptr) {
        if (sub.pool == nullptr) sub.pool = &default_pool_;
        subs_.push_back(sub);
        progress = true;
      }
    }
  }

  for (std::size_t i = 0; i < subs_.size();) {
    ReadSubscribe& sub = subs_[i];
    // Drain up to kReadBurst reads from the socket, accumulate the data
    // nodes in a private chain, and hand the whole burst to the consumer's
    // mbox with a single push_chain — one lock acquisition per burst
    // instead of one per TCP segment.
    concurrent::ChainBuilder chain;
    bool drop_sub = false;
    for (std::size_t b = 0; b < kReadBurst; ++b) {
      // Injected exhaustion of the subscription's pool: the reader must
      // back off for the round without dropping the subscription or data.
      if (EA_FAIL_TRIGGERED("net.reader.pool_empty")) break;
      concurrent::Node* node = sub.pool->get();
      if (node == nullptr) break;  // backpressure: retry next round
      long n = 0;
      bool alive = table_->with(sub.socket, [&](Socket& socket) {
        n = socket.read_nb(node->writable());
      });
      if (!alive || n < 0) {
        // EOF or closed: deliver a zero-length node as the close signal
        // and drop the subscription.
        node->tag = static_cast<std::uint64_t>(sub.socket);
        node->size = 0;
        chain.append(node);
        drop_sub = true;
        break;
      }
      if (n == 0) {
        sub.pool->put(node);
        break;
      }
      node->tag = static_cast<std::uint64_t>(sub.socket);
      node->size = static_cast<std::uint32_t>(n);
      chain.append(node);
    }
    if (!chain.empty()) {
      progress = true;
      chain.flush_into(*sub.data);
    }
    if (drop_sub) {
      subs_[i] = subs_.back();
      subs_.pop_back();
    } else {
      ++i;
    }
  }
  return progress;
}

bool WriterActor::body() {
  bool progress = false;
  concurrent::Node* burst[kWriteBurst];
  std::size_t got;
  while ((got = input_.pop_burst(burst, kWriteBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::Node* node = burst[b];
      pending_[static_cast<SocketId>(node->tag)].push_back(Pending{node, 0});
    }
    progress = true;
  }

  // Rotate the drain starting point: resume after the id the previous round
  // started at, wrapping around. Without this, iteration always began at the
  // lowest socket id, and one slow socket whose kernel buffer kept filling
  // (write_nb == 0 after partial progress) would be revisited first every
  // round while high ids waited — unfair under many connections.
  if (!pending_.empty()) {
    auto it = pending_.upper_bound(drain_cursor_);
    if (it == pending_.end()) it = pending_.begin();
    drain_cursor_ = it->first;
    std::size_t remaining = pending_.size();
    while (remaining-- > 0) {
      SocketId id = it->first;
      auto& queue = it->second;
      bool drop_socket = false;
      while (!queue.empty()) {
        Pending& p = queue.front();
        long n = -1;
        bool alive = table_->with(id, [&](Socket& socket) {
          n = socket.write_nb(p.node->data().subspan(p.offset));
        });
        if (!alive || n < 0) {
          drop_socket = true;
          break;
        }
        if (n == 0) break;  // kernel buffer full; retry next round
        p.offset += static_cast<std::size_t>(n);
        progress = true;
        if (p.offset >= p.node->size) {
          concurrent::NodeLease(p.node).reset();  // return to its pool
          queue.pop_front();
        }
      }
      if (drop_socket) {
        for (Pending& p : queue) concurrent::NodeLease(p.node).reset();
        it = pending_.erase(it);
      } else if (queue.empty()) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
      if (pending_.empty()) break;
      if (it == pending_.end()) it = pending_.begin();
    }
  }
  return progress;
}

void WriterActor::park_pending() noexcept {
  drain_to_pools(input_);
  for (auto& [id, queue] : pending_) {
    for (Pending& p : queue) concurrent::NodeLease(p.node).reset();
  }
  pending_.clear();
}

WriterActor::~WriterActor() { park_pending(); }

void WriterActor::on_quarantine() { park_pending(); }

bool CloserActor::body() {
  bool progress = false;
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = input_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease lease(burst[b]);
      if (table_->close(static_cast<SocketId>(burst[b]->tag))) {
        closes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    progress = true;
  }
  return progress;
}

NetSubsystem install_networking(core::Runtime& rt,
                                const std::string& worker_name,
                                std::vector<int> cpus) {
  NetSubsystem sub;
  sub.table = std::make_shared<SocketTable>();
  concurrent::Pool& pool = rt.public_pool();

  auto opener =
      std::make_unique<OpenerActor>(worker_name + ".opener", sub.table, pool);
  auto accepter = std::make_unique<AccepterActor>(worker_name + ".accepter",
                                                  sub.table, pool);
  auto reader =
      std::make_unique<ReaderActor>(worker_name + ".reader", sub.table, pool);
  auto writer =
      std::make_unique<WriterActor>(worker_name + ".writer", sub.table);
  auto closer =
      std::make_unique<CloserActor>(worker_name + ".closer", sub.table);

  sub.opener = opener.get();
  sub.accepter = accepter.get();
  sub.reader = reader.get();
  sub.writer = writer.get();
  sub.closer = closer.get();

  rt.add_actor(std::move(opener));
  rt.add_actor(std::move(accepter));
  rt.add_actor(std::move(reader));
  rt.add_actor(std::move(writer));
  rt.add_actor(std::move(closer));

  rt.add_worker(worker_name, std::move(cpus),
                {worker_name + ".opener", worker_name + ".accepter",
                 worker_name + ".reader", worker_name + ".writer",
                 worker_name + ".closer"});
  return sub;
}

}  // namespace ea::net
