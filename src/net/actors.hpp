// Networking system actors (paper §4.2, Fig. 6).
//
// TCP is provided by five *untrusted* eactors — an enclave cannot perform
// system calls, so all socket work is delegated to these actors and results
// flow back through mboxes:
//
//   OPENER   creates listening or client sockets on request
//   ACCEPTER accepts connections on registered listeners
//   READER   reads registered sockets and forwards data to per-socket mboxes
//   WRITER   writes nodes (tagged with a socket id) out to the network
//   CLOSER   closes sockets
//
// Requests and replies are plain structs carried in node payloads; mboxes
// are MPMC, so any number of application eactors can share one set of
// system actors, and the application layer scales independently of the
// networking layer.
#pragma once

#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include <memory>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"
#include "net/socket_table.hpp"

namespace ea::net {

// Burst sizes for the system actors' mbox traffic: one lock acquisition
// moves up to this many nodes (Mbox::pop_burst / ChainBuilder::flush_into).
inline constexpr std::size_t kRequestBurst = 16;  // control-plane requests
inline constexpr std::size_t kReadBurst = 8;      // reads per socket per round
inline constexpr std::size_t kWriteBurst = 64;    // writer input drain

// --- wire structs between application actors and system actors -----------

struct OpenRequest {
  enum Kind : std::uint32_t { kListen = 0, kConnect = 1 };
  std::uint32_t kind = kListen;
  std::uint16_t port = 0;
  char host[46] = {};
  std::uint64_t cookie = 0;  // echoed back so callers can match replies
  concurrent::Mbox* reply = nullptr;
};

struct OpenReply {
  SocketId id = -1;  // negative on failure
  std::uint64_t cookie = 0;
  std::uint16_t port = 0;  // bound port for listeners
};

struct AcceptSubscribe {
  SocketId listener = -1;
  concurrent::Mbox* reply = nullptr;  // accepted ids arrive as node tags
};

struct ReadSubscribe {
  SocketId socket = -1;
  concurrent::Mbox* data = nullptr;  // data nodes: tag = socket id
  concurrent::Pool* pool = nullptr;  // nodes drawn from here (nullptr: default)
};

// Helpers to move structs through payloads safely.
template <typename T>
void write_struct(concurrent::Node& node, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(node.payload(), &value, sizeof(T));
  node.size = sizeof(T);
}

template <typename T>
bool read_struct(const concurrent::Node& node, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (node.size < sizeof(T)) return false;
  std::memcpy(&value, node.payload(), sizeof(T));
  return true;
}

// --- the actors ------------------------------------------------------------

class OpenerActor : public core::Actor {
 public:
  OpenerActor(std::string name, std::shared_ptr<SocketTable> table,
              concurrent::Pool& pool)
      : core::Actor(std::move(name)), table_(std::move(table)), pool_(pool) {
    // fd-facing: socket readiness must not queue behind bulk message churn
    // under the stealing scheduler.
    set_priority(core::ActorPriority::kHigh);
  }

  concurrent::Mbox& requests() noexcept { return requests_; }
  bool body() override;
  bool has_pending_work() const override { return !requests_.empty(); }
  void on_quarantine() override;

 private:
  std::shared_ptr<SocketTable> table_;
  concurrent::Pool& pool_;
  concurrent::Mbox requests_;
};

class AccepterActor : public core::Actor {
 public:
  AccepterActor(std::string name, std::shared_ptr<SocketTable> table,
                concurrent::Pool& pool)
      : core::Actor(std::move(name)), table_(std::move(table)), pool_(pool) {
    set_priority(core::ActorPriority::kHigh);
  }

  concurrent::Mbox& requests() noexcept { return requests_; }
  bool body() override;
  bool has_pending_work() const override { return !requests_.empty(); }
  void on_quarantine() override;

 private:
  std::shared_ptr<SocketTable> table_;
  concurrent::Pool& pool_;
  concurrent::Mbox requests_;
  std::vector<AcceptSubscribe> listeners_;
};

class ReaderActor : public core::Actor {
 public:
  ReaderActor(std::string name, std::shared_ptr<SocketTable> table,
              concurrent::Pool& default_pool)
      : core::Actor(std::move(name)),
        table_(std::move(table)),
        default_pool_(default_pool) {
    set_priority(core::ActorPriority::kHigh);
  }

  concurrent::Mbox& requests() noexcept { return requests_; }

  // Epoll mode (DESIGN.md §16): subscriptions are forwarded to the watcher
  // as WatchRequests drawn from `request_pool`, and the per-round scan is
  // replaced by draining only the sockets flagged through ready(). Must be
  // called before the runtime starts.
  void enable_readiness(concurrent::Mbox* watch_requests,
                        concurrent::Pool* request_pool) noexcept {
    watch_requests_ = watch_requests;
    watch_pool_ = request_pool;
  }
  // Readiness notes from the watcher (tag = socket id, ReadinessNote).
  concurrent::Mbox& ready() noexcept { return ready_; }

  bool body() override;
  bool has_pending_work() const override {
    return !requests_.empty() || !ready_.empty();
  }
  void on_quarantine() override;

 private:
  struct Sub {
    concurrent::Mbox* data = nullptr;
    concurrent::Pool* pool = nullptr;
    bool ready = false;  // epoll mode: queued in ready_ids_
  };
  enum class Drain {
    kIdle,     // read_nb hit EAGAIN: socket fully drained
    kMore,     // kReadBurst exhausted with data still buffered
    kClosed,   // EOF delivered, subscription dropped by caller
    kNoNodes,  // pool exhausted: back off, retry next round
  };
  Drain drain_socket(SocketId id, Sub& sub, bool& progress);
  void flush_watch_requests();

  std::shared_ptr<SocketTable> table_;
  concurrent::Pool& default_pool_;
  concurrent::Mbox requests_;
  concurrent::Mbox ready_;
  concurrent::Mbox* watch_requests_ = nullptr;  // non-null => epoll mode
  concurrent::Pool* watch_pool_ = nullptr;
  std::map<SocketId, Sub> subs_;
  std::deque<SocketId> ready_ids_;    // epoll-mode drain queue
  std::vector<SocketId> unwatched_;   // awaiting a WatchRequest node
  // Fairness (scan mode): the id the per-round sweep resumes after, so a
  // hot early socket cannot starve later ids when the pool runs dry
  // mid-round (same rotation the WRITER uses).
  SocketId scan_cursor_ = -1;
};

class WriterActor : public core::Actor {
 public:
  WriterActor(std::string name, std::shared_ptr<SocketTable> table)
      : core::Actor(std::move(name)), table_(std::move(table)) {
    set_priority(core::ActorPriority::kHigh);
  }
  // Parks every queued node back into its pool: whether the writer dies
  // with the runtime or is quarantined by the supervisor, node
  // conservation must hold for the surviving deployment.
  ~WriterActor() override;

  // Push nodes with tag = socket id, payload = bytes to transmit.
  concurrent::Mbox& input() noexcept { return input_; }

  // Epoll mode (DESIGN.md §16): when a write hits a full kernel buffer the
  // writer arms EPOLLOUT with the watcher (a WatchRequest drawn from
  // `request_pool`) and parks the socket until a readiness note arrives on
  // ready(), instead of re-trying the blocked fd every round.
  void enable_readiness(concurrent::Mbox* watch_requests,
                        concurrent::Pool* request_pool) noexcept {
    watch_requests_ = watch_requests;
    watch_pool_ = request_pool;
  }
  concurrent::Mbox& ready() noexcept { return ready_; }

  bool body() override;
  bool has_pending_work() const override {
    return !input_.empty() || !ready_.empty();
  }
  void on_quarantine() override;

 private:
  struct Pending {
    concurrent::Node* node;
    std::size_t offset;
  };
  struct Queue {
    std::deque<Pending> q;
    bool armed = false;     // epoll mode: EPOLLOUT registration sent
    bool writable = true;   // epoll mode: false while awaiting EPOLLOUT
  };
  void park_pending() noexcept;

  std::shared_ptr<SocketTable> table_;
  concurrent::Mbox input_;
  concurrent::Mbox ready_;
  concurrent::Mbox* watch_requests_ = nullptr;  // non-null => epoll mode
  concurrent::Pool* watch_pool_ = nullptr;
  std::map<SocketId, Queue> pending_;
  // Fairness: the socket id the per-round drain loop resumes *after*, so a
  // slow-draining early id cannot starve later ids round after round.
  SocketId drain_cursor_ = -1;
};

class CloserActor : public core::Actor {
 public:
  CloserActor(std::string name, std::shared_ptr<SocketTable> table)
      : core::Actor(std::move(name)), table_(std::move(table)) {
    set_priority(core::ActorPriority::kHigh);
  }

  // Push nodes with tag = socket id.
  concurrent::Mbox& input() noexcept { return input_; }
  bool body() override;
  bool has_pending_work() const override { return !input_.empty(); }
  void on_quarantine() override;

  // Sockets actually closed (duplicate close requests for an id already
  // torn down do not count — SocketTable::close() is idempotent).
  std::uint64_t closes() const noexcept {
    return closes_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<SocketTable> table_;
  concurrent::Mbox input_;
  std::atomic<std::uint64_t> closes_{0};
};

class FdWatcherActor;  // net/readiness.hpp

// Aggregated networking subsystem: the five actors plus the shared socket
// table, installed into a runtime in one call. Under NetMode::kEpoll the
// worker also carries an FdWatcherActor feeding READER/WRITER.
struct NetSubsystem {
  std::shared_ptr<SocketTable> table;
  OpenerActor* opener = nullptr;
  AccepterActor* accepter = nullptr;
  ReaderActor* reader = nullptr;
  WriterActor* writer = nullptr;
  CloserActor* closer = nullptr;
  FdWatcherActor* watcher = nullptr;  // nullptr in scan mode
};

// Adds the system actors (untrusted) and a worker named `worker_name`
// executing them. The network plane follows the runtime's
// RuntimeOptions::net: scan installs the paper's five actors; epoll adds
// the fd-watcher readiness core in front of READER/WRITER. The SocketTable
// is owned by the runtime's actor objects (the opener holds it); the
// returned view stays valid for the runtime's lifetime.
NetSubsystem install_networking(core::Runtime& rt,
                                const std::string& worker_name,
                                std::vector<int> cpus);

}  // namespace ea::net
