#include "net/readiness.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>

#include "net/actors.hpp"  // write_struct/read_struct, burst constants
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::net {

FdWatcherActor::FdWatcherActor(std::string name,
                               std::shared_ptr<SocketTable> table,
                               concurrent::Pool& pool)
    : core::Actor(std::move(name)), table_(std::move(table)), pool_(pool) {
  // fd-facing, like the five scan-mode system actors: readiness delivery
  // must not queue behind bulk message churn under the stealing scheduler.
  set_priority(core::ActorPriority::kHigh);
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) {
    EA_WARN("net", "watcher: epoll_create1 failed (errno=%d)", errno);
  }
}

FdWatcherActor::~FdWatcherActor() {
  drain_chains();
  if (epfd_ >= 0) ::close(epfd_);
}

bool FdWatcherActor::handle_requests() {
  bool progress = false;
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = requests_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease lease(burst[b]);
      WatchRequest req;
      if (!read_struct(*burst[b], req) || req.socket < 0) continue;
      progress = true;

      if (req.op == WatchRequest::kUnwatch) {
        auto it = watches_.find(req.socket);
        if (it == watches_.end()) continue;
        int fd = table_->fd(req.socket);
        if (fd >= 0 && epfd_ >= 0) {
          ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
        }
        watches_.erase(it);
        deferred_.erase(req.socket);
        continue;
      }

      if (req.read_ready == nullptr && req.write_ready == nullptr) continue;
      auto [it, inserted] = watches_.try_emplace(req.socket);
      // Upsert: merge the requested interests into the registration so the
      // READER and WRITER can each subscribe the same fd independently.
      if (req.read_ready != nullptr) it->second.read_ready = req.read_ready;
      if (req.write_ready != nullptr) it->second.write_ready = req.write_ready;
      if (!inserted) {
        // Replay readiness edges that fired before this subscriber existed
        // (the new subscriber must not wait for an edge already consumed).
        std::uint32_t wake = 0;
        if (req.read_ready != nullptr) {
          wake |= it->second.undelivered & kReadinessIn;
        }
        if (req.write_ready != nullptr) {
          wake |= it->second.undelivered & kReadinessOut;
        }
        if (wake != 0) {
          it->second.undelivered &= ~wake;
          deferred_[req.socket] |= wake;
          deferred_count_.store(deferred_.size(), std::memory_order_relaxed);
        }
        continue;  // fd already registered with the full mask
      }

      int fd = table_->fd(req.socket);
      if (fd < 0 || epfd_ < 0) {
        watches_.erase(it);
        continue;  // closed before the request arrived: stale, drop
      }
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
      ev.data.u64 = static_cast<std::uint64_t>(req.socket);
      if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        if (errno == EEXIST) {
          ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
        } else {
          EA_WARN("net", "watcher: epoll_ctl ADD failed (errno=%d)", errno);
          watches_.erase(it);
        }
      }
    }
  }
  sync_watched_count();
  return progress;
}

void FdWatcherActor::chain_append(concurrent::Mbox& target,
                                  concurrent::Node* note) {
  note->next = nullptr;
  MboxChain* slot = nullptr;
  for (std::size_t i = 0; i < chains_used_; ++i) {
    if (chains_[i].target == &target) {
      slot = &chains_[i];
      break;
    }
  }
  if (slot == nullptr && chains_used_ < kMaxChains) {
    slot = &chains_[chains_used_++];
    slot->target = &target;
  }
  if (slot == nullptr) {
    target.push(note);  // table full (unreachable in practice): direct push
    return;
  }
  note->prev = slot->tail;
  if (slot->tail != nullptr) {
    slot->tail->next = note;
  } else {
    slot->head = note;
  }
  slot->tail = note;
  ++slot->count;
}

bool FdWatcherActor::deliver(SocketId id, std::uint32_t mask) {
  auto it = watches_.find(id);
  if (it == watches_.end()) return true;  // stale event: nothing to do
  Watch& w = it->second;

  const bool hup = (mask & kReadinessHup) != 0;
  const std::uint32_t read_mask =
      w.read_ready != nullptr ? (mask & (kReadinessIn | kReadinessHup)) : 0;
  const std::uint32_t write_mask =
      w.write_ready != nullptr ? (mask & (kReadinessOut | kReadinessHup)) : 0;
  // Hangup with no read subscriber: nobody will drain the socket to EOF,
  // so route the close straight to the CLOSER (tag = id, size = 0).
  const bool closer_note =
      hup && w.read_ready == nullptr && closer_input_ != nullptr;

  // Injected exhaustion: the watcher must defer, never drop, the event.
  const bool pool_empty = EA_FAIL_TRIGGERED("net.watcher.pool_empty");

  // Grab every node this event needs up front so delivery is all-or-nothing
  // (a partial delivery would lose the undelivered half of an ET edge).
  concurrent::NodeLease read_note, write_note, close_note;
  if (read_mask != 0) {
    read_note = concurrent::NodeLease(pool_empty ? nullptr : pool_.get());
    if (!read_note) return false;
  }
  if (write_mask != 0) {
    write_note = concurrent::NodeLease(pool_empty ? nullptr : pool_.get());
    if (!write_note) return false;
  }
  if (closer_note) {
    close_note = concurrent::NodeLease(pool_empty ? nullptr : pool_.get());
    if (!close_note) return false;
  }

  // Remember edges nobody is subscribed to yet (replayed on later kWatch).
  if (!hup) {
    if ((mask & kReadinessIn) != 0 && w.read_ready == nullptr) {
      w.undelivered |= kReadinessIn;
    }
    if ((mask & kReadinessOut) != 0 && w.write_ready == nullptr) {
      w.undelivered |= kReadinessOut;
    }
  }

  std::uint64_t n = 0;
  if (read_note) {
    read_note->tag = static_cast<std::uint64_t>(id);
    write_struct(*read_note.get(), ReadinessNote{read_mask});
    chain_append(*w.read_ready, read_note.release());
    ++n;
  }
  if (write_note) {
    write_note->tag = static_cast<std::uint64_t>(id);
    write_struct(*write_note.get(), ReadinessNote{write_mask});
    chain_append(*w.write_ready, write_note.release());
    ++n;
  }
  if (close_note) {
    close_note->tag = static_cast<std::uint64_t>(id);
    close_note->size = 0;
    chain_append(*closer_input_, close_note.release());
    ++n;
  }
  delivered_.fetch_add(n, std::memory_order_relaxed);

  // A hung-up fd reports no further edges: retire the registration (the
  // kernel drops the epoll entry when the fd is closed; the explicit erase
  // just keeps the watch table from accumulating dead sockets).
  if (hup) {
    watches_.erase(it);
    sync_watched_count();
  }
  return true;
}

bool FdWatcherActor::retry_deferred() {
  bool progress = false;
  for (auto it = deferred_.begin(); it != deferred_.end();) {
    if (!deliver(it->first, it->second)) break;  // pool still empty
    it = deferred_.erase(it);
    progress = true;
  }
  deferred_count_.store(deferred_.size(), std::memory_order_relaxed);
  return progress;
}

void FdWatcherActor::flush_chains() {
  for (std::size_t i = 0; i < chains_used_; ++i) {
    MboxChain& c = chains_[i];
    if (c.count != 0) c.target->push_chain(c.head, c.tail, c.count);
    c = MboxChain{};
  }
  chains_used_ = 0;
}

void FdWatcherActor::drain_chains() noexcept {
  for (std::size_t i = 0; i < chains_used_; ++i) {
    concurrent::Node* n = chains_[i].head;
    while (n != nullptr) {
      concurrent::Node* next = n->next;
      concurrent::NodeLease(n).reset();
      n = next;
    }
    chains_[i] = MboxChain{};
  }
  chains_used_ = 0;
}

void FdWatcherActor::prune_dead() {
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (table_->fd(it->first) < 0) {
      deferred_.erase(it->first);
      it = watches_.erase(it);
    } else {
      ++it;
    }
  }
  deferred_count_.store(deferred_.size(), std::memory_order_relaxed);
  sync_watched_count();
}

bool FdWatcherActor::body() {
  ++rounds_;
  bool progress = handle_requests();
  progress |= retry_deferred();

  if (epfd_ >= 0) {
    epoll_event evs[kEpollBatch];
    int n = ::epoll_wait(epfd_, evs, kEpollBatch, 0);
    for (int i = 0; i < n; ++i) {
      auto id = static_cast<SocketId>(evs[i].data.u64);
      const std::uint32_t e = evs[i].events;
      std::uint32_t mask = 0;
      // RDHUP (peer shut down writing) still leaves buffered bytes to read,
      // so it maps to read-readiness; the READER discovers the EOF itself.
      if ((e & (EPOLLIN | EPOLLRDHUP)) != 0) mask |= kReadinessIn;
      if ((e & EPOLLOUT) != 0) mask |= kReadinessOut;
      if ((e & (EPOLLHUP | EPOLLERR)) != 0) {
        mask |= kReadinessHup | kReadinessIn;
      }
      if (mask == 0) continue;
      if (deliver(id, mask)) {
        progress = true;
      } else {
        // Note pool exhausted: coalesce into the deferral map — an
        // edge-triggered event is reported once and must never be lost.
        deferred_[id] |= mask;
        deferrals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (n < 0 && errno != EINTR) {
      EA_WARN("net", "watcher: epoll_wait failed (errno=%d)", errno);
    }
  }

  flush_chains();
  deferred_count_.store(deferred_.size(), std::memory_order_relaxed);
  if ((rounds_ & 0xFFFu) == 0) prune_dead();
  return progress;
}

void FdWatcherActor::on_quarantine() {
  // Return everything in flight: queued requests, half-built note chains.
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = requests_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease(burst[b]).reset();
    }
  }
  drain_chains();
  deferred_.clear();
  deferred_count_.store(0, std::memory_order_relaxed);
}

}  // namespace ea::net
