// Edge-triggered epoll readiness core (DESIGN.md §16).
//
// The paper's READER/WRITER (§4.2, Fig. 6) poll every registered socket
// non-blockingly each round — one recv syscall per idle socket per round.
// That caps realistic connection counts: at 50k mostly-idle clients the
// scan burns 50k syscalls per round just to learn nothing happened.
//
// NetMode::kEpoll replaces the scan with a readiness plane: one
// FdWatcherActor per net worker owns an epoll instance, registers every
// watched socket once (EPOLLIN|EPOLLOUT|EPOLLRDHUP, edge-triggered), and
// translates kernel events into readiness *notes* — plain nodes whose tag
// is the socket id and whose payload is an event mask — delivered to the
// READER's / WRITER's ready mboxes as burst chains (one lock acquisition
// per event batch). Idle sockets then cost zero syscalls, and the stealing
// scheduler parks idle net actors entirely: a parked watcher is body-polled
// every Worker::kIdlePollRounds, so a fully idle plane costs one epoll_wait
// per poll tick instead of one recv per socket per round.
//
// Ownership invariant: an epoll instance is owned by exactly ONE watcher
// actor, and every fd is registered with exactly ONE watcher. All epoll_ctl
// and epoll_wait calls for that instance happen inside the watcher's body
// (actors are single-threaded by the runtime's dispatch contract), so the
// watcher needs no lock of its own.
//
// Event-loss invariant: an edge-triggered event is reported by the kernel
// ONCE. The watcher therefore never drops an event — if the note pool is
// exhausted, the (socket, mask) pair is coalesced into a deferral map and
// retried every round until a node is available.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"
#include "net/socket_table.hpp"

namespace ea::net {

// Watch registration, carried in a node payload to the watcher's requests()
// mbox. kWatch upserts: a second request for the same socket merges the
// non-null mboxes into the existing registration (READER and WRITER each
// register their own interest in the same fd independently).
struct WatchRequest {
  enum Op : std::uint32_t { kWatch = 0, kUnwatch = 1 };
  std::uint32_t op = kWatch;
  SocketId socket = -1;
  concurrent::Mbox* read_ready = nullptr;   // EPOLLIN/RDHUP notes land here
  concurrent::Mbox* write_ready = nullptr;  // EPOLLOUT notes land here
};

// Readiness note payload bits (note tag = socket id, payload = ReadinessNote).
inline constexpr std::uint32_t kReadinessIn = 1u << 0;
inline constexpr std::uint32_t kReadinessOut = 1u << 1;
// Peer hung up or the socket errored: drain what remains, then expect EOF.
inline constexpr std::uint32_t kReadinessHup = 1u << 2;

struct ReadinessNote {
  std::uint32_t mask = 0;
};

// Kernel events fetched per epoll_wait call (stack buffer in body()).
inline constexpr int kEpollBatch = 256;

class FdWatcherActor : public core::Actor {
 public:
  // `pool` supplies the nodes readiness notes are delivered in; notes are
  // tiny, so the runtime's public pool is the normal choice.
  FdWatcherActor(std::string name, std::shared_ptr<SocketTable> table,
                 concurrent::Pool& pool);
  ~FdWatcherActor() override;

  // Watch/unwatch requests (WatchRequest payloads) from READER/WRITER.
  concurrent::Mbox& requests() noexcept { return requests_; }

  // When set, a hangup on a socket with no read subscriber is routed as a
  // close note (tag = id, size = 0) straight to the CLOSER's input — the
  // EPOLLHUP→CLOSER delivery contract. Sockets with a read subscriber get
  // the hangup as a read-readiness note instead, so the READER drains the
  // final bytes and delivers its usual zero-length EOF node.
  void set_closer_input(concurrent::Mbox* closer) noexcept {
    closer_input_ = closer;
  }

  bool body() override;
  bool has_pending_work() const override {
    return !requests_.empty() ||
           deferred_count_.load(std::memory_order_relaxed) != 0;
  }
  void on_quarantine() override;

  // Observability (tests and stats).
  std::uint64_t events_delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t events_deferred() const noexcept {
    return deferrals_.load(std::memory_order_relaxed);
  }
  std::size_t watched() const noexcept {
    return watched_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Watch {
    concurrent::Mbox* read_ready = nullptr;
    concurrent::Mbox* write_ready = nullptr;
    // Readiness bits that arrived while no subscriber was registered for
    // them. An ET edge is reported once: e.g. the initial EPOLLOUT fires
    // on registration (long before the WRITER's first blocked write arms
    // its interest), so dropping it would strand the writer forever.
    // kWatch upserts replay these bits through the deferral map.
    std::uint32_t undelivered = 0;
  };

  bool handle_requests();
  bool retry_deferred();
  // Translates one kernel event mask for the socket's registration and
  // appends notes to the per-mbox chains. Returns false if the note pool
  // was exhausted (caller defers the event).
  bool deliver(SocketId id, std::uint32_t mask);
  void flush_chains();
  void drain_chains() noexcept;  // quarantine path: nodes back to pools
  void prune_dead();
  void sync_watched_count() noexcept {
    watched_count_.store(watches_.size(), std::memory_order_relaxed);
  }

  std::shared_ptr<SocketTable> table_;
  concurrent::Pool& pool_;
  concurrent::Mbox requests_;
  concurrent::Mbox* closer_input_ = nullptr;

  int epfd_ = -1;
  std::unordered_map<SocketId, Watch> watches_;
  // Pool-exhaustion backlog: (socket → pending mask), coalesced so a socket
  // deferred twice costs one entry. ET events are never dropped.
  std::unordered_map<SocketId, std::uint32_t> deferred_;
  std::uint64_t rounds_ = 0;

  // Per-round chain accumulation: at most a handful of distinct target
  // mboxes exist per watcher (its reader's and writer's ready mboxes plus
  // the closer input), so a small linear table beats a map. Hand-rolled
  // rather than ChainBuilder so on_quarantine() can walk a half-built
  // chain and return its nodes (node conservation across actor failure).
  static constexpr std::size_t kMaxChains = 8;
  struct MboxChain {
    concurrent::Mbox* target = nullptr;
    concurrent::Node* head = nullptr;
    concurrent::Node* tail = nullptr;
    std::size_t count = 0;
  };
  void chain_append(concurrent::Mbox& target, concurrent::Node* note);
  MboxChain chains_[kMaxChains];
  std::size_t chains_used_ = 0;

  // Lock-free mirrors for cross-thread probes (has_pending_work runs on
  // the home worker while another worker may be dispatching the body).
  std::atomic<std::size_t> deferred_count_{0};
  std::atomic<std::size_t> watched_count_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> deferrals_{0};
};

}  // namespace ea::net
