#include "net/reconnector.hpp"

#include <cstring>

#include "core/runtime.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::net {

namespace {

// A wedged OPENER (or a dropped reply node) must not strand a connection in
// kOpening forever: after this long the attempt is written off and retried.
constexpr std::uint64_t kOpenTimeoutUs = 200'000;

}  // namespace

ReconnectorActor::ReconnectorActor(std::string name, NetSubsystem net,
                                   concurrent::Pool& pool, std::uint64_t seed)
    : core::Actor(std::move(name)), net_(std::move(net)), pool_(pool),
      seed_(seed) {}

std::uint64_t ReconnectorActor::add_connection(const ConnSpec& spec) {
  Conn conn;
  conn.spec = spec;
  conn.backoff = core::BackoffSchedule(
      spec.backoff, seed_ + (conns_.size() + 1) * 0x9e3779b9ULL);
  conn.retry_at = Clock::time_point{};  // due immediately
  conns_.push_back(conn);
  return conns_.size() - 1;
}

void ReconnectorActor::construct(core::Runtime& rt) {
  (void)rt;
  Clock::time_point now = Clock::now();
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    send_open(conns_[i], i, now);
  }
}

void ReconnectorActor::on_restart() {
  // Connections that were mid-open when the failure hit may have lost their
  // reply; write those attempts off so the deadline machinery does not have
  // to age them out. Up connections are untouched.
  Clock::time_point now = Clock::now();
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].state == ConnState::kOpening) {
      fail_attempt(conns_[i], i, now);
    }
  }
}

void ReconnectorActor::on_quarantine() {
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;
  while ((got = control_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease(burst[b]).reset();
    }
  }
  while ((got = replies_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease(burst[b]).reset();
    }
  }
}

bool ReconnectorActor::body() {
  bool progress = false;
  Clock::time_point now = Clock::now();
  concurrent::Node* burst[kRequestBurst];
  std::size_t got;

  // 1. Down notifications from owners.
  while ((got = control_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      handle_down(burst[b]->tag, burst[b]);
    }
    progress = true;
  }

  // 2. OPENER replies.
  while ((got = replies_.pop_burst(burst, kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease lease(burst[b]);
      OpenReply reply;
      if (read_struct(*burst[b], reply)) handle_reply(reply, now);
    }
    progress = true;
  }

  // 3. Timers: due retries and timed-out opens.
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    Conn& conn = conns_[i];
    if (conn.state == ConnState::kBackoff && now >= conn.retry_at) {
      send_open(conn, i, now);
      progress = true;
    } else if (conn.state == ConnState::kOpening && now >= conn.deadline) {
      EA_WARN("net", "reconnector: open of conn %zu timed out", i);
      fail_attempt(conn, i, now);
      progress = true;
    }
  }
  return progress;
}

void ReconnectorActor::send_open(Conn& conn, std::uint64_t conn_id,
                                 Clock::time_point now) {
  concurrent::Node* node = pool_.get();
  if (node == nullptr) {
    // Pool pressure: stay in kBackoff and retry the allocation next round.
    conn.state = ConnState::kBackoff;
    conn.retry_at = now;
    return;
  }
  OpenRequest req;
  req.kind = OpenRequest::kConnect;
  req.port = conn.spec.port;
  std::memcpy(req.host, conn.spec.host, sizeof(req.host));
  req.cookie = conn_id;
  req.reply = &replies_;
  write_struct(*node, req);
  net_.opener->requests().push(node);
  conn.state = ConnState::kOpening;
  conn.deadline = now + std::chrono::microseconds(kOpenTimeoutUs);
}

void ReconnectorActor::handle_reply(const OpenReply& reply,
                                    Clock::time_point now) {
  if (reply.cookie >= conns_.size()) return;
  Conn& conn = conns_[reply.cookie];
  if (conn.state != ConnState::kOpening) {
    // Stale reply (the attempt already timed out and was retried): do not
    // leak the socket the late reply carries.
    if (reply.id >= 0) net_.table->close(reply.id);
    return;
  }
  SocketId id = reply.id;
  // Injected refusal: the peer accepted but we treat the attempt as failed,
  // exercising the retry path deterministically.
  if (id >= 0 && EA_FAIL_TRIGGERED("net.reconnect.refuse")) {
    net_.table->close(id);
    id = -1;
  }
  if (id < 0) {
    fail_attempt(conn, reply.cookie, now);
    return;
  }

  // Success: re-arm the READER subscription for the new socket and tell the
  // owner which socket/epoch to talk through now.
  concurrent::Node* sub_node = pool_.get();
  if (sub_node == nullptr) {
    // Without a subscription the connection would be write-only; treat as a
    // failed attempt rather than hand the owner a half-wired socket.
    net_.table->close(id);
    fail_attempt(conn, reply.cookie, now);
    return;
  }
  ReadSubscribe sub;
  sub.socket = id;
  sub.data = conn.spec.data;
  sub.pool = conn.spec.pool;
  write_struct(*sub_node, sub);
  net_.reader->requests().push(sub_node);

  conn.socket = id;
  ++conn.epoch;
  conn.state = ConnState::kUp;
  conn.attempts = 0;
  conn.backoff.reset();
  ++opens_;
  if (conn.epoch > 1) ++reconnects_;
  EA_INFO("net", "reconnector: conn %llu up (socket %lld, epoch %u)",
          static_cast<unsigned long long>(reply.cookie),
          static_cast<long long>(id), conn.epoch);
  publish_status(conn, reply.cookie);
}

void ReconnectorActor::handle_down(std::uint64_t conn_id,
                                   concurrent::Node* note) {
  if (conn_id >= conns_.size() || conns_[conn_id].state != ConnState::kUp) {
    // Unknown id or already reconnecting: drop the duplicate notification.
    concurrent::NodeLease(note).reset();
    return;
  }
  Conn& conn = conns_[conn_id];
  EA_INFO("net", "reconnector: conn %llu down (socket %lld)",
          static_cast<unsigned long long>(conn_id),
          static_cast<long long>(conn.socket));
  // Reuse the notification node as the CLOSER request for the dead socket
  // (READER already dropped its subscription on EOF; close is idempotent).
  note->tag = static_cast<std::uint64_t>(conn.socket);
  note->size = 0;
  net_.closer->input().push(note);
  conn.socket = -1;
  conn.state = ConnState::kBackoff;
  conn.retry_at =
      Clock::now() + std::chrono::microseconds(conn.backoff.next_delay_us());
}

void ReconnectorActor::fail_attempt(Conn& conn, std::uint64_t conn_id,
                                    Clock::time_point now) {
  ++open_failures_;
  ++conn.attempts;
  if (conn.spec.max_attempts != 0 &&
      conn.attempts >= conn.spec.max_attempts) {
    conn.state = ConnState::kGaveUp;
    ++gave_up_;
    EA_WARN("net", "reconnector: conn %llu gave up after %u attempts",
            static_cast<unsigned long long>(conn_id), conn.attempts);
    publish_status(conn, conn_id);
    return;
  }
  conn.state = ConnState::kBackoff;
  conn.retry_at = now + std::chrono::microseconds(conn.backoff.next_delay_us());
}

void ReconnectorActor::publish_status(Conn& conn, std::uint64_t conn_id) {
  if (conn.spec.status == nullptr) return;
  concurrent::Node* node = pool_.get();
  if (node == nullptr) {
    EA_WARN("net", "reconnector: pool exhausted, dropping status note");
    return;
  }
  ConnStatus status;
  status.conn_id = conn_id;
  status.socket = conn.socket;
  status.epoch = conn.epoch;
  status.up = conn.state == ConnState::kUp ? 1 : 0;
  status.gave_up = conn.state == ConnState::kGaveUp ? 1 : 0;
  write_struct(*node, status);
  conn.spec.status->push(node);
}

ReconnectorActor& install_reconnector(core::Runtime& rt,
                                      const NetSubsystem& net,
                                      const std::string& name,
                                      std::vector<int> cpus) {
  auto recon = std::make_unique<ReconnectorActor>(name, net, rt.public_pool());
  ReconnectorActor& ref = *recon;
  rt.add_actor(std::move(recon));
  rt.add_worker(name + ".worker", std::move(cpus), {name});
  return ref;
}

}  // namespace ea::net
