// Self-healing client connections (DESIGN.md §12).
//
// The five system actors (net/actors.hpp) are deliberately dumb: OPENER
// answers one OpenRequest, READER drops a subscription on EOF, WRITER
// drops a socket's queue on write failure. Recovering from any of that was
// the application's problem. The RECONNECTOR closes the loop: it *owns*
// client connections on behalf of application actors and re-establishes
// them when they die.
//
//   owner (possibly enclaved)                RECONNECTOR (untrusted)
//     add_connection(spec)  ── pre-start ──▶  registry entry
//                                             │ construct(): OpenRequest
//     data mbox  ◀── READER ── inbound bytes ─┤ on OpenReply: subscribe
//     status mbox ◀── ConnStatus{socket,epoch,up} ── publish
//     control()  ── down note (reset seen) ──▶ close old, backoff, re-open
//
// Every successful (re)open bumps the connection's epoch. Owners running
// counter-sealed AEAD streams fold the epoch into their nonce schedule
// ((epoch << 32) | counter), so both sides restart the counter space on a
// fresh epoch and a reconnect can never reuse a nonce or trip the replay
// check (see smc/net_ring.cpp).
//
// Re-open pacing uses core::BackoffSchedule — capped exponential backoff
// with jitter — so a dead peer is probed gently and a restored one is
// picked up quickly.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"
#include "core/backoff.hpp"
#include "net/actors.hpp"
#include "net/socket_table.hpp"

namespace ea::net {

// Status note pushed to the owner's status mbox on every connection
// transition (node payload, trivially copyable).
struct ConnStatus {
  std::uint64_t conn_id = 0;
  SocketId socket = -1;     // valid while up
  std::uint32_t epoch = 0;  // bumped on every successful (re)open
  std::uint8_t up = 0;
  std::uint8_t gave_up = 0;  // max_attempts exhausted; no more retries
};

// One managed client connection. Registered before rt.start().
struct ConnSpec {
  char host[46] = {};
  std::uint16_t port = 0;
  concurrent::Mbox* data = nullptr;    // READER delivers inbound bytes here
  concurrent::Mbox* status = nullptr;  // ConnStatus notes delivered here
  concurrent::Pool* pool = nullptr;    // READER node source (nullptr: default)
  core::BackoffPolicy backoff{};
  std::uint32_t max_attempts = 0;  // consecutive failures before giving
                                   // up; 0 = retry forever
};

class ReconnectorActor : public core::Actor {
 public:
  ReconnectorActor(std::string name, NetSubsystem net, concurrent::Pool& pool,
                   std::uint64_t seed = 0xc0ffee);

  // Registers a managed connection; returns its conn_id. Pre-start only —
  // the initial OpenRequests are issued from construct().
  std::uint64_t add_connection(const ConnSpec& spec);

  // Owners push a zero-size node with tag = conn_id here when they observe
  // the connection dead (zero-size data node from READER, write failure).
  // Duplicate notifications for a connection already reconnecting are
  // ignored. The node is consumed.
  concurrent::Mbox& control() noexcept { return control_; }

  void construct(core::Runtime& rt) override;
  bool body() override;
  bool has_pending_work() const override {
    return !control_.empty() || !replies_.empty();
  }
  void on_quarantine() override;
  // Re-issues an OpenRequest for every connection that was mid-open when
  // the failure hit; Up connections are left alone.
  void on_restart() override;

  // --- counters for tests / health ---------------------------------------
  std::uint64_t opens() const noexcept { return opens_; }       // successes
  std::uint64_t reconnects() const noexcept {                   // beyond 1st
    return reconnects_;
  }
  std::uint64_t open_failures() const noexcept { return open_failures_; }
  std::uint64_t gave_up() const noexcept { return gave_up_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class ConnState : std::uint8_t {
    kOpening,  // OpenRequest in flight (deadline-guarded)
    kBackoff,  // waiting for retry_at
    kUp,
    kGaveUp,
  };

  struct Conn {
    ConnSpec spec;
    ConnState state = ConnState::kBackoff;
    core::BackoffSchedule backoff;
    SocketId socket = -1;
    std::uint32_t epoch = 0;
    std::uint32_t attempts = 0;  // consecutive failures
    Clock::time_point retry_at{};
    Clock::time_point deadline{};
  };

  void send_open(Conn& conn, std::uint64_t conn_id, Clock::time_point now);
  void handle_reply(const OpenReply& reply, Clock::time_point now);
  void handle_down(std::uint64_t conn_id, concurrent::Node* note);
  void fail_attempt(Conn& conn, std::uint64_t conn_id, Clock::time_point now);
  void publish_status(Conn& conn, std::uint64_t conn_id);

  NetSubsystem net_;
  concurrent::Pool& pool_;
  std::uint64_t seed_;
  concurrent::Mbox control_;
  concurrent::Mbox replies_;
  std::vector<Conn> conns_;

  std::uint64_t opens_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t open_failures_ = 0;
  std::uint64_t gave_up_ = 0;
};

// Adds a ReconnectorActor (untrusted) on its own worker. Call after
// install_networking(); register connections on the returned actor before
// rt.start().
ReconnectorActor& install_reconnector(core::Runtime& rt,
                                      const NetSubsystem& net,
                                      const std::string& name = "net.reconnector",
                                      std::vector<int> cpus = {0});

}  // namespace ea::net
