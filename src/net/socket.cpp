#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/failpoint.hpp"

namespace ea::net {
namespace {

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Every in-tree dial targets a loopback listener, so establishment (or
// refusal) is near-immediate; the bound only matters for a dead peer.
constexpr int kConnectConfirmTimeoutMs = 1000;

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Socket Socket::listen_on(std::uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return Socket();
  }
  return Socket(fd);
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port) {
  // Injected connect failure (host unreachable / port closed).
  if (EA_FAIL_TRIGGERED("net.socket.connect")) return Socket();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return Socket();
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.empty() ? "127.0.0.1" : host.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    return Socket();
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return Socket();
    }
    // Pending non-blocking connect: confirm establishment before reporting
    // the socket up. A refused dial can also surface as EINPROGRESS (the
    // refusal only appears later via SO_ERROR), and callers — the OPENER
    // in particular — treat a valid return as "connection up": the
    // reconnector would bump its epoch for a socket that never existed.
    pollfd pfd{fd, POLLOUT, 0};
    int err = 0;
    socklen_t len = sizeof(err);
    if (::poll(&pfd, 1, kConnectConfirmTimeoutMs) != 1 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Socket();
    }
  }
  return Socket(fd);
}

std::uint16_t Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

std::optional<Socket> Socket::accept_nb() {
  // Injected accept failure (EMFILE, aborted handshake, ...).
  if (EA_FAIL_TRIGGERED("net.socket.accept")) return std::nullopt;
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return std::nullopt;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

long Socket::read_nb(std::span<std::uint8_t> buf) {
  // Injection follows the return convention: 0 is an EAGAIN-style stall,
  // a negative value is reset/EOF, and a positive value caps the buffer
  // *before* the syscall so a short count never discards received bytes.
  long inject = 0;
  if (EA_FAIL_VALUE("net.socket.read", inject)) {
    if (inject <= 0) return inject < 0 ? -1 : 0;
    if (static_cast<std::size_t>(inject) < buf.size()) {
      buf = buf.first(static_cast<std::size_t>(inject));
    }
  }
  ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
  if (n > 0) return n;
  if (n == 0) return -1;  // orderly shutdown
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  return -1;
}

long Socket::write_nb(std::span<const std::uint8_t> buf) {
  // Same convention as read_nb: 0 = full kernel buffer, negative = reset,
  // positive = short write (the syscall sees a capped buffer).
  long inject = 0;
  if (EA_FAIL_VALUE("net.socket.write", inject)) {
    if (inject <= 0) return inject < 0 ? -1 : 0;
    if (static_cast<std::size_t>(inject) < buf.size()) {
      buf = buf.first(static_cast<std::size_t>(inject));
    }
  }
  ssize_t n = ::send(fd_, buf.data(), buf.size(), MSG_NOSIGNAL);
  if (n >= 0) return n;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  return -1;
}

}  // namespace ea::net
