// Thin RAII wrapper over non-blocking TCP sockets.
//
// All socket system calls happen in untrusted system actors (an enclave
// cannot issue syscalls); this wrapper is the substrate those actors use.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace ea::net {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  int release() noexcept {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;

  // Shuts down both directions without invalidating the descriptor. Safe to
  // call from another thread while the owner is mid-read: pending and future
  // reads return EOF, but fd_ itself is untouched, so there is no data race
  // on the descriptor (close() concurrent with a reader is one — TSan
  // flagged exactly that in the baseline server's stop path).
  void shutdown_both() noexcept;

  // Creates a non-blocking listening socket on 127.0.0.1:port (port 0 picks
  // a free port). Returns invalid socket on failure.
  static Socket listen_on(std::uint16_t port, int backlog = 512);

  // Starts a non-blocking connect to 127.0.0.1:port; the connection may
  // complete asynchronously (poll with writable()/connect_finished()).
  static Socket connect_to(const std::string& host, std::uint16_t port);

  // Local port of a bound socket (0 on failure).
  std::uint16_t local_port() const;

  // Non-blocking accept; nullopt when no pending connection.
  std::optional<Socket> accept_nb();

  // Non-blocking read. Returns >0 bytes read, 0 when no data available,
  // -1 on EOF or fatal error.
  long read_nb(std::span<std::uint8_t> buf);

  // Non-blocking write. Returns bytes written (possibly 0), -1 on fatal
  // error.
  long write_nb(std::span<const std::uint8_t> buf);

 private:
  int fd_ = -1;
};

}  // namespace ea::net
