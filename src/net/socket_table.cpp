#include "net/socket_table.hpp"

namespace ea::net {

SocketId SocketTable::add(Socket socket) {
  concurrent::HleGuard guard(lock_);
  SocketId id = next_id_++;
  sockets_.emplace(id, std::move(socket));
  return id;
}

int SocketTable::fd(SocketId id) const {
  concurrent::HleGuard guard(lock_);
  auto it = sockets_.find(id);
  return it == sockets_.end() ? -1 : it->second.fd();
}

bool SocketTable::close(SocketId id) {
  concurrent::HleGuard guard(lock_);
  return sockets_.erase(id) > 0;
}

std::size_t SocketTable::size() const {
  concurrent::HleGuard guard(lock_);
  return sockets_.size();
}

}  // namespace ea::net
