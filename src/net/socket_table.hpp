// Shared registry mapping stable socket ids to live sockets.
//
// The system actors (OPENER/ACCEPTER/READER/WRITER/CLOSER) pass socket
// *ids* around in node payloads; ids are never reused, so a stale id after
// a close is harmless (operations on it are simply dropped).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "concurrent/hle_lock.hpp"
#include "net/socket.hpp"

namespace ea::net {

using SocketId = std::int64_t;

class SocketTable {
 public:
  // Registers a socket, returning its id.
  SocketId add(Socket socket) EA_EXCLUDES(lock_);

  // Looks up the raw fd for an id (shared across actors within the
  // process); -1 if closed/unknown.
  int fd(SocketId id) const EA_EXCLUDES(lock_);

  // Runs `fn(socket&)` under the table lock if the socket exists. The
  // callback runs with kSocketTable held: it may only take locks of
  // HIGHER rank (in practice it performs raw socket ops and takes none).
  template <typename Fn>
  bool with(SocketId id, Fn&& fn) EA_EXCLUDES(lock_) {
    concurrent::HleGuard guard(lock_);
    auto it = sockets_.find(id);
    if (it == sockets_.end()) return false;
    fn(it->second);
    return true;
  }

  // Closes and removes.
  bool close(SocketId id) EA_EXCLUDES(lock_);

  std::size_t size() const EA_EXCLUDES(lock_);

 private:
  mutable concurrent::HleSpinLock lock_{concurrent::LockRank::kSocketTable};
  std::map<SocketId, Socket> sockets_ EA_GUARDED_BY(lock_);
  SocketId next_id_ EA_GUARDED_BY(lock_) = 1;
};

}  // namespace ea::net
