// Shared registry mapping stable socket ids to live sockets.
//
// The system actors (OPENER/ACCEPTER/READER/WRITER/CLOSER) pass socket
// *ids* around in node payloads; ids are never reused, so a stale id after
// a close is harmless (operations on it are simply dropped).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "concurrent/hle_lock.hpp"
#include "net/socket.hpp"

namespace ea::net {

using SocketId = std::int64_t;

class SocketTable {
 public:
  // Registers a socket, returning its id.
  SocketId add(Socket socket);

  // Looks up the raw fd for an id (shared across actors within the
  // process); -1 if closed/unknown.
  int fd(SocketId id) const;

  // Runs `fn(socket&)` under the table lock if the socket exists.
  template <typename Fn>
  bool with(SocketId id, Fn&& fn) {
    concurrent::HleGuard guard(lock_);
    auto it = sockets_.find(id);
    if (it == sockets_.end()) return false;
    fn(it->second);
    return true;
  }

  // Closes and removes.
  bool close(SocketId id);

  std::size_t size() const;

 private:
  mutable concurrent::HleSpinLock lock_;
  std::map<SocketId, Socket> sockets_;
  SocketId next_id_ = 1;
};

}  // namespace ea::net
