#include "partition/actors.hpp"

#include <cmath>

#include "crypto/hmac.hpp"
#include "crypto/rng.hpp"
#include "util/bytes.hpp"
#include "util/logging.hpp"

namespace ea::partition {
namespace {

// Sends a record over a channel, retrying on transient pool exhaustion
// (channel sends never block and never syscall, so spinning is safe inside
// an enclave).
void send_record(core::ChannelEnd* channel, const Record& record) {
  std::string wire = record.serialize();
  while (!channel->send(wire)) {
  }
}

std::optional<Record> recv_record(core::ChannelEnd* channel) {
  auto msg = channel->recv();
  if (!msg) return std::nullopt;
  return Record::parse(msg->view());
}

std::string cell_name(int x, int y) {
  return std::to_string(x) + "," + std::to_string(y);
}

}  // namespace

// --- FRONTEND -----------------------------------------------------------------

void FrontendActor::construct(core::Runtime&) {
  to_identity_ = connect("pq.frontend-identity");
  to_location_ = connect("pq.frontend-location");
  to_query_ = connect("pq.frontend-query");
}

bool FrontendActor::body() {
  bool progress = false;
  while (concurrent::Node* node = requests_->pop()) {
    concurrent::NodeLease lease(node);
    auto request = Record::parse(node->view());
    if (!request.has_value()) continue;
    audit_.observe(*request);
    const std::string* req = request->get("req");
    if (req == nullptr) continue;

    // The split: each partition receives only its slice, plus the opaque
    // request id used to re-join the pieces.
    Record identity_part;
    identity_part.set("req", *req);
    if (const std::string* user = request->get("user")) {
      identity_part.set("user", *user);
    }
    Record location_part;
    location_part.set("req", *req);
    if (const std::string* lat = request->get("lat")) {
      location_part.set("lat", *lat);
    }
    if (const std::string* lon = request->get("lon")) {
      location_part.set("lon", *lon);
    }
    Record query_part;
    query_part.set("req", *req);
    if (const std::string* query = request->get("query")) {
      query_part.set("query", *query);
    }
    if (const std::string* key = request->get("reply_key")) {
      query_part.set("reply_key", *key);
    }
    send_record(to_identity_, identity_part);
    send_record(to_location_, location_part);
    send_record(to_query_, query_part);
    progress = true;
  }
  return progress;
}

// --- IDENTITY -----------------------------------------------------------------

void IdentityActor::construct(core::Runtime& rt) {
  from_frontend_ = connect("pq.frontend-identity");
  to_query_ = connect("pq.identity-query");
  from_query_ = connect("pq.query-identity");
  if (result_pool_ == nullptr) result_pool_ = &rt.public_pool();
  crypto::secure_random(pseudonym_secret_);
}

bool IdentityActor::body() {
  bool progress = false;
  while (auto record = recv_record(from_frontend_)) {
    audit_.observe(*record);
    const std::string* req = record->get("req");
    const std::string* user = record->get("user");
    if (req == nullptr || user == nullptr) continue;
    req_to_user_[*req] = *user;
    // Pseudonym: keyed MAC of the user id; stable per user, unlinkable to
    // the identity without the enclave-private secret.
    auto mac = crypto::hmac_sha256(pseudonym_secret_, util::to_bytes(*user));
    Record forward;
    forward.set("req", *req);
    forward.set("pseudonym",
                util::to_hex(std::span<const std::uint8_t>(mac.data(), 8)));
    send_record(to_query_, forward);
    progress = true;
  }
  while (auto record = recv_record(from_query_)) {
    audit_.observe(*record);
    const std::string* req = record->get("req");
    const std::string* blob = record->get("result");
    if (req == nullptr || blob == nullptr) continue;
    auto it = req_to_user_.find(*req);
    if (it == req_to_user_.end()) continue;
    Record result;
    result.set("req", *req);
    result.set("user", it->second);
    result.set("result", *blob);
    req_to_user_.erase(it);

    concurrent::Node* node = result_pool_->get();
    if (node != nullptr) {
      std::string wire = result.serialize();
      if (wire.size() <= node->capacity) {
        node->fill(wire);
        results_->push(node);
      } else {
        concurrent::NodeLease(node).reset();
      }
    }
    progress = true;
  }
  return progress;
}

// --- LOCATION -----------------------------------------------------------------

void LocationActor::construct(core::Runtime&) {
  from_frontend_ = connect("pq.frontend-location");
  to_query_ = connect("pq.location-query");
}

bool LocationActor::body() {
  bool progress = false;
  while (auto record = recv_record(from_frontend_)) {
    audit_.observe(*record);
    const std::string* req = record->get("req");
    const std::string* lat = record->get("lat");
    const std::string* lon = record->get("lon");
    if (req == nullptr || lat == nullptr || lon == nullptr) continue;
    // Quantise to the coarse grid: the query enclave learns the cell, not
    // the exact coordinates.
    int x = static_cast<int>(std::floor(std::stod(*lon) / config_.cell_size));
    int y = static_cast<int>(std::floor(std::stod(*lat) / config_.cell_size));
    x = std::clamp(x, 0, config_.grid - 1);
    y = std::clamp(y, 0, config_.grid - 1);
    Record forward;
    forward.set("req", *req);
    forward.set("cell", cell_name(x, y));
    send_record(to_query_, forward);
    progress = true;
  }
  return progress;
}

// --- QUERY ----------------------------------------------------------------------

void QueryActor::construct(core::Runtime&) {
  from_frontend_ = connect("pq.frontend-query");
  from_identity_ = connect("pq.identity-query");
  from_location_ = connect("pq.location-query");
  to_identity_ = connect("pq.query-identity");

  // Synthetic POI database, deterministic for tests.
  static constexpr const char* kCategories[] = {"doctor", "cafe", "fuel",
                                                "pharmacy"};
  crypto::FastRng rng(0xdb);
  for (int x = 0; x < config_.grid; ++x) {
    for (int y = 0; y < config_.grid; ++y) {
      for (int i = 0; i < config_.pois_per_cell; ++i) {
        Poi poi;
        poi.category = kCategories[rng.next_below(4)];
        poi.name = poi.category + "-" + cell_name(x, y) + "-" +
                   std::to_string(i);
        poi.cell_x = x;
        poi.cell_y = y;
        pois_.push_back(std::move(poi));
      }
    }
  }
}

void QueryActor::try_answer(const std::string& req, PendingQuery& pending) {
  if (!pending.has_query || !pending.has_pseudonym || !pending.has_cell) {
    return;
  }
  // Search the cell for POIs matching the query category.
  std::string matches;
  auto comma = pending.cell.find(',');
  int cx = std::stoi(pending.cell.substr(0, comma));
  int cy = std::stoi(pending.cell.substr(comma + 1));
  for (const Poi& poi : pois_) {
    if (poi.cell_x == cx && poi.cell_y == cy &&
        poi.category == pending.query) {
      if (!matches.empty()) matches += '\n';
      matches += poi.name;
    }
  }
  // Encrypt the result for the requesting client; the identity enclave
  // routes it back but cannot read it.
  crypto::AeadKey reply_key{};
  util::Bytes key_bytes = util::from_hex(pending.reply_key_hex);
  if (key_bytes.size() == reply_key.size()) {
    std::memcpy(reply_key.data(), key_bytes.data(), reply_key.size());
  }
  util::Bytes sealed = crypto::seal_with_counter(
      reply_key, nonce_++, {},
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(matches.data()),
          matches.size()));

  Record result;
  result.set("req", req);
  result.set("result", util::to_hex(sealed));
  send_record(to_identity_, result);
  pending_.erase(req);
}

bool QueryActor::body() {
  bool progress = false;
  while (auto record = recv_record(from_frontend_)) {
    audit_.observe(*record);
    const std::string* req = record->get("req");
    if (req == nullptr) continue;
    PendingQuery& pending = pending_[*req];
    if (const std::string* query = record->get("query")) {
      pending.query = *query;
    }
    if (const std::string* key = record->get("reply_key")) {
      pending.reply_key_hex = *key;
    }
    pending.has_query = true;
    try_answer(*req, pending);
    progress = true;
  }
  while (auto record = recv_record(from_identity_)) {
    audit_.observe(*record);
    const std::string* req = record->get("req");
    const std::string* pseudonym = record->get("pseudonym");
    if (req == nullptr || pseudonym == nullptr) continue;
    PendingQuery& pending = pending_[*req];
    pending.pseudonym = *pseudonym;
    pending.has_pseudonym = true;
    try_answer(*req, pending);
    progress = true;
  }
  while (auto record = recv_record(from_location_)) {
    audit_.observe(*record);
    const std::string* req = record->get("req");
    const std::string* cell = record->get("cell");
    if (req == nullptr || cell == nullptr) continue;
    PendingQuery& pending = pending_[*req];
    pending.cell = *cell;
    pending.has_cell = true;
    try_answer(*req, pending);
    progress = true;
  }
  return progress;
}

// --- assembly -----------------------------------------------------------------

QueryService install_private_query(core::Runtime& rt,
                                   const QueryServiceConfig& config) {
  struct MboxHolder : core::Actor {
    using core::Actor::Actor;
    concurrent::Mbox requests;
    concurrent::Mbox results;
    bool body() override { return false; }
  };
  auto holder = std::make_unique<MboxHolder>("pq.mboxes");
  MboxHolder* mboxes = holder.get();
  rt.add_actor(std::move(holder));

  QueryService service;
  service.requests = &mboxes->requests;
  service.results = &mboxes->results;

  auto frontend =
      std::make_unique<FrontendActor>("pq.frontend", &mboxes->requests);
  auto identity = std::make_unique<IdentityActor>("pq.identity",
                                                  &mboxes->results, nullptr);
  auto location = std::make_unique<LocationActor>("pq.location", config);
  auto query = std::make_unique<QueryActor>("pq.query", config);
  service.frontend = frontend.get();
  service.identity = identity.get();
  service.location = location.get();
  service.query = query.get();

  rt.add_actor(std::move(frontend));  // untrusted splitter
  rt.add_actor(std::move(identity), "pq.e-identity");
  rt.add_actor(std::move(location), "pq.e-location");
  rt.add_actor(std::move(query), "pq.e-query");

  rt.add_worker("pq.w-frontend", {0}, {"pq.frontend"});
  rt.add_worker("pq.w-identity", {1}, {"pq.identity"});
  rt.add_worker("pq.w-location", {2}, {"pq.location"});
  rt.add_worker("pq.w-query", {3}, {"pq.query"});
  return service;
}

Record make_query_request(const std::string& req_id, const std::string& user,
                          double lat, double lon, const std::string& query,
                          crypto::AeadKey& reply_key_out) {
  crypto::secure_random(reply_key_out);
  Record record;
  record.set("req", req_id);
  record.set("user", user);
  record.set("lat", std::to_string(lat));
  record.set("lon", std::to_string(lon));
  record.set("query", query);
  record.set("reply_key", util::to_hex(reply_key_out));
  return record;
}

std::optional<std::string> open_query_result(
    const Record& result, const crypto::AeadKey& reply_key) {
  const std::string* blob = result.get("result");
  if (blob == nullptr) return std::nullopt;
  util::Bytes sealed;
  try {
    sealed = util::from_hex(*blob);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  auto plain = crypto::open_framed(reply_key, {}, sealed);
  if (!plain.has_value()) return std::nullopt;
  return util::to_string(*plain);
}

}  // namespace ea::partition
