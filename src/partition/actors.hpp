// Privacy-preserving location-based query service via data partitioning —
// the multi-enclave application class the paper's §2.1 motivates (KOI [22],
// PEAS [40]): "split this request into three pieces: the user identifier,
// the user location and the search query … processed by three non-colluding
// servers". Here the three servers are three enclaves, which upgrades the
// non-collusion assumption to hardware isolation — and, per the paper's
// §2.3 attacker model, a compromise of one enclave exposes only its slice.
//
//   client → FRONTEND (untrusted): splits the request
//     {user}           → IDENTITY enclave: pseudonymises, later re-attaches
//     {lat, lon}       → LOCATION enclave: quantises to a coarse cell
//     {query, reply key} → QUERY enclave: joins pseudonym + cell, searches
//                          its POI database, encrypts the result with the
//                          client's reply key
//   QUERY → IDENTITY: {req, ciphertext}; IDENTITY maps the request back to
//   the user and emits the (still encrypted) result.
//
// Field audit: every actor records the field names it observes, so tests
// can assert that no enclave ever holds identity *and* location *and* query
// at once.
#pragma once

#include <map>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"
#include "core/runtime.hpp"
#include "crypto/aead.hpp"
#include "partition/record.hpp"

namespace ea::partition {

struct QueryServiceConfig {
  int grid = 16;           // world is grid x grid cells
  int pois_per_cell = 3;   // synthetic database density
  double cell_size = 1.0;  // degrees per cell
};

// Points of interest the QUERY enclave serves.
struct Poi {
  std::string name;
  std::string category;
  int cell_x = 0;
  int cell_y = 0;
};

class FrontendActor : public core::Actor {
 public:
  FrontendActor(std::string name, concurrent::Mbox* requests)
      : core::Actor(std::move(name)), requests_(requests) {}

  void construct(core::Runtime& rt) override;
  bool body() override;

  const FieldAudit& audit() const noexcept { return audit_; }

 private:
  concurrent::Mbox* requests_;
  core::ChannelEnd* to_identity_ = nullptr;
  core::ChannelEnd* to_location_ = nullptr;
  core::ChannelEnd* to_query_ = nullptr;
  FieldAudit audit_;
};

class IdentityActor : public core::Actor {
 public:
  IdentityActor(std::string name, concurrent::Mbox* results,
                concurrent::Pool* result_pool)
      : core::Actor(std::move(name)),
        results_(results),
        result_pool_(result_pool) {}

  void construct(core::Runtime& rt) override;
  bool body() override;

  const FieldAudit& audit() const noexcept { return audit_; }

 private:
  concurrent::Mbox* results_;
  concurrent::Pool* result_pool_;
  core::ChannelEnd* from_frontend_ = nullptr;
  core::ChannelEnd* to_query_ = nullptr;
  core::ChannelEnd* from_query_ = nullptr;
  std::map<std::string, std::string> req_to_user_;
  std::array<std::uint8_t, 32> pseudonym_secret_{};
  FieldAudit audit_;
};

class LocationActor : public core::Actor {
 public:
  LocationActor(std::string name, QueryServiceConfig config)
      : core::Actor(std::move(name)), config_(config) {}

  void construct(core::Runtime& rt) override;
  bool body() override;

  const FieldAudit& audit() const noexcept { return audit_; }

 private:
  QueryServiceConfig config_;
  core::ChannelEnd* from_frontend_ = nullptr;
  core::ChannelEnd* to_query_ = nullptr;
  FieldAudit audit_;
};

class QueryActor : public core::Actor {
 public:
  QueryActor(std::string name, QueryServiceConfig config)
      : core::Actor(std::move(name)), config_(config) {}

  void construct(core::Runtime& rt) override;
  bool body() override;

  const FieldAudit& audit() const noexcept { return audit_; }
  const std::vector<Poi>& database() const noexcept { return pois_; }

 private:
  struct PendingQuery {
    std::string query;
    std::string reply_key_hex;
    std::string pseudonym;
    std::string cell;
    bool has_query = false;
    bool has_pseudonym = false;
    bool has_cell = false;
  };

  void try_answer(const std::string& req, PendingQuery& pending);

  QueryServiceConfig config_;
  core::ChannelEnd* from_frontend_ = nullptr;
  core::ChannelEnd* from_identity_ = nullptr;
  core::ChannelEnd* from_location_ = nullptr;
  core::ChannelEnd* to_identity_ = nullptr;
  std::vector<Poi> pois_;
  std::map<std::string, PendingQuery> pending_;
  std::uint64_t nonce_ = 1;
  FieldAudit audit_;
};

// The assembled service.
struct QueryService {
  concurrent::Mbox* requests = nullptr;  // client -> frontend records
  concurrent::Mbox* results = nullptr;   // identity -> client records
  FrontendActor* frontend = nullptr;
  IdentityActor* identity = nullptr;
  LocationActor* location = nullptr;
  QueryActor* query = nullptr;
};

// Installs frontend (untrusted) + the three partition enclaves, each with
// its own worker.
QueryService install_private_query(core::Runtime& rt,
                                   const QueryServiceConfig& config = {});

// --- client-side helpers -----------------------------------------------------

// Builds a request record. The reply key is generated per request; keep it
// to decrypt the result.
Record make_query_request(const std::string& req_id, const std::string& user,
                          double lat, double lon, const std::string& query,
                          crypto::AeadKey& reply_key_out);

// Decrypts the result ciphertext from a result record; nullopt when the
// blob was tampered with or the key is wrong. The plaintext is a
// '\n'-separated list of POI names.
std::optional<std::string> open_query_result(const Record& result,
                                             const crypto::AeadKey& reply_key);

}  // namespace ea::partition
