#include "partition/record.hpp"

namespace ea::partition {
namespace {

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '=' || c == '\n' || c == '%') {
      static constexpr char kHex[] = "0123456789abcdef";
      out.push_back('%');
      out.push_back(kHex[static_cast<unsigned char>(c) >> 4]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::optional<std::string> unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '%') {
      out.push_back(raw[i]);
      continue;
    }
    if (i + 2 >= raw.size()) return std::nullopt;
    int hi = hex_digit(raw[i + 1]);
    int lo = hex_digit(raw[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

}  // namespace

void Record::set(const std::string& key, std::string value) {
  fields_[key] = std::move(value);
}

const std::string* Record::get(std::string_view key) const {
  auto it = fields_.find(std::string(key));
  return it == fields_.end() ? nullptr : &it->second;
}

std::string Record::serialize() const {
  std::string out;
  for (const auto& [key, value] : fields_) {
    out += key;
    out += '=';
    out += escape(value);
    out += '\n';
  }
  return out;
}

std::optional<Record> Record::parse(std::string_view wire) {
  Record record;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    std::size_t eol = wire.find('\n', pos);
    if (eol == std::string_view::npos) return std::nullopt;
    std::string_view line = wire.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    auto value = unescape(line.substr(eq + 1));
    if (!value.has_value()) return std::nullopt;
    record.fields_[std::string(line.substr(0, eq))] = std::move(*value);
  }
  return record;
}

void FieldAudit::observe(const Record& record) {
  for (const auto& [key, value] : record.fields()) seen_.insert(key);
}

bool FieldAudit::saw(std::string_view field) const {
  return seen_.count(std::string(field)) > 0;
}

}  // namespace ea::partition
