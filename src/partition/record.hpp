// Field records exchanged between the partition actors: an ordered list of
// key/value string pairs with a line-based wire format. Deliberately
// simple — what matters for the privacy argument is *which fields* reach
// which enclave, and records make that auditable (each actor logs the
// field names it has ever seen; tests assert the partitioning).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>

namespace ea::partition {

class Record {
 public:
  Record() = default;

  void set(const std::string& key, std::string value);
  const std::string* get(std::string_view key) const;
  bool has(std::string_view key) const { return get(key) != nullptr; }

  const std::map<std::string, std::string>& fields() const noexcept {
    return fields_;
  }

  // Wire format: "key=value\n" per field; keys must not contain '=' or
  // '\n'; values are percent-escaped for those bytes.
  std::string serialize() const;
  static std::optional<Record> parse(std::string_view wire);

 private:
  std::map<std::string, std::string> fields_;
};

// Tracks which field names an actor has observed (the privacy audit trail).
class FieldAudit {
 public:
  void observe(const Record& record);
  bool saw(std::string_view field) const;
  const std::set<std::string>& seen() const noexcept { return seen_; }

 private:
  std::set<std::string> seen_;
};

}  // namespace ea::partition
