#include "pos/cleaner_actor.hpp"

#include "util/failpoint.hpp"

namespace ea::pos {

bool CleanerActor::body() {
  // The injected skip models a cleaner activation that makes no progress
  // (e.g. preempted before reaching the store); it must free nothing and
  // report an idle round.
  if (EA_FAIL_TRIGGERED("pos.cleaner.skip")) return false;
  std::size_t freed = store_.clean_step();
  rounds_.fetch_add(1, std::memory_order_relaxed);
  freed_total_.fetch_add(freed, std::memory_order_relaxed);
  return freed > 0;
}

}  // namespace ea::pos
