#include "pos/cleaner_actor.hpp"

// Header-only logic; this TU anchors the vtable.
namespace ea::pos {}
