// The Cleaner: a housekeeping eactor that reclaims outdated POS entries
// (paper §4.1). It runs clean_step() every activation; reclamation only
// completes once every registered reader has run since the invalidation,
// which the store checks via the grace counters.
#pragma once

#include <atomic>

#include "core/actor.hpp"
#include "pos/pos.hpp"

namespace ea::pos {

class CleanerActor : public core::Actor {
 public:
  CleanerActor(std::string name, Pos& store)
      : core::Actor(std::move(name)), store_(store) {}

  bool body() override;

  std::uint64_t freed_total() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }

 private:
  Pos& store_;
  std::atomic<std::uint64_t> freed_total_{0};
};

}  // namespace ea::pos
