// The Cleaner: a housekeeping eactor that reclaims outdated POS entries
// (paper §4.1). Each activation drives one epoch-reclamation round —
// gather newly superseded versions into a retirement batch, advance the
// global epoch if every announced section has caught up, and free the
// batches that are two epochs stale (DESIGN.md §15). Frees therefore trail
// gathers by a couple of activations; an activation that only gathered or
// advanced still made progress toward them.
#pragma once

#include <atomic>

#include "core/actor.hpp"
#include "pos/pos.hpp"

namespace ea::pos {

class CleanerActor : public core::Actor {
 public:
  CleanerActor(std::string name, Pos& store)
      : core::Actor(std::move(name)), store_(store) {}

  bool body() override;

  std::uint64_t freed_total() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }

  // Rounds driven so far (test/diagnostic hook: deferred frees mean a
  // freeing round is typically two rounds after the gather that fed it).
  std::uint64_t rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }

 private:
  Pos& store_;
  std::atomic<std::uint64_t> freed_total_{0};
  std::atomic<std::uint64_t> rounds_{0};
};

}  // namespace ea::pos
