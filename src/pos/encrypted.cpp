#include "pos/encrypted.hpp"

#include <cstring>

#include "crypto/hkdf.hpp"
#include "sgxsim/sealing.hpp"
#include "util/bytes.hpp"

namespace ea::pos {

EncryptedPos::EncryptedPos(Pos& store,
                           std::span<const std::uint8_t> master_key)
    : store_(store), det_key_(crypto::derive_det_key(master_key)) {
  static constexpr std::uint8_t kInfo[] = "ea-pos-pair-key";
  util::Bytes okm = crypto::hkdf(
      {}, master_key, std::span<const std::uint8_t>(kInfo, sizeof(kInfo) - 1),
      crypto::kAeadKeySize);
  std::memcpy(pair_key_.data(), okm.data(), pair_key_.size());
}

util::Bytes EncryptedPos::wrap_key(std::span<const std::uint8_t> key) const {
  return crypto::det_encrypt(det_key_, key);
}

bool EncryptedPos::set(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> value) {
  // One epoch section per logical operation: the seal + store sequence
  // rides a single announcement (sections nest, so the inner Pos::set
  // re-enter is free) and the cleaner treats the whole encrypted op as one
  // read-side critical section.
  Pos::Section section(store_);
  util::Bytes enc_key = wrap_key(key);
  // Combined pair: klen(4) || key || value, AEAD-sealed with the encrypted
  // key as associated data — swapping values between keys is detected.
  util::Bytes pair;
  pair.resize(4 + key.size() + value.size());
  util::store_le32(pair.data(), static_cast<std::uint32_t>(key.size()));
  std::memcpy(pair.data() + 4, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(pair.data() + 4 + key.size(), value.data(), value.size());
  }
  util::Bytes sealed =
      crypto::seal_with_counter(pair_key_, seal_counter_++, enc_key, pair);
  return store_.set(enc_key, sealed);
}

std::optional<util::Bytes> EncryptedPos::get(
    std::span<const std::uint8_t> key) {
  // The lookup, AEAD open and embedded-key check are one logical read:
  // pin one epoch across all of it.
  Pos::Section section(store_);
  util::Bytes enc_key = wrap_key(key);
  std::optional<util::Bytes> sealed = store_.get(enc_key);
  if (!sealed.has_value()) return std::nullopt;
  std::optional<util::Bytes> pair =
      crypto::open_framed(pair_key_, enc_key, *sealed);
  if (!pair.has_value() || pair->size() < 4) return std::nullopt;
  std::uint32_t klen = util::load_le32(pair->data());
  if (4 + klen > pair->size()) return std::nullopt;
  // Integrity: the embedded plaintext key must match what we asked for.
  if (klen != key.size() ||
      std::memcmp(pair->data() + 4, key.data(), klen) != 0) {
    return std::nullopt;
  }
  return util::Bytes(pair->begin() + 4 + klen, pair->end());
}

bool EncryptedPos::erase(std::span<const std::uint8_t> key) {
  Pos::Section section(store_);
  return store_.erase(wrap_key(key));
}

bool EncryptedPos::store_sealed_master(
    const sgxsim::Enclave& enclave, std::string_view slot,
    std::span<const std::uint8_t> master_key) {
  // `sealed` is ciphertext; the plaintext master_key span is owned (and
  // wiped) by the caller.
  // ea-lint: allow-next-line(seal-plaintext-zeroize)
  util::Bytes sealed = sgxsim::seal(enclave, master_key);
  return store_.set(util::to_bytes(slot), sealed);
}

std::optional<EncryptedPos> EncryptedPos::load_sealed_master(
    Pos& store, const sgxsim::Enclave& enclave, std::string_view slot) {
  std::optional<util::Bytes> sealed = store.get(util::to_bytes(slot));
  if (!sealed.has_value()) return std::nullopt;
  std::optional<util::Bytes> master = sgxsim::unseal(enclave, *sealed);
  if (!master.has_value()) return std::nullopt;
  // The constructor derives det_key_/pair_key_ from the master key; the
  // unsealed plaintext itself must not outlive this function.
  EncryptedPos pos(store, *master);
  util::secure_zero(*master);
  return pos;
}

}  // namespace ea::pos
