// Encrypted view over the POS (paper §4.1, "Storage encryption").
//
// Keys are encrypted *deterministically* so the store can locate a value by
// comparing encrypted keys without decrypting them; bucket hashes are
// computed over the encrypted key. To preserve integrity, key and value are
// not stored separately: the stored value is the AEAD-sealed combination of
// both, and decryption verifies the embedded key matches.
//
// The master key lives in the owning eactor's private state; to survive
// reboots it can be stored *sealed* inside the POS itself under a
// well-known (plaintext) name.
#pragma once

#include <optional>
#include <span>

#include "crypto/deterministic.hpp"
#include "pos/pos.hpp"
#include "sgxsim/enclave.hpp"

namespace ea::pos {

class EncryptedPos {
 public:
  // Wraps `store` with the given 32-byte master key.
  EncryptedPos(Pos& store, std::span<const std::uint8_t> master_key);

  bool set(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> value);
  std::optional<util::Bytes> get(std::span<const std::uint8_t> key);
  bool erase(std::span<const std::uint8_t> key);

  // Persists the master key, sealed to `enclave`, under the plaintext name
  // `slot` inside the underlying store.
  bool store_sealed_master(const sgxsim::Enclave& enclave,
                           std::string_view slot,
                           std::span<const std::uint8_t> master_key);

  // Recovers a sealed master key (only succeeds inside the same enclave
  // identity). Returns the wrapper on success.
  static std::optional<EncryptedPos> load_sealed_master(
      Pos& store, const sgxsim::Enclave& enclave, std::string_view slot);

 private:
  util::Bytes wrap_key(std::span<const std::uint8_t> key) const;

  Pos& store_;
  crypto::DetKey det_key_;
  crypto::AeadKey pair_key_{};
  std::uint64_t seal_counter_ = 0;
};

}  // namespace ea::pos
