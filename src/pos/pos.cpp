#include "pos/pos.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/env.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::pos {

namespace {

// FNV-1a; cheap and adequate for bucket selection. For encrypted stores the
// input is the deterministically encrypted key, exactly as the paper
// prescribes — the plaintext never influences placement observably.
std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint32_t kStateFree = 0;
constexpr std::uint32_t kStateLive = 1;
constexpr std::uint32_t kStateOutdated = 2;  // superseded by a newer version
constexpr std::uint32_t kStateErased = 3;    // deleted via erase()

// Freed payloads are filled with this before the entry re-enters a free
// list, so a use-after-retire reads unmistakable garbage instead of stale
// (possibly plausible) data. The hazard counter is the cheap runtime
// tripwire; the poison makes the failure loud under ASan/debuggers.
constexpr std::uint8_t kPoisonByte = 0xDD;

constexpr std::size_t round_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

// Process-wide thread token: selects a home free shard and a counter
// stripe. Tokens are dense, so up to free_shard_count concurrent threads
// map to distinct shards.
std::uint32_t thread_token() noexcept {
  static std::atomic<std::uint32_t> seq{0};
  static thread_local const std::uint32_t token =
      seq.fetch_add(1, std::memory_order_relaxed);
  return token;
}

}  // namespace

struct Pos::Superblock {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t bucket_count;
  std::uint32_t entry_count;
  std::uint32_t entry_payload;
  // v2: the free list is sharded; the heads live in a persisted array at
  // free_off so the shard count is part of the file geometry (a reopening
  // process uses the file's shard count, not its own core count).
  std::uint32_t free_shard_count;
  std::uint32_t reserved;
  std::uint64_t entry_stride;
  std::uint64_t buckets_off;
  std::uint64_t free_off;
  std::uint64_t entries_off;
  std::atomic<std::uint64_t> epoch;
  // v3: the global reclamation epoch (concurrent/epoch.hpp) replaces the
  // v2 grace-counter array. Persisting it keeps epoch monotonicity across
  // persist() + reopen; the per-thread announcements are process-local and
  // die with a crash, which merely orphans any in-flight retirement batch.
  std::atomic<std::uint64_t> reclaim_epoch;
};

struct Pos::Entry {
  std::atomic<std::uint64_t> next;   // offset of next entry in bucket; 0 nil
  std::atomic<std::uint32_t> state;  // kState*
  std::uint32_t klen;
  std::uint32_t vlen;
  std::uint32_t pad;
  std::uint8_t* data() noexcept {
    return reinterpret_cast<std::uint8_t*>(this) + sizeof(Entry);
  }
  const std::uint8_t* data() const noexcept {
    return reinterpret_cast<const std::uint8_t*>(this) + sizeof(Entry);
  }
  std::span<const std::uint8_t> key() const noexcept {
    return {data(), klen};
  }
  std::span<const std::uint8_t> value() const noexcept {
    return {data() + klen, vlen};
  }
};

bool Pos::magazines_enabled() noexcept {
  static const bool enabled = util::env_int("EA_POS_MAGAZINE", 1) != 0;
  return enabled;
}

Pos::Pos(PosOptions options) : options_(std::move(options)) {
  bool fresh = true;

  // Reopening an existing file: the geometry — including the free-shard
  // count — comes from its superblock, not from the caller's options.
  if (!options_.path.empty()) {
    int probe = ::open(options_.path.c_str(), O_RDONLY);
    if (probe >= 0) {
      Superblock sb{};
      ssize_t got = ::pread(probe, &sb, sizeof(sb), 0);
      ::close(probe);
      if (got == static_cast<ssize_t>(sizeof(sb)) && sb.magic == kPosMagic) {
        // Version gates everything else: a v2 (grace-counter) image has a
        // different layout AND a different reclamation protocol, so it is
        // rejected before any field of its superblock is believed.
        if (sb.version != kPosVersion) {
          throw std::runtime_error("POS: bad version");
        }
        options_.bucket_count = sb.bucket_count;
        options_.entry_count = sb.entry_count;
        options_.entry_payload = sb.entry_payload;
        options_.free_shards = sb.free_shard_count;
      }
    }
  }

  std::uint32_t shards = options_.free_shards;
  if (shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shards = hw == 0 ? 1 : static_cast<std::uint32_t>(hw);
  }
  if (shards > kMaxFreeShards) shards = kMaxFreeShards;
  options_.free_shards = shards;

  const std::size_t entry_stride =
      round_up(sizeof(Entry) + options_.entry_payload, 64);
  const std::size_t sb_bytes = round_up(sizeof(Superblock), 64);
  const std::size_t bucket_bytes = round_up(
      options_.bucket_count * sizeof(std::atomic<std::uint64_t>), 64);
  const std::size_t free_bytes =
      round_up(shards * sizeof(std::atomic<std::uint64_t>), 64);
  map_bytes_ = round_up(
      sb_bytes + bucket_bytes + free_bytes +
          static_cast<std::size_t>(options_.entry_count) * entry_stride,
      4096);

  if (options_.path.empty()) {
    map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (map_ != MAP_FAILED && EA_FAIL_TRIGGERED("pos.mmap")) {
      ::munmap(map_, map_bytes_);
      map_ = MAP_FAILED;
    }
    if (map_ == MAP_FAILED) throw std::runtime_error("POS: mmap failed");
  } else {
    fd_ = ::open(options_.path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ >= 0 && EA_FAIL_TRIGGERED("pos.open")) {
      ::close(fd_);
      fd_ = -1;
    }
    if (fd_ < 0) throw std::runtime_error("POS: open failed: " + options_.path);
    struct stat st {};
    if (::fstat(fd_, &st) != 0) {
      ::close(fd_);
      throw std::runtime_error("POS: fstat failed");
    }
    fresh = st.st_size == 0;
    if (fresh && ::ftruncate(fd_, static_cast<off_t>(map_bytes_)) != 0) {
      ::close(fd_);
      throw std::runtime_error("POS: ftruncate failed");
    }
    if (!fresh && static_cast<std::size_t>(st.st_size) < map_bytes_) {
      ::close(fd_);
      throw std::runtime_error("POS: existing file smaller than layout");
    }
    map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                  fd_, 0);
    if (map_ != MAP_FAILED && EA_FAIL_TRIGGERED("pos.mmap")) {
      ::munmap(map_, map_bytes_);
      map_ = MAP_FAILED;
    }
    if (map_ == MAP_FAILED) {
      ::close(fd_);
      throw std::runtime_error("POS: mmap failed");
    }
  }

  sb_ = reinterpret_cast<Superblock*>(map_);
  // Cache derived pointers; for existing files these come from the
  // superblock after validation.
  if (fresh) {
    sb_->magic = kPosMagic;
    sb_->version = kPosVersion;
    sb_->bucket_count = options_.bucket_count;
    sb_->entry_count = options_.entry_count;
    sb_->entry_payload = options_.entry_payload;
    sb_->free_shard_count = shards;
    sb_->reserved = 0;
    sb_->entry_stride = entry_stride;
    sb_->buckets_off = sb_bytes;
    sb_->free_off = sb_bytes + bucket_bytes;
    sb_->entries_off = sb_bytes + bucket_bytes + free_bytes;
    sb_->epoch.store(1, std::memory_order_relaxed);
    sb_->reclaim_epoch.store(1, std::memory_order_relaxed);
    entries_base_ = static_cast<std::byte*>(map_) + sb_->entries_off;
    init_fresh();
  } else {
    validate_existing();
    entries_base_ = static_cast<std::byte*>(map_) + sb_->entries_off;
    // Epoch 0 means "quiescent slot", so a (theoretically) torn image that
    // lost the initial store is healed rather than trusted.
    if (sb_->reclaim_epoch.load(std::memory_order_relaxed) == 0) {
      sb_->reclaim_epoch.store(1, std::memory_order_relaxed);
    }
  }
  epochs_.attach(&sb_->reclaim_epoch);

  bucket_locks_ =
      std::make_unique<concurrent::HleSpinLock[]>(sb_->bucket_count);
  free_locks_ =
      std::make_unique<concurrent::HleSpinLock[]>(sb_->free_shard_count);
  // Array construction cannot pass constructor arguments, so the locks are
  // ranked post-construction — before the store is visible to any other
  // thread. All buckets share kPosBucket and all shards share kPosFree:
  // the runtime never nests two locks of the same family (each walk locks
  // one bucket/shard at a time), so same-rank nesting stays forbidden.
  for (std::uint32_t b = 0; b < sb_->bucket_count; ++b) {
    bucket_locks_[b].set_rank(concurrent::LockRank::kPosBucket);
  }
  for (std::uint32_t s = 0; s < sb_->free_shard_count; ++s) {
    free_locks_[s].set_rank(concurrent::LockRank::kPosFree);
  }

  use_magazines_ =
      options_.magazines < 0 ? magazines_enabled() : options_.magazines != 0;
  magazines_.set_return(
      this, [](void* ctx, std::uint64_t* items, std::uint32_t count) {
        static_cast<Pos*>(ctx)->magazine_return(items, count);
      });
}

Pos::~Pos() {
  // Splice every cached entry back onto the shard free lists so a cleanly
  // closed file conserves all entries on persisted structure (a crash
  // instead orphans the in-magazine entries, which recovery tolerates).
  // Retirement batches are drained the same way: no section can be live
  // during destruction (lifetime contract), so every batch is past its
  // horizon by definition.
  if (map_ != nullptr && map_ != MAP_FAILED) {
    magazines_.evict_all(
        [this](std::uint64_t* items, std::uint32_t count) {
          magazine_return(items, count);
        });
    {
      concurrent::HleGuard retire_guard(retire_lock_);
      while (!retired_.empty()) {
        epochs_.advance();
        flush_retired();
      }
    }
    ::munmap(map_, map_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void Pos::init_fresh() {
  // Thread all entries onto the shard free lists (stacks, like the pool
  // abstraction they share their implementation with). Each shard owns a
  // contiguous block of slots for locality.
  for (std::uint32_t b = 0; b < sb_->bucket_count; ++b) {
    bucket_head(b).store(0, std::memory_order_relaxed);
  }
  const std::uint32_t shards = sb_->free_shard_count;
  const std::uint64_t count = sb_->entry_count;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t lo = count * s / shards;
    const std::uint64_t hi = count * (s + 1) / shards;
    std::uint64_t prev = 0;
    for (std::uint64_t i = lo; i < hi; ++i) {
      std::uint64_t off = sb_->entries_off + i * sb_->entry_stride;
      Entry* e = entry_at(off);
      e->state.store(kStateFree, std::memory_order_relaxed);
      e->next.store(prev, std::memory_order_relaxed);
      prev = off;
    }
    free_head(s).store(prev, std::memory_order_relaxed);
  }
}

void Pos::validate_existing() {
  if (sb_->magic != kPosMagic) throw std::runtime_error("POS: bad magic");
  if (sb_->version != kPosVersion) throw std::runtime_error("POS: bad version");
  if (sb_->bucket_count == 0 || sb_->entry_count == 0) {
    throw std::runtime_error("POS: corrupt superblock");
  }
  if (sb_->free_shard_count == 0 || sb_->free_shard_count > kMaxFreeShards) {
    throw std::runtime_error("POS: corrupt superblock (free shards)");
  }
  options_.bucket_count = sb_->bucket_count;
  options_.entry_count = sb_->entry_count;
  options_.entry_payload = sb_->entry_payload;
  options_.free_shards = sb_->free_shard_count;
}

Pos::Entry* Pos::entry_at(std::uint64_t offset) noexcept {
  return reinterpret_cast<Entry*>(static_cast<std::byte*>(map_) + offset);
}

const Pos::Entry* Pos::entry_at(std::uint64_t offset) const noexcept {
  return reinterpret_cast<const Entry*>(static_cast<const std::byte*>(map_) +
                                        offset);
}

std::uint64_t Pos::offset_of(const Entry* e) const noexcept {
  return static_cast<std::uint64_t>(reinterpret_cast<const std::byte*>(e) -
                                    static_cast<const std::byte*>(map_));
}

std::atomic<std::uint64_t>& Pos::bucket_head(std::uint32_t bucket) noexcept {
  auto* base = reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<std::byte*>(map_) + sb_->buckets_off);
  return base[bucket];
}

std::atomic<std::uint64_t>& Pos::free_head(std::uint32_t shard)
    const noexcept {
  auto* base = reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<std::byte*>(map_) + sb_->free_off);
  return base[shard];
}

std::uint32_t Pos::bucket_of(std::span<const std::uint8_t> key) const noexcept {
  return static_cast<std::uint32_t>(fnv1a(key) % sb_->bucket_count);
}

std::uint32_t Pos::home_shard() const noexcept {
  return thread_token() % sb_->free_shard_count;
}

// --- sharded free lists -----------------------------------------------------
//
// Shard lists are only ever mutated under their shard lock; the relaxed
// atomics inside the critical sections mirror the original single-list
// code (the lock provides the ordering). Detached entries — a popped batch,
// a magazine's contents, the cleaner's retirement batches — are reachable
// from no persisted root, so a crash while they are in flight orphans them,
// which integrity_error() deliberately tolerates.

std::uint32_t Pos::shard_pop(std::uint32_t s, std::uint64_t* out,
                             std::uint32_t max) EA_LOCK_NOEXCEPT {
  concurrent::HleGuard guard(free_locks_[s]);
  std::uint32_t taken = 0;
  std::uint64_t cur = free_head(s).load(std::memory_order_relaxed);
  while (cur != 0 && taken < max) {
    out[taken++] = cur;
    cur = entry_at(cur)->next.load(std::memory_order_relaxed);
  }
  if (taken != 0) free_head(s).store(cur, std::memory_order_relaxed);
  return taken;
}

void Pos::shard_push_chain(std::uint32_t s, std::uint64_t head,
                           std::uint64_t tail) EA_LOCK_NOEXCEPT {
  concurrent::HleGuard guard(free_locks_[s]);
  entry_at(tail)->next.store(free_head(s).load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  free_head(s).store(head, std::memory_order_relaxed);
}

std::uint32_t Pos::pop_or_steal(std::uint64_t* out,
                                std::uint32_t max) EA_LOCK_NOEXCEPT {
  const std::uint32_t shards = sb_->free_shard_count;
  const std::uint32_t home = home_shard();
  std::uint32_t got = shard_pop(home, out, max);
  if (got != 0) return got;
  for (std::uint32_t i = 1; i < shards; ++i) {
    got = shard_pop((home + i) % shards, out, max);
    if (got != 0) {
      // Kill-point: the stolen batch is reachable from neither its old
      // shard nor anywhere else yet — a crash here orphans it.
      EA_FAIL_POINT("pos.freeshard.steal");
      return got;
    }
  }
  return 0;
}

std::uint32_t Pos::pop_striped(std::uint64_t* out,
                               std::uint32_t max) EA_LOCK_NOEXCEPT {
  const std::uint32_t shards = sb_->free_shard_count;
  const std::uint32_t home = home_shard();
  // Hint pass, no locks held: guess every shard's top and start its cache
  // line loading. Popping a whole batch off one list chases dependent next
  // pointers — each miss waits for the previous one — but the tops of
  // *separate* shard lists are independent, so prefetching them all first
  // lets the misses overlap. A stale guess (another thread popped first)
  // merely wastes the prefetch; the pops below hold the shard locks.
  for (std::uint32_t i = 0; i < shards; ++i) {
    const std::uint64_t guess =
        free_head((home + i) % shards).load(std::memory_order_relaxed);
    if (guess != 0) __builtin_prefetch(entry_at(guess));
  }
  // First sweep takes at most ceil(max/shards) per shard, home first, to
  // stay on the prefetched tops; later sweeps (shards running dry) take
  // whatever remains wherever it is.
  const std::uint32_t quota = (max + shards - 1) / shards;
  std::uint32_t got = 0;
  for (std::uint32_t sweep = 0; got < max; ++sweep) {
    std::uint32_t sweep_got = 0;
    for (std::uint32_t i = 0; i < shards && got < max; ++i) {
      const std::uint32_t s = (home + i) % shards;
      const std::uint32_t want =
          sweep == 0 ? std::min(quota, max - got) : max - got;
      const std::uint32_t n = shard_pop(s, out + got, want);
      got += n;
      sweep_got += n;
      if (n != 0 && s != home) {
        // Kill-point: as in pop_or_steal — the cross-shard batch is
        // reachable from nowhere until it lands in the magazine.
        EA_FAIL_POINT("pos.freeshard.steal");
      }
    }
    if (sweep_got == 0) break;
  }
  return got;
}

std::uint32_t Pos::magazine_refill(Magazine& mag) EA_LOCK_NOEXCEPT {
  std::uint64_t batch[kPosMagazineBatch];
  const std::uint32_t got = pop_striped(
      batch, static_cast<std::uint32_t>(kPosMagazineBatch));
  // batch[0] was a shard top (hottest); store it at the magazine top so
  // alloc (which pops items[count-1]) keeps LIFO order.
  for (std::uint32_t i = 0; i < got; ++i) {
    mag.items[got - 1 - i] = batch[i];
  }
  mag.count.store(got, std::memory_order_relaxed);
  return got;
}

void Pos::magazine_return(const std::uint64_t* items,
                          std::uint32_t count) EA_LOCK_NOEXCEPT {
  if (count == 0) return;
  // Kill-point: the magazine's entries are about to rejoin a shard list;
  // until the splice lands they are unreachable, so a crash here (thread
  // exit or store teardown mid-flush) orphans them.
  EA_FAIL_POINT("pos.magazine.flush");
  // items[count-1] is the hottest entry — chain it first so it lands on
  // the shard top.
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t off = items[i];
    Entry* e = entry_at(off);
    e->next.store(head, std::memory_order_relaxed);
    if (head == 0) tail = off;
    head = off;
  }
  shard_push_chain(home_shard(), head, tail);
}

std::uint64_t Pos::alloc_entry() EA_LOCK_NOEXCEPT {
  if (use_magazines_) {
    Magazine* mag = magazines_.acquire();
    if (mag != nullptr) {
      std::uint32_t c = mag->count.load(std::memory_order_relaxed);
      if (c == 0) c = magazine_refill(*mag);
      if (c == 0) return 0;
      const std::uint64_t off = mag->items[c - 1];
      mag->count.store(c - 1, std::memory_order_relaxed);
      // Kill-point: the popped entry is now reachable from neither a free
      // shard nor any bucket — a crash here orphans the slot, which
      // recovery must tolerate (integrity_error() ignores unreachable
      // entries).
      EA_FAIL_POINT("pos.alloc.pop");
      return off;
    }
  }
  std::uint64_t off = 0;
  if (pop_or_steal(&off, 1) == 0) return 0;
  EA_FAIL_POINT("pos.alloc.pop");
  return off;
}

// --- epoch sections ---------------------------------------------------------

void Pos::epoch_enter() {
  // Kill-point: the announcement is process-local state; a crash here loses
  // nothing on the file — torture uses it to kill "between announce and
  // first touch".
  EA_FAIL_POINT("pos.epoch.announce");
  epochs_.enter();
}

void Pos::epoch_leave() noexcept { epochs_.leave(); }

std::uint64_t Pos::reclaim_epoch() const noexcept { return epochs_.global(); }

std::size_t Pos::epoch_slots_active() const noexcept {
  return epochs_.active_slots();
}

std::size_t Pos::epoch_slots_claimed() const noexcept {
  return epochs_.claimed_slots();
}

void Pos::note_hazard() noexcept {
  hazards_.fetch_add(1, std::memory_order_relaxed);
}

#if defined(EA_FAILPOINTS)
void Pos::set_walk_hook(WalkHook hook, void* ctx) noexcept {
  walk_ctx_ = ctx;
  walk_hook_.store(hook, std::memory_order_release);
}
#endif

bool Pos::set(std::span<const std::uint8_t> key,
              std::span<const std::uint8_t> value) {
  if (key.empty() || key.size() + value.size() > sb_->entry_payload) {
    return false;
  }
  if (set_once(key, value)) return true;
  if (!options_.clean_on_pressure) return false;
  // Allocation pressure: help the cleaner instead of failing outright.
  // Any thread may reclaim under epoch-based reclamation (the retirement
  // lock serialises helpers), and we hold no section here, so two steps
  // are enough to carry a fresh retirement batch across its safety
  // horizon when the store is otherwise quiet.
  std::size_t freed = clean_step();
  if (freed == 0) freed = clean_step();
  if (freed == 0) return false;
  return set_once(key, value);
}

bool Pos::set_once(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> value) {
  Section section(*this);
  std::uint64_t off = alloc_entry();
  if (off == 0) return false;

  Entry* e = entry_at(off);
  e->klen = static_cast<std::uint32_t>(key.size());
  e->vlen = static_cast<std::uint32_t>(value.size());
  std::memcpy(e->data(), key.data(), key.size());
  if (!value.empty()) std::memcpy(e->data() + key.size(), value.data(), value.size());
  // Kill-point: the entry is fully written but still unlinked and not Live;
  // a crash here must leave the previous version intact.
  EA_FAIL_POINT("pos.set.fill");
  e->state.store(kStateLive, std::memory_order_release);

  // Lock-free LIFO push: concurrent set()s race only on the head CAS, and
  // readers starting after the release-CAS see the new version first. The
  // release ordering also publishes the payload written above.
  const std::uint32_t bucket = bucket_of(key);
  std::atomic<std::uint64_t>& head = bucket_head(bucket);
  std::uint64_t old_head = head.load(std::memory_order_acquire);
  do {
    e->next.store(old_head, std::memory_order_relaxed);
    // Kill-point: filled and Live but the CAS has not landed — the slot is
    // orphaned and the previous version stays current.
    EA_FAIL_POINT("pos.bucket.cas");
  } while (!head.compare_exchange_weak(old_head, off,
                                       std::memory_order_release,
                                       std::memory_order_acquire));
  // Kill-point: new version linked, old version not yet marked outdated.
  EA_FAIL_POINT("pos.set.link");

  // Mark the superseded version (the next LIVE occurrence of this key)
  // outdated right away "to ease cleaning" (§4.1). The walk holds no lock:
  // concurrent pushes only prepend above us, concurrent unlinks leave the
  // removed entry's next intact (RCU discipline), and reclamation of
  // anything we might stand on is deferred until our section's epoch is
  // two advances stale — which our announcement blocks.
  std::uint64_t cur = e->next.load(std::memory_order_relaxed);
  while (cur != 0) {
    Entry* c = entry_at(cur);
    const std::uint32_t state = c->state.load(std::memory_order_acquire);
    if (state == kStateFree) note_hazard();
    if (state == kStateLive && c->klen == key.size() &&
        std::memcmp(c->data(), key.data(), key.size()) == 0) {
      c->state.store(kStateOutdated, std::memory_order_release);
      break;
    }
    cur = c->next.load(std::memory_order_acquire);
  }
  EA_FAIL_POINT("pos.set.done");
  sets_[thread_token() % kCounterStripes].v.fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

std::optional<util::Bytes> Pos::get(std::span<const std::uint8_t> key) {
  gets_[thread_token() % kCounterStripes].v.fetch_add(
      1, std::memory_order_relaxed);
  Section section(*this);
  const std::uint32_t bucket = bucket_of(key);
  std::uint64_t cur = bucket_head(bucket).load(std::memory_order_acquire);
  while (cur != 0) {
#if defined(EA_FAILPOINTS)
    // Test hook (fault builds only): lets the use-after-retire detector
    // test park this walk on a chosen entry while the cleaner runs.
    if (WalkHook hook = walk_hook_.load(std::memory_order_acquire)) {
      hook(walk_ctx_, cur);
    }
#endif
    const Entry* e = entry_at(cur);
    // The first occurrence from the top is the newest version; outdated
    // entries of the same key sit deeper and are skipped by returning at
    // the first match (they may legitimately be returned to a get() that
    // began before the overwriting set() — linearisable either way).
    std::uint32_t state = e->state.load(std::memory_order_acquire);
    if (state == kStateFree) {
      // A Free entry is never reachable from a bucket chain under the
      // epoch protocol: seeing one means this walk outlived its safety
      // horizon. Count it (poisoned payload makes the data side loud too)
      // and keep walking — the chain terminates in the free list.
      note_hazard();
    } else if (e->klen == key.size() &&
               std::memcmp(e->data(), key.data(), key.size()) == 0) {
      // First (newest) occurrence decides: an erase marker means the key is
      // gone; outdated entries remain readable so a get() racing a set()
      // stays linearisable at its start point (paper Fig. 5).
      if (state == kStateErased) return std::nullopt;
      return util::Bytes(e->value().begin(), e->value().end());
    }
    cur = e->next.load(std::memory_order_acquire);
  }
  return std::nullopt;
}

bool Pos::erase(std::span<const std::uint8_t> key) {
  Section section(*this);
  const std::uint32_t bucket = bucket_of(key);
  bool found = false;
  // The bucket lock serialises erase against the cleaner's unlink, but not
  // against the lock-free pushers — hence the acquire loads. A set()
  // pushing during the walk is simply linearised after this erase.
  concurrent::HleGuard guard(bucket_locks_[bucket]);
  std::uint64_t cur = bucket_head(bucket).load(std::memory_order_acquire);
  while (cur != 0) {
    Entry* e = entry_at(cur);
    if (e->state.load(std::memory_order_acquire) == kStateLive &&
        e->klen == key.size() &&
        std::memcmp(e->data(), key.data(), key.size()) == 0) {
      e->state.store(kStateErased, std::memory_order_release);
      // Kill-point: this version is tombstoned; older Live versions of the
      // same key (if any) are not yet marked. The top-most marker already
      // hides them from get(), so a crash here still reads as "erased".
      EA_FAIL_POINT("pos.erase.mark");
      found = true;
    }
    cur = e->next.load(std::memory_order_acquire);
  }
  return found;
}

// --- partition export/import ------------------------------------------------

namespace {

bool has_prefix(std::span<const std::uint8_t> key,
                std::span<const std::uint8_t> prefix) {
  return key.size() >= prefix.size() &&
         (prefix.empty() ||
          std::memcmp(key.data(), prefix.data(), prefix.size()) == 0);
}

// Linear membership scan over the keys already decided in this bucket walk.
// Bucket chains are short (live keys / bucket_count plus a few superseded
// versions), so quadratic-in-chain is fine for a migration-path operation.
bool key_seen(const std::vector<std::span<const std::uint8_t>>& seen,
              std::span<const std::uint8_t> key) {
  for (const auto& s : seen) {
    if (s.size() == key.size() &&
        std::memcmp(s.data(), key.data(), key.size()) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

util::Bytes Pos::export_partition(std::span<const std::uint8_t> prefix) {
  Section section(*this);
  util::Bytes out(4, 0);
  std::uint32_t records = 0;
  std::vector<std::span<const std::uint8_t>> seen;
  // A key hashes to exactly one bucket, so per-bucket first-occurrence
  // tracking is enough to pick the newest version store-wide.
  for (std::uint32_t b = 0; b < sb_->bucket_count; ++b) {
    seen.clear();
    std::uint64_t cur = bucket_head(b).load(std::memory_order_acquire);
    while (cur != 0) {
      const Entry* e = entry_at(cur);
      const std::uint32_t state = e->state.load(std::memory_order_acquire);
      if (state == kStateFree) {
        note_hazard();
      } else if (has_prefix(e->key(), prefix) && !key_seen(seen, e->key())) {
        // First occurrence from the top decides, exactly like get(): a Live
        // entry is the current value, an Erased marker means the key is
        // gone, an Outdated entry is skipped as "seen" because the newer
        // version sits above it and was already handled.
        seen.push_back(e->key());
        if (state == kStateLive) {
          const std::size_t at = out.size();
          out.resize(at + 8 + e->klen + e->vlen);
          util::store_le32(out.data() + at, e->klen);
          util::store_le32(out.data() + at + 4, e->vlen);
          std::memcpy(out.data() + at + 8, e->data(), e->klen + e->vlen);
          ++records;
        }
      }
      cur = e->next.load(std::memory_order_acquire);
    }
  }
  util::store_le32(out.data(), records);
  return out;
}

bool Pos::import_partition(std::span<const std::uint8_t> blob) {
  if (blob.size() < 4) return false;
  std::uint32_t records = util::load_le32(blob.data());
  std::size_t at = 4;
  for (std::uint32_t i = 0; i < records; ++i) {
    if (blob.size() - at < 8) return false;
    const std::uint32_t klen = util::load_le32(blob.data() + at);
    const std::uint32_t vlen = util::load_le32(blob.data() + at + 4);
    at += 8;
    if (blob.size() - at < static_cast<std::size_t>(klen) + vlen) {
      return false;
    }
    if (!set(blob.subspan(at, klen), blob.subspan(at + klen, vlen))) {
      return false;
    }
    at += static_cast<std::size_t>(klen) + vlen;
  }
  return at == blob.size();
}

std::size_t Pos::erase_partition(std::span<const std::uint8_t> prefix) {
  Section section(*this);
  std::size_t marked = 0;
  for (std::uint32_t b = 0; b < sb_->bucket_count; ++b) {
    // Same contract as erase(): the bucket lock serialises against the
    // cleaner's unlink; concurrent lock-free pushes linearise after us.
    concurrent::HleGuard guard(bucket_locks_[b]);
    std::uint64_t cur = bucket_head(b).load(std::memory_order_acquire);
    while (cur != 0) {
      Entry* e = entry_at(cur);
      if (e->state.load(std::memory_order_acquire) == kStateLive &&
          has_prefix(e->key(), prefix)) {
        e->state.store(kStateErased, std::memory_order_release);
        ++marked;
      }
      cur = e->next.load(std::memory_order_acquire);
    }
  }
  return marked;
}

// --- cleaner ----------------------------------------------------------------

std::size_t Pos::gather_retired() {
  std::vector<std::uint64_t> batch;
  for (std::uint32_t b = 0; b < sb_->bucket_count; ++b) {
    concurrent::HleGuard guard(bucket_locks_[b]);
    std::uint64_t prev = 0;
    std::uint64_t cur = bucket_head(b).load(std::memory_order_acquire);
    while (cur != 0) {
      Entry* e = entry_at(cur);
      std::uint64_t next = e->next.load(std::memory_order_relaxed);
      std::uint32_t state = e->state.load(std::memory_order_relaxed);
      if (state == kStateOutdated || state == kStateErased) {
        if (prev == 0) {
          // Head removal races the lock-free pushers: CAS the head out,
          // and on failure walk down from the new head to find cur's
          // predecessor (pushers only ever prepend, so cur's position
          // below the old head is stable while we hold the bucket lock).
          std::uint64_t expected = cur;
          if (!bucket_head(b).compare_exchange_strong(
                  expected, next, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            std::uint64_t p = expected;
            while (p != 0 &&
                   entry_at(p)->next.load(std::memory_order_acquire) != cur) {
              p = entry_at(p)->next.load(std::memory_order_acquire);
            }
            if (p == 0) {
              // Lost track of cur (cannot happen while we hold the only
              // unlink path, but stay defensive): leave it for the next
              // round rather than corrupt the chain.
              prev = cur;
              cur = next;
              continue;
            }
            entry_at(p)->next.store(next, std::memory_order_release);
            prev = p;
          }
        } else {
          entry_at(prev)->next.store(next, std::memory_order_release);
        }
        // The unlinked entry keeps its own next pointer (RCU discipline):
        // a section that already stands on it can still walk off it.
        // Kill-point: the entry just left its bucket chain but sits only in
        // the process-local retirement batch, which the crash destroys —
        // the slot is leaked until the next full reinitialisation, by
        // design.
        EA_FAIL_POINT("pos.clean.unlink");
        batch.push_back(cur);
      } else {
        prev = cur;
      }
      cur = next;
    }
  }
  const std::size_t gathered = batch.size();
  if (gathered != 0) {
    retired_.push_back(
        RetireBatch{epochs_.global(), std::move(batch)});
    retired_count_ += gathered;
  }
  return gathered;
}

void Pos::advance_epoch() {
  const std::uint64_t g = epochs_.global();
  // The forced variant (tests only) skips the quiescence scan to prove the
  // use-after-retire detector catches a protocol violation; the kill-point
  // before it is the torture harness's "crash at the advance edge".
  EA_FAIL_POINT("pos.epoch.advance");
  if (EA_FAIL_TRIGGERED("pos.epoch.force_advance") || epochs_.quiescent_at(g)) {
    epochs_.advance();
  }
}

std::size_t Pos::flush_retired() {
  const std::uint64_t g = epochs_.global();
  std::size_t freed = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < retired_.size(); ++i) {
    RetireBatch& batch = retired_[i];
    if (batch.epoch + 2 > g) {
      // Not yet past the safety horizon; batches are appended in epoch
      // order but re-checked individually so a forced advance cannot skip
      // one by accident. Move only when compacting over a freed slot — a
      // self-move-assign would empty the batch's entry vector.
      if (kept != i) {
        retired_[kept] = std::move(batch);
      }
      ++kept;
      continue;
    }
    // Kill-point: the batch is about to be poisoned and spliced; a crash
    // anywhere in the loop below leaves some entries Free-but-unreachable
    // and the rest Outdated-but-unreachable — all orphans, all tolerated.
    EA_FAIL_POINT("pos.retire.flush");
    std::uint64_t chain_head = 0;
    std::uint64_t chain_tail = 0;
    for (std::uint64_t off : batch.entries) {
      Entry* e = entry_at(off);
      // Poison before the state flip: any straggler section that still
      // dereferences this entry reads 0xDD garbage (and zero lengths), not
      // stale data, and the bucket-walk hazard counter fires on the Free
      // state.
      std::memset(e->data(), kPoisonByte, sb_->entry_payload);
      e->klen = 0;
      e->vlen = 0;
      e->state.store(kStateFree, std::memory_order_release);
      e->next.store(chain_head, std::memory_order_relaxed);
      if (chain_head == 0) chain_tail = off;
      chain_head = off;
    }
    if (chain_head != 0) {
      // One splice per batch — a single shard-lock acquisition; rotating
      // the target shard spreads the recycled capacity.
      const std::uint32_t shard =
          clean_rr_.fetch_add(1, std::memory_order_relaxed) %
          sb_->free_shard_count;
      shard_push_chain(shard, chain_head, chain_tail);
    }
    freed += batch.entries.size();
  }
  retired_.resize(kept);
  retired_count_ -= freed;
  return freed;
}

std::size_t Pos::clean_step() {
  concurrent::HleGuard retire_guard(retire_lock_);
  // Gather first (tagging the batch with the pre-advance epoch), then try
  // to advance, then flush whatever is two epochs stale. With no active
  // sections a batch gathered at G frees on the step after next — the same
  // cadence the grace counters had with zero readers — but a thread that
  // is merely *between* operations never stalls the pipeline, and multiple
  // epoch-tagged batches stay in flight instead of serialising.
  std::size_t gathered = gather_retired();
  (void)gathered;
  advance_epoch();
  return flush_retired();
}

bool Pos::persist() {
  if (fd_ < 0) return true;
  // The epoch bump is the commit marker: a flushed image always carries a
  // higher epoch than the image before the previous persist(). The
  // kill-point between bump and msync is the torture harness's
  // "crash mid superblock commit" scenario. The reclamation epoch rides
  // along in the superblock, which is what keeps it monotonic across
  // reopen.
  sb_->epoch.fetch_add(1, std::memory_order_release);
  EA_FAIL_POINT("pos.superblock.commit");
  int rc = ::msync(map_, map_bytes_, MS_SYNC);
  if (EA_FAIL_TRIGGERED("pos.msync")) rc = -1;
  return rc == 0;
}

std::optional<std::string> Pos::integrity_error() const {
  const Superblock* sb = sb_;
  if (sb->magic != kPosMagic) return "bad magic";
  if (sb->version != kPosVersion) return "bad version";
  if (sb->bucket_count == 0 || sb->entry_count == 0) return "zero geometry";
  if (sb->free_shard_count == 0 || sb->free_shard_count > kMaxFreeShards) {
    return "free shard count out of range";
  }
  if (sb->entry_stride < sizeof(Entry) + sb->entry_payload) {
    return "stride smaller than entry";
  }
  const std::uint64_t stride = sb->entry_stride;
  const std::uint64_t entries_end =
      sb->entries_off + static_cast<std::uint64_t>(sb->entry_count) * stride;
  if (sb->entries_off >= map_bytes_ || entries_end > map_bytes_) {
    return "entry region out of bounds";
  }
  if (sb->buckets_off + sb->bucket_count * sizeof(std::uint64_t) >
      map_bytes_) {
    return "bucket region out of bounds";
  }
  if (sb->free_off + sb->free_shard_count * sizeof(std::uint64_t) >
      map_bytes_) {
    return "free shard region out of bounds";
  }

  auto slot_of = [&](std::uint64_t off) -> std::int64_t {
    if (off < sb->entries_off || off >= entries_end) return -1;
    if ((off - sb->entries_off) % stride != 0) return -1;
    return static_cast<std::int64_t>((off - sb->entries_off) / stride);
  };
  // 0 = unseen, 1 = on a bucket chain, 2 = on a free-shard list.
  std::vector<std::uint8_t> seen(sb->entry_count, 0);

  const auto* bucket_base = reinterpret_cast<const std::atomic<std::uint64_t>*>(
      static_cast<const std::byte*>(map_) + sb->buckets_off);
  for (std::uint32_t b = 0; b < sb->bucket_count; ++b) {
    std::uint64_t cur = bucket_base[b].load(std::memory_order_acquire);
    while (cur != 0) {
      const std::int64_t slot = slot_of(cur);
      if (slot < 0) return "bucket chain offset out of range or misaligned";
      if (seen[static_cast<std::size_t>(slot)] != 0) {
        return "entry linked twice (cycle or cross-link)";
      }
      seen[static_cast<std::size_t>(slot)] = 1;
      const Entry* e = entry_at(cur);
      const std::uint32_t state = e->state.load(std::memory_order_acquire);
      if (state != kStateLive && state != kStateOutdated &&
          state != kStateErased) {
        return "free or invalid-state entry reachable from a bucket";
      }
      if (e->klen == 0 ||
          static_cast<std::uint64_t>(e->klen) + e->vlen > sb->entry_payload) {
        return "entry length fields exceed payload";
      }
      cur = e->next.load(std::memory_order_acquire);
    }
  }

  for (std::uint32_t s = 0; s < sb->free_shard_count; ++s) {
    std::uint64_t cur = free_head(s).load(std::memory_order_acquire);
    while (cur != 0) {
      const std::int64_t slot = slot_of(cur);
      if (slot < 0) return "free list offset out of range or misaligned";
      if (seen[static_cast<std::size_t>(slot)] != 0) {
        return "entry on free list and elsewhere (cycle or cross-link)";
      }
      seen[static_cast<std::size_t>(slot)] = 2;
      const Entry* e = entry_at(cur);
      if (e->state.load(std::memory_order_acquire) != kStateFree) {
        return "non-free entry on the free list";
      }
      cur = e->next.load(std::memory_order_acquire);
    }
  }
  return std::nullopt;
}

PosStats Pos::stats() const {
  PosStats stats;
  // The whole snapshot sits under the retire lock: the cleaner (which also
  // holds it for its entire step) cannot migrate entries between the
  // bucket chains, the retirement batches and the free lists while the
  // categories are being counted. The pre-epoch version took the state
  // scan, the shard walks and the magazine count at different times and a
  // concurrent clean_step could shift entries between them mid-sum.
  concurrent::HleGuard retire_guard(retire_lock_);
  for (std::size_t i = 0; i < kCounterStripes; ++i) {
    stats.sets += sets_[i].v.load(std::memory_order_relaxed);
    stats.gets += gets_[i].v.load(std::memory_order_relaxed);
  }
  for (std::uint32_t i = 0; i < sb_->entry_count; ++i) {
    const Entry* e =
        entry_at(sb_->entries_off + i * sb_->entry_stride);
    switch (e->state.load(std::memory_order_relaxed)) {
      case kStateLive:
        ++stats.live;
        break;
      case kStateOutdated:
      case kStateErased:
        ++stats.outdated;
        break;
      default:
        ++stats.free;
        break;
    }
  }
  // Retired entries still carry the Outdated/Erased state (sections may
  // read them until the horizon passes), so the scan counted them under
  // `outdated`; reapportion so `outdated` means "still linked in a bucket".
  stats.retired = retired_count_;
  stats.outdated -= std::min(stats.outdated, stats.retired);
  // Location decomposition of the Free population: walk each shard list
  // under its lock (capped defensively — a concurrent writer cannot extend
  // the walk past the entry count without a cycle, which integrity_error()
  // owns detecting).
  std::uint64_t walk_budget = sb_->entry_count;
  for (std::uint32_t s = 0; s < sb_->free_shard_count; ++s) {
    concurrent::HleGuard guard(free_locks_[s]);
    std::uint64_t cur = free_head(s).load(std::memory_order_relaxed);
    while (cur != 0 && walk_budget != 0) {
      ++stats.free_listed;
      --walk_budget;
      cur = entry_at(cur)->next.load(std::memory_order_relaxed);
    }
  }
  stats.in_magazine = magazines_.cached();
  stats.reclaim_epoch = epochs_.global();
  stats.reclaim_hazards = hazards_.load(std::memory_order_relaxed);
  return stats;
}

std::uint32_t Pos::bucket_count() const noexcept { return sb_->bucket_count; }
std::uint32_t Pos::entry_payload() const noexcept { return sb_->entry_payload; }
std::uint32_t Pos::free_shard_count() const noexcept {
  return sb_->free_shard_count;
}

}  // namespace ea::pos
