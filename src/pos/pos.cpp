#include "pos/pos.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace ea::pos {

namespace {

// FNV-1a; cheap and adequate for bucket selection. For encrypted stores the
// input is the deterministically encrypted key, exactly as the paper
// prescribes — the plaintext never influences placement observably.
std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint32_t kStateFree = 0;
constexpr std::uint32_t kStateLive = 1;
constexpr std::uint32_t kStateOutdated = 2;  // superseded by a newer version
constexpr std::uint32_t kStateErased = 3;    // deleted via erase()

constexpr std::size_t round_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace

struct Pos::Superblock {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t bucket_count;
  std::uint32_t entry_count;
  std::uint32_t entry_payload;
  std::uint64_t entry_stride;
  std::uint64_t buckets_off;
  std::uint64_t grace_off;
  std::uint64_t entries_off;
  std::atomic<std::uint64_t> free_head;
  std::atomic<std::uint64_t> epoch;
};

struct Pos::Entry {
  std::atomic<std::uint64_t> next;   // offset of next entry in bucket; 0 nil
  std::atomic<std::uint32_t> state;  // kState*
  std::uint32_t klen;
  std::uint32_t vlen;
  std::uint32_t pad;
  std::uint8_t* data() noexcept {
    return reinterpret_cast<std::uint8_t*>(this) + sizeof(Entry);
  }
  const std::uint8_t* data() const noexcept {
    return reinterpret_cast<const std::uint8_t*>(this) + sizeof(Entry);
  }
  std::span<const std::uint8_t> key() const noexcept {
    return {data(), klen};
  }
  std::span<const std::uint8_t> value() const noexcept {
    return {data() + klen, vlen};
  }
};

Pos::Pos(PosOptions options) : options_(std::move(options)) {
  bool fresh = true;

  // Reopening an existing file: the geometry comes from its superblock,
  // not from the caller's options.
  if (!options_.path.empty()) {
    int probe = ::open(options_.path.c_str(), O_RDONLY);
    if (probe >= 0) {
      Superblock sb{};
      ssize_t got = ::pread(probe, &sb, sizeof(sb), 0);
      ::close(probe);
      if (got == static_cast<ssize_t>(sizeof(sb)) && sb.magic == kPosMagic) {
        options_.bucket_count = sb.bucket_count;
        options_.entry_count = sb.entry_count;
        options_.entry_payload = sb.entry_payload;
      }
    }
  }

  const std::size_t entry_stride =
      round_up(sizeof(Entry) + options_.entry_payload, 64);
  const std::size_t sb_bytes = round_up(sizeof(Superblock), 64);
  const std::size_t grace_bytes =
      round_up(kMaxReaders * sizeof(std::atomic<std::uint64_t>), 64);
  const std::size_t bucket_bytes = round_up(
      options_.bucket_count * sizeof(std::atomic<std::uint64_t>), 64);
  map_bytes_ = round_up(
      sb_bytes + grace_bytes + bucket_bytes +
          static_cast<std::size_t>(options_.entry_count) * entry_stride,
      4096);

  if (options_.path.empty()) {
    map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (map_ != MAP_FAILED && EA_FAIL_TRIGGERED("pos.mmap")) {
      ::munmap(map_, map_bytes_);
      map_ = MAP_FAILED;
    }
    if (map_ == MAP_FAILED) throw std::runtime_error("POS: mmap failed");
  } else {
    fd_ = ::open(options_.path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ >= 0 && EA_FAIL_TRIGGERED("pos.open")) {
      ::close(fd_);
      fd_ = -1;
    }
    if (fd_ < 0) throw std::runtime_error("POS: open failed: " + options_.path);
    struct stat st {};
    if (::fstat(fd_, &st) != 0) {
      ::close(fd_);
      throw std::runtime_error("POS: fstat failed");
    }
    fresh = st.st_size == 0;
    if (fresh && ::ftruncate(fd_, static_cast<off_t>(map_bytes_)) != 0) {
      ::close(fd_);
      throw std::runtime_error("POS: ftruncate failed");
    }
    if (!fresh && static_cast<std::size_t>(st.st_size) < map_bytes_) {
      ::close(fd_);
      throw std::runtime_error("POS: existing file smaller than layout");
    }
    map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                  fd_, 0);
    if (map_ != MAP_FAILED && EA_FAIL_TRIGGERED("pos.mmap")) {
      ::munmap(map_, map_bytes_);
      map_ = MAP_FAILED;
    }
    if (map_ == MAP_FAILED) {
      ::close(fd_);
      throw std::runtime_error("POS: mmap failed");
    }
  }

  sb_ = reinterpret_cast<Superblock*>(map_);
  // Cache derived pointers; for existing files these come from the
  // superblock after validation.
  if (fresh) {
    sb_->magic = kPosMagic;
    sb_->version = kPosVersion;
    sb_->bucket_count = options_.bucket_count;
    sb_->entry_count = options_.entry_count;
    sb_->entry_payload = options_.entry_payload;
    sb_->entry_stride = entry_stride;
    sb_->buckets_off = sb_bytes + grace_bytes;
    sb_->grace_off = sb_bytes;
    sb_->entries_off = sb_bytes + grace_bytes + bucket_bytes;
    sb_->epoch.store(1, std::memory_order_relaxed);
    entries_base_ = static_cast<std::byte*>(map_) + sb_->entries_off;
    init_fresh();
  } else {
    validate_existing();
    entries_base_ = static_cast<std::byte*>(map_) + sb_->entries_off;
  }

  bucket_locks_ =
      std::make_unique<concurrent::HleSpinLock[]>(sb_->bucket_count);
}

Pos::~Pos() {
  if (map_ != nullptr && map_ != MAP_FAILED) {
    ::munmap(map_, map_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void Pos::init_fresh() {
  // Thread all entries onto the free list (a stack, like the pool
  // abstraction it shares its implementation with).
  for (std::uint32_t b = 0; b < sb_->bucket_count; ++b) {
    bucket_head(b).store(0, std::memory_order_relaxed);
  }
  for (std::size_t r = 0; r < kMaxReaders; ++r) {
    grace_counter(r).store(0, std::memory_order_relaxed);
  }
  std::uint64_t prev = 0;
  for (std::uint32_t i = 0; i < sb_->entry_count; ++i) {
    std::uint64_t off = sb_->entries_off + i * sb_->entry_stride;
    Entry* e = entry_at(off);
    e->state.store(kStateFree, std::memory_order_relaxed);
    e->next.store(prev, std::memory_order_relaxed);
    prev = off;
  }
  sb_->free_head.store(prev, std::memory_order_relaxed);
}

void Pos::validate_existing() {
  if (sb_->magic != kPosMagic) throw std::runtime_error("POS: bad magic");
  if (sb_->version != kPosVersion) throw std::runtime_error("POS: bad version");
  if (sb_->bucket_count == 0 || sb_->entry_count == 0) {
    throw std::runtime_error("POS: corrupt superblock");
  }
  options_.bucket_count = sb_->bucket_count;
  options_.entry_count = sb_->entry_count;
  options_.entry_payload = sb_->entry_payload;
}

Pos::Entry* Pos::entry_at(std::uint64_t offset) noexcept {
  return reinterpret_cast<Entry*>(static_cast<std::byte*>(map_) + offset);
}

const Pos::Entry* Pos::entry_at(std::uint64_t offset) const noexcept {
  return reinterpret_cast<const Entry*>(static_cast<const std::byte*>(map_) +
                                        offset);
}

std::uint64_t Pos::offset_of(const Entry* e) const noexcept {
  return static_cast<std::uint64_t>(reinterpret_cast<const std::byte*>(e) -
                                    static_cast<const std::byte*>(map_));
}

std::atomic<std::uint64_t>& Pos::bucket_head(std::uint32_t bucket) noexcept {
  auto* base = reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<std::byte*>(map_) + sb_->buckets_off);
  return base[bucket];
}

std::atomic<std::uint64_t>& Pos::grace_counter(std::size_t slot) noexcept {
  auto* base = reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<std::byte*>(map_) + sb_->grace_off);
  return base[slot];
}

std::uint32_t Pos::bucket_of(std::span<const std::uint8_t> key) const noexcept {
  return static_cast<std::uint32_t>(fnv1a(key) % sb_->bucket_count);
}

std::uint64_t Pos::alloc_entry() noexcept {
  concurrent::HleGuard guard(free_lock_);
  std::uint64_t off = sb_->free_head.load(std::memory_order_relaxed);
  if (off == 0) return 0;
  Entry* e = entry_at(off);
  sb_->free_head.store(e->next.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  // Kill-point: the popped entry is now reachable from neither the free
  // list nor any bucket — a crash here orphans the slot, which recovery
  // must tolerate (integrity_error() ignores unreachable entries).
  EA_FAIL_POINT("pos.alloc.pop");
  return off;
}

bool Pos::set(std::span<const std::uint8_t> key,
              std::span<const std::uint8_t> value) {
  if (key.empty() || key.size() + value.size() > sb_->entry_payload) {
    return false;
  }
  std::uint64_t off = alloc_entry();
  if (off == 0) return false;

  Entry* e = entry_at(off);
  e->klen = static_cast<std::uint32_t>(key.size());
  e->vlen = static_cast<std::uint32_t>(value.size());
  std::memcpy(e->data(), key.data(), key.size());
  if (!value.empty()) std::memcpy(e->data() + key.size(), value.data(), value.size());
  // Kill-point: the entry is fully written but still unlinked and not Live;
  // a crash here must leave the previous version intact.
  EA_FAIL_POINT("pos.set.fill");
  e->state.store(kStateLive, std::memory_order_release);

  const std::uint32_t bucket = bucket_of(key);
  {
    concurrent::HleGuard guard(bucket_locks_[bucket]);
    // Push on top: readers starting after this see the new version first.
    e->next.store(bucket_head(bucket).load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    bucket_head(bucket).store(off, std::memory_order_release);
    // Kill-point: new version linked, old version not yet marked outdated.
    EA_FAIL_POINT("pos.set.link");

    // Mark the superseded version (the next LIVE occurrence of this key)
    // outdated right away "to ease cleaning" (§4.1).
    std::uint64_t cur = e->next.load(std::memory_order_relaxed);
    while (cur != 0) {
      Entry* c = entry_at(cur);
      if (c->state.load(std::memory_order_relaxed) == kStateLive &&
          c->klen == key.size() &&
          std::memcmp(c->data(), key.data(), key.size()) == 0) {
        c->state.store(kStateOutdated, std::memory_order_release);
        break;
      }
      cur = c->next.load(std::memory_order_relaxed);
    }
  }
  EA_FAIL_POINT("pos.set.done");
  sets_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<util::Bytes> Pos::get(std::span<const std::uint8_t> key) {
  gets_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t bucket = bucket_of(key);
  std::uint64_t cur = bucket_head(bucket).load(std::memory_order_acquire);
  while (cur != 0) {
    const Entry* e = entry_at(cur);
    // The first occurrence from the top is the newest version; outdated
    // entries of the same key sit deeper and are skipped by returning at
    // the first match (they may legitimately be returned to a get() that
    // began before the overwriting set() — linearisable either way).
    std::uint32_t state = e->state.load(std::memory_order_acquire);
    if (state != kStateFree && e->klen == key.size() &&
        std::memcmp(e->data(), key.data(), key.size()) == 0) {
      // First (newest) occurrence decides: an erase marker means the key is
      // gone; outdated entries remain readable so a get() racing a set()
      // stays linearisable at its start point (paper Fig. 5).
      if (state == kStateErased) return std::nullopt;
      return util::Bytes(e->value().begin(), e->value().end());
    }
    cur = e->next.load(std::memory_order_acquire);
  }
  return std::nullopt;
}

bool Pos::erase(std::span<const std::uint8_t> key) {
  const std::uint32_t bucket = bucket_of(key);
  bool found = false;
  concurrent::HleGuard guard(bucket_locks_[bucket]);
  std::uint64_t cur = bucket_head(bucket).load(std::memory_order_relaxed);
  while (cur != 0) {
    Entry* e = entry_at(cur);
    if (e->state.load(std::memory_order_relaxed) == kStateLive &&
        e->klen == key.size() &&
        std::memcmp(e->data(), key.data(), key.size()) == 0) {
      e->state.store(kStateErased, std::memory_order_release);
      // Kill-point: this version is tombstoned; older Live versions of the
      // same key (if any) are not yet marked. The top-most marker already
      // hides them from get(), so a crash here still reads as "erased".
      EA_FAIL_POINT("pos.erase.mark");
      found = true;
    }
    cur = e->next.load(std::memory_order_relaxed);
  }
  return found;
}

Pos::Reader Pos::register_reader() {
  std::size_t slot = reader_slots_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxReaders) {
    throw std::runtime_error("POS: too many readers");
  }
  Reader reader;
  reader.pos_ = this;
  reader.slot_ = slot;
  return reader;
}

void Pos::Reader::tick() noexcept {
  if (pos_ != nullptr) {
    pos_->grace_counter(slot_).fetch_add(1, std::memory_order_release);
  }
}

std::size_t Pos::clean_step() {
  std::size_t freed = 0;
  concurrent::HleGuard limbo_guard(limbo_lock_);

  const std::size_t readers =
      std::min(reader_slots_.load(std::memory_order_relaxed), kMaxReaders);

  if (!limbo_.empty()) {
    // Phase 2: if every registered reader has run since the snapshot, the
    // limbo entries cannot be referenced by any in-flight get(): recycle.
    // The injected stall models a reader that never advances its grace
    // counter — reclamation must then free nothing, indefinitely.
    bool grace_passed = !EA_FAIL_TRIGGERED("pos.clean.grace_stall");
    for (std::size_t r = 0; grace_passed && r < readers; ++r) {
      if (grace_counter(r).load(std::memory_order_acquire) <=
          limbo_snapshot_[r]) {
        grace_passed = false;
      }
    }
    if (grace_passed) {
      concurrent::HleGuard free_guard(free_lock_);
      for (std::uint64_t off : limbo_) {
        // Kill-point: placed before the push, so a crash mid-round leaves
        // the not-yet-freed remainder orphaned (unreachable), never a
        // half-linked free-list node.
        EA_FAIL_POINT("pos.clean.free");
        Entry* e = entry_at(off);
        e->state.store(kStateFree, std::memory_order_relaxed);
        e->next.store(sb_->free_head.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
        sb_->free_head.store(off, std::memory_order_relaxed);
      }
      freed = limbo_.size();
      limbo_.clear();
    }
    return freed;
  }

  // Phase 1: unlink outdated entries from the bucket stacks into limbo and
  // snapshot the grace counters.
  for (std::uint32_t b = 0; b < sb_->bucket_count; ++b) {
    concurrent::HleGuard guard(bucket_locks_[b]);
    std::uint64_t prev = 0;
    std::uint64_t cur = bucket_head(b).load(std::memory_order_relaxed);
    while (cur != 0) {
      Entry* e = entry_at(cur);
      std::uint64_t next = e->next.load(std::memory_order_relaxed);
      std::uint32_t state = e->state.load(std::memory_order_relaxed);
      if (state == kStateOutdated || state == kStateErased) {
        if (prev == 0) {
          bucket_head(b).store(next, std::memory_order_release);
        } else {
          entry_at(prev)->next.store(next, std::memory_order_release);
        }
        // Kill-point: the entry just left its bucket chain but sits only in
        // the process-local limbo list, which the crash destroys — the slot
        // is leaked until the next full reinitialisation, by design.
        EA_FAIL_POINT("pos.clean.unlink");
        limbo_.push_back(cur);
      } else {
        prev = cur;
      }
      cur = next;
    }
  }
  if (!limbo_.empty()) {
    limbo_snapshot_.assign(kMaxReaders, 0);
    for (std::size_t r = 0; r < readers; ++r) {
      limbo_snapshot_[r] = grace_counter(r).load(std::memory_order_acquire);
    }
  }
  return 0;
}

bool Pos::persist() {
  if (fd_ < 0) return true;
  // The epoch bump is the commit marker: a flushed image always carries a
  // higher epoch than the image before the previous persist(). The
  // kill-point between bump and msync is the torture harness's
  // "crash mid superblock commit" scenario.
  sb_->epoch.fetch_add(1, std::memory_order_release);
  EA_FAIL_POINT("pos.superblock.commit");
  int rc = ::msync(map_, map_bytes_, MS_SYNC);
  if (EA_FAIL_TRIGGERED("pos.msync")) rc = -1;
  return rc == 0;
}

std::optional<std::string> Pos::integrity_error() const {
  const Superblock* sb = sb_;
  if (sb->magic != kPosMagic) return "bad magic";
  if (sb->version != kPosVersion) return "bad version";
  if (sb->bucket_count == 0 || sb->entry_count == 0) return "zero geometry";
  if (sb->entry_stride < sizeof(Entry) + sb->entry_payload) {
    return "stride smaller than entry";
  }
  const std::uint64_t stride = sb->entry_stride;
  const std::uint64_t entries_end =
      sb->entries_off + static_cast<std::uint64_t>(sb->entry_count) * stride;
  if (sb->entries_off >= map_bytes_ || entries_end > map_bytes_) {
    return "entry region out of bounds";
  }

  auto slot_of = [&](std::uint64_t off) -> std::int64_t {
    if (off < sb->entries_off || off >= entries_end) return -1;
    if ((off - sb->entries_off) % stride != 0) return -1;
    return static_cast<std::int64_t>((off - sb->entries_off) / stride);
  };
  // 0 = unseen, 1 = on a bucket chain, 2 = on the free list.
  std::vector<std::uint8_t> seen(sb->entry_count, 0);

  const auto* bucket_base = reinterpret_cast<const std::atomic<std::uint64_t>*>(
      static_cast<const std::byte*>(map_) + sb->buckets_off);
  for (std::uint32_t b = 0; b < sb->bucket_count; ++b) {
    std::uint64_t cur = bucket_base[b].load(std::memory_order_acquire);
    while (cur != 0) {
      const std::int64_t slot = slot_of(cur);
      if (slot < 0) return "bucket chain offset out of range or misaligned";
      if (seen[static_cast<std::size_t>(slot)] != 0) {
        return "entry linked twice (cycle or cross-link)";
      }
      seen[static_cast<std::size_t>(slot)] = 1;
      const Entry* e = entry_at(cur);
      const std::uint32_t state = e->state.load(std::memory_order_acquire);
      if (state != kStateLive && state != kStateOutdated &&
          state != kStateErased) {
        return "free or invalid-state entry reachable from a bucket";
      }
      if (e->klen == 0 ||
          static_cast<std::uint64_t>(e->klen) + e->vlen > sb->entry_payload) {
        return "entry length fields exceed payload";
      }
      cur = e->next.load(std::memory_order_acquire);
    }
  }

  std::uint64_t cur = sb->free_head.load(std::memory_order_acquire);
  while (cur != 0) {
    const std::int64_t slot = slot_of(cur);
    if (slot < 0) return "free list offset out of range or misaligned";
    if (seen[static_cast<std::size_t>(slot)] != 0) {
      return "entry on free list and elsewhere (cycle or cross-link)";
    }
    seen[static_cast<std::size_t>(slot)] = 2;
    const Entry* e = entry_at(cur);
    if (e->state.load(std::memory_order_acquire) != kStateFree) {
      return "non-free entry on the free list";
    }
    cur = e->next.load(std::memory_order_acquire);
  }
  return std::nullopt;
}

PosStats Pos::stats() const {
  PosStats stats;
  stats.sets = sets_.load(std::memory_order_relaxed);
  stats.gets = gets_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < sb_->entry_count; ++i) {
    const Entry* e =
        entry_at(sb_->entries_off + i * sb_->entry_stride);
    switch (e->state.load(std::memory_order_relaxed)) {
      case kStateLive:
        ++stats.live;
        break;
      case kStateOutdated:
      case kStateErased:
        ++stats.outdated;
        break;
      default:
        ++stats.free;
        break;
    }
  }
  stats.limbo = limbo_.size();
  return stats;
}

std::uint32_t Pos::bucket_count() const noexcept { return sb_->bucket_count; }
std::uint32_t Pos::entry_payload() const noexcept { return sb_->entry_payload; }

}  // namespace ea::pos
