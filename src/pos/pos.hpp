// Persistent Object Store (paper §4.1).
//
// A lean, concurrently accessible key-value store over a memory-mapped file
// that "utilises the page cache of the kernel": no system call on the data
// path, only an explicit persist() (msync) when durability is demanded.
//
// Layout (cf. paper Fig. 4): superblock | grace counters | bucket heads |
// entry slots. Entries are managed as stacks: set(k,v) pushes a *new*
// version on the bucket stack of hash(k) and marks the previous version
// outdated; get(k) scans from the top and returns the first match, so a get
// racing a set returns the value current when the get began — the store is
// linearisable (paper Fig. 5). Outdated versions accumulate until the
// Cleaner removes them, which it may only do once every registered reader
// has executed at least once since the invalidation (grace counters).
//
// Deviation from the paper: internal references are file *offsets*, not raw
// virtual addresses, so the file needs no fixed mapping address. Behaviour
// is identical; robustness is better.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concurrent/hle_lock.hpp"
#include "util/bytes.hpp"

namespace ea::pos {

inline constexpr std::uint64_t kPosMagic = 0x50'4f'53'31'45'41'43'54ull;
inline constexpr std::uint32_t kPosVersion = 1;
inline constexpr std::size_t kMaxReaders = 64;

struct PosOptions {
  // Backing file; empty uses an anonymous (non-persistent) mapping.
  std::string path;
  std::uint32_t bucket_count = 32;  // the paper's Fig. 4 draws B1..B32
  std::uint32_t entry_count = 4096;
  std::uint32_t entry_payload = 512;  // max combined key+value bytes
};

struct PosStats {
  std::uint64_t live = 0;
  std::uint64_t outdated = 0;
  std::uint64_t free = 0;
  std::uint64_t limbo = 0;
  std::uint64_t sets = 0;
  std::uint64_t gets = 0;
};

class Pos {
 public:
  // Maps (creating or reopening) the store. Throws std::runtime_error on
  // I/O failure or superblock mismatch.
  explicit Pos(PosOptions options);
  ~Pos();

  Pos(const Pos&) = delete;
  Pos& operator=(const Pos&) = delete;

  // Inserts or updates. Returns false when the store is full (no free
  // entries) or key+value exceed the entry payload.
  bool set(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> value);

  // Returns the latest value for key, or nullopt.
  std::optional<util::Bytes> get(std::span<const std::uint8_t> key);

  // Removes a key: marks all its versions outdated (space is reclaimed by
  // the cleaner). Returns true if any version existed.
  bool erase(std::span<const std::uint8_t> key);

  // --- reader registration for safe reclamation ---------------------------

  // Registers a reader slot; each eactor connected to the store holds one
  // and must tick() once per body execution.
  class Reader {
   public:
    Reader() = default;
    void tick() noexcept;

   private:
    friend class Pos;
    Pos* pos_ = nullptr;
    std::size_t slot_ = 0;
  };

  Reader register_reader();

  // --- housekeeping --------------------------------------------------------

  // One cleaner step: frees the previous round's limbo entries if the grace
  // period has passed, then gathers newly outdated entries. Returns the
  // number of entries freed. Typically driven by CleanerActor.
  std::size_t clean_step();

  // Flushes the mapping to the backing file (no-op for anonymous mappings).
  // Bumps the superblock epoch first, so a flushed image is distinguishable
  // from one that never reached persist(). Returns false when msync fails.
  bool persist();

  // Structural validation of the mapped image, for crash-recovery checks:
  // walks the superblock geometry, every bucket chain, and the free list,
  // rejecting out-of-range/misaligned offsets, cycles, entries linked
  // twice, free-state entries reachable from a bucket, and length fields
  // exceeding the payload. Entries reachable from *nothing* are fine — a
  // crash between alloc and link legitimately orphans slots; only linked
  // structure must be consistent. Returns a description of the first
  // problem, or nullopt when the image is sound.
  std::optional<std::string> integrity_error() const;

  PosStats stats() const;

  std::uint32_t bucket_count() const noexcept;
  std::uint32_t entry_payload() const noexcept;

 private:
  struct Superblock;
  struct Entry;

  Entry* entry_at(std::uint64_t offset) noexcept;
  const Entry* entry_at(std::uint64_t offset) const noexcept;
  std::uint64_t offset_of(const Entry* e) const noexcept;
  std::atomic<std::uint64_t>& bucket_head(std::uint32_t bucket) noexcept;
  std::atomic<std::uint64_t>& grace_counter(std::size_t slot) noexcept;
  std::uint32_t bucket_of(std::span<const std::uint8_t> key) const noexcept;

  std::uint64_t alloc_entry() noexcept;  // 0 when exhausted
  void init_fresh();
  void validate_existing();

  PosOptions options_;
  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;

  Superblock* sb_ = nullptr;
  std::byte* entries_base_ = nullptr;

  // In-RAM (per-process) concurrency control; the on-file structures hold
  // only offsets and data.
  std::unique_ptr<concurrent::HleSpinLock[]> bucket_locks_;
  concurrent::HleSpinLock free_lock_;
  concurrent::HleSpinLock limbo_lock_;

  // Reclamation state (process-local; a crash simply leaves outdated
  // entries for the next incarnation's cleaner).
  std::vector<std::uint64_t> limbo_;
  std::vector<std::uint64_t> limbo_snapshot_;
  std::atomic<std::size_t> reader_slots_{0};

  std::atomic<std::uint64_t> sets_{0};
  std::atomic<std::uint64_t> gets_{0};
};

}  // namespace ea::pos
