// Persistent Object Store (paper §4.1).
//
// A lean, concurrently accessible key-value store over a memory-mapped file
// that "utilises the page cache of the kernel": no system call on the data
// path, only an explicit persist() (msync) when durability is demanded.
//
// Layout (cf. paper Fig. 4): superblock | bucket heads | free-shard heads |
// entry slots. Entries are managed as stacks: set(k,v) pushes a *new*
// version on the bucket stack of hash(k) and marks the previous version
// outdated; get(k) scans from the top and returns the first match, so a get
// racing a set returns the value current when the get began — the store is
// linearisable (paper Fig. 5). Outdated versions accumulate until the
// Cleaner removes them.
//
// Write-path scaling (DESIGN.md §11): the free list is sharded into
// free_shard_count per-lock LIFO stacks (geometry persisted in the
// superblock), allocation pops from the caller's home shard and steals from
// the others when it runs dry, and per-thread *entry magazines*
// (concurrent/magazine.hpp) front the shards so the steady-state set()
// allocates without any lock. The bucket push itself is a lock-free CAS on
// the bucket head — a pure LIFO push; erase and the cleaner's unlink keep
// the per-bucket lock. EA_POS_MAGAZINE=0 (or PosOptions::magazines=0)
// disables the magazine layer for ablation.
//
// Reclamation (DESIGN.md §15) is epoch-based: every operation runs inside
// an epoch Section (set/get/erase open one internally; callers composing
// multi-step reads open their own). The paper's grace counters — every
// registered reader must tick before anything is freed — serialised the
// cleaner against the lock-free write path and collapsed under concurrency;
// with epochs, a thread that is *between* operations is quiescent and never
// delays reclamation. The cleaner unlinks superseded versions into
// epoch-tagged retirement batches, advances the global epoch when every
// announced slot has caught up, and frees a batch only two epochs after its
// retirement (concurrent/epoch.hpp has the three-epoch safety argument).
//
// Deviation from the paper: internal references are file *offsets*, not raw
// virtual addresses, so the file needs no fixed mapping address. Behaviour
// is identical; robustness is better.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concurrent/epoch.hpp"
#include "concurrent/hle_lock.hpp"
#include "concurrent/magazine.hpp"
#include "util/bytes.hpp"

namespace ea::pos {

inline constexpr std::uint64_t kPosMagic = 0x50'4f'53'31'45'41'43'54ull;
// v3: the grace-counter array is gone and the superblock carries the
// reclamation epoch (reclaim_epoch), so epoch monotonicity survives a
// persist() + reopen. v2 (grace counters) and v1 images are rejected on
// open — the reclamation protocols are not mixable within one file.
inline constexpr std::uint32_t kPosVersion = 3;
// Concurrent epoch-section holders per store. Unlike the old reader slots,
// these recycle on thread exit — the bound is on simultaneous holders, not
// on threads ever seen.
inline constexpr std::size_t kMaxEpochSlots = 64;
inline constexpr std::uint32_t kMaxFreeShards = 64;

// Entries a thread may cache per store / refill-steal batch size; same
// shape as the pool's node magazines.
inline constexpr std::size_t kPosMagazineCapacity = 16;
inline constexpr std::size_t kPosMagazineBatch = 8;
inline constexpr std::size_t kMaxPosMagazines = 8;

static_assert(kPosMagazineBatch <= kPosMagazineCapacity);

struct PosOptions {
  // Backing file; empty uses an anonymous (non-persistent) mapping.
  std::string path;
  std::uint32_t bucket_count = 32;  // the paper's Fig. 4 draws B1..B32
  std::uint32_t entry_count = 4096;
  std::uint32_t entry_payload = 512;  // max combined key+value bytes
  // Free-list shards; 0 = auto (hardware_concurrency, clamped to
  // [1, kMaxFreeShards]). Ignored when reopening an existing file — the
  // shard count is part of the persisted geometry.
  std::uint32_t free_shards = 0;
  // Per-thread entry magazines: -1 = EA_POS_MAGAZINE environment toggle
  // (on unless "0"), 0 = off, 1 = on. Benchmarks set this explicitly to
  // quantify the magazines' contribution.
  int magazines = -1;
  // Cooperative reclamation under allocation pressure: when set() finds no
  // free entry it runs up to two cleaner steps inline (outside its epoch
  // section) and retries once. Safe under epoch reclamation — any thread
  // may clean; the retirement lock serialises helpers — where the old
  // grace counters would have had a writer waiting on itself. Off by
  // default: a failing set() stays a pure "store full" probe.
  bool clean_on_pressure = false;
};

struct PosStats {
  std::uint64_t live = 0;
  // Superseded/erased versions still linked in a bucket (not yet gathered
  // by the cleaner). The state scan cannot tell these from retired entries,
  // so stats() computes this as scan count minus `retired` — consistent
  // because the whole snapshot is taken under the retire lock.
  std::uint64_t outdated = 0;
  std::uint64_t free = 0;  // entries in the Free state (state scan)
  // Unlinked into an epoch-tagged retirement batch, awaiting the safety
  // horizon (retire epoch + 2). The successor of the old `limbo` gauge.
  std::uint64_t retired = 0;
  // Decomposition of `free` by location: reachable from a shard free list
  // vs. cached in a per-thread magazine. When quiescent,
  // free == free_listed + in_magazine, and conservation reads
  // live + outdated + retired + free == entry_count.
  std::uint64_t free_listed = 0;
  std::uint64_t in_magazine = 0;
  std::uint64_t sets = 0;
  std::uint64_t gets = 0;
  // Current reclamation epoch (monotonic, persisted in the superblock).
  std::uint64_t reclaim_epoch = 0;
  // Bucket walks that stepped on a Free-state entry. Impossible under the
  // epoch protocol — every increment is a use-after-retire caught by the
  // poisoned-free detector (tests force an unsafe advance to prove the
  // counter fires).
  std::uint64_t reclaim_hazards = 0;
};

class Pos {
 public:
  // Maps (creating or reopening) the store. Throws std::runtime_error on
  // I/O failure or superblock mismatch.
  explicit Pos(PosOptions options);
  ~Pos();

  Pos(const Pos&) = delete;
  Pos& operator=(const Pos&) = delete;

  // Inserts or updates. Returns false when the store is full (no free
  // entries) or key+value exceed the entry payload. With
  // `clean_on_pressure`, a full store first runs up to two cleaner steps
  // inline and retries once before giving up.
  bool set(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> value);

  // Returns the latest value for key, or nullopt.
  std::optional<util::Bytes> get(std::span<const std::uint8_t> key);

  // Removes a key: marks all its versions outdated (space is reclaimed by
  // the cleaner). Returns true if any version existed.
  bool erase(std::span<const std::uint8_t> key);

  // --- partition export/import (actor migration) ---------------------------
  //
  // A *partition* is the set of live keys sharing a byte prefix — the
  // per-actor keying convention the XMPP offline spool already uses
  // ("offline/<jid>/…"). Migration snapshots an actor's partition at the
  // source, ships it inside the sealed bundle, and replays it at the
  // target; the serialised form is count(4) ‖ (klen(4) ‖ vlen(4) ‖ key ‖
  // value)*, little-endian.

  // Snapshots every live key with the prefix (newest version per key;
  // erased keys are skipped). Runs inside one epoch section, so the
  // snapshot is consistent per key but not a global point-in-time cut —
  // the migrating owner is parked, which is what makes it exact in
  // practice.
  util::Bytes export_partition(std::span<const std::uint8_t> prefix);

  // Replays a serialised partition via set(). Returns false on a malformed
  // blob or when the store fills up mid-import (entries already imported
  // remain — callers treat that as a failed migration and roll back).
  bool import_partition(std::span<const std::uint8_t> blob);

  // Marks every live version of every prefixed key erased (the cleaner
  // reclaims the space). Returns the number of entries marked.
  std::size_t erase_partition(std::span<const std::uint8_t> prefix);

  // --- epoch sections for safe reclamation ---------------------------------
  //
  // Every bucket-chain traversal must happen inside a section: the section
  // pins the epoch it announced, and the cleaner will not free anything
  // retired at that epoch or later until the section ends. set/get/erase
  // open one internally (sections nest), so plain callers need nothing;
  // callers that hold entry-derived data across several calls (or tests
  // that want to model a stalled reader) open a Section explicitly.

  class Section {
   public:
    // RAII: the constructor's enter is paired by the destructor's leave,
    // so neither half balances on its own.
    // ea-lint: allow-next-line(epoch-pairing)
    explicit Section(Pos& pos) : pos_(&pos) { pos_->epoch_enter(); }
    // ea-lint: allow-next-line(epoch-pairing)
    ~Section() { if (pos_ != nullptr) pos_->epoch_leave(); }
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    Pos* pos_;
  };

  // Raw section boundary, re-entrant per thread. Prefer Section; these are
  // public for the RAII wrapper and for tests probing the protocol. The
  // enclave lint (rule `epoch-pairing`) checks every function that touches
  // one also touches the other.
  void epoch_enter();
  void epoch_leave() noexcept;

  // Current reclamation epoch (test/diagnostic hook; also in stats()).
  std::uint64_t reclaim_epoch() const noexcept;
  // Announced (in-section) and claimed epoch slots (test hooks).
  std::size_t epoch_slots_active() const noexcept;
  std::size_t epoch_slots_claimed() const noexcept;

  // --- housekeeping --------------------------------------------------------

  // One cleaner step, three phases under retire_lock_ (kPosRetire):
  //   gather  — unlink outdated/erased versions from the bucket stacks into
  //             a retirement batch tagged with the current epoch (nests the
  //             bucket locks, kPosBucket);
  //   advance — bump the global epoch iff every announced slot has caught
  //             up (lock-free scan of the epoch slot array);
  //   flush   — poison and free every batch whose retirement epoch is two
  //             or more behind, splicing each onto one free shard as a
  //             single chain (nests free-shard locks, kPosFree).
  // Returns the number of entries freed this step. Typically driven by
  // CleanerActor. A batch therefore takes two quiescent steps from gather
  // to free — same cadence the grace counters had with no readers, but a
  // thread *between* operations never delays it.
  std::size_t clean_step() EA_EXCLUDES(retire_lock_);

  // Flushes the mapping to the backing file (no-op for anonymous mappings).
  // Bumps the superblock epoch first, so a flushed image is distinguishable
  // from one that never reached persist(). Returns false when msync fails.
  bool persist();

  // Structural validation of the mapped image, for crash-recovery checks:
  // walks the superblock geometry, every bucket chain, and every free-shard
  // list, rejecting out-of-range/misaligned offsets, cycles, entries linked
  // twice, free-state entries reachable from a bucket, and length fields
  // exceeding the payload. Entries reachable from *nothing* are fine — a
  // crash between alloc and link (or with entries in a magazine or a
  // retirement batch) orphans slots legitimately; only linked structure
  // must be consistent. Returns a description of the first problem, or
  // nullopt when the image is sound.
  std::optional<std::string> integrity_error() const;

  // Conservation snapshot. Holds retire_lock_ across the state scan, the
  // retired count, the free-list walks and the magazine accounting, so the
  // cleaner cannot migrate entries between categories mid-snapshot (the
  // pre-epoch stats() raced exactly that way). Writers can still flip
  // Free→Live concurrently; exact identities need externally quiesced
  // writers, which is what the tests arrange.
  PosStats stats() const EA_EXCLUDES(retire_lock_);

  std::uint32_t bucket_count() const noexcept;
  std::uint32_t entry_payload() const noexcept;
  std::uint32_t free_shard_count() const noexcept;
  bool magazines_active() const noexcept { return use_magazines_; }

  // Process-wide default for the magazine layer (EA_POS_MAGAZINE != "0").
  static bool magazines_enabled() noexcept;

#if defined(EA_FAILPOINTS)
  // Test-only (fault builds): called with each entry offset a get() walk
  // visits. The use-after-retire detector parks a walk on a chosen entry
  // while the cleaner is forced past the safety horizon, making the hazard
  // deterministic instead of a scheduling coincidence.
  using WalkHook = void (*)(void* ctx, std::uint64_t offset);
  void set_walk_hook(WalkHook hook, void* ctx) noexcept;
#endif

 private:
  struct Superblock;
  struct Entry;
  using Magazines = concurrent::MagazineSet<std::uint64_t,
                                            kPosMagazineCapacity,
                                            kMaxPosMagazines>;
  using Magazine = Magazines::Magazine;
  using Epochs = concurrent::EpochDomain<kMaxEpochSlots, kMaxPosMagazines>;

  // One cleaner gather, frozen with the epoch current at unlink time.
  struct RetireBatch {
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> entries;
  };

  // One insert/update attempt; returns false on allocation failure. The
  // public set() adds the optional clean-on-pressure retry around it.
  bool set_once(std::span<const std::uint8_t> key,
                std::span<const std::uint8_t> value);

  Entry* entry_at(std::uint64_t offset) noexcept;
  const Entry* entry_at(std::uint64_t offset) const noexcept;
  std::uint64_t offset_of(const Entry* e) const noexcept;
  std::atomic<std::uint64_t>& bucket_head(std::uint32_t bucket) noexcept;
  std::atomic<std::uint64_t>& free_head(std::uint32_t shard) const noexcept;
  std::uint32_t bucket_of(std::span<const std::uint8_t> key) const noexcept;

  std::uint32_t home_shard() const noexcept;
  // Pops up to `max` entries from shard `s` into out[]; out[0] is the
  // shard's (hottest) top. Returns the number taken.
  std::uint32_t shard_pop(std::uint32_t s, std::uint64_t* out,
                          std::uint32_t max) EA_LOCK_NOEXCEPT;
  // Splices a pre-linked chain (head..tail via Entry::next) onto shard `s`.
  void shard_push_chain(std::uint32_t s, std::uint64_t head,
                        std::uint64_t tail) EA_LOCK_NOEXCEPT;
  // Pops from the home shard, stealing a batch from the other shards when
  // it runs dry. Fills out[]; returns the number taken.
  std::uint32_t pop_or_steal(std::uint64_t* out,
                             std::uint32_t max) EA_LOCK_NOEXCEPT;
  // Batch pop for magazine refills: spreads the pops across the shards
  // (home first, prefetching each shard's guessed top before locking) so
  // the chain-top misses of independent lists overlap instead of
  // serialising down a single list.
  std::uint32_t pop_striped(std::uint64_t* out,
                            std::uint32_t max) EA_LOCK_NOEXCEPT;

  std::uint64_t alloc_entry() EA_LOCK_NOEXCEPT;  // 0 when exhausted
  std::uint32_t magazine_refill(Magazine& mag) EA_LOCK_NOEXCEPT;
  void magazine_return(const std::uint64_t* items,
                       std::uint32_t count) EA_LOCK_NOEXCEPT;
  // clean_step phases (all called with retire_lock_ held).
  std::size_t gather_retired() EA_REQUIRES(retire_lock_);
  void advance_epoch() EA_REQUIRES(retire_lock_);
  std::size_t flush_retired() EA_REQUIRES(retire_lock_);
  void note_hazard() noexcept;
  void init_fresh();
  void validate_existing();

  PosOptions options_;
  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;

  Superblock* sb_ = nullptr;
  std::byte* entries_base_ = nullptr;
  bool use_magazines_ = false;

  // In-RAM (per-process) concurrency control; the on-file structures hold
  // only offsets and data. The lock arrays are ranked kPosBucket/kPosFree
  // post-construction (the thread-safety analysis cannot express
  // per-element array guarding, so the bucket/free-list structures rely on
  // the runtime rank checker plus TSan rather than EA_GUARDED_BY).
  std::unique_ptr<concurrent::HleSpinLock[]> bucket_locks_;
  std::unique_ptr<concurrent::HleSpinLock[]> free_locks_;
  mutable concurrent::HleSpinLock retire_lock_{
      concurrent::LockRank::kPosRetire};

  Magazines magazines_;
  // Epoch slots are process-local: a crash discards every announcement and
  // every retirement batch (the unlinked entries become orphans, which
  // integrity_error() tolerates); only the global epoch is in the file.
  Epochs epochs_;

  std::vector<RetireBatch> retired_ EA_GUARDED_BY(retire_lock_);
  std::uint64_t retired_count_ EA_GUARDED_BY(retire_lock_) = 0;
  // Round-robin target shard for the cleaner's batched returns.
  std::atomic<std::uint32_t> clean_rr_{0};

  // Striped op counters: set()/get() bump one stripe keyed by the calling
  // thread so the hot path never bounces a shared counter line.
  struct alignas(64) CounterStripe {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::size_t kCounterStripes = 16;
  CounterStripe sets_[kCounterStripes];
  CounterStripe gets_[kCounterStripes];
  std::atomic<std::uint64_t> hazards_{0};

#if defined(EA_FAILPOINTS)
  std::atomic<WalkHook> walk_hook_{nullptr};
  void* walk_ctx_ = nullptr;
#endif
};

}  // namespace ea::pos
