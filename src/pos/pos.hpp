// Persistent Object Store (paper §4.1).
//
// A lean, concurrently accessible key-value store over a memory-mapped file
// that "utilises the page cache of the kernel": no system call on the data
// path, only an explicit persist() (msync) when durability is demanded.
//
// Layout (cf. paper Fig. 4): superblock | grace counters | bucket heads |
// free-shard heads | entry slots. Entries are managed as stacks: set(k,v)
// pushes a *new* version on the bucket stack of hash(k) and marks the
// previous version outdated; get(k) scans from the top and returns the
// first match, so a get racing a set returns the value current when the get
// began — the store is linearisable (paper Fig. 5). Outdated versions
// accumulate until the Cleaner removes them, which it may only do once
// every registered reader has executed at least once since the invalidation
// (grace counters).
//
// Write-path scaling (DESIGN.md §11): the free list is sharded into
// free_shard_count per-lock LIFO stacks (geometry persisted in the
// superblock), allocation pops from the caller's home shard and steals from
// the others when it runs dry, and per-thread *entry magazines*
// (concurrent/magazine.hpp) front the shards so the steady-state set()
// allocates without any lock. The bucket push itself is a lock-free CAS on
// the bucket head — a pure LIFO push; erase and the cleaner's unlink keep
// the per-bucket lock. EA_POS_MAGAZINE=0 (or PosOptions::magazines=0)
// disables the magazine layer for ablation.
//
// Grace contract extension: set()'s outdated-marking walk traverses the
// bucket chain without the bucket lock, so — exactly like get() — any
// thread that mutates the store concurrently with a cleaner must hold a
// registered Reader and tick() between operations.
//
// Deviation from the paper: internal references are file *offsets*, not raw
// virtual addresses, so the file needs no fixed mapping address. Behaviour
// is identical; robustness is better.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concurrent/hle_lock.hpp"
#include "concurrent/magazine.hpp"
#include "util/bytes.hpp"

namespace ea::pos {

inline constexpr std::uint64_t kPosMagic = 0x50'4f'53'31'45'41'43'54ull;
// v2: free_head replaced by a persisted shard-head array (free_shard_count,
// free_off). v1 images predate any release and are rejected on open.
inline constexpr std::uint32_t kPosVersion = 2;
inline constexpr std::size_t kMaxReaders = 64;
inline constexpr std::uint32_t kMaxFreeShards = 64;

// Entries a thread may cache per store / refill-steal batch size; same
// shape as the pool's node magazines.
inline constexpr std::size_t kPosMagazineCapacity = 16;
inline constexpr std::size_t kPosMagazineBatch = 8;
inline constexpr std::size_t kMaxPosMagazines = 8;

static_assert(kPosMagazineBatch <= kPosMagazineCapacity);

struct PosOptions {
  // Backing file; empty uses an anonymous (non-persistent) mapping.
  std::string path;
  std::uint32_t bucket_count = 32;  // the paper's Fig. 4 draws B1..B32
  std::uint32_t entry_count = 4096;
  std::uint32_t entry_payload = 512;  // max combined key+value bytes
  // Free-list shards; 0 = auto (hardware_concurrency, clamped to
  // [1, kMaxFreeShards]). Ignored when reopening an existing file — the
  // shard count is part of the persisted geometry.
  std::uint32_t free_shards = 0;
  // Per-thread entry magazines: -1 = EA_POS_MAGAZINE environment toggle
  // (on unless "0"), 0 = off, 1 = on. Benchmarks set this explicitly to
  // quantify the magazines' contribution.
  int magazines = -1;
};

struct PosStats {
  std::uint64_t live = 0;
  std::uint64_t outdated = 0;
  std::uint64_t free = 0;  // entries in the Free state (state scan)
  std::uint64_t limbo = 0;
  // Decomposition of `free` by location: reachable from a shard free list
  // vs. cached in a per-thread magazine. When quiescent,
  // free == free_listed + in_magazine.
  std::uint64_t free_listed = 0;
  std::uint64_t in_magazine = 0;
  std::uint64_t sets = 0;
  std::uint64_t gets = 0;
};

class Pos {
 public:
  // Maps (creating or reopening) the store. Throws std::runtime_error on
  // I/O failure or superblock mismatch.
  explicit Pos(PosOptions options);
  ~Pos();

  Pos(const Pos&) = delete;
  Pos& operator=(const Pos&) = delete;

  // Inserts or updates. Returns false when the store is full (no free
  // entries) or key+value exceed the entry payload.
  bool set(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> value);

  // Returns the latest value for key, or nullopt.
  std::optional<util::Bytes> get(std::span<const std::uint8_t> key);

  // Removes a key: marks all its versions outdated (space is reclaimed by
  // the cleaner). Returns true if any version existed.
  bool erase(std::span<const std::uint8_t> key);

  // --- reader registration for safe reclamation ---------------------------

  // Registers a reader slot; each eactor connected to the store holds one
  // and must tick() once per body execution.
  class Reader {
   public:
    Reader() = default;
    void tick() noexcept;

   private:
    friend class Pos;
    Pos* pos_ = nullptr;
    std::size_t slot_ = 0;
  };

  Reader register_reader();

  // --- housekeeping --------------------------------------------------------

  // One cleaner step: frees the previous round's limbo entries if the grace
  // period has passed (returning them to one free shard as a single batch),
  // then gathers newly outdated entries. Returns the number of entries
  // freed. Typically driven by CleanerActor. Holds limbo_lock_ (kPosLimbo)
  // for the whole step, nesting bucket locks (kPosBucket) during the
  // gather and free-shard locks (kPosFree) during the batched return —
  // the canonical ascending chain of the lock-rank table.
  std::size_t clean_step() EA_EXCLUDES(limbo_lock_);

  // Flushes the mapping to the backing file (no-op for anonymous mappings).
  // Bumps the superblock epoch first, so a flushed image is distinguishable
  // from one that never reached persist(). Returns false when msync fails.
  bool persist();

  // Structural validation of the mapped image, for crash-recovery checks:
  // walks the superblock geometry, every bucket chain, and every free-shard
  // list, rejecting out-of-range/misaligned offsets, cycles, entries linked
  // twice, free-state entries reachable from a bucket, and length fields
  // exceeding the payload. Entries reachable from *nothing* are fine — a
  // crash between alloc and link (or with entries in a magazine) orphans
  // slots legitimately; only linked structure must be consistent. Returns a
  // description of the first problem, or nullopt when the image is sound.
  std::optional<std::string> integrity_error() const;

  PosStats stats() const;

  std::uint32_t bucket_count() const noexcept;
  std::uint32_t entry_payload() const noexcept;
  std::uint32_t free_shard_count() const noexcept;
  bool magazines_active() const noexcept { return use_magazines_; }

  // Process-wide default for the magazine layer (EA_POS_MAGAZINE != "0").
  static bool magazines_enabled() noexcept;

 private:
  struct Superblock;
  struct Entry;
  using Magazines = concurrent::MagazineSet<std::uint64_t,
                                            kPosMagazineCapacity,
                                            kMaxPosMagazines>;
  using Magazine = Magazines::Magazine;

  Entry* entry_at(std::uint64_t offset) noexcept;
  const Entry* entry_at(std::uint64_t offset) const noexcept;
  std::uint64_t offset_of(const Entry* e) const noexcept;
  std::atomic<std::uint64_t>& bucket_head(std::uint32_t bucket) noexcept;
  std::atomic<std::uint64_t>& grace_counter(std::size_t slot) noexcept;
  std::atomic<std::uint64_t>& free_head(std::uint32_t shard) const noexcept;
  std::uint32_t bucket_of(std::span<const std::uint8_t> key) const noexcept;

  std::uint32_t home_shard() const noexcept;
  // Pops up to `max` entries from shard `s` into out[]; out[0] is the
  // shard's (hottest) top. Returns the number taken.
  std::uint32_t shard_pop(std::uint32_t s, std::uint64_t* out,
                          std::uint32_t max) EA_LOCK_NOEXCEPT;
  // Splices a pre-linked chain (head..tail via Entry::next) onto shard `s`.
  void shard_push_chain(std::uint32_t s, std::uint64_t head,
                        std::uint64_t tail) EA_LOCK_NOEXCEPT;
  // Pops from the home shard, stealing a batch from the other shards when
  // it runs dry. Fills out[]; returns the number taken.
  std::uint32_t pop_or_steal(std::uint64_t* out,
                             std::uint32_t max) EA_LOCK_NOEXCEPT;
  // Batch pop for magazine refills: spreads the pops across the shards
  // (home first, prefetching each shard's guessed top before locking) so
  // the chain-top misses of independent lists overlap instead of
  // serialising down a single list.
  std::uint32_t pop_striped(std::uint64_t* out,
                            std::uint32_t max) EA_LOCK_NOEXCEPT;

  std::uint64_t alloc_entry() EA_LOCK_NOEXCEPT;  // 0 when exhausted
  std::uint32_t magazine_refill(Magazine& mag) EA_LOCK_NOEXCEPT;
  void magazine_return(const std::uint64_t* items,
                       std::uint32_t count) EA_LOCK_NOEXCEPT;
  void init_fresh();
  void validate_existing();

  PosOptions options_;
  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;

  Superblock* sb_ = nullptr;
  std::byte* entries_base_ = nullptr;
  bool use_magazines_ = false;

  // In-RAM (per-process) concurrency control; the on-file structures hold
  // only offsets and data. The lock arrays are ranked kPosBucket/kPosFree
  // post-construction (the thread-safety analysis cannot express
  // per-element array guarding, so the bucket/free-list structures rely on
  // the runtime rank checker plus TSan rather than EA_GUARDED_BY).
  std::unique_ptr<concurrent::HleSpinLock[]> bucket_locks_;
  std::unique_ptr<concurrent::HleSpinLock[]> free_locks_;
  mutable concurrent::HleSpinLock limbo_lock_{concurrent::LockRank::kPosLimbo};

  Magazines magazines_;

  // Reclamation state (process-local; a crash simply leaves outdated
  // entries for the next incarnation's cleaner).
  std::vector<std::uint64_t> limbo_ EA_GUARDED_BY(limbo_lock_);
  std::vector<std::uint64_t> limbo_snapshot_ EA_GUARDED_BY(limbo_lock_);
  std::atomic<std::size_t> reader_slots_{0};
  // Round-robin target shard for the cleaner's batched returns.
  std::atomic<std::uint32_t> clean_rr_{0};

  // Striped op counters: set()/get() bump one stripe keyed by the calling
  // thread so the hot path never bounces a shared counter line.
  struct alignas(64) CounterStripe {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::size_t kCounterStripes = 16;
  CounterStripe sets_[kCounterStripes];
  CounterStripe gets_[kCounterStripes];
};

}  // namespace ea::pos
