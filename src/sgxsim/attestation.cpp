#include "sgxsim/attestation.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"

namespace ea::sgxsim {
namespace {

// The per-enclave report key, derivable only with the device root key —
// i.e. only by the simulated hardware on behalf of the target enclave.
crypto::Sha256Digest report_key(const Enclave& target) {
  static constexpr std::uint8_t kInfo[] = "ea-sgx-report-key";
  util::Bytes okm = crypto::hkdf(
      EnclaveManager::instance().device_root_key(), target.measurement(),
      std::span<const std::uint8_t>(kInfo, sizeof(kInfo) - 1),
      crypto::kSha256DigestSize);
  crypto::Sha256Digest key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

crypto::Sha256Digest report_mac(const Report& report,
                                const crypto::Sha256Digest& key) {
  crypto::HmacSha256 mac(key);
  mac.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&report.source),
      sizeof(report.source)));
  mac.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&report.target),
      sizeof(report.target)));
  mac.update(report.source_measurement);
  return mac.finish();
}

}  // namespace

Report create_report(const Enclave& source, const Enclave& target) {
  Report report;
  report.source = source.id();
  report.target = target.id();
  report.source_measurement = source.measurement();
  report.mac = report_mac(report, report_key(target));
  return report;
}

bool verify_report(const Enclave& verifier, const Report& report) {
  if (report.target != verifier.id()) return false;
  crypto::Sha256Digest expected = report_mac(report, report_key(verifier));
  return util::ct_equal(report.mac, expected);
}

std::optional<crypto::AeadKey> establish_session_key(const Enclave& a,
                                                     const Enclave& b) {
  // Mutual attestation: each side verifies the other's report.
  Report a_to_b = create_report(a, b);
  Report b_to_a = create_report(b, a);
  if (!verify_report(b, a_to_b) || !verify_report(a, b_to_a)) {
    return std::nullopt;
  }
  // Both sides derive the same key from the (order-normalised) measurements.
  const auto& ma = a.measurement();
  const auto& mb = b.measurement();
  bool a_first = std::lexicographical_compare(ma.begin(), ma.end(),
                                              mb.begin(), mb.end());
  util::Bytes ikm;
  const auto& first = a_first ? ma : mb;
  const auto& second = a_first ? mb : ma;
  ikm.insert(ikm.end(), first.begin(), first.end());
  ikm.insert(ikm.end(), second.begin(), second.end());

  static constexpr std::uint8_t kInfo[] = "ea-sgx-la-session";
  util::Bytes okm = crypto::hkdf(
      EnclaveManager::instance().device_root_key(), ikm,
      std::span<const std::uint8_t>(kInfo, sizeof(kInfo) - 1),
      crypto::kAeadKeySize);
  crypto::AeadKey key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

}  // namespace ea::sgxsim
