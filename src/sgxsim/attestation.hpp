// Local (intra-platform) attestation.
//
// Encrypted channels between enclaves establish their session keys via the
// SDK's local attestation (paper §3.3). The simulation reproduces the
// REPORT flow: the source enclave asks the hardware for a report targeted
// at the destination; the destination verifies the report MAC (which only
// same-device enclaves can compute) and both sides derive a session key
// bound to the two measurements.
#pragma once

#include <optional>

#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "sgxsim/enclave.hpp"

namespace ea::sgxsim {

struct Report {
  EnclaveId source = kUntrusted;
  EnclaveId target = kUntrusted;
  crypto::Sha256Digest source_measurement{};
  crypto::Sha256Digest mac{};  // keyed with the target's report key
};

// Creates a report describing `source`, consumable by `target`
// (EREPORT equivalent).
Report create_report(const Enclave& source, const Enclave& target);

// Verifies a report addressed to `verifier` (EGETKEY + CMAC check
// equivalent). Returns false for forged or misaddressed reports.
bool verify_report(const Enclave& verifier, const Report& report);

// Runs the mutual attestation handshake between two enclaves and derives
// the shared AEAD session key both would compute. Returns nullopt if either
// direction fails verification.
std::optional<crypto::AeadKey> establish_session_key(const Enclave& a,
                                                     const Enclave& b);

}  // namespace ea::sgxsim
