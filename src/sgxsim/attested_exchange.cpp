#include "sgxsim/attested_exchange.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/hkdf.hpp"

namespace ea::sgxsim {

AttestedExchange::AttestedExchange(const Enclave& self,
                                   std::uint64_t peer_nonce)
    : self_(self), private_key_(crypto::x25519_keygen()) {
  crypto::X25519Key public_key = crypto::x25519_base(private_key_);
  quote_ = create_quote(self, public_key, peer_nonce);
}

std::optional<crypto::AeadKey> AttestedExchange::complete(
    const Quote& peer_quote, std::uint64_t my_nonce,
    const AttestationVerifier& verifier,
    const crypto::Sha256Digest* expected_measurement) const {
  if (expected_measurement != nullptr) {
    if (!verifier.verify_measurement(peer_quote, my_nonce,
                                     *expected_measurement)) {
      return std::nullopt;
    }
  } else if (!verifier.verify(peer_quote, my_nonce)) {
    return std::nullopt;
  }

  crypto::X25519Key peer_public;
  std::memcpy(peer_public.data(), peer_quote.report_data.data(),
              peer_public.size());
  crypto::X25519Key shared = crypto::x25519(private_key_, peer_public);

  // All-zero shared secret means the peer supplied a low-order point.
  bool all_zero = std::all_of(shared.begin(), shared.end(),
                              [](std::uint8_t b) { return b == 0; });
  if (all_zero) return std::nullopt;

  // Bind the key to both identities, order-normalised so both sides agree.
  util::Bytes info;
  const auto& ma = self_.measurement();
  const auto& mb = peer_quote.measurement;
  bool a_first =
      std::lexicographical_compare(ma.begin(), ma.end(), mb.begin(), mb.end());
  const auto& first = a_first ? ma : mb;
  const auto& second = a_first ? mb : ma;
  info.insert(info.end(), first.begin(), first.end());
  info.insert(info.end(), second.begin(), second.end());

  util::Bytes okm = crypto::hkdf({}, shared, info, crypto::kAeadKeySize);
  crypto::AeadKey key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

}  // namespace ea::sgxsim
