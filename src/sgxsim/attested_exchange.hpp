// Attested Diffie-Hellman key exchange over remote attestation.
//
// The standard SGX remote-provisioning pattern: each side generates an
// ephemeral X25519 key pair and embeds the public key into its quote's
// report data. Verifying the quote therefore authenticates the key — a
// man-in-the-middle cannot substitute its own public value without
// breaking the attestation signature. The shared AEAD key is derived from
// the ECDH secret and both measurements via HKDF.
//
// Unlike sgxsim/attestation.hpp's local attestation (which derives keys
// directly from the device root), this exchange works between *platforms*:
// the verifier only needs the attestation verification material.
#pragma once

#include <optional>

#include "crypto/aead.hpp"
#include "crypto/x25519.hpp"
#include "sgxsim/remote_attestation.hpp"

namespace ea::sgxsim {

// One endpoint of the handshake, owned by an enclave.
class AttestedExchange {
 public:
  // Generates the ephemeral key pair and the quote binding it, targeted at
  // the peer's freshness nonce.
  AttestedExchange(const Enclave& self, std::uint64_t peer_nonce);

  const Quote& quote() const noexcept { return quote_; }

  // Completes the handshake with the peer's quote: verifies it (signature,
  // our nonce, optionally an expected measurement) and derives the shared
  // session key. Returns nullopt when verification fails.
  std::optional<crypto::AeadKey> complete(
      const Quote& peer_quote, std::uint64_t my_nonce,
      const AttestationVerifier& verifier,
      const crypto::Sha256Digest* expected_measurement = nullptr) const;

 private:
  const Enclave& self_;
  crypto::X25519Key private_key_;
  Quote quote_;
};

}  // namespace ea::sgxsim
