#include "sgxsim/cost_model.hpp"

#include <mutex>

#include "util/env.hpp"

namespace ea::sgxsim {

CostModel& cost_model() {
  static CostModel model;
  return model;
}

void load_cost_model_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    CostModel& m = cost_model();
    m.ecall_cycles = static_cast<std::uint64_t>(
        util::env_int("EA_SGX_ECALL_CYCLES", static_cast<std::int64_t>(m.ecall_cycles)));
    m.ocall_cycles = static_cast<std::uint64_t>(
        util::env_int("EA_SGX_OCALL_CYCLES", static_cast<std::int64_t>(m.ocall_cycles)));
    m.rng_cycles_per_byte = static_cast<std::uint64_t>(
        util::env_int("EA_SGX_RNG_CPB", static_cast<std::int64_t>(m.rng_cycles_per_byte)));
    m.mutex_spin_iterations = static_cast<std::uint64_t>(
        util::env_int("EA_SGX_MUTEX_SPIN", static_cast<std::int64_t>(m.mutex_spin_iterations)));
  });
}

ScopedCostModel::ScopedCostModel() : saved_(cost_model()) {}

ScopedCostModel::~ScopedCostModel() { cost_model() = saved_; }

}  // namespace ea::sgxsim
