// Cost model for the simulated SGX hardware.
//
// This repository reproduces EActors on machines without SGX. The paper's
// performance effects are driven by a handful of hardware costs, which this
// model charges explicitly (in CPU cycles, busy-burned so they consume real
// time exactly like the hardware does):
//
//  * enclave entry/exit — ~8000 cycles each way; the paper cites 8000–9000
//    (Eleos [39]) and ~8000 (HotCalls [52]).
//  * EPC paging — re-encryption of evicted pages once the combined enclave
//    working set exceeds the usable EPC (93 MiB of the 128 MiB range).
//  * the trusted random number generator — sgx_read_rand is RDRAND-based
//    and slow; the paper identifies it as the SMC bottleneck (§6.3.1).
//  * sgx_mutex — spins briefly, then *exits the enclave* to sleep (Fig. 1).
//
// All knobs are env-overridable (EA_SGX_*) so ablation benches can zero a
// cost and observe its contribution.
#pragma once

#include <cstdint>

namespace ea::sgxsim {

struct CostModel {
  // One-way transition costs.
  std::uint64_t ecall_cycles = 8000;
  std::uint64_t ocall_cycles = 8000;
  // Extra cycles charged per 4 KiB page that does not fit into the EPC,
  // sampled at transition time (eviction + re-encryption on the way back).
  std::uint64_t paging_cycles_per_page = 14000;
  // Cap on how many overflow pages one transition charges for; models the
  // kernel's batched eviction.
  std::uint64_t paging_pages_per_transition = 16;
  // Trusted RNG throughput (RDRAND-class hardware DRBG).
  std::uint64_t rng_cycles_per_byte = 60;
  // Marshalled boundary copies (SDK bridge code): writes into enclave
  // memory go through the Memory Encryption Engine, and the per-call
  // buffer allocation thrashes once it exceeds the L1 size — the effect
  // behind the paper's observation that the native SDK's throughput peaks
  // near 32 KiB (§6.2). Charged per byte copied by ecall_marshalled.
  std::uint64_t marshal_cycles_per_byte = 1;
  std::uint64_t marshal_spill_cycles_per_byte = 8;  // beyond the L1 bytes
  std::uint64_t marshal_l1_bytes = 32 * 1024;
  // sgx_mutex spins this many iterations before leaving the enclave.
  std::uint64_t mutex_spin_iterations = 8000;

  // Usable EPC bytes (93 MiB out of the 128 MiB protected range; the rest
  // holds SGX-internal metadata).
  std::uint64_t epc_usable_bytes = 93ull * 1024 * 1024;
};

// The process-wide cost model. Mutable; benchmarks adjust it before starting
// worker threads. Reads are not synchronised — configure before use.
CostModel& cost_model();

// Loads EA_SGX_ECALL_CYCLES, EA_SGX_OCALL_CYCLES, EA_SGX_RNG_CPB,
// EA_SGX_MUTEX_SPIN overrides. Called by EnclaveManager on first use.
void load_cost_model_env();

// RAII save/restore for tests and ablation benches.
class ScopedCostModel {
 public:
  ScopedCostModel();
  ~ScopedCostModel();
  ScopedCostModel(const ScopedCostModel&) = delete;
  ScopedCostModel& operator=(const ScopedCostModel&) = delete;

 private:
  CostModel saved_;
};

}  // namespace ea::sgxsim
