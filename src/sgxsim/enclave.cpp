#include "sgxsim/enclave.hpp"

#include "crypto/rng.hpp"
#include "sgxsim/cost_model.hpp"
#include "util/logging.hpp"

namespace ea::sgxsim {

Enclave::Enclave(EnclaveId id, std::string name,
                 crypto::Sha256Digest measurement)
    : id_(id), name_(std::move(name)), measurement_(measurement) {}

EnclaveManager& EnclaveManager::instance() {
  static EnclaveManager manager;
  return manager;
}

EnclaveManager::EnclaveManager() {
  load_cost_model_env();
  crypto::secure_random(device_root_key_);
}

Enclave& EnclaveManager::create(std::string name, std::uint64_t base_bytes) {
  EnclaveId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // The measurement covers the enclave's identity the way MRENCLAVE covers
  // the loaded pages: here, name + id.
  crypto::Sha256 h;
  h.update(name);
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&id), sizeof(id)));
  auto enclave = std::make_unique<Enclave>(id, std::move(name), h.finish());
  enclave->add_committed(base_bytes);
  Enclave& ref = *enclave;
  {
    HostMutexGuard lock(mu_);
    by_id_.emplace(id, enclave.get());
    enclaves_.push_back(std::move(enclave));
  }
  EA_DEBUG("sgxsim", "created enclave %u (%s), base %llu bytes", ref.id(),
           ref.name().c_str(), static_cast<unsigned long long>(base_bytes));
  return ref;
}

Enclave* EnclaveManager::find(EnclaveId id) noexcept {
  if (id == kUntrusted) return nullptr;
  HostMutexGuard lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::uint64_t EnclaveManager::total_committed_locked() const noexcept {
  std::uint64_t total = 0;
  for (const auto& e : enclaves_) total += e->committed_bytes();
  return total;
}

std::uint64_t EnclaveManager::total_committed() const noexcept {
  HostMutexGuard lock(mu_);
  return total_committed_locked();
}

std::uint64_t EnclaveManager::overflow_pages() const noexcept {
  // Single lock acquisition: summing and comparing under one critical
  // section keeps the answer consistent with the enclave set it saw.
  std::uint64_t total;
  {
    HostMutexGuard lock(mu_);
    total = total_committed_locked();
  }
  std::uint64_t usable = cost_model().epc_usable_bytes;
  if (total <= usable) return 0;
  return (total - usable + 4095) / 4096;
}

std::size_t EnclaveManager::enclave_count() const {
  HostMutexGuard lock(mu_);
  return enclaves_.size();
}

void EnclaveManager::reset_for_testing() {
  HostMutexGuard lock(mu_);
  by_id_.clear();
  enclaves_.clear();
  next_id_.store(1, std::memory_order_relaxed);
}

}  // namespace ea::sgxsim
