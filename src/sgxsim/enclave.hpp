// Simulated enclaves and the process-wide enclave manager.
//
// An Enclave models one SGX enclave: an identity (measurement = SHA-256 of
// its name and creation nonce), committed EPC memory, and per-enclave keys
// derived from a simulated per-device root key. EnclaveId 0 is reserved for
// untrusted execution.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.hpp"
#include "sgxsim/host_mutex.hpp"

namespace ea::sgxsim {

using EnclaveId = std::uint32_t;

inline constexpr EnclaveId kUntrusted = 0;

class Enclave {
 public:
  Enclave(EnclaveId id, std::string name, crypto::Sha256Digest measurement);

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  EnclaveId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  const crypto::Sha256Digest& measurement() const noexcept {
    return measurement_;
  }

  // EPC accounting: enclaves register the memory they commit (code, heap,
  // node arenas, actor state). The manager sums this across enclaves to
  // detect EPC over-commit.
  void add_committed(std::uint64_t bytes) noexcept {
    committed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  // Releases previously committed pages — migration moves an actor's state
  // accounting from the source enclave to the target. Saturates at zero
  // rather than wrapping if callers over-release.
  void sub_committed(std::uint64_t bytes) noexcept {
    std::uint64_t cur = committed_bytes_.load(std::memory_order_relaxed);
    while (true) {
      std::uint64_t next = cur > bytes ? cur - bytes : 0;
      if (committed_bytes_.compare_exchange_weak(cur, next,
                                                 std::memory_order_relaxed)) {
        return;
      }
    }
  }
  std::uint64_t committed_bytes() const noexcept {
    return committed_bytes_.load(std::memory_order_relaxed);
  }

  // Number of times a thread entered this enclave (diagnostics).
  void count_entry() noexcept {
    entries_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t entries() const noexcept {
    return entries_.load(std::memory_order_relaxed);
  }

 private:
  EnclaveId id_;
  std::string name_;
  crypto::Sha256Digest measurement_;
  std::atomic<std::uint64_t> committed_bytes_{0};
  std::atomic<std::uint64_t> entries_{0};
};

class EnclaveManager {
 public:
  static EnclaveManager& instance();

  // Creates an enclave; the base size models code + SDK runtime pages
  // (the paper reports ~500 KiB per XMPP enclave).
  Enclave& create(std::string name, std::uint64_t base_bytes = 512 * 1024);

  // Finds by id; nullptr for kUntrusted or unknown ids. O(1) hash lookup —
  // this sits on the enclave-transition hot path.
  Enclave* find(EnclaveId id) noexcept;

  std::uint64_t total_committed() const noexcept;

  // Pages by which the committed total currently exceeds the usable EPC.
  std::uint64_t overflow_pages() const noexcept;

  std::size_t enclave_count() const;

  // Per-device root sealing/provisioning key material (simulated fuses).
  const std::array<std::uint8_t, 32>& device_root_key() const noexcept {
    return device_root_key_;
  }

  // Destroys all enclaves — for test isolation only. Not thread-safe with
  // respect to concurrent transitions.
  void reset_for_testing();

 private:
  EnclaveManager();

  // Sums committed bytes across enclaves; caller must hold mu_ — the
  // thread-safety analysis enforces exactly that contract.
  std::uint64_t total_committed_locked() const noexcept EA_REQUIRES(mu_);

  mutable HostMutex mu_{concurrent::LockRank::kEnclaveManager};
  std::vector<std::unique_ptr<Enclave>> enclaves_ EA_GUARDED_BY(mu_);
  // id -> enclave index for O(1) find(); entries live exactly as long as
  // the owning unique_ptr in enclaves_.
  std::unordered_map<EnclaveId, Enclave*> by_id_ EA_GUARDED_BY(mu_);
  std::atomic<EnclaveId> next_id_{1};
  std::array<std::uint8_t, 32> device_root_key_{};
};

}  // namespace ea::sgxsim
