// Annotated host-side mutex.
//
// The sgxsim management services (EnclaveManager, MonotonicCounterService)
// run on the untrusted host, where a sleeping OS mutex is the right tool —
// but libstdc++'s std::mutex carries no Clang Thread Safety attributes, so
// members it protects could not be EA_GUARDED_BY. HostMutex wraps
// std::mutex as a proper capability and feeds the same lock-rank checker
// as HleSpinLock (concurrent/lock_rank.hpp), so host-side acquisitions
// participate in the global acquisition order under -DEA_LOCK_RANK=ON.
//
// Never use this in trusted-capable modules: blocking in the kernel forces
// an enclave exit (enclave-lint rule `mutex-blocking-sync`). Hence the
// placement in sgxsim/, an untrusted module.
#pragma once

#include <mutex>

#include "concurrent/lock_rank.hpp"
#include "concurrent/thread_safety.hpp"

namespace ea::sgxsim {

class EA_CAPABILITY("mutex") HostMutex {
 public:
  HostMutex() = default;
  explicit HostMutex(concurrent::LockRank rank) noexcept : rank_(rank) {}
  HostMutex(const HostMutex&) = delete;
  HostMutex& operator=(const HostMutex&) = delete;

  void lock() EA_ACQUIRE() {
    // Rank check first (throws on violation, leaving the mutex untouched);
    // compiles to nothing outside EA_LOCK_RANK builds.
    concurrent::lock_rank::note_acquire(rank_);
    mu_.lock();
  }

  void unlock() noexcept EA_RELEASE() {
    mu_.unlock();
    concurrent::lock_rank::note_release(rank_);
  }

 private:
  std::mutex mu_;
  concurrent::LockRank rank_ = concurrent::LockRank::kUnranked;
};

// RAII guard, the std::lock_guard of HostMutex; a scoped capability like
// concurrent::HleGuard.
class EA_SCOPED_CAPABILITY HostMutexGuard {
 public:
  explicit HostMutexGuard(HostMutex& mu) EA_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~HostMutexGuard() EA_RELEASE() { mu_.unlock(); }
  HostMutexGuard(const HostMutexGuard&) = delete;
  HostMutexGuard& operator=(const HostMutexGuard&) = delete;

 private:
  HostMutex& mu_;
};

}  // namespace ea::sgxsim
