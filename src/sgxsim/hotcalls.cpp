#include "sgxsim/hotcalls.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "sgxsim/transition.hpp"
#include "util/affinity.hpp"

namespace ea::sgxsim {
namespace {

inline void cpu_relax() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

// Spin budget before yielding. Real HotCalls pins the responder to its own
// hardware thread and spins indefinitely; on hosts where requester and
// responder share a CPU, long spins just burn the other side's timeslice,
// so yield almost immediately there.
inline std::uint64_t spin_budget() {
  static const std::uint64_t value = util::online_cpus() > 1 ? 4096 : 16;
  return value;
}

}  // namespace

HotCallService::HotCallService(Enclave& enclave, Handler handler)
    : enclave_(enclave), handler_(std::move(handler)) {
  responder_ = std::thread([this] { responder_loop(); });
}

HotCallService::~HotCallService() {
  stop_.store(true, std::memory_order_relaxed);
  if (responder_.joinable()) responder_.join();
}

void HotCallService::responder_loop() {
  // One transition for the lifetime of the service — the HotCalls trick.
  EnclaveScope scope(enclave_);
  std::uint64_t idle = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (state_.load(std::memory_order_acquire) == 1) {
      handler_(op_, data_);
      served_.fetch_add(1, std::memory_order_relaxed);
      state_.store(2, std::memory_order_release);
      idle = 0;
    } else {
      cpu_relax();
      // On oversubscribed hosts the requester may hold the only CPU; give
      // it up occasionally (stands in for the dedicated hardware thread a
      // real HotCalls deployment pins).
      if (++idle > spin_budget()) {
        std::this_thread::yield();
        idle = 0;
      }
    }
  }
}

void HotCallService::call(std::uint64_t op, void* data) {
  // Publish the request.
  op_ = op;
  data_ = data;
  state_.store(1, std::memory_order_release);
  // Spin for completion (the HotCalls caller busy-waits; it may still be
  // cheaper than 2 transitions).
  std::uint64_t idle = 0;
  while (state_.load(std::memory_order_acquire) != 2) {
    cpu_relax();
    if (++idle > spin_budget()) {
      std::this_thread::yield();
      idle = 0;
    }
  }
  state_.store(0, std::memory_order_release);
}

}  // namespace ea::sgxsim
