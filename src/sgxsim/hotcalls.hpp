// HotCalls-style asynchronous enclave calls (Weisse et al., ISCA'17 —
// related work [52] in the paper).
//
// Instead of an ECall's mode transition, the caller deposits a request in
// a shared spin-polled queue serviced by a worker thread *already inside*
// the enclave. This is the main prior-art alternative EActors is compared
// against conceptually: it removes transitions for call-style interfaces
// but keeps the RPC shape (a caller blocks on the response) rather than
// EActors' fully asynchronous message passing. Implemented here as a
// baseline so ablation benchmarks can compare Native ECalls, HotCalls and
// EActors channels under one cost model.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "sgxsim/enclave.hpp"

namespace ea::sgxsim {

// A hot-call service for one enclave: a dedicated thread enters the
// enclave once and spins on the request slot.
class HotCallService {
 public:
  using Handler = std::function<void(std::uint64_t op, void* data)>;

  // Starts the responder thread inside `enclave` with the given dispatch
  // handler (runs for every request).
  HotCallService(Enclave& enclave, Handler handler);
  ~HotCallService();

  HotCallService(const HotCallService&) = delete;
  HotCallService& operator=(const HotCallService&) = delete;

  // Issues a call and spins until the responder has executed it. `data`
  // is shared memory both sides may touch (no marshalling — HotCalls
  // passes pointers).
  void call(std::uint64_t op, void* data);

  std::uint64_t calls_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void responder_loop();

  Enclave& enclave_;
  Handler handler_;
  std::thread responder_;

  // Single-slot request buffer, as in the HotCalls design.
  std::atomic<int> state_{0};  // 0 idle, 1 requested, 2 done
  std::uint64_t op_ = 0;
  void* data_ = nullptr;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace ea::sgxsim
