#include "sgxsim/monotonic_counter.hpp"

#include "sgxsim/sealing.hpp"

namespace ea::sgxsim {

MonotonicCounterService& MonotonicCounterService::instance() {
  static MonotonicCounterService service;
  return service;
}

std::uint64_t MonotonicCounterService::read(const Enclave& enclave,
                                            std::uint32_t slot) const {
  HostMutexGuard lock(mu_);
  auto it = counters_.find({enclave.measurement(), slot});
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t MonotonicCounterService::increment(const Enclave& enclave,
                                                 std::uint32_t slot) {
  HostMutexGuard lock(mu_);
  return ++counters_[{enclave.measurement(), slot}];
}

std::uint64_t MonotonicCounterService::read_ns(const crypto::Sha256Digest& ns,
                                               std::uint32_t slot) const {
  HostMutexGuard lock(mu_);
  auto it = counters_.find({ns, slot});
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t MonotonicCounterService::increment_ns(
    const crypto::Sha256Digest& ns, std::uint32_t slot) {
  HostMutexGuard lock(mu_);
  return ++counters_[{ns, slot}];
}

bool MonotonicCounterService::consume(const crypto::Sha256Digest& ns,
                                      std::uint32_t slot,
                                      std::uint64_t expected) {
  HostMutexGuard lock(mu_);
  std::uint64_t& value = counters_[{ns, slot}];
  if (value != expected) {
    return false;
  }
  ++value;
  return true;
}

void MonotonicCounterService::reset_for_testing() {
  HostMutexGuard lock(mu_);
  counters_.clear();
}

util::Bytes seal_with_rollback_protection(
    const Enclave& enclave, std::uint32_t slot,
    std::span<const std::uint8_t> plaintext) {
  std::uint64_t version =
      MonotonicCounterService::instance().increment(enclave, slot);
  util::Bytes body;
  body.resize(8 + plaintext.size());
  util::store_le64(body.data(), version);
  if (!plaintext.empty()) {
    std::memcpy(body.data() + 8, plaintext.data(), plaintext.size());
  }
  util::Bytes sealed = seal(enclave, body);
  util::secure_zero(body);  // staging copy of the caller's secret
  return sealed;
}

std::optional<util::Bytes> unseal_with_rollback_protection(
    const Enclave& enclave, std::uint32_t slot,
    std::span<const std::uint8_t> sealed) {
  std::optional<util::Bytes> body = unseal(enclave, sealed);
  if (!body.has_value() || body->size() < 8) return std::nullopt;
  std::uint64_t version = util::load_le64(body->data());
  std::uint64_t current =
      MonotonicCounterService::instance().read(enclave, slot);
  if (version != current) {
    util::secure_zero(*body);
    return std::nullopt;  // stale (rolled back) blob
  }
  util::Bytes plain(body->begin() + 8, body->end());
  util::secure_zero(*body);  // staging copy; the caller owns `plain`
  return plain;
}

}  // namespace ea::sgxsim
