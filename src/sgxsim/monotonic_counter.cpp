#include "sgxsim/monotonic_counter.hpp"

#include "sgxsim/sealing.hpp"

namespace ea::sgxsim {

MonotonicCounterService& MonotonicCounterService::instance() {
  static MonotonicCounterService service;
  return service;
}

std::uint64_t MonotonicCounterService::read(const Enclave& enclave,
                                            std::uint32_t slot) const {
  HostMutexGuard lock(mu_);
  auto it = counters_.find({enclave.measurement(), slot});
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t MonotonicCounterService::increment(const Enclave& enclave,
                                                 std::uint32_t slot) {
  HostMutexGuard lock(mu_);
  return ++counters_[{enclave.measurement(), slot}];
}

void MonotonicCounterService::reset_for_testing() {
  HostMutexGuard lock(mu_);
  counters_.clear();
}

util::Bytes seal_with_rollback_protection(
    const Enclave& enclave, std::uint32_t slot,
    std::span<const std::uint8_t> plaintext) {
  std::uint64_t version =
      MonotonicCounterService::instance().increment(enclave, slot);
  util::Bytes body;
  body.resize(8 + plaintext.size());
  util::store_le64(body.data(), version);
  if (!plaintext.empty()) {
    std::memcpy(body.data() + 8, plaintext.data(), plaintext.size());
  }
  return seal(enclave, body);
}

std::optional<util::Bytes> unseal_with_rollback_protection(
    const Enclave& enclave, std::uint32_t slot,
    std::span<const std::uint8_t> sealed) {
  std::optional<util::Bytes> body = unseal(enclave, sealed);
  if (!body.has_value() || body->size() < 8) return std::nullopt;
  std::uint64_t version = util::load_le64(body->data());
  std::uint64_t current =
      MonotonicCounterService::instance().read(enclave, slot);
  if (version != current) return std::nullopt;  // stale (rolled back) blob
  return util::Bytes(body->begin() + 8, body->end());
}

}  // namespace ea::sgxsim
