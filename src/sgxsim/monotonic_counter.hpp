// Monotonic counters for rollback protection.
//
// The paper leaves reboot/fork attacks on the POS out of scope, pointing
// to LCM [9] and ROTE [36] as the known remedies. This module implements
// the primitive those systems provide — a trusted monotonic counter bound
// to an enclave identity — and the sealing helper that uses it: state is
// sealed together with the current counter value, and unsealing fails if
// the embedded value is older than the counter (i.e. the blob was rolled
// back to a stale version).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>

#include "sgxsim/enclave.hpp"
#include "sgxsim/host_mutex.hpp"
#include "util/bytes.hpp"

namespace ea::sgxsim {

class MonotonicCounterService {
 public:
  static MonotonicCounterService& instance();

  // Creates (or returns) counter `slot` for the enclave. Counters are
  // namespaced by enclave *measurement*, so a different enclave identity
  // cannot touch them.
  std::uint64_t read(const Enclave& enclave, std::uint32_t slot) const
      EA_EXCLUDES(mu_);

  // Increments and returns the new value.
  std::uint64_t increment(const Enclave& enclave, std::uint32_t slot)
      EA_EXCLUDES(mu_);

  // Namespace-keyed counters for cross-enclave protocols. The digest is an
  // arbitrary protocol namespace (e.g. SHA-256 of "ea-migration-ticket")
  // rather than one enclave's measurement, so two enclaves negotiating a
  // migration observe the same counter — the trusted-counter-service model
  // of ROTE [36], where the counter is bound to the protocol, not a replica.
  std::uint64_t read_ns(const crypto::Sha256Digest& ns, std::uint32_t slot)
      const EA_EXCLUDES(mu_);
  std::uint64_t increment_ns(const crypto::Sha256Digest& ns,
                             std::uint32_t slot) EA_EXCLUDES(mu_);

  // Advances the namespace counter iff its current value equals `expected`;
  // returns whether this caller performed the advance. Exactly one of N
  // racing callers presenting the same expected value wins, which is the
  // resume-once ticket migration relies on for fork prevention: resuming a
  // sealed bundle consumes its embedded ticket, and a second resume of the
  // same bundle (a fork) finds the counter already advanced.
  bool consume(const crypto::Sha256Digest& ns, std::uint32_t slot,
               std::uint64_t expected) EA_EXCLUDES(mu_);

  void reset_for_testing() EA_EXCLUDES(mu_);

 private:
  using Key = std::pair<crypto::Sha256Digest, std::uint32_t>;
  mutable HostMutex mu_{concurrent::LockRank::kMonotonicCounter};
  std::map<Key, std::uint64_t> counters_ EA_GUARDED_BY(mu_);
};

// Seals `plaintext` bound to the *next* value of counter `slot` (the
// counter is incremented as part of sealing, invalidating all previously
// sealed versions).
util::Bytes seal_with_rollback_protection(const Enclave& enclave,
                                          std::uint32_t slot,
                                          std::span<const std::uint8_t> plaintext);

// Unseals and checks freshness: returns nullopt if the blob is forged,
// sealed by a different identity, or *stale* (its embedded counter value
// is not the counter's current value — a rollback).
std::optional<util::Bytes> unseal_with_rollback_protection(
    const Enclave& enclave, std::uint32_t slot,
    std::span<const std::uint8_t> sealed);

}  // namespace ea::sgxsim
