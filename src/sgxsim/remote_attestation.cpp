#include "sgxsim/remote_attestation.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"

namespace ea::sgxsim {
namespace {

crypto::Sha256Digest attestation_key() {
  static constexpr std::uint8_t kInfo[] = "ea-sgx-remote-attestation";
  util::Bytes okm = crypto::hkdf(
      EnclaveManager::instance().device_root_key(), {},
      std::span<const std::uint8_t>(kInfo, sizeof(kInfo) - 1),
      crypto::kSha256DigestSize);
  crypto::Sha256Digest key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

crypto::Sha256Digest quote_mac(const Quote& quote,
                               const crypto::Sha256Digest& key) {
  crypto::HmacSha256 mac(key);
  mac.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&quote.source),
      sizeof(quote.source)));
  mac.update(quote.measurement);
  mac.update(quote.report_data);
  mac.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&quote.nonce),
      sizeof(quote.nonce)));
  return mac.finish();
}

}  // namespace

Quote create_quote(const Enclave& enclave,
                   std::span<const std::uint8_t> report_data,
                   std::uint64_t nonce) {
  Quote quote;
  quote.source = enclave.id();
  quote.measurement = enclave.measurement();
  std::size_t n = std::min(report_data.size(), quote.report_data.size());
  if (n > 0) std::memcpy(quote.report_data.data(), report_data.data(), n);
  quote.nonce = nonce;
  quote.signature = quote_mac(quote, attestation_key());
  return quote;
}

AttestationVerifier::AttestationVerifier()
    : verification_key_(attestation_key()) {}

bool AttestationVerifier::verify(const Quote& quote,
                                 std::uint64_t expected_nonce) const {
  if (quote.nonce != expected_nonce) return false;
  crypto::Sha256Digest expected = quote_mac(quote, verification_key_);
  return util::ct_equal(quote.signature, expected);
}

bool AttestationVerifier::verify_measurement(
    const Quote& quote, std::uint64_t expected_nonce,
    const crypto::Sha256Digest& expected) const {
  return verify(quote, expected_nonce) &&
         util::ct_equal(quote.measurement, expected);
}

}  // namespace ea::sgxsim
