// Remote attestation (paper §2.2: "enclaves support remote attestation by
// which the identity of an enclave and its integrity can be proven to a
// remote party").
//
// The simulation mirrors the EPID/quoting flow: an enclave produces a
// REPORT targeted at the platform's Quoting Enclave; the QE converts it
// into a *quote* signed with the platform attestation key; a remote
// verifier — holding only the attestation *verification* material, like
// the Intel Attestation Service — checks the quote and extracts the
// enclave measurement and the 64 bytes of user report data (typically a
// key-exchange public value).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/sha256.hpp"
#include "sgxsim/enclave.hpp"

namespace ea::sgxsim {

inline constexpr std::size_t kReportDataSize = 64;

struct Quote {
  EnclaveId source = kUntrusted;
  crypto::Sha256Digest measurement{};
  std::array<std::uint8_t, kReportDataSize> report_data{};
  std::uint64_t nonce = 0;  // verifier-chosen freshness value
  crypto::Sha256Digest signature{};  // platform attestation key MAC
};

// Produces a quote for `enclave` embedding `report_data` (truncated/zero
// padded to 64 bytes) and the verifier's freshness nonce.
Quote create_quote(const Enclave& enclave,
                   std::span<const std::uint8_t> report_data,
                   std::uint64_t nonce);

// The remote verifier. Holds the attestation verification material; in the
// simulation this is derived from the device root key the way IAS holds
// the EPID group public keys.
class AttestationVerifier {
 public:
  AttestationVerifier();

  // Verifies signature + freshness. Returns false on forgery or a nonce
  // mismatch.
  bool verify(const Quote& quote, std::uint64_t expected_nonce) const;

  // Convenience: verify and additionally require a specific measurement
  // (the remote party's notion of "the code I trust").
  bool verify_measurement(const Quote& quote, std::uint64_t expected_nonce,
                          const crypto::Sha256Digest& expected) const;

 private:
  crypto::Sha256Digest verification_key_{};
};

}  // namespace ea::sgxsim
