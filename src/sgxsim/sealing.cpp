#include "sgxsim/sealing.hpp"

#include <atomic>
#include <cstring>

#include "crypto/aead.hpp"
#include "crypto/hkdf.hpp"

namespace ea::sgxsim {
namespace {

crypto::AeadKey sealing_key(const Enclave& enclave) {
  static constexpr std::uint8_t kInfo[] = "ea-sgx-sealing-mrenclave";
  util::Bytes okm = crypto::hkdf(
      EnclaveManager::instance().device_root_key(), enclave.measurement(),
      std::span<const std::uint8_t>(kInfo, sizeof(kInfo) - 1),
      crypto::kAeadKeySize);
  crypto::AeadKey key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

std::uint64_t next_seal_counter() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

util::Bytes seal(const Enclave& enclave,
                 std::span<const std::uint8_t> plaintext) {
  return crypto::seal_with_counter(sealing_key(enclave), next_seal_counter(),
                                   enclave.measurement(), plaintext);
}

std::optional<util::Bytes> unseal(const Enclave& enclave,
                                  std::span<const std::uint8_t> sealed) {
  return crypto::open_framed(sealing_key(enclave), enclave.measurement(),
                             sealed);
}

}  // namespace ea::sgxsim
