// Data sealing (sgx_seal_data / sgx_unseal_data equivalents).
//
// The sealing key is derived from the simulated per-device root key and the
// enclave measurement (MRENCLAVE policy): only the same enclave identity on
// the same "device" can unseal. The POS uses this to persist encryption
// keys across reboots (paper §4.1).
#pragma once

#include <optional>
#include <span>

#include "sgxsim/enclave.hpp"
#include "util/bytes.hpp"

namespace ea::sgxsim {

// Seals `plaintext` for `enclave` (MRENCLAVE policy). Never fails.
util::Bytes seal(const Enclave& enclave, std::span<const std::uint8_t> plaintext);

// Unseals; returns nullopt if the blob was sealed by a different enclave
// identity or tampered with.
std::optional<util::Bytes> unseal(const Enclave& enclave,
                                  std::span<const std::uint8_t> sealed);

}  // namespace ea::sgxsim
