#include "sgxsim/sgx_mutex.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "sgxsim/cost_model.hpp"
#include "sgxsim/transition.hpp"

namespace ea::sgxsim {

void SgxMutex::lock() {
  // Participates in the global lock-rank order like the runtime's own
  // locks (no-op outside EA_LOCK_RANK builds).
  concurrent::lock_rank::note_acquire(concurrent::LockRank::kSgxMutex);
  // Fast path + bounded spin, exactly what sgx_thread_mutex_lock does
  // before giving up and performing the sleep OCall.
  const std::uint64_t spin_budget = cost_model().mutex_spin_iterations;
  for (std::uint64_t i = 0; i < spin_budget; ++i) {
    int expected = 0;
    if (state_.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      return;
    }
#if defined(__x86_64__)
    _mm_pause();
#endif
  }

  // Spin budget exhausted: mark contended and sleep outside the enclave.
  while (true) {
    int prev = state_.exchange(2, std::memory_order_acquire);
    if (prev == 0) return;  // grabbed it (leave state at 2; unlock handles it)
    exits_.fetch_add(1, std::memory_order_relaxed);
    // The sleep itself is a system call and must happen untrusted; the
    // ocall() charges exit + re-entry transitions when inside an enclave.
    ocall([&] {
      std::unique_lock<std::mutex> sleep_lock(sleep_mu_);
      sleep_cv_.wait(sleep_lock, [&] {
        return state_.load(std::memory_order_relaxed) != 2;
      });
    });
  }
}

void SgxMutex::unlock() {
  concurrent::lock_rank::note_release(concurrent::LockRank::kSgxMutex);
  int prev = state_.exchange(0, std::memory_order_release);
  if (prev == 2) {
    // There may be sleepers; waking them is again an OCall from inside.
    ocall([&] {
      std::lock_guard<std::mutex> sleep_lock(sleep_mu_);
      sleep_cv_.notify_all();
    });
  }
}

}  // namespace ea::sgxsim
