// sgx_thread_mutex equivalent: spin briefly, then leave the enclave to sleep.
//
// "The current solution of the Intel SGX SDK is to spin lock for a defined
// (short) time period before eventually leaving the enclave" (§2.2). The
// exit and the re-entry after wake-up each cost a full transition, which is
// why the SDK stack in Fig. 1 is orders of magnitude slower under
// contention. This class reproduces exactly that protocol against the
// simulator's cost model. Outside an enclave it degenerates to a
// futex-backed mutex (pthread-equivalent).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "concurrent/lock_rank.hpp"
#include "concurrent/thread_safety.hpp"

namespace ea::sgxsim {

class EA_CAPABILITY("mutex") SgxMutex {
 public:
  SgxMutex() = default;
  SgxMutex(const SgxMutex&) = delete;
  SgxMutex& operator=(const SgxMutex&) = delete;

  void lock() EA_ACQUIRE();
  void unlock() EA_RELEASE();

  // Diagnostics: how many times lock() had to leave the enclave to sleep.
  std::uint64_t enclave_exits() const noexcept {
    return exits_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> state_{0};  // 0 free, 1 locked, 2 locked with waiters
  std::atomic<std::uint64_t> exits_{0};
  // Internal sleep rendezvous, only ever taken while *acquiring* this
  // mutex; unranked because it is invisible outside the class.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

}  // namespace ea::sgxsim
