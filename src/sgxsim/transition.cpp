#include "sgxsim/transition.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

namespace ea::sgxsim {
namespace {

thread_local EnclaveId t_current_enclave = kUntrusted;

std::atomic<std::uint64_t> g_ecalls{0};
std::atomic<std::uint64_t> g_ocalls{0};
std::atomic<std::uint64_t> g_cycles{0};
std::atomic<std::uint64_t> g_paging_events{0};

// Charges `cycles` plus EPC paging pressure, burning real time.
void charge(std::uint64_t cycles) {
  const auto& m = cost_model();
  std::uint64_t overflow = EnclaveManager::instance().overflow_pages();
  if (overflow > 0) {
    std::uint64_t pages = std::min<std::uint64_t>(
        overflow, m.paging_pages_per_transition);
    cycles += pages * m.paging_cycles_per_page;
    g_paging_events.fetch_add(1, std::memory_order_relaxed);
  }
  g_cycles.fetch_add(cycles, std::memory_order_relaxed);
  util::burn_cycles(cycles);
}

}  // namespace

EnclaveId current_enclave() noexcept { return t_current_enclave; }

TransitionStats transition_stats() noexcept {
  return TransitionStats{
      g_ecalls.load(std::memory_order_relaxed),
      g_ocalls.load(std::memory_order_relaxed),
      g_cycles.load(std::memory_order_relaxed),
      g_paging_events.load(std::memory_order_relaxed),
  };
}

void reset_transition_stats() noexcept {
  g_ecalls.store(0, std::memory_order_relaxed);
  g_ocalls.store(0, std::memory_order_relaxed);
  g_cycles.store(0, std::memory_order_relaxed);
  g_paging_events.store(0, std::memory_order_relaxed);
}

namespace detail {

void enter_enclave(Enclave& e) {
  g_ecalls.fetch_add(1, std::memory_order_relaxed);
  charge(cost_model().ecall_cycles);
  e.count_entry();
  t_current_enclave = e.id();
}

void exit_enclave() noexcept {
  charge(cost_model().ecall_cycles);
  t_current_enclave = kUntrusted;
}

void leave_for_ocall(EnclaveId& saved) {
  saved = t_current_enclave;
  if (saved == kUntrusted) return;  // already untrusted: OCall is free
  g_ocalls.fetch_add(1, std::memory_order_relaxed);
  charge(cost_model().ocall_cycles);
  t_current_enclave = kUntrusted;
}

void reenter_after_ocall(EnclaveId saved) {
  if (saved == kUntrusted) return;
  charge(cost_model().ocall_cycles);
  t_current_enclave = saved;
}

}  // namespace detail

EnclaveScope::EnclaveScope(Enclave& e) {
  if (t_current_enclave == e.id()) return;  // already inside
  // Entering enclave B while inside enclave A first exits A (and re-enters
  // A when the scope unwinds — the thread migrates back).
  previous_ = t_current_enclave;
  if (previous_ != kUntrusted) {
    detail::exit_enclave();
  }
  detail::enter_enclave(e);
  entered_ = true;
}

EnclaveScope::~EnclaveScope() {
  if (!entered_) return;
  detail::exit_enclave();
  if (previous_ != kUntrusted) {
    Enclave* prev = EnclaveManager::instance().find(previous_);
    if (prev != nullptr) detail::enter_enclave(*prev);
  }
}

namespace {

// Models the cost of the bridge copy: MEE-encrypted writes into enclave
// memory plus the L1 falloff once the marshalling buffer exceeds the cache.
void charge_marshal_copy(std::size_t bytes) {
  const auto& m = cost_model();
  std::uint64_t cycles = m.marshal_cycles_per_byte * bytes;
  if (bytes > m.marshal_l1_bytes) {
    cycles += m.marshal_spill_cycles_per_byte * (bytes - m.marshal_l1_bytes);
  }
  g_cycles.fetch_add(cycles, std::memory_order_relaxed);
  util::burn_cycles(cycles);
}

}  // namespace

std::size_t ecall_marshalled(
    Enclave& e, std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
    std::size_t (*fn)(void* ctx, std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out),
    void* ctx) {
  // The generated bridge allocates a trusted-side buffer and memcpys the
  // [in] parameter into it; results go through an [out] buffer the same way.
  thread_local std::vector<std::uint8_t> trusted_in;
  thread_local std::vector<std::uint8_t> trusted_out;
  trusted_in.resize(in.size());
  if (!in.empty()) std::memcpy(trusted_in.data(), in.data(), in.size());
  charge_marshal_copy(in.size());
  trusted_out.resize(out.size());

  std::size_t produced;
  {
    EnclaveScope scope(e);
    produced = fn(ctx, trusted_in, trusted_out);
  }
  produced = std::min(produced, out.size());
  if (produced > 0) std::memcpy(out.data(), trusted_out.data(), produced);
  charge_marshal_copy(produced);
  return produced;
}

}  // namespace ea::sgxsim
