// Execution-mode transitions (ECall/OCall) and the per-thread enclave
// context.
//
// ecall(e, fn) runs fn "inside" enclave e: it charges the entry cost, sets
// the thread's current enclave, runs fn, charges the exit cost. ocall(fn)
// temporarily leaves the current enclave (exit + re-entry costs) to run fn
// untrusted — the only way enclave code may touch the OS.
//
// Buffer-marshalling variants perform the SDK's boundary memcpy so baseline
// implementations pay the real copy cost the paper measures (its Fig. 11
// "Native" series peaks at the L1 size precisely because of this copy).
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "sgxsim/cost_model.hpp"
#include "sgxsim/enclave.hpp"
#include "util/cycles.hpp"

namespace ea::sgxsim {

// Enclave the calling thread currently executes in (kUntrusted outside).
EnclaveId current_enclave() noexcept;

// Global transition statistics (process-wide, relaxed atomics).
struct TransitionStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t cycles_burned = 0;
  std::uint64_t paging_events = 0;
};

TransitionStats transition_stats() noexcept;
void reset_transition_stats() noexcept;

namespace detail {

// Charges one-way entry cost (plus EPC paging pressure) and flips the
// thread context. Exposed for the worker loop, which keeps a thread inside
// an enclave across many actor executions (the core EActors optimisation).
void enter_enclave(Enclave& e);
void exit_enclave() noexcept;

}  // namespace detail

// RAII enclave entry. Entering the enclave a thread is already inside is a
// no-op (matches how the SDK treats nested ECalls within one enclave: they
// are simply not needed).
class EnclaveScope {
 public:
  explicit EnclaveScope(Enclave& e);
  ~EnclaveScope();
  EnclaveScope(const EnclaveScope&) = delete;
  EnclaveScope& operator=(const EnclaveScope&) = delete;

 private:
  bool entered_ = false;
  EnclaveId previous_ = kUntrusted;  // restored (re-entered) on destruction
};

// Synchronous ECall: run `fn` inside enclave `e`.
template <typename Fn>
decltype(auto) ecall(Enclave& e, Fn&& fn) {
  EnclaveScope scope(e);
  return std::forward<Fn>(fn)();
}

// Synchronous OCall: run `fn` outside the current enclave. When called from
// untrusted context it is free, as in real SGX.
template <typename Fn>
decltype(auto) ocall(Fn&& fn);

// SDK-style marshalled ECall: copies `in` into an enclave-side buffer
// (the generated bridge code's memcpy), runs fn(enclave_buffer), copies
// fn's result buffer back out into `out` (capped at out.size()).
// Returns bytes written to `out`.
std::size_t ecall_marshalled(
    Enclave& e, std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
    std::size_t (*fn)(void* ctx, std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out),
    void* ctx);

namespace detail {
void leave_for_ocall(EnclaveId& saved);
void reenter_after_ocall(EnclaveId saved);
}  // namespace detail

template <typename Fn>
decltype(auto) ocall(Fn&& fn) {
  EnclaveId saved = kUntrusted;
  detail::leave_for_ocall(saved);
  struct Reenter {
    EnclaveId saved;
    ~Reenter() { detail::reenter_after_ocall(saved); }
  } reenter{saved};
  return std::forward<Fn>(fn)();
}

}  // namespace ea::sgxsim
