#include "sgxsim/trusted_rng.hpp"

#include "crypto/rng.hpp"
#include "sgxsim/cost_model.hpp"
#include "util/cycles.hpp"

namespace ea::sgxsim {

void trusted_read_rand(std::span<std::uint8_t> out) {
  util::burn_cycles(cost_model().rng_cycles_per_byte * out.size());
  crypto::secure_random(out);
}

}  // namespace ea::sgxsim
