// sgx_read_rand equivalent.
//
// The SDK's trusted RNG pulls from the hardware DRBG and is slow; the paper
// pinpoints it as the secure-sum bottleneck for large vectors (§6.3.1:
// "A detailed analysis revealed the source of the performance degradation
// is a slow sgx_read_rand() SGX SDK function"). The simulation charges
// rng_cycles_per_byte from the cost model for every byte produced.
#pragma once

#include <cstdint>
#include <span>

namespace ea::sgxsim {

// Fills `out` with random bytes at trusted-RNG speed.
void trusted_read_rand(std::span<std::uint8_t> out);

}  // namespace ea::sgxsim
