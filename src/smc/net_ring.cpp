#include "smc/net_ring.hpp"

#include <cstring>
#include <stdexcept>

#include "core/runtime.hpp"
#include "sgxsim/attestation.hpp"
#include "util/logging.hpp"

namespace ea::smc {
namespace {

// Deterministic initial secrets so tests can predict the expected sum
// (same generator as the channel/TCP ring deployments).
Vec initial_secret(int index, std::size_t dim) {
  Vec v(dim);
  std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
  for (std::size_t i = 0; i < dim; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    v[i] = static_cast<Element>(z ^ (z >> 31));
  }
  return v;
}

// Wire frame: [u32 len][u32 epoch][u64 ctr][sealed], len covering
// everything after itself. The AEAD nonce counter is (epoch << 32) | ctr
// and the AAD binds {epoch, ctr, sender index}, so a frame can neither be
// replayed across reconnects nor spliced between links.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::uint32_t kMaxFrameLen = 1u << 16;

void build_aad(std::uint8_t out[16], std::uint32_t epoch, std::uint64_t ctr,
               std::uint32_t sender) {
  util::store_le32(out, epoch);
  util::store_le64(out + 4, ctr);
  util::store_le32(out + 12, sender);
}

void drain_mbox_to_pools(concurrent::Mbox& mbox) noexcept {
  concurrent::Node* burst[net::kRequestBurst];
  std::size_t got;
  while ((got = mbox.pop_burst(burst, net::kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease(burst[b]).reset();
    }
  }
}

}  // namespace

NetRingParty::NetRingParty(std::string name, int index, SmcConfig config,
                           crypto::AeadKey prev_key, crypto::AeadKey next_key,
                           concurrent::Mbox* requests,
                           concurrent::Mbox* results)
    : core::Actor(std::move(name)),
      config_(config),
      index_(index),
      prev_key_(prev_key),
      next_key_(next_key),
      requests_(requests),
      results_(results) {}

NetRingParty::~NetRingParty() { drain_owned_mboxes(); }

void NetRingParty::construct(core::Runtime& rt) {
  secret_ = initial_secret(index_, config_.dim);
  if (index_ == 0) rnd_.resize(config_.dim);
  pool_ = &rt.public_pool();
  // Reserve the reassembly buffer up front so steady-state appends do not
  // allocate on the message path.
  rx_buf_.reserve(2 * kMaxFrameLen);
  out_cache_.reserve(8 + config_.dim * sizeof(Element));
}

void NetRingParty::on_restart() {
  // A failure may have interrupted a partial rx append: the buffer can no
  // longer be trusted to sit on a frame boundary, so drop it. If that loses
  // stream sync, the parser poisons the link and the upstream peer redials
  // a fresh (higher-epoch) connection — the retransmit machinery re-feeds
  // the lost token.
  rx_buf_.clear();
  if (!out_cache_.empty()) send_pending_ = true;
}

void NetRingParty::on_quarantine() { drain_owned_mboxes(); }

void NetRingParty::drain_owned_mboxes() noexcept {
  drain_mbox_to_pools(accepts_);
  drain_mbox_to_pools(in_data_);
  drain_mbox_to_pools(out_status_);
  drain_mbox_to_pools(out_events_);
}

bool NetRingParty::pump_net() {
  bool progress = false;
  concurrent::Node* burst[net::kRequestBurst];
  std::size_t got;

  // Inbound connections from the ACCEPTER: subscribe each to the READER
  // (reusing the notification node as the request). The latest connection
  // wins; the superseded socket is handed to the CLOSER.
  while ((got = accepts_.pop_burst(burst, net::kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::Node* node = burst[b];
      auto id = static_cast<net::SocketId>(node->tag);
      if (in_socket_ >= 0) {
        if (concurrent::Node* close_req = pool_->get()) {
          close_req->tag = static_cast<std::uint64_t>(in_socket_);
          close_req->size = 0;
          net_.closer->input().push(close_req);
        } else {
          EA_WARN("smc", "%s: pool exhausted, superseded socket leaked until "
                  "teardown", name().c_str());
        }
        rx_buf_.clear();
      }
      in_socket_ = id;
      net::ReadSubscribe sub;
      sub.socket = id;
      sub.data = &in_data_;
      sub.pool = nullptr;  // READER default pool
      net::write_struct(*node, sub);
      net_.reader->requests().push(node);
    }
    progress = true;
  }

  // Inbound ring bytes (zero-size node = reset).
  while ((got = in_data_.pop_burst(burst, net::kReadBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease lease(burst[b]);
      if (static_cast<net::SocketId>(burst[b]->tag) != in_socket_) continue;
      if (burst[b]->size == 0) {
        ++resets_seen_;
        rx_buf_.clear();
        // Close our end as well: on a half-close (or an injected spurious
        // EOF) the fd can still be alive, and the upstream peer only learns
        // the link died when its READER sees our close — which is what
        // makes its reconnector redial.
        if (in_socket_ >= 0) {
          if (concurrent::Node* close_req = pool_->get()) {
            close_req->tag = static_cast<std::uint64_t>(in_socket_);
            close_req->size = 0;
            net_.closer->input().push(close_req);
          }
        }
        in_socket_ = -1;
        continue;
      }
      const std::uint8_t* p = burst[b]->payload();
      rx_buf_.insert(rx_buf_.end(), p, p + burst[b]->size);
    }
    progress = true;
  }

  // Outbound link transitions from the reconnector.
  while ((got = out_status_.pop_burst(burst, net::kRequestBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::NodeLease lease(burst[b]);
      net::ConnStatus status;
      if (!net::read_struct(*burst[b], status)) continue;
      if (status.up != 0) {
        out_socket_ = status.socket;
        out_epoch_ = status.epoch;
        out_ctr_ = 0;
        // The downstream peer may have missed the last token: re-forward it
        // on the fresh link (duplicates are deduped by round id).
        if (!out_cache_.empty()) send_pending_ = true;
      } else {
        out_socket_ = -1;
      }
    }
    progress = true;
  }

  // READER events on the outbound socket: the protocol is one-directional,
  // so anything here is a reset (zero-size) or noise. A reset is forwarded
  // to the reconnector as a down note (reusing the node).
  while ((got = out_events_.pop_burst(burst, net::kReadBurst)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::Node* node = burst[b];
      if (node->size == 0 &&
          static_cast<net::SocketId>(node->tag) == out_socket_) {
        ++resets_seen_;
        out_socket_ = -1;
        node->tag = conn_id_;
        recon_control_->push(node);
      } else {
        concurrent::NodeLease(node).reset();
      }
    }
    progress = true;
  }
  return progress;
}

bool NetRingParty::parse_frames() {
  bool progress = false;
  std::size_t consumed = 0;
  while (rx_buf_.size() - consumed >= 4) {
    const std::uint8_t* frame = rx_buf_.data() + consumed;
    std::uint32_t len = util::load_le32(frame);
    if (len < 12 + crypto::kAeadOverhead || len > kMaxFrameLen) {
      // Stream desync or garbage: poison the link. Closing our inbound end
      // resets the upstream peer's outbound socket; its reconnector redials
      // and its cached token is re-sent on the fresh epoch.
      EA_WARN("smc", "%s: bad frame length %u, poisoning inbound link",
              name().c_str(), len);
      if (in_socket_ >= 0) {
        if (concurrent::Node* close_req = pool_->get()) {
          close_req->tag = static_cast<std::uint64_t>(in_socket_);
          close_req->size = 0;
          net_.closer->input().push(close_req);
        }
        in_socket_ = -1;
      }
      rx_buf_.clear();
      return progress;
    }
    if (rx_buf_.size() - consumed < 4 + len) break;  // incomplete frame
    std::uint32_t epoch = util::load_le32(frame + 4);
    std::uint64_t ctr = util::load_le64(frame + 8);
    std::span<const std::uint8_t> sealed(frame + kHeaderBytes, len - 12);
    consumed += 4 + len;

    // Replay/reorder guard: (epoch, ctr) must advance strictly.
    bool fresh = !rx_any_ || epoch > last_rx_epoch_ ||
                 (epoch == last_rx_epoch_ && ctr > last_rx_ctr_);
    if (!fresh) continue;

    std::uint8_t aad[16];
    const int k = config_.parties;
    build_aad(aad, epoch, ctr,
              static_cast<std::uint32_t>((index_ + k - 1) % k));
    auto plain = crypto::open_framed(prev_key_, aad, sealed);
    if (!plain.has_value()) {
      ++auth_failures_;
      EA_WARN("smc", "%s: hop auth failed (epoch %u ctr %llu)",
              name().c_str(), epoch, static_cast<unsigned long long>(ctr));
      continue;
    }
    rx_any_ = true;
    last_rx_epoch_ = epoch;
    last_rx_ctr_ = ctr;
    if (plain->size() < 8) continue;
    std::uint64_t round = util::load_le64(plain->data());
    Vec vec = deserialize(
        std::span<const std::uint8_t>(plain->data() + 8, plain->size() - 8));
    handle_token(round, vec);
    progress = true;
  }
  if (consumed != 0) {
    rx_buf_.erase(rx_buf_.begin(),
                  rx_buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return progress;
}

void NetRingParty::handle_token(std::uint64_t round_id, const Vec& vec) {
  if (vec.size() != config_.dim) return;
  if (index_ == 0) {
    // Ring completion. Only the current unresolved round counts; stale
    // duplicates from retransmissions are dropped.
    if (!round_in_flight_ || round_id != round_id_) return;
    Vec sum = vec;
    sub_in_place(sum, rnd_);
    round_in_flight_ = false;
    ++rounds_completed_;
    if (results_ != nullptr) {
      concurrent::Node* node = pool_->get();
      util::Bytes bytes = serialize(sum);
      if (node != nullptr && bytes.size() <= node->capacity) {
        node->fill(bytes);
        results_->push(node);
      } else {
        concurrent::NodeLease(node).reset();
        EA_WARN("smc", "%s: result dropped (pool/capacity)", name().c_str());
      }
    }
    return;
  }
  // Intermediate party. A duplicate of the round we already forwarded is a
  // retransmission: re-send the *cached* token (idempotent — adding the
  // secret twice would corrupt the sum). A new round id is summed and
  // cached.
  if (round_id == round_id_ && !out_cache_.empty()) {
    ++retransmits_;
    send_pending_ = true;
    return;
  }
  Vec m = vec;
  add_in_place(m, secret_);
  round_id_ = round_id;
  out_cache_.resize(8 + config_.dim * sizeof(Element));
  util::store_le64(out_cache_.data(), round_id);
  util::Bytes body = serialize(m);
  std::memcpy(out_cache_.data() + 8, body.data(), body.size());
  send_pending_ = true;
}

void NetRingParty::start_round() {
  ++round_id_;
  refill_random_trusted(rnd_);
  Vec m = secret_;
  add_in_place(m, rnd_);
  out_cache_.resize(8 + config_.dim * sizeof(Element));
  util::store_le64(out_cache_.data(), round_id_);
  util::Bytes body = serialize(m);
  std::memcpy(out_cache_.data() + 8, body.data(), body.size());
  round_in_flight_ = true;
  idle_polls_ = 0;
  retransmit_after_ = 512;
  send_pending_ = true;
}

bool NetRingParty::send_cached() {
  if (out_cache_.empty()) {
    send_pending_ = false;
    return false;
  }
  if (out_socket_ < 0) {
    send_pending_ = true;  // resent when the reconnector reports up
    return false;
  }
  concurrent::Node* node = pool_->get();
  if (node == nullptr) {
    send_pending_ = true;  // pool pressure: retry next body
    return false;
  }
  std::uint64_t ctr = out_ctr_++ & 0xffffffffull;
  std::uint64_t counter = (static_cast<std::uint64_t>(out_epoch_) << 32) | ctr;
  std::uint8_t aad[16];
  build_aad(aad, out_epoch_, ctr, static_cast<std::uint32_t>(index_));
  util::Bytes sealed =
      crypto::seal_with_counter(next_key_, counter, aad, out_cache_);
  std::uint32_t len = static_cast<std::uint32_t>(12 + sealed.size());
  if (4 + len > node->capacity) {
    concurrent::NodeLease(node).reset();
    EA_WARN("smc", "%s: frame exceeds node capacity, dropped", name().c_str());
    send_pending_ = false;
    return false;
  }
  std::uint8_t* out = node->payload();
  util::store_le32(out, len);
  util::store_le32(out + 4, out_epoch_);
  util::store_le64(out + 8, ctr);
  std::memcpy(out + kHeaderBytes, sealed.data(), sealed.size());
  node->size = 4 + len;
  node->tag = static_cast<std::uint64_t>(out_socket_);
  net_.writer->input().push(node);
  send_pending_ = false;
  return true;
}

bool NetRingParty::body() {
  bool progress = pump_net();
  progress |= parse_frames();

  if (index_ == 0) {
    if (!round_in_flight_ && requests_ != nullptr) {
      if (concurrent::Node* req = requests_->pop()) {
        concurrent::NodeLease lease(req);
        start_round();
        progress = true;
      }
    }
    if (round_in_flight_) {
      // Invocation-counted retransmit timer: a quiet ring with an
      // unresolved round eventually re-sends the masked token (sealed
      // fresh, same round id — every hop dedups).
      if (progress || send_pending_) {
        idle_polls_ = 0;
      } else if (++idle_polls_ >= retransmit_after_) {
        idle_polls_ = 0;
        retransmit_after_ =
            retransmit_after_ < 65536 ? retransmit_after_ * 2 : 65536;
        ++retransmits_;
        send_pending_ = true;
      }
    }
  }

  if (send_pending_) progress |= send_cached();
  return progress;
}

NetRingDeployment install_net_ring(core::Runtime& rt, const SmcConfig& config,
                                   const net::NetSubsystem& net,
                                   net::ReconnectorActor& reconnector) {
  if (config.dynamic) {
    throw std::invalid_argument(
        "net ring requires static secrets: retransmitted hops must be "
        "idempotent");
  }
  const int k = config.parties;

  // Pairwise session keys (attestation model), key[i] securing link
  // i -> i+1.
  std::vector<sgxsim::Enclave*> enclaves(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    enclaves[static_cast<std::size_t>(i)] =
        &rt.enclave("smc.net.e" + std::to_string(i));
  }
  std::vector<crypto::AeadKey> keys(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    auto key = sgxsim::establish_session_key(
        *enclaves[static_cast<std::size_t>(i)],
        *enclaves[static_cast<std::size_t>((i + 1) % k)]);
    if (!key.has_value()) throw std::runtime_error("attestation failed");
    keys[static_cast<std::size_t>(i)] = *key;
  }

  // Driver mboxes outlive the call: parked in a holder actor that never
  // runs (same pattern as install_secure_sum).
  struct MboxHolder : core::Actor {
    using core::Actor::Actor;
    concurrent::Mbox requests;
    concurrent::Mbox results;
    bool body() override { return false; }
  };
  auto holder = std::make_unique<MboxHolder>("smc.net.driver-mboxes");
  MboxHolder* mboxes = holder.get();
  rt.add_actor(std::move(holder));

  NetRingDeployment dep;
  dep.requests = &mboxes->requests;
  dep.results = &mboxes->results;
  for (int i = 0; i < k; ++i) {
    std::string name = "smc.net.p" + std::to_string(i);
    auto party = std::make_unique<NetRingParty>(
        name, i, config, keys[static_cast<std::size_t>((i + k - 1) % k)],
        keys[static_cast<std::size_t>(i)],
        i == 0 ? &mboxes->requests : nullptr,
        i == 0 ? &mboxes->results : nullptr);
    dep.parties.push_back(party.get());
    rt.add_actor(std::move(party), "smc.net.e" + std::to_string(i));
    rt.add_worker("smc.net.w" + std::to_string(i), {i}, {name});
  }

  // K listeners, registered with the ACCEPTER up front; the subscription
  // lives forever, so inbound links heal by simply being re-accepted.
  std::vector<std::uint16_t> ports(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    net::Socket listener = net::Socket::listen_on(0);
    if (!listener.valid()) throw std::runtime_error("net ring listen failed");
    ports[static_cast<std::size_t>(i)] = listener.local_port();
    net::SocketId lid = net.table->add(std::move(listener));
    concurrent::Node* node = rt.public_pool().get();
    if (node == nullptr) throw std::runtime_error("pool exhausted at wiring");
    net::AcceptSubscribe sub;
    sub.listener = lid;
    sub.reply = &dep.parties[static_cast<std::size_t>(i)]->accepts();
    net::write_struct(*node, sub);
    net.accepter->requests().push(node);
  }

  // K outbound links, owned by the reconnector: party i dials party i+1.
  for (int i = 0; i < k; ++i) {
    net::ConnSpec spec;
    std::memcpy(spec.host, "127.0.0.1", sizeof("127.0.0.1"));
    spec.port = ports[static_cast<std::size_t>((i + 1) % k)];
    NetRingParty* party = dep.parties[static_cast<std::size_t>(i)];
    spec.data = &party->out_events();
    spec.status = &party->out_status();
    spec.backoff = core::BackoffPolicy{500, 50'000, 2, 20};
    spec.max_attempts = 0;  // ring links retry forever
    std::uint64_t conn = reconnector.add_connection(spec);
    party->wire(conn, net, &reconnector.control());
  }
  return dep;
}

}  // namespace ea::smc
