// Secure-sum ring over real TCP with self-healing links (DESIGN.md §12).
//
// smc/party_actor.hpp runs the ring over in-process channels;
// smc/tcp_ring.hpp runs it over blocking loopback TCP driven from one
// thread. This deployment combines the two: K party eactors, each in its
// own enclave with its own worker, linked by loopback TCP carried through
// the untrusted system actors (net/actors.hpp) — and the links *heal*:
//
//   * outbound links are owned by the RECONNECTOR (net/reconnector.hpp);
//     a reset is redialed with backoff and the party learns the new
//     socket + epoch from its status mbox;
//   * inbound links re-arrive through the party's ACCEPTER subscription —
//     the listener stays registered forever;
//   * every hop is sealed with the pairwise session key under a
//     (epoch << 32 | counter) nonce schedule, with AAD binding
//     {epoch, counter, sender index}. A reconnect bumps the epoch and
//     restarts the counter, so retransmitted tokens can never reuse a
//     nonce, and the receiver enforces strictly increasing (epoch, ctr) to
//     kill replays;
//   * lost tokens are survived by retransmission: party 0 re-sends its
//     masked vector while a round is unresolved, and intermediate parties
//     cache their last forwarded token per round id, so duplicates are
//     re-forwarded idempotently instead of being re-summed.
//
// Retransmission requires idempotent hops, so this deployment supports
// static secrets only (SmcConfig::dynamic is rejected).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"
#include "crypto/aead.hpp"
#include "net/actors.hpp"
#include "net/reconnector.hpp"
#include "smc/secure_sum.hpp"

namespace ea::smc {

class NetRingParty : public core::Actor {
 public:
  NetRingParty(std::string name, int index, SmcConfig config,
               crypto::AeadKey prev_key, crypto::AeadKey next_key,
               concurrent::Mbox* requests = nullptr,
               concurrent::Mbox* results = nullptr);

  // Wiring performed by install_net_ring() before rt.start().
  concurrent::Mbox& accepts() noexcept { return accepts_; }
  concurrent::Mbox& out_status() noexcept { return out_status_; }
  concurrent::Mbox& out_events() noexcept { return out_events_; }
  void wire(std::uint64_t conn_id, const net::NetSubsystem& net,
            concurrent::Mbox* reconnector_control) {
    conn_id_ = conn_id;
    net_ = net;
    recon_control_ = reconnector_control;
  }

  void construct(core::Runtime& rt) override;
  bool body() override;
  void on_restart() override;
  void on_quarantine() override;
  bool has_pending_work() const override {
    return !in_data_.empty() || !accepts_.empty() ||
           (requests_ != nullptr && !requests_->empty());
  }
  ~NetRingParty() override;

  std::uint64_t state_bytes() const override {
    return 8192 + config_.dim * sizeof(Element) * 4;
  }

  const Vec& secret() const noexcept { return secret_; }

  // --- counters for tests -------------------------------------------------
  std::uint64_t auth_failures() const noexcept { return auth_failures_; }
  std::uint64_t retransmits() const noexcept { return retransmits_; }
  std::uint64_t resets_seen() const noexcept { return resets_seen_; }
  std::uint64_t rounds_completed() const noexcept { return rounds_completed_; }

 private:
  bool pump_net();
  bool parse_frames();
  void handle_token(std::uint64_t round_id, const Vec& vec);
  void start_round();
  bool send_cached();
  void drain_owned_mboxes() noexcept;

  SmcConfig config_;
  int index_;
  crypto::AeadKey prev_key_;
  crypto::AeadKey next_key_;
  concurrent::Mbox* requests_;
  concurrent::Mbox* results_;

  net::NetSubsystem net_;
  concurrent::Mbox* recon_control_ = nullptr;
  std::uint64_t conn_id_ = 0;
  concurrent::Pool* pool_ = nullptr;

  // Mboxes owned by this party, fed by the system actors.
  concurrent::Mbox accepts_;     // ACCEPTER: inbound connections
  concurrent::Mbox in_data_;     // READER: inbound ring bytes
  concurrent::Mbox out_status_;  // RECONNECTOR: ConnStatus notes
  concurrent::Mbox out_events_;  // READER on the outbound socket (resets)

  // Link state.
  net::SocketId in_socket_ = -1;
  net::SocketId out_socket_ = -1;
  std::uint32_t out_epoch_ = 0;
  std::uint64_t out_ctr_ = 0;
  std::uint32_t last_rx_epoch_ = 0;
  std::uint64_t last_rx_ctr_ = 0;
  bool rx_any_ = false;  // nothing received yet: accept any (epoch, ctr)
  util::Bytes rx_buf_;   // frame reassembly

  // Protocol state.
  Vec secret_;
  Vec rnd_;                       // party 0 masking vector
  std::uint64_t round_id_ = 0;    // party 0: current round; others: last seen
  bool round_in_flight_ = false;  // party 0 only
  util::Bytes out_cache_;         // plaintext of the last token sent
  bool send_pending_ = false;     // cached token waiting for link/node

  // Invocation-counted retransmit pacing (party 0): no clocks inside the
  // enclave — idle body() polls are the timer.
  std::uint64_t idle_polls_ = 0;
  std::uint64_t retransmit_after_ = 512;

  std::uint64_t auth_failures_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t resets_seen_ = 0;
  std::uint64_t rounds_completed_ = 0;
};

// The deployment handle: push one (empty) node per invocation into
// `requests`, pop serialized sums from `results`.
struct NetRingDeployment {
  concurrent::Mbox* requests = nullptr;
  concurrent::Mbox* results = nullptr;
  std::vector<NetRingParty*> parties;
};

// Builds the TCP secure-sum ring on top of an installed networking
// subsystem and reconnector: K listeners, K reconnector-owned outbound
// links, K enclaved parties ("smc.net.e<i>") each on its own worker.
// Requires config.dynamic == false (see header comment). Call after
// install_networking()/install_reconnector(), before rt.start().
NetRingDeployment install_net_ring(core::Runtime& rt, const SmcConfig& config,
                                   const net::NetSubsystem& net,
                                   net::ReconnectorActor& reconnector);

}  // namespace ea::smc
