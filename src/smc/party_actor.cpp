#include "smc/party_actor.hpp"

#include "util/logging.hpp"

namespace ea::smc {
namespace {

// Deterministic initial secrets so tests can predict the expected sum.
Vec initial_secret(int index, std::size_t dim) {
  Vec v(dim);
  std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
  for (std::size_t i = 0; i < dim; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    v[i] = static_cast<Element>(z ^ (z >> 31));
  }
  return v;
}

}  // namespace

PartyActor::PartyActor(std::string name, int index, SmcConfig config,
                       concurrent::Mbox* requests, concurrent::Mbox* results,
                       concurrent::Pool* result_pool)
    : core::Actor(std::move(name)),
      config_(config),
      index_(index),
      requests_(requests),
      results_(results),
      result_pool_(result_pool) {}

void PartyActor::construct(core::Runtime& rt) {
  secret_ = initial_secret(index_, config_.dim);
  if (index_ == 0) rnd_.resize(config_.dim);
  if (result_pool_ == nullptr) result_pool_ = &rt.public_pool();

  const int k = config_.parties;
  out_ = connect("smc.ring." + std::to_string(index_));
  in_ = connect("smc.ring." + std::to_string((index_ + k - 1) % k));
}

void PartyActor::start_round() {
  // Refill the masking vector from the trusted RNG on *every* request —
  // the protocol requires fresh randomness per invocation and this is the
  // sgx_read_rand cost the paper highlights.
  refill_random_trusted(rnd_);
  Vec m = secret_;
  add_in_place(m, rnd_);
  if (out_->send(serialize(m))) {
    round_in_flight_ = true;
  } else {
    EA_WARN("smc", "party 0: pool exhausted, dropping request");
  }
}

void PartyActor::finish_round(const Vec& incoming) {
  Vec sum = incoming;
  sub_in_place(sum, rnd_);
  round_in_flight_ = false;
  if (results_ != nullptr) {
    concurrent::Node* node = result_pool_->get();
    if (node != nullptr) {
      util::Bytes bytes = serialize(sum);
      if (bytes.size() <= node->capacity) {
        node->fill(bytes);
        results_->push(node);
      } else {
        concurrent::NodeLease(node).reset();
        EA_WARN("smc", "result larger than node capacity, dropped");
      }
    }
  }
  if (config_.dynamic) update_secret(secret_);
}

bool PartyActor::body() {
  bool progress = false;

  if (index_ == 0) {
    // Serve at most one in-flight invocation; further requests stay queued.
    if (!round_in_flight_ && requests_ != nullptr) {
      if (concurrent::Node* req = requests_->pop()) {
        concurrent::NodeLease lease(req);
        start_round();
        progress = true;
      }
    }
    if (round_in_flight_) {
      if (concurrent::NodeLease msg = in_->recv()) {
        finish_round(deserialize(msg->data()));
        progress = true;
      }
    }
    return progress;
  }

  // Intermediate party: add the secret and forward.
  if (concurrent::NodeLease msg = in_->recv()) {
    Vec m = deserialize(msg->data());
    msg.reset();  // return the node before potentially blocking on send
    add_in_place(m, secret_);
    // send() can fail on pool exhaustion; dropping would lose the round, so
    // spin on the (enclave-safe, syscall-free) send until a node frees up.
    util::Bytes bytes = serialize(m);
    while (!out_->send(bytes)) {
    }
    if (config_.dynamic) {
      // Recompute the secret while the token travels on — the pipelining
      // the single-threaded SDK deployment cannot exploit.
      update_secret(secret_);
    }
    progress = true;
  }
  return progress;
}

SmcDeployment install_secure_sum(core::Runtime& rt, const SmcConfig& config) {
  // The driver mboxes live as long as the runtime: park them in a tiny
  // holder actor that never runs.
  struct MboxHolder : core::Actor {
    using core::Actor::Actor;
    concurrent::Mbox requests;
    concurrent::Mbox results;
    bool body() override { return false; }
  };
  auto holder = std::make_unique<MboxHolder>("smc.driver-mboxes");
  MboxHolder* mboxes = holder.get();
  rt.add_actor(std::move(holder));

  for (int i = 0; i < config.parties; ++i) {
    std::string name = "smc.p" + std::to_string(i);
    std::unique_ptr<PartyActor> party;
    if (i == 0) {
      party = std::make_unique<PartyActor>(name, i, config, &mboxes->requests,
                                           &mboxes->results);
    } else {
      party = std::make_unique<PartyActor>(name, i, config);
    }
    rt.add_actor(std::move(party), "smc.e" + std::to_string(i));
    rt.add_worker("smc.w" + std::to_string(i), {i}, {name});
  }
  return SmcDeployment{&mboxes->requests, &mboxes->results};
}

}  // namespace ea::smc
