// EActors deployment of the secure-sum service (paper Fig. 9a).
//
// Each party is an independent eactor in its own enclave with its own
// worker; hops travel over encrypted channels. In steady state no worker
// ever leaves its enclave — the protocol costs zero transitions, and in the
// dynamic-secret variant each party recomputes its secret while the token
// circulates elsewhere (pipelining the SDK variant cannot have).
//
// Channel topology: party i sends on channel "smc.ring.<i>" and receives on
// "smc.ring.<i-1 mod K>". Party 0 additionally serves a request mbox and
// publishes finished sums to a result mbox (both owned by the caller).
#pragma once

#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"
#include "core/channel.hpp"
#include "core/runtime.hpp"
#include "smc/secure_sum.hpp"

namespace ea::smc {

class PartyActor : public core::Actor {
 public:
  // `index` in [0, config.parties). For index 0 the request/result mboxes
  // and the pool used for result nodes must be provided.
  PartyActor(std::string name, int index, SmcConfig config,
             concurrent::Mbox* requests = nullptr,
             concurrent::Mbox* results = nullptr,
             concurrent::Pool* result_pool = nullptr);

  void construct(core::Runtime& rt) override;
  bool body() override;

  std::uint64_t state_bytes() const override {
    return 4096 + config_.dim * sizeof(Element) * 2;
  }

  const Vec& secret() const noexcept { return secret_; }

 private:
  void start_round();
  void finish_round(const Vec& incoming);

  SmcConfig config_;
  int index_;
  Vec secret_;
  Vec rnd_;
  bool round_in_flight_ = false;

  core::ChannelEnd* out_ = nullptr;
  core::ChannelEnd* in_ = nullptr;
  concurrent::Mbox* requests_;
  concurrent::Mbox* results_;
  concurrent::Pool* result_pool_;
};

// Convenience: builds the full EActors secure-sum deployment — K parties,
// each in its own enclave ("smc.e<i>") with its own worker — and returns
// the request/result mboxes. The caller pushes one (empty) node per
// invocation into `requests` and pops serialized sums from `results`.
struct SmcDeployment {
  concurrent::Mbox* requests = nullptr;
  concurrent::Mbox* results = nullptr;
};

SmcDeployment install_secure_sum(core::Runtime& rt, const SmcConfig& config);

}  // namespace ea::smc
