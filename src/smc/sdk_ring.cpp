#include "smc/sdk_ring.hpp"

#include <stdexcept>

#include "sgxsim/attestation.hpp"
#include "sgxsim/transition.hpp"
#include "sgxsim/trusted_rng.hpp"

namespace ea::smc {
namespace {

Vec initial_secret(int index, std::size_t dim) {
  Vec v(dim);
  std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
  for (std::size_t i = 0; i < dim; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    v[i] = static_cast<Element>(z ^ (z >> 31));
  }
  return v;
}

}  // namespace

SdkSecureSum::SdkSecureSum(SmcConfig config) : config_(config) {
  auto& mgr = sgxsim::EnclaveManager::instance();
  parties_.resize(static_cast<std::size_t>(config_.parties));
  for (int i = 0; i < config_.parties; ++i) {
    Party& p = parties_[static_cast<std::size_t>(i)];
    p.enclave = &mgr.create("smc.sdk.e" + std::to_string(i));
    p.enclave->add_committed(config_.dim * sizeof(Element) * 2);
    p.secret = initial_secret(i, config_.dim);
    if (i == 0) p.rnd.resize(config_.dim);
  }
  // Pairwise session keys between ring neighbours via local attestation —
  // the preparation phase of the protocol.
  for (int i = 0; i < config_.parties; ++i) {
    Party& p = parties_[static_cast<std::size_t>(i)];
    Party& n = parties_[static_cast<std::size_t>((i + 1) % config_.parties)];
    auto key = sgxsim::establish_session_key(*p.enclave, *n.enclave);
    if (!key.has_value()) throw std::runtime_error("attestation failed");
    p.next_key = *key;
    n.prev_key = *key;
  }
}

Vec SdkSecureSum::run_once() {
  const int k = config_.parties;
  util::Bytes wire;  // ciphertext handed between enclaves by the one thread

  // Party 0: generate Rnd, mask, encrypt for party 1.
  {
    Party& p = parties_[0];
    sgxsim::ecall(*p.enclave, [&] {
      refill_random_trusted(p.rnd);
      Vec m = p.secret;
      add_in_place(m, p.rnd);
      wire = crypto::seal_with_counter(p.next_key, p.send_counter++, {},
                                       serialize(m));
    });
  }

  // Parties 1..K-1: decrypt, add secret, re-encrypt for the next hop.
  for (int i = 1; i < k; ++i) {
    Party& p = parties_[static_cast<std::size_t>(i)];
    sgxsim::ecall(*p.enclave, [&] {
      auto plain = crypto::open_framed(p.prev_key, {}, wire);
      if (!plain.has_value()) throw std::runtime_error("SMC hop auth failed");
      Vec m = deserialize(*plain);
      add_in_place(m, p.secret);
      wire = crypto::seal_with_counter(p.next_key, p.send_counter++, {},
                                       serialize(m));
      if (config_.dynamic) update_secret(p.secret);
    });
  }

  // Party 0: decrypt the full ring result and unmask.
  Vec sum;
  {
    Party& p = parties_[0];
    sgxsim::ecall(*p.enclave, [&] {
      auto plain = crypto::open_framed(p.prev_key, {}, wire);
      if (!plain.has_value()) throw std::runtime_error("SMC final auth failed");
      sum = deserialize(*plain);
      sub_in_place(sum, p.rnd);
      if (config_.dynamic) update_secret(p.secret);
    });
  }
  return sum;
}

Vec SdkSecureSum::expected_sum() const {
  Vec sum(config_.dim, 0);
  for (const Party& p : parties_) add_in_place(sum, p.secret);
  return sum;
}

}  // namespace ea::smc
