// SGX-SDK-style deployment of the secure-sum service (paper Fig. 9b).
//
// "Each party is also implemented as an SGX enclave but only a single
// thread executes the protocol by entering and leaving one enclave after
// another." Every hop costs two transitions (leave P_i, enter P_i+1), and
// the dynamic secret update serialises with the protocol because there is
// only one thread. ECalls are used "efficiently": no buffer marshalling —
// the ciphertext is handed over by reference, matching the paper's note
// that transition costs do not depend on the vector size.
#pragma once

#include <memory>
#include <vector>

#include "crypto/aead.hpp"
#include "sgxsim/enclave.hpp"
#include "smc/secure_sum.hpp"

namespace ea::smc {

class SdkSecureSum {
 public:
  explicit SdkSecureSum(SmcConfig config);

  // Executes one invocation of the protocol; returns the computed sum.
  Vec run_once();

  // Element-wise sum of the current secrets (ground truth for tests).
  Vec expected_sum() const;

 private:
  struct Party {
    sgxsim::Enclave* enclave = nullptr;
    Vec secret;
    Vec rnd;                       // party 0 only
    crypto::AeadKey next_key{};    // shared with the successor
    crypto::AeadKey prev_key{};    // shared with the predecessor
    std::uint64_t send_counter = 0;
  };

  SmcConfig config_;
  std::vector<Party> parties_;
};

}  // namespace ea::smc
