#include "smc/secure_sum.hpp"

#include "sgxsim/trusted_rng.hpp"

namespace ea::smc {

void refill_random_trusted(Vec& v) {
  sgxsim::trusted_read_rand(std::span<std::uint8_t>(
      reinterpret_cast<std::uint8_t*>(v.data()), v.size() * sizeof(Element)));
}

}  // namespace ea::smc
