// Secure multi-party sum protocol (paper §5.2, Fig. 8).
//
// K parties, each holding a secret vector, compute the element-wise sum of
// all vectors without revealing any individual vector. Ring protocol:
// P1 masks its secret with a random vector Rnd and passes Secret1+Rnd to
// P2; each subsequent party adds its secret; P1 finally subtracts Rnd.
// Arithmetic is modulo 2^32 (element wraparound), which preserves the
// masking argument. Every hop is encrypted so neither the untrusted runtime
// nor other parties learn partial sums.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace ea::smc {

using Element = std::uint32_t;
using Vec = std::vector<Element>;

struct SmcConfig {
  int parties = 3;
  std::size_t dim = 1;
  // Case #2 of the evaluation: parties recompute their secrets after every
  // completed sum (paper §6.3.2).
  bool dynamic = false;
};

inline void add_in_place(Vec& acc, const Vec& other) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
}

inline void sub_in_place(Vec& acc, const Vec& other) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] -= other[i];
}

// The per-round secret refresh used in the "dynamically computed vectors"
// experiments: a cheap deterministic mix per element, standing in for the
// application-level recomputation the paper applies.
inline void update_secret(Vec& v) {
  for (Element& x : v) {
    x = x * 1664525u + 1013904223u;
    x ^= x >> 13;
    x *= 0x85ebca6bu;
    x ^= x >> 16;
  }
}

inline util::Bytes serialize(const Vec& v) {
  util::Bytes out(v.size() * sizeof(Element));
  for (std::size_t i = 0; i < v.size(); ++i) {
    util::store_le32(out.data() + i * 4, v[i]);
  }
  return out;
}

inline Vec deserialize(std::span<const std::uint8_t> bytes) {
  Vec v(bytes.size() / sizeof(Element));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = util::load_le32(bytes.data() + i * 4);
  }
  return v;
}

// Fills `v` with fresh randomness from the *trusted* RNG — this is the
// sgx_read_rand path the paper identifies as the large-vector bottleneck.
void refill_random_trusted(Vec& v);

}  // namespace ea::smc
