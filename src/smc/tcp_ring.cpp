#include "smc/tcp_ring.hpp"

#include <poll.h>

#include <stdexcept>

#include "sgxsim/attestation.hpp"
#include "sgxsim/transition.hpp"
#include "sgxsim/trusted_rng.hpp"
#include "util/bytes.hpp"

namespace ea::smc {
namespace {

Vec initial_secret(int index, std::size_t dim) {
  Vec v(dim);
  std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
  for (std::size_t i = 0; i < dim; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    v[i] = static_cast<Element>(z ^ (z >> 31));
  }
  return v;
}

void wait_fd(int fd, short events) {
  pollfd pfd{fd, events, 0};
  // Untrusted transport wait: the ring links are host-side loopback TCP;
  // trusted party code only sees sealed frames handed in by this driver.
  // ea-lint: allow-next-line(blocking-syscall)
  ::poll(&pfd, 1, 1000);
}

}  // namespace

TcpSecureSum::TcpSecureSum(SmcConfig config) : config_(config) {
  auto& mgr = sgxsim::EnclaveManager::instance();
  const int k = config_.parties;
  parties_.resize(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    Party& p = parties_[static_cast<std::size_t>(i)];
    p.enclave = &mgr.create("smc.tcp.e" + std::to_string(i));
    p.secret = initial_secret(i, config_.dim);
    if (i == 0) p.rnd.resize(config_.dim);
  }
  // Pairwise session keys (the distributed protocol's preparation phase —
  // in reality this would ride on remote attestation).
  for (int i = 0; i < k; ++i) {
    Party& p = parties_[static_cast<std::size_t>(i)];
    Party& n = parties_[static_cast<std::size_t>((i + 1) % k)];
    auto key = sgxsim::establish_session_key(*p.enclave, *n.enclave);
    if (!key.has_value()) throw std::runtime_error("attestation failed");
    p.next_key = *key;
    n.prev_key = *key;
  }
  // Ring links over loopback TCP: party i connects to party i+1.
  for (int i = 0; i < k; ++i) {
    Party& p = parties_[static_cast<std::size_t>(i)];
    Party& n = parties_[static_cast<std::size_t>((i + 1) % k)];
    net::Socket listener = net::Socket::listen_on(0);
    if (!listener.valid()) throw std::runtime_error("ring listen failed");
    p.to_next = net::Socket::connect_to("127.0.0.1", listener.local_port());
    if (!p.to_next.valid()) throw std::runtime_error("ring connect failed");
    std::optional<net::Socket> accepted;
    for (int attempt = 0; attempt < 1000 && !accepted.has_value(); ++attempt) {
      accepted = listener.accept_nb();
      if (!accepted.has_value()) wait_fd(listener.fd(), POLLIN);
    }
    if (!accepted.has_value()) throw std::runtime_error("ring accept failed");
    n.from_prev = std::move(*accepted);
  }
}

void TcpSecureSum::send_frame(Party& from,
                              std::span<const std::uint8_t> frame) {
  // Network I/O is a system call: the enclave-resident party performs an
  // OCall for it (charged by the simulator when called from inside).
  sgxsim::ocall([&] {
    std::uint8_t len[4];
    util::store_le32(len, static_cast<std::uint32_t>(frame.size()));
    std::size_t sent = 0;
    auto push = [&](std::span<const std::uint8_t> bytes) {
      std::size_t off = 0;
      while (off < bytes.size()) {
        long n = from.to_next.write_nb(bytes.subspan(off));
        if (n < 0) throw std::runtime_error("ring send failed");
        if (n == 0) {
          wait_fd(from.to_next.fd(), POLLOUT);
          continue;
        }
        off += static_cast<std::size_t>(n);
      }
    };
    push(std::span<const std::uint8_t>(len, 4));
    push(frame);
    sent = frame.size();
    (void)sent;
  });
}

util::Bytes TcpSecureSum::recv_frame(Party& at) {
  util::Bytes out;
  sgxsim::ocall([&] {
    auto pull = [&](std::span<std::uint8_t> bytes) {
      std::size_t off = 0;
      while (off < bytes.size()) {
        long n = at.from_prev.read_nb(bytes.subspan(off));
        if (n < 0) throw std::runtime_error("ring recv failed");
        if (n == 0) {
          wait_fd(at.from_prev.fd(), POLLIN);
          continue;
        }
        off += static_cast<std::size_t>(n);
      }
    };
    std::uint8_t len[4];
    pull(len);
    out.resize(util::load_le32(len));
    pull(out);
  });
  return out;
}

Vec TcpSecureSum::run_once() {
  const int k = config_.parties;

  // Party 0: mask and transmit.
  {
    Party& p = parties_[0];
    sgxsim::ecall(*p.enclave, [&] {
      refill_random_trusted(p.rnd);
      Vec m = p.secret;
      add_in_place(m, p.rnd);
      util::Bytes frame =
          crypto::seal_with_counter(p.next_key, p.counter++, {}, serialize(m));
      send_frame(p, frame);
    });
  }
  // Parties 1..K-1: receive over the network, add, transmit.
  for (int i = 1; i < k; ++i) {
    Party& p = parties_[static_cast<std::size_t>(i)];
    sgxsim::ecall(*p.enclave, [&] {
      util::Bytes frame = recv_frame(p);
      auto plain = crypto::open_framed(p.prev_key, {}, frame);
      if (!plain.has_value()) throw std::runtime_error("hop auth failed");
      Vec m = deserialize(*plain);
      add_in_place(m, p.secret);
      util::Bytes next =
          crypto::seal_with_counter(p.next_key, p.counter++, {}, serialize(m));
      send_frame(p, next);
      if (config_.dynamic) update_secret(p.secret);
    });
  }
  // Party 0: receive the full ring result and unmask.
  Vec sum;
  {
    Party& p = parties_[0];
    sgxsim::ecall(*p.enclave, [&] {
      util::Bytes frame = recv_frame(p);
      auto plain = crypto::open_framed(p.prev_key, {}, frame);
      if (!plain.has_value()) throw std::runtime_error("final auth failed");
      sum = deserialize(*plain);
      sub_in_place(sum, p.rnd);
      if (config_.dynamic) update_secret(p.secret);
    });
  }
  return sum;
}

Vec TcpSecureSum::expected_sum() const {
  Vec sum(config_.dim, 0);
  for (const Party& p : parties_) add_in_place(sum, p.secret);
  return sum;
}

}  // namespace ea::smc
