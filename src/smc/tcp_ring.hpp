// Distributed deployment of the secure-sum ring over real TCP.
//
// Paper §5.2: "Usually the protocol targets a distributed setting where
// the individual participants exchange messages over the network. With the
// support of trusted execution all participants can be represented by
// enclaves that are co-located on a single machine. This way costly
// network-based communication between the participants can be avoided."
//
// This class is the *distributed* half of that comparison: the same
// enclave-resident party logic as SdkSecureSum, but every hop crosses a
// loopback TCP connection (length-prefixed frames), paying the syscalls,
// kernel copies and OCall transitions that co-located EActors channels
// avoid. bench_ablation_colocated quantifies the gap.
#pragma once

#include <vector>

#include "crypto/aead.hpp"
#include "net/socket.hpp"
#include "sgxsim/enclave.hpp"
#include "smc/secure_sum.hpp"

namespace ea::smc {

class TcpSecureSum {
 public:
  explicit TcpSecureSum(SmcConfig config);

  // One invocation of the protocol; returns the computed sum.
  Vec run_once();

  Vec expected_sum() const;

 private:
  struct Party {
    sgxsim::Enclave* enclave = nullptr;
    Vec secret;
    Vec rnd;
    crypto::AeadKey next_key{};
    crypto::AeadKey prev_key{};
    std::uint64_t counter = 0;
    net::Socket to_next;    // write side of the i -> i+1 link
    net::Socket from_prev;  // read side of the i-1 -> i link
  };

  // Blocking framed I/O over the non-blocking sockets; these are the
  // network OCalls an enclave-resident party must perform.
  void send_frame(Party& from, std::span<const std::uint8_t> frame);
  util::Bytes recv_frame(Party& at);

  SmcConfig config_;
  std::vector<Party> parties_;
};

}  // namespace ea::smc
