#include "smc/voting.hpp"

#include <stdexcept>

#include "crypto/aead.hpp"
#include "sgxsim/attestation.hpp"
#include "sgxsim/enclave.hpp"
#include "sgxsim/transition.hpp"
#include "sgxsim/trusted_rng.hpp"

namespace ea::smc {

std::optional<Vec> encode_ballot(std::size_t choice, std::size_t candidates) {
  if (choice >= candidates) return std::nullopt;
  Vec ballot(candidates, 0);
  ballot[choice] = 1;
  return ballot;
}

std::size_t winner(const Vec& tally) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < tally.size(); ++i) {
    if (tally[i] > tally[best]) best = i;
  }
  return best;
}

Vec run_election_sdk(const std::vector<std::size_t>& votes,
                     std::size_t candidates) {
  // The secure-sum ring with ballots as the secret vectors. Mirrors
  // SdkSecureSum::run_once but with caller-supplied secrets.
  const std::size_t k = votes.size();
  if (k < 2) throw std::invalid_argument("election needs >= 2 voters");

  struct Voter {
    sgxsim::Enclave* enclave = nullptr;
    Vec ballot;
    crypto::AeadKey next_key{};
    crypto::AeadKey prev_key{};
    std::uint64_t counter = 0;
  };
  auto& mgr = sgxsim::EnclaveManager::instance();
  std::vector<Voter> voters(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto ballot = encode_ballot(votes[i], candidates);
    if (!ballot.has_value()) throw std::invalid_argument("invalid vote");
    voters[i].enclave = &mgr.create("vote.e" + std::to_string(i));
    voters[i].ballot = std::move(*ballot);
  }
  for (std::size_t i = 0; i < k; ++i) {
    Voter& a = voters[i];
    Voter& b = voters[(i + 1) % k];
    auto key = sgxsim::establish_session_key(*a.enclave, *b.enclave);
    if (!key.has_value()) throw std::runtime_error("attestation failed");
    a.next_key = *key;
    b.prev_key = *key;
  }

  Vec rnd(candidates);
  util::Bytes wire;
  sgxsim::ecall(*voters[0].enclave, [&] {
    refill_random_trusted(rnd);
    Vec m = voters[0].ballot;
    add_in_place(m, rnd);
    wire = crypto::seal_with_counter(voters[0].next_key,
                                     voters[0].counter++, {}, serialize(m));
  });
  for (std::size_t i = 1; i < k; ++i) {
    Voter& v = voters[i];
    sgxsim::ecall(*v.enclave, [&] {
      auto plain = crypto::open_framed(v.prev_key, {}, wire);
      if (!plain.has_value()) throw std::runtime_error("vote hop auth failed");
      Vec m = deserialize(*plain);
      add_in_place(m, v.ballot);
      wire = crypto::seal_with_counter(v.next_key, v.counter++, {},
                                       serialize(m));
    });
  }
  Vec tally;
  sgxsim::ecall(*voters[0].enclave, [&] {
    auto plain = crypto::open_framed(voters[0].prev_key, {}, wire);
    if (!plain.has_value()) throw std::runtime_error("vote final auth failed");
    tally = deserialize(*plain);
    sub_in_place(tally, rnd);
  });
  return tally;
}

}  // namespace ea::smc
