// Private voting on top of the secure sum (paper §2.1 cites online voting
// [16] among the data-partitioning applications; §5.2 generalises the
// secure sum to vectors — a ballot is exactly a one-hot vector, and the
// element-wise sum of all ballots is the tally).
//
// Each party contributes one vote for a candidate in [0, candidates); no
// party (and not the untrusted runtime) learns another party's vote, only
// the final histogram. Ballot validity (one-hot) is enforced locally by
// encode_ballot; a malicious voter could still stuff multiple votes — like
// the underlying secure-sum protocol, this assumes semi-honest parties
// (the paper's §2.3 model augments it with per-party enclaves).
#pragma once

#include <optional>

#include "smc/secure_sum.hpp"

namespace ea::smc {

// One-hot ballot for `choice` out of `candidates`; nullopt when the choice
// is out of range.
std::optional<Vec> encode_ballot(std::size_t choice, std::size_t candidates);

// Winning candidate(s) of a tally (lowest index wins ties).
std::size_t winner(const Vec& tally);

// Convenience: runs a complete election over the SDK-style ring — one
// enclave per voter — and returns the tally. Used by tests and examples;
// benchmark-grade deployments use the EActors ring directly.
Vec run_election_sdk(const std::vector<std::size_t>& votes,
                     std::size_t candidates);

}  // namespace ea::smc
