#include "util/affinity.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

namespace ea::util {

int online_cpus() {
  long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

bool pin_current_thread(const std::vector<int>& cpus) {
  if (cpus.empty()) return true;
  const int ncpu = online_cpus();
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int cpu : cpus) {
    if (cpu < 0) continue;
    CPU_SET(cpu % ncpu, &set);
    any = true;
  }
  if (!any) return true;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace ea::util
