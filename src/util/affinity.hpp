// Thread-to-CPU pinning used by workers.
//
// The paper binds each worker to an explicit CPU set (Fig. 2). On machines
// with fewer CPUs than the configuration names, pinning requests are clamped
// so deployments written for larger boxes still run.
#pragma once

#include <cstdint>
#include <vector>

namespace ea::util {

// Pins the calling thread to the given CPU ids (clamped to the CPUs that
// actually exist). An empty vector leaves affinity unchanged.
// Returns true if the affinity call succeeded or was a no-op.
bool pin_current_thread(const std::vector<int>& cpus);

// Number of online CPUs.
int online_cpus();

}  // namespace ea::util
