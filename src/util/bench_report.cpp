#include "util/bench_report.hpp"

#include <cstdio>
#include <ctime>
#include <thread>

#include "util/env.hpp"

namespace ea::util {
namespace {

// Minimal JSON string escaping: the report only ever carries identifiers we
// choose ourselves, but quoting and backslashes must still round-trip.
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// First whitespace-free token of `path`'s contents, or empty.
std::string read_token(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  char buf[256] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string s(buf, n);
  const std::size_t end = s.find_first_of(" \t\r\n");
  return end == std::string::npos ? s : s.substr(0, end);
}

// Commit provenance: EA_GIT_SHA wins (CI sets it); otherwise resolve
// .git/HEAD relative to the working directory, walking a few levels up so
// bench binaries run from build trees still find the repository.
std::string resolve_git_sha() {
  std::string sha = env_str("EA_GIT_SHA", "");
  if (!sha.empty()) return sha;
  for (const char* prefix : {"", "../", "../../", "../../../"}) {
    const std::string git = std::string(prefix) + ".git/";
    std::FILE* probe = std::fopen((git + "HEAD").c_str(), "r");
    if (probe == nullptr) continue;
    char buf[256] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, probe);
    std::fclose(probe);
    std::string head(buf, n);
    if (head.rfind("ref: ", 0) == 0) {
      const std::size_t end = head.find_first_of("\r\n");
      const std::string ref =
          head.substr(5, end == std::string::npos ? end : end - 5);
      sha = read_token(git + ref);
    } else {
      const std::size_t end = head.find_first_of(" \t\r\n");
      sha = end == std::string::npos ? head : head.substr(0, end);
    }
    if (!sha.empty()) return sha;
  }
  return "unknown";
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  ::gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

void BenchReport::add(const std::string& scenario, const std::string& mode,
                      double x, double value, const std::string& unit) {
  entries_.push_back(Entry{scenario, mode, x, value, unit, false, {}});
}

void BenchReport::add(const std::string& scenario, const std::string& mode,
                      double x, double value, const std::string& unit,
                      const BenchPercentiles& pcts) {
  entries_.push_back(Entry{scenario, mode, x, value, unit, true, pcts});
}

std::string BenchReport::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + escaped(name_) + "\",\n";
  out += "  \"schema_version\": 3,\n";
  out += "  \"git_sha\": \"" + escaped(resolve_git_sha()) + "\",\n";
  out += "  \"threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"timestamp\": \"" + escaped(utc_timestamp()) + "\",\n";
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += "    {\"scenario\": \"" + escaped(e.scenario) + "\", \"mode\": \"" +
           escaped(e.mode) + "\", \"x\": " + number(e.x) +
           ", \"value\": " + number(e.value) + ", \"unit\": \"" +
           escaped(e.unit) + "\"";
    if (e.has_pcts) {
      out += ", \"p50_us\": " + number(e.pcts.p50_us) +
             ", \"p99_us\": " + number(e.pcts.p99_us) +
             ", \"p999_us\": " + number(e.pcts.p999_us);
    }
    out += "}";
    out += (i + 1 < entries_.size()) ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

bool BenchReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_json();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace ea::util
