#include "util/bench_report.hpp"

#include <cstdio>

namespace ea::util {
namespace {

// Minimal JSON string escaping: the report only ever carries identifiers we
// choose ourselves, but quoting and backslashes must still round-trip.
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void BenchReport::add(const std::string& scenario, const std::string& mode,
                      double x, double value, const std::string& unit) {
  entries_.push_back(Entry{scenario, mode, x, value, unit});
}

std::string BenchReport::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + escaped(name_) + "\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += "    {\"scenario\": \"" + escaped(e.scenario) + "\", \"mode\": \"" +
           escaped(e.mode) + "\", \"x\": " + number(e.x) +
           ", \"value\": " + number(e.value) + ", \"unit\": \"" +
           escaped(e.unit) + "\"}";
    out += (i + 1 < entries_.size()) ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

bool BenchReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_json();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace ea::util
