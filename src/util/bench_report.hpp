// Machine-readable benchmark reports.
//
// Benchmarks historically print human-oriented CSV; from the batching work
// onward they additionally emit a small JSON document so the performance
// trajectory of the message plane can be tracked mechanically across PRs
// (scripts/check.sh validates the schema in its bench smoke leg).
//
// Schema (version 3):
//   {
//     "bench": "<name>",
//     "schema_version": 3,
//     "git_sha": "<hex or \"unknown\">",
//     "threads": <hardware_concurrency>,
//     "timestamp": "<ISO-8601 UTC>",
//     "results": [
//       {"scenario": "...", "mode": "...", "x": <number>,
//        "value": <number>, "unit": "...",
//        "p50_us": <number>, "p99_us": <number>, "p999_us": <number>},
//       ...
//     ]
//   }
//
// The header stamp (v2) records provenance: which commit produced the
// numbers (EA_GIT_SHA overrides; falls back to reading .git/HEAD), how
// much hardware concurrency the host reported, and when the run happened —
// so committed BENCH_*.json artifacts are comparable across machines.
// The percentile fields (v3) are OPTIONAL per row: throughput rows omit
// them, latency rows carry the p50/p99/p999 tail measured by
// util::LatencyHist (latency_hist.hpp) in microseconds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ea::util {

// Optional tail-latency annotation for a result row (microseconds).
struct BenchPercentiles {
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : name_(std::move(bench_name)) {}

  // Records one measurement: `scenario` is the workload, `mode` the variant
  // under comparison (e.g. "per_node" vs "burst"), `x` the swept parameter
  // (worker count), `value` the measurement in `unit`.
  void add(const std::string& scenario, const std::string& mode, double x,
           double value, const std::string& unit);

  // Same, with the row's latency tail attached (schema v3 optional fields).
  void add(const std::string& scenario, const std::string& mode, double x,
           double value, const std::string& unit,
           const BenchPercentiles& pcts);

  std::size_t size() const noexcept { return entries_.size(); }

  // Serialises the report (schema above). Returns the JSON text.
  std::string to_json() const;

  // Writes the JSON to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Entry {
    std::string scenario;
    std::string mode;
    double x;
    double value;
    std::string unit;
    bool has_pcts = false;
    BenchPercentiles pcts;
  };

  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace ea::util
