#include "util/bytes.hpp"

#include <stdexcept>

namespace ea::util {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_digit(hex[i]);
    int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("bad hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(std::span<const std::uint8_t> data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

std::string random_printable(std::uint64_t seed, std::size_t n) {
  // splitmix64 — deterministic so benches are reproducible run-to-run.
  std::string out;
  out.resize(n);
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    out[i] = static_cast<char>('!' + (z % 94));  // printable ASCII
  }
  return out;
}

}  // namespace ea::util
