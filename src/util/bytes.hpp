// Small byte-manipulation helpers shared by the crypto substrate, the
// persistent object store and the benchmarks.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace ea::util {

using Bytes = std::vector<std::uint8_t>;

// Little-endian load/store (ChaCha20/Poly1305 and the POS on-disk format
// are defined little-endian).
inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // x86 is little-endian; memcpy keeps it UB-free.
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof(v));
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

inline std::uint32_t rotl32(std::uint32_t v, int c) {
  return (v << c) | (v >> (32 - c));
}

// Hex encoding/decoding for test vectors and debug output.
std::string to_hex(std::span<const std::uint8_t> data);
Bytes from_hex(std::string_view hex);

// Converts a string to a byte vector (no terminator).
Bytes to_bytes(std::string_view s);
std::string to_string(std::span<const std::uint8_t> data);

// Constant-time comparison; returns true when equal. Used for MAC checks.
bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

// Zeroes a buffer through a volatile pointer so the store cannot be elided
// by dead-store elimination. Sealing/unsealing staging buffers hold secrets
// (plaintext actor state, migration bundles) and must be wiped before the
// backing allocation is released; the enclave lint's seal-plaintext-zeroize
// rule enforces that every sealing call site does so.
inline void secure_zero(void* p, std::size_t n) {
  volatile std::uint8_t* vp = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    vp[i] = 0;
  }
}

inline void secure_zero(Bytes& b) {
  if (!b.empty()) {
    secure_zero(b.data(), b.size());
  }
}

// Deterministic pseudo-random printable string of length `n` (benchmark
// payloads: the paper fills ping-pong messages with pseudo-random strings).
std::string random_printable(std::uint64_t seed, std::size_t n);

}  // namespace ea::util
