// Cycle-accurate timing helpers.
//
// The SGX simulator charges enclave transitions in CPU cycles (the unit the
// paper and the HotCalls measurement study use), so we need a cheap cycle
// counter and a way to burn a given number of cycles without sleeping —
// a real EENTER/EEXIT keeps the core busy, it does not yield.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace ea::util {

// Reads the CPU timestamp counter. Monotonic per-core; good enough for
// charging simulated costs and for coarse benchmark timing.
inline std::uint64_t rdtsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  // Fallback: nanosecond clock scaled to a nominal 1 GHz "cycle".
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#endif
}

// Busy-burns approximately `cycles` CPU cycles. Used by the SGX cost model
// to emulate the latency of enclave transitions, paging, and the trusted
// random number generator.
inline void burn_cycles(std::uint64_t cycles) {
  if (cycles == 0) return;
  const std::uint64_t start = rdtsc();
  while (rdtsc() - start < cycles) {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#endif
  }
}

}  // namespace ea::util
