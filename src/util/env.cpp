#include "util/env.hpp"

#include <cstdlib>

namespace ea::util {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

double bench_scale() { return env_double("EA_BENCH_SCALE", 1.0); }

}  // namespace ea::util
