// Environment-variable helpers used by benchmarks and examples to scale
// workloads (this repository runs on boxes much smaller than the paper's
// 8-hyper-thread Xeon).
#pragma once

#include <cstdint>
#include <string>

namespace ea::util {

// Returns the integer value of `name`, or `fallback` if unset/unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

// Returns the floating-point value of `name`, or `fallback`.
double env_double(const char* name, double fallback);

// Returns the string value of `name`, or `fallback`.
std::string env_str(const char* name, const std::string& fallback);

// Global benchmark scale factor (EA_BENCH_SCALE, default 1.0). Benchmarks
// multiply their iteration counts by this so a laptop run finishes quickly
// while a beefier box can approach the paper's workload sizes.
double bench_scale();

}  // namespace ea::util
