// Test-only fault injection; this TU is compiled exclusively when the
// build sets EA_FAILPOINTS (see src/util/CMakeLists.txt) and is absent
// from tier-1 / production binaries.
#include "util/failpoint.hpp"

#if defined(EA_FAILPOINTS)

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ea::util::failpoint {
namespace {

enum class Action : std::uint8_t { kOff, kReturn, kAbort };

constexpr std::size_t kMaxSites = 128;
constexpr std::size_t kMaxName = 64;
constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

struct Site {
  char name[kMaxName] = {};
  std::uint64_t evals = 0;
  std::uint64_t hits = 0;
  Action action = Action::kOff;
  long value = 0;
  std::uint32_t prob_pct = 100;
  // kReturn: how many more firings remain (1 for `once`, kUnlimited for
  // `return`). kAbort: countdown of evaluations until the abort fires.
  std::uint64_t remaining = 0;
};

// The registry is tiny and touched only in fault-injection builds, so a
// single spinlock around all of it is fine; std::atomic_flag keeps the
// subsystem free of std::mutex (futex) and of any dependency on the
// concurrent module.
struct SpinLock {
  std::atomic_flag flag = ATOMIC_FLAG_INIT;
  void lock() noexcept {
    while (flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { flag.clear(std::memory_order_release); }
};

SpinLock g_lock;
Site g_sites[kMaxSites];
std::size_t g_count = 0;
bool g_env_loaded = false;
// Deterministic per-process stream for N% actions; no wall-clock seeding so
// fault runs replay identically.
std::uint64_t g_rng = 0x9e3779b97f4a7c15ull;

std::uint32_t next_percent_locked() noexcept {
  g_rng = g_rng * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<std::uint32_t>((g_rng >> 33) % 100);
}

Site* find_or_add_locked(const char* name) noexcept {
  if (name == nullptr || name[0] == '\0') {
    return nullptr;
  }
  for (std::size_t i = 0; i < g_count; ++i) {
    if (std::strncmp(g_sites[i].name, name, kMaxName) == 0) {
      return &g_sites[i];
    }
  }
  if (g_count == kMaxSites || std::strlen(name) >= kMaxName) {
    return nullptr;  // registry full / name too long: the site stays inert
  }
  Site& s = g_sites[g_count++];
  std::strncpy(s.name, name, kMaxName - 1);
  return &s;
}

// Parses the spec grammar ([N%] action [(arg)]); returns false and leaves
// the out-params untouched on malformed input.
bool parse_spec(const char* spec, Action& action, long& value,
                std::uint32_t& prob, std::uint64_t& remaining) noexcept {
  if (spec == nullptr) {
    return false;
  }
  const char* p = spec;
  while (*p == ' ') ++p;
  std::uint32_t pct = 100;
  bool has_pct = false;
  const char* digits_end = p;
  while (*digits_end >= '0' && *digits_end <= '9') ++digits_end;
  if (digits_end != p && *digits_end == '%') {
    pct = static_cast<std::uint32_t>(std::strtoul(p, nullptr, 10));
    if (pct > 100) {
      return false;
    }
    has_pct = true;
    p = digits_end + 1;
  }
  const char* word_end = p;
  while ((*word_end >= 'a' && *word_end <= 'z') || *word_end == '_') {
    ++word_end;
  }
  const std::size_t word_len = static_cast<std::size_t>(word_end - p);
  long arg = 0;
  bool has_arg = false;
  if (*word_end == '(') {
    char* close = nullptr;
    arg = std::strtol(word_end + 1, &close, 10);
    if (close == word_end + 1 || close == nullptr || *close != ')' ||
        *(close + 1) != '\0') {
      return false;
    }
    has_arg = true;
  } else if (*word_end != '\0' && word_len > 0) {
    return false;
  }

  auto word_is = [&](const char* w) {
    return word_len == std::strlen(w) && std::strncmp(p, w, word_len) == 0;
  };
  if (word_is("off")) {
    action = Action::kOff;
    value = 0;
    prob = 100;
    remaining = 0;
  } else if (word_is("return") || (word_len == 0 && has_pct)) {
    // Bare "N%" is shorthand for "N%return".
    action = Action::kReturn;
    value = has_arg ? arg : 0;
    prob = pct;
    remaining = kUnlimited;
  } else if (word_is("once")) {
    action = Action::kReturn;
    value = has_arg ? arg : 0;
    prob = pct;
    remaining = 1;
  } else if (word_is("abort")) {
    if (has_arg && arg < 1) {
      return false;
    }
    action = Action::kAbort;
    value = 0;
    prob = pct;
    remaining = has_arg ? static_cast<std::uint64_t>(arg) : 1;
  } else {
    return false;
  }
  return true;
}

int load_env_locked() noexcept {
  const char* env = std::getenv("EA_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') {
    return 0;
  }
  int installed = 0;
  char buf[kMaxName + 64];
  const char* tok = env;
  while (*tok != '\0') {
    const char* end = tok;
    while (*end != '\0' && *end != ';' && *end != ',') ++end;
    const std::size_t len = static_cast<std::size_t>(end - tok);
    if (len > 0 && len < sizeof(buf)) {
      std::memcpy(buf, tok, len);
      buf[len] = '\0';
      char* eq = std::strchr(buf, '=');
      if (eq != nullptr) {
        *eq = '\0';
        Action action{};
        long value = 0;
        std::uint32_t prob = 100;
        std::uint64_t remaining = 0;
        if (parse_spec(eq + 1, action, value, prob, remaining)) {
          if (Site* s = find_or_add_locked(buf)) {
            s->action = action;
            s->value = value;
            s->prob_pct = prob;
            s->remaining = remaining;
            ++installed;
          }
        }
      }
    }
    tok = (*end == '\0') ? end : end + 1;
  }
  return installed;
}

bool eval_impl(const char* site, long* out) noexcept {
  g_lock.lock();
  if (!g_env_loaded) {
    g_env_loaded = true;
    load_env_locked();
  }
  Site* s = find_or_add_locked(site);
  if (s == nullptr) {
    g_lock.unlock();
    return false;
  }
  ++s->evals;
  if (s->action == Action::kOff) {
    g_lock.unlock();
    return false;
  }
  if (s->prob_pct < 100 && next_percent_locked() >= s->prob_pct) {
    g_lock.unlock();
    return false;
  }
  if (s->action == Action::kAbort) {
    if (s->remaining > 1) {
      --s->remaining;
      g_lock.unlock();
      return false;
    }
    ++s->hits;
    std::abort();
  }
  // kReturn (covers `once` via remaining == 1).
  ++s->hits;
  if (out != nullptr) {
    *out = s->value;
  }
  if (s->remaining != kUnlimited && --s->remaining == 0) {
    s->action = Action::kOff;
  }
  g_lock.unlock();
  return true;
}

}  // namespace

bool eval(const char* site) noexcept { return eval_impl(site, nullptr); }

bool eval_value(const char* site, long& out) noexcept {
  return eval_impl(site, &out);
}

bool set(const char* site, const char* spec) noexcept {
  Action action{};
  long value = 0;
  std::uint32_t prob = 100;
  std::uint64_t remaining = 0;
  if (!parse_spec(spec, action, value, prob, remaining)) {
    return false;
  }
  g_lock.lock();
  Site* s = find_or_add_locked(site);
  if (s == nullptr) {
    g_lock.unlock();
    return false;
  }
  s->action = action;
  s->value = value;
  s->prob_pct = prob;
  s->remaining = remaining;
  g_lock.unlock();
  return true;
}

void clear(const char* site) noexcept {
  g_lock.lock();
  for (std::size_t i = 0; i < g_count; ++i) {
    if (std::strncmp(g_sites[i].name, site, kMaxName) == 0) {
      g_sites[i].action = Action::kOff;
      g_sites[i].prob_pct = 100;
      g_sites[i].remaining = 0;
      break;
    }
  }
  g_lock.unlock();
}

void clear_all() noexcept {
  g_lock.lock();
  for (std::size_t i = 0; i < g_count; ++i) {
    g_sites[i].action = Action::kOff;
    g_sites[i].prob_pct = 100;
    g_sites[i].remaining = 0;
  }
  g_lock.unlock();
}

void reset_counters() noexcept {
  g_lock.lock();
  for (std::size_t i = 0; i < g_count; ++i) {
    g_sites[i].evals = 0;
    g_sites[i].hits = 0;
  }
  g_lock.unlock();
}

std::uint64_t evals(const char* site) noexcept {
  std::uint64_t n = 0;
  g_lock.lock();
  for (std::size_t i = 0; i < g_count; ++i) {
    if (std::strncmp(g_sites[i].name, site, kMaxName) == 0) {
      n = g_sites[i].evals;
      break;
    }
  }
  g_lock.unlock();
  return n;
}

std::uint64_t hits(const char* site) noexcept {
  std::uint64_t n = 0;
  g_lock.lock();
  for (std::size_t i = 0; i < g_count; ++i) {
    if (std::strncmp(g_sites[i].name, site, kMaxName) == 0) {
      n = g_sites[i].hits;
      break;
    }
  }
  g_lock.unlock();
  return n;
}

std::vector<std::string> sites() {
  std::vector<std::string> out;
  g_lock.lock();
  out.reserve(g_count);
  for (std::size_t i = 0; i < g_count; ++i) {
    out.emplace_back(g_sites[i].name);
  }
  g_lock.unlock();
  return out;
}

int load_env() noexcept {
  g_lock.lock();
  g_env_loaded = true;
  const int n = load_env_locked();
  g_lock.unlock();
  return n;
}

bool write_report(const char* path) noexcept {
  // Raw open/write so this works in a crash-torture child right before
  // _exit(); the file is tiny and a single write per line is plenty.
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  bool ok = true;
  g_lock.lock();
  for (std::size_t i = 0; i < g_count && ok; ++i) {
    char line[kMaxName + 48];
    const int n =
        std::snprintf(line, sizeof(line), "%s %llu %llu\n", g_sites[i].name,
                      static_cast<unsigned long long>(g_sites[i].evals),
                      static_cast<unsigned long long>(g_sites[i].hits));
    ok = n > 0 && ::write(fd, line, static_cast<std::size_t>(n)) == n;
  }
  g_lock.unlock();
  ::close(fd);
  return ok;
}

}  // namespace ea::util::failpoint

#endif  // EA_FAILPOINTS
