// Failpoint fault injection (test-only; compiled under EA_FAILPOINTS).
//
// A failpoint is a named site planted on a risk path — an mmap that can
// fail, an AEAD open that can reject, a socket read that can return short —
// where tests inject the failure deterministically instead of hoping the
// kernel produces it. Sites are named `module.object.event`
// (e.g. "pos.set.link", "net.socket.read"); see DESIGN.md §10 for the
// conventions and the list of shipped sites.
//
// Configuration, via the EA_FAILPOINTS environment variable
// ("site=spec;site=spec", parsed lazily at the first evaluation) or the
// programmatic set() below. The spec grammar:
//
//   off            site inert (evaluations are still counted)
//   return         fire on every evaluation, injected value 0
//   return(v)      fire with value v (v is a signed decimal)
//   once / once(v) fire exactly once, then fall back to off
//   abort          SIGABRT the process at the next evaluation
//   abort(k)       SIGABRT at the k-th evaluation after installation
//                  (1-based) — the crash-torture kill-point primitive
//   N%<action>     any of the above gated by an N percent coin flip,
//                  e.g. "25%return(-1)"; bare "N%" means "N%return"
//
// Zero overhead when off: without -DEA_FAILPOINTS the macros below expand
// to constants, this header declares nothing, and failpoint.cpp is not
// even compiled — the production binary contains no failpoint symbols
// (scripts/check.sh verifies this with nm).
#pragma once

#if defined(EA_FAILPOINTS)

#include <cstdint>
#include <string>
#include <vector>

namespace ea::util::failpoint {

// Evaluates the site: registers it on first sight, counts the evaluation,
// and returns true when a configured action fires. An armed abort action
// does not return.
bool eval(const char* site) noexcept;

// Like eval(), but stores the action's injected value into `out` when the
// action fires (`out` is untouched otherwise).
bool eval_value(const char* site, long& out) noexcept;

// Installs `spec` (grammar above) on `site`, replacing any previous
// action. Returns false on a parse error, leaving the site unchanged.
bool set(const char* site, const char* spec) noexcept;

void clear(const char* site) noexcept;  // action back to off; counters kept
void clear_all() noexcept;              // every site back to off
void reset_counters() noexcept;         // zero every site's evals/hits

std::uint64_t evals(const char* site) noexcept;  // total evaluations
std::uint64_t hits(const char* site) noexcept;   // evaluations that fired

// Names of every site evaluated or configured so far, in registration
// order.
std::vector<std::string> sites();

// Parses the EA_FAILPOINTS environment variable. Called lazily by the
// first eval(); call explicitly after setenv() in tests. Returns the
// number of specs installed (parse errors are skipped).
int load_env() noexcept;

// Writes one "site <evals> <hits>" line per registered site — the
// crash-torture harness runs a counting pass first and samples its
// kill-points from this report. Returns false on I/O failure.
bool write_report(const char* path) noexcept;

}  // namespace ea::util::failpoint

// Pure kill-point / counting site (no branch at the call site).
#define EA_FAIL_POINT(site) ((void)::ea::util::failpoint::eval(site))
// Branch-style site: true when the configured action fires.
#define EA_FAIL_TRIGGERED(site) (::ea::util::failpoint::eval(site))
// Value-injecting site: fires ? (var = injected value, true) : false.
#define EA_FAIL_VALUE(site, var) (::ea::util::failpoint::eval_value(site, var))

#else  // !EA_FAILPOINTS — every site compiles to nothing.

#define EA_FAIL_POINT(site) ((void)0)
#define EA_FAIL_TRIGGERED(site) (false)
#define EA_FAIL_VALUE(site, var) ((void)(var), false)

#endif
