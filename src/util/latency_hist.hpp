// Fixed-bucket latency histogram for tail-latency reporting.
//
// HDR-style bucketing: values below kSubBuckets get exact (linear)
// buckets; above that, each power-of-two octave is split into kSubBuckets
// sub-buckets, bounding relative error at 1/kSubBuckets (~3% with 32) over
// the full range up to ~2^40. Everything is plain arrays — no allocation
// after construction and no syscalls, so per-thread histograms can be
// recorded on hot paths and merge()d at the end of a run (bench_c100k's
// driver processes ship their buckets over a pipe the same way).
//
// Units are the caller's choice; the benches record microseconds and feed
// percentile() straight into BenchReport's p50_us/p99_us/p999_us fields
// (bench_report.hpp, schema v3).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ea::util {

class LatencyHist {
 public:
  static constexpr std::uint32_t kSubBucketBits = 5;  // 32 sub-buckets
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr std::uint32_t kOctaves = 36;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kOctaves) * kSubBuckets;

  void record(std::uint64_t value) noexcept {
    ++counts_[index_of(value)];
    ++total_;
    if (value > max_) max_ = value;
  }

  void merge(const LatencyHist& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t max() const noexcept { return max_; }

  // Value at quantile q in [0, 1] (0.5 = median). Returns the upper bound
  // of the bucket containing the q-th sample — i.e. at most one bucket
  // width (~3% relative) above the true order statistic. 0 when empty.
  std::uint64_t percentile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // Rank of the target sample, 1-based; q=1 maps to the last sample.
    std::uint64_t rank = static_cast<std::uint64_t>(q * total_);
    if (rank == 0) rank = 1;
    if (rank > total_) rank = total_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        const std::uint64_t hi = upper_bound(i);
        return hi < max_ ? hi : max_;
      }
    }
    return max_;
  }

  // Raw bucket access for serialisation (bench driver → parent pipe).
  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return counts_;
  }
  void add_bucket(std::size_t i, std::uint64_t n) noexcept {
    if (i >= kBuckets) return;
    counts_[i] += n;
    total_ += n;
    const std::uint64_t hi = upper_bound(i);
    if (n != 0 && hi > max_) max_ = hi;
  }

  static std::size_t index_of(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    // Octave = position of the highest set bit above the sub-bucket bits;
    // the sub-bucket is the next kSubBucketBits bits below it.
    std::uint32_t msb = 63u - static_cast<std::uint32_t>(
                                  __builtin_clzll(value));
    std::uint32_t octave = msb - kSubBucketBits + 1;
    if (octave >= kOctaves) {
      octave = kOctaves - 1;
      return static_cast<std::size_t>(octave + 1) * kSubBuckets - 1;
    }
    const std::uint32_t sub = static_cast<std::uint32_t>(
        (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
    return static_cast<std::size_t>(octave) * kSubBuckets + sub;
  }

  // Largest value mapping to bucket `i` (inclusive).
  static std::uint64_t upper_bound(std::size_t i) noexcept {
    const std::uint32_t octave = static_cast<std::uint32_t>(i / kSubBuckets);
    const std::uint32_t sub = static_cast<std::uint32_t>(i % kSubBuckets);
    if (octave == 0) return sub;
    const std::uint32_t shift = octave - 1;
    const std::uint64_t base = static_cast<std::uint64_t>(kSubBuckets)
                               << shift;
    return base + (static_cast<std::uint64_t>(sub + 1) << shift) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace ea::util
