#include "util/logging.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace ea::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void init_log_level_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("EA_LOG");
    if (env == nullptr) return;
    struct Entry {
      const char* name;
      LogLevel level;
    };
    static constexpr Entry kEntries[] = {
        {"trace", LogLevel::kTrace}, {"debug", LogLevel::kDebug},
        {"info", LogLevel::kInfo},   {"warn", LogLevel::kWarn},
        {"error", LogLevel::kError}, {"off", LogLevel::kOff},
    };
    for (const auto& e : kEntries) {
      if (std::strcmp(env, e.name) == 0) {
        set_log_level(e.level);
        return;
      }
    }
  });
}

bool log_enabled(LogLevel level) {
  init_log_level_from_env();
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void log_raw(LogLevel level, const char* tag, const char* fmt, ...) {
  char buf[1024];
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  int off = std::snprintf(buf, sizeof(buf), "[%ld.%03ld] %-5s %-8s ",
                          static_cast<long>(ts.tv_sec % 100000),
                          ts.tv_nsec / 1000000, level_name(level), tag);
  if (off < 0) return;
  va_list args;
  va_start(args, fmt);
  int body = std::vsnprintf(buf + off, sizeof(buf) - static_cast<size_t>(off) - 1,
                            fmt, args);
  va_end(args);
  if (body < 0) return;
  size_t len = static_cast<size_t>(off) + static_cast<size_t>(body);
  if (len >= sizeof(buf) - 1) len = sizeof(buf) - 2;
  buf[len++] = '\n';
  [[maybe_unused]] ssize_t rc = ::write(STDERR_FILENO, buf, len);
}

}  // namespace ea::util
