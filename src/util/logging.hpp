// Lightweight leveled logger for the EActors framework.
//
// Actors run on hot paths where iostream locking is unacceptable, so the
// logger formats into a stack buffer and writes with a single write(2).
// The active level is process-global and lock-free to query.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>

namespace ea::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Sets the process-wide log level. Thread-safe.
void set_log_level(LogLevel level);

// Returns the current process-wide log level. Thread-safe.
LogLevel log_level();

// Initialises the level from the EA_LOG environment variable
// (trace|debug|info|warn|error|off). Called lazily on first log.
void init_log_level_from_env();

// printf-style log statement. `tag` names the subsystem (e.g. "core").
void log_raw(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

bool log_enabled(LogLevel level);

}  // namespace ea::util

#define EA_LOG(level, tag, ...)                              \
  do {                                                       \
    if (::ea::util::log_enabled(level)) {                    \
      ::ea::util::log_raw((level), (tag), __VA_ARGS__);      \
    }                                                        \
  } while (0)

#define EA_TRACE(tag, ...) EA_LOG(::ea::util::LogLevel::kTrace, tag, __VA_ARGS__)
#define EA_DEBUG(tag, ...) EA_LOG(::ea::util::LogLevel::kDebug, tag, __VA_ARGS__)
#define EA_INFO(tag, ...) EA_LOG(::ea::util::LogLevel::kInfo, tag, __VA_ARGS__)
#define EA_WARN(tag, ...) EA_LOG(::ea::util::LogLevel::kWarn, tag, __VA_ARGS__)
#define EA_ERROR(tag, ...) EA_LOG(::ea::util::LogLevel::kError, tag, __VA_ARGS__)
