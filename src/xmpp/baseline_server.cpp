#include "xmpp/baseline_server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include "crypto/rng.hpp"
#include "util/cycles.hpp"
#include "util/logging.hpp"
#include "xmpp/e2e.hpp"

namespace ea::xmpp {

BaselineServer::BaselineServer(BaselineOptions options)
    : options_(options) {}

BaselineServer::~BaselineServer() { stop(); }

void BaselineServer::start() {
  listener_ = net::Socket::listen_on(options_.port);
  if (!listener_.valid()) {
    throw std::runtime_error("baseline: cannot bind listener");
  }
  port_ = listener_.local_port();
  stop_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (options_.flavor == BaselineFlavor::kEjabberd) {
    dispatcher_thread_ = std::thread([this] { dispatcher_loop(); });
  } else {
    // JabberD2's c2s -> router IPC hop.
    if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, router_fds_) != 0) {
      throw std::runtime_error("baseline: socketpair failed");
    }
    router_thread_ = std::thread([this] { router_loop(); });
  }
}

void BaselineServer::stop() {
  if (stop_.exchange(true, std::memory_order_relaxed)) return;
  // Shutdown (not close) while accept_loop may still be polling the fd;
  // the close happens after the join.
  listener_.shutdown_both();
  queue_cv_.notify_all();
  if (router_fds_[0] >= 0) {
    ::shutdown(router_fds_[0], SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  if (router_thread_.joinable()) router_thread_.join();
  for (int& fd : router_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  // Shut the sockets down (not close: closing would race the connection
  // threads' concurrent reads of the descriptor — found by TSan) to
  // unblock the connection threads, join them, and only then close.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->socket.shutdown_both();
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    conn->socket.close();
  }
}

void BaselineServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 50) <= 0) continue;
    auto accepted = listener_.accept_nb();
    if (!accepted.has_value()) continue;
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*accepted);
    Connection* raw = conn.get();
    // Thread-per-connection: the JabberD2-style architecture the paper
    // measures against.
    conn->thread = std::thread([this, raw] { connection_loop(raw); });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void BaselineServer::connection_loop(Connection* conn) {
  StanzaStream stream;
  char buf[4096];
  while (!stop_.load(std::memory_order_relaxed) && conn->socket.valid()) {
    pollfd pfd{conn->socket.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 50) <= 0) continue;
    long n = conn->socket.read_nb(std::span<std::uint8_t>(
        reinterpret_cast<std::uint8_t*>(buf), sizeof(buf)));
    if (n < 0) break;
    if (n == 0) continue;
    stream.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    while (auto event = stream.next()) {
      switch (event->type) {
        case StanzaStream::EventType::kStreamOpen:
          send_to(*conn, make_stream_open("baseline"));
          break;
        case StanzaStream::EventType::kStreamClose:
          drop(*conn);
          return;
        case StanzaStream::EventType::kStanza:
          if (options_.flavor == BaselineFlavor::kEjabberd) {
            // Funnel through the central dispatcher (managed-runtime
            // message passing).
            std::lock_guard<std::mutex> lock(queue_mu_);
            queue_.push_back(DispatchItem{conn, std::move(event->node)});
            queue_cv_.notify_one();
          } else {
            // c2s -> router hop over the local socket, re-serialised like
            // JabberD2's inter-component protocol.
            forward_to_router(conn, event->node);
          }
          break;
      }
    }
    if (stream.failed()) break;
  }
  drop(*conn);
}

void BaselineServer::forward_to_router(Connection* conn,
                                       const XmlNode& stanza) {
  std::string wire = stanza.serialize();
  std::string frame;
  frame.resize(sizeof(Connection*) + wire.size());
  std::memcpy(frame.data(), &conn, sizeof(Connection*));
  std::memcpy(frame.data() + sizeof(Connection*), wire.data(), wire.size());
  std::lock_guard<std::mutex> lock(router_write_mu_);
  if (::send(router_fds_[0], frame.data(), frame.size(), MSG_NOSIGNAL) < 0 &&
      !stop_.load(std::memory_order_relaxed)) {
    EA_WARN("baseline", "router forward failed");
  }
}

void BaselineServer::router_loop() {
  std::vector<char> buf(64 * 1024);
  while (!stop_.load(std::memory_order_relaxed)) {
    ssize_t n = ::recv(router_fds_[1], buf.data(), buf.size(), 0);
    if (n <= 0) {
      if (stop_.load(std::memory_order_relaxed)) return;
      continue;
    }
    if (static_cast<std::size_t>(n) <= sizeof(Connection*)) continue;
    Connection* conn;
    std::memcpy(&conn, buf.data(), sizeof(Connection*));
    // The router re-parses the stanza, as JabberD2 components do.
    std::string_view wire(buf.data() + sizeof(Connection*),
                          static_cast<std::size_t>(n) - sizeof(Connection*));
    std::size_t pos = 0;
    auto stanza = parse_element(wire, pos);
    if (stanza.has_value()) handle_stanza(*conn, *stanza);
  }
}

void BaselineServer::dispatcher_loop() {
  while (true) {
    DispatchItem item{nullptr, {}};
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (stop_.load(std::memory_order_relaxed) && queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    // Per-message runtime overhead of the managed runtime.
    util::burn_cycles(options_.dispatch_overhead_cycles);
    handle_stanza(*item.conn, item.stanza);
  }
}

void BaselineServer::handle_stanza(Connection& conn, const XmlNode& stanza) {
  if (stanza.name == "auth") {
    const std::string* jid = stanza.attr("jid");
    if (jid == nullptr || jid->empty()) {
      send_to(conn, make_error("bad-auth"));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      conn.jid = *jid;
      conn.authed = true;
      directory_[*jid] = &conn;
    }
    send_to(conn, make_auth_success());
    return;
  }
  if (!conn.authed) {
    send_to(conn, make_error("not-authorized"));
    return;
  }

  if (stanza.name == "presence") {
    const std::string* room = stanza.attr("to");
    if (room != nullptr && !room->empty()) {
      std::lock_guard<std::mutex> lock(state_mu_);
      auto& members = rooms_[*room];
      bool present = false;
      for (const auto& m : members) present |= (m == conn.jid);
      if (!present) members.push_back(conn.jid);
    }
    send_to(conn, make_presence_join(*stanza.attr("to"), conn.jid));
    return;
  }

  if (stanza.name == "message") {
    const std::string* to = stanza.attr("to");
    const std::string* type = stanza.attr("type");
    const XmlNode* body = stanza.child("body");
    if (to == nullptr || body == nullptr) return;

    if (type != nullptr && *type == "groupchat") {
      process_groupchat(conn.jid, *to, body->text);
      return;
    }

    Connection* dest = nullptr;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      auto it = directory_.find(*to);
      if (it != directory_.end()) dest = it->second;
    }
    if (dest == nullptr) {
      send_to(conn, make_error("recipient-unavailable"));
      return;
    }
    if (send_to(*dest, make_chat_message(conn.jid, *to, body->text))) {
      routed_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
}

void BaselineServer::process_groupchat(const std::string& from,
                                       const std::string& room,
                                       const std::string& body) {
  auto plain = open_body(user_key(from, kCtxGroupUp), body);
  if (!plain.has_value()) return;

  std::vector<std::pair<std::string, Connection*>> targets;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto it = rooms_.find(room);
    if (it == rooms_.end()) return;
    for (const std::string& member : it->second) {
      auto dit = directory_.find(member);
      if (dit != directory_.end()) targets.emplace_back(member, dit->second);
    }
  }
  crypto::FastRng rng(
      nonce_seed_.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed));
  for (auto& [member, dest] : targets) {
    std::string sealed =
        seal_body(user_key(member, kCtxGroup), rng.next(), *plain);
    if (send_to(*dest,
                make_groupchat_message(room + "/" + from, member, sealed))) {
      routed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool BaselineServer::send_to(Connection& conn, std::string_view bytes) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (!conn.socket.valid()) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    long n = conn.socket.write_nb(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(bytes.data()) + sent,
        bytes.size() - sent));
    if (n < 0) return false;
    if (n == 0) {
      pollfd pfd{conn.socket.fd(), POLLOUT, 0};
      if (::poll(&pfd, 1, 1000) <= 0) return false;
      continue;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void BaselineServer::drop(Connection& conn) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!conn.jid.empty()) {
      auto it = directory_.find(conn.jid);
      if (it != directory_.end() && it->second == &conn) directory_.erase(it);
      for (auto& [room, members] : rooms_) std::erase(members, conn.jid);
    }
  }
  // Shutdown only — the fd stays valid until stop() has joined this
  // connection's thread, so concurrent send_to()/stop() never race a
  // close. Taken under write_mu so an in-flight send_to drains first;
  // its next write then fails cleanly with EPIPE.
  std::lock_guard<std::mutex> lock(conn.write_mu);
  conn.socket.shutdown_both();
}

}  // namespace ea::xmpp
