// Baseline XMPP servers standing in for the paper's comparison systems.
//
// The paper benches against vanilla JabberD2 (C, multi-process, blocking
// I/O, coarse shared state) and ejabberd (Erlang). Neither can be run here,
// so we implement architectural stand-ins that exhibit the cost structure
// those systems lose by (see DESIGN.md, substitutions):
//
//  * kJabberd2: one blocking thread per connection; routing state behind a
//    single global mutex. JabberD2 is *multi-process*: every stanza crosses
//    from the c2s component to the router/session-manager over a local
//    socket and is re-serialised + re-parsed on the way. The stand-in
//    reproduces that hop with a SOCK_SEQPACKET socketpair into a router
//    thread.
//  * kEjabberd: same connection handling, but every stanza is funnelled
//    through a central dispatcher queue served by a small scheduler pool,
//    with per-message runtime overhead — modelling the managed-runtime
//    indirection. Saturates at a lower plateau, like EJB in Fig. 14.
//
// Protocol semantics (auth, O2O routing, group-chat re-encryption) are
// identical to the EActors service so benchmarks measure architecture, not
// features.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "xmpp/stanza.hpp"

namespace ea::xmpp {

enum class BaselineFlavor { kJabberd2, kEjabberd };

struct BaselineOptions {
  BaselineFlavor flavor = BaselineFlavor::kJabberd2;
  std::uint16_t port = 0;  // 0 = pick a free port
  // Cycles of per-stanza runtime overhead in the kEjabberd flavor.
  std::uint64_t dispatch_overhead_cycles = 25000;
};

class BaselineServer {
 public:
  explicit BaselineServer(BaselineOptions options);
  ~BaselineServer();

  BaselineServer(const BaselineServer&) = delete;
  BaselineServer& operator=(const BaselineServer&) = delete;

  void start();
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  std::uint64_t messages_routed() const noexcept {
    return routed_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    net::Socket socket;
    std::thread thread;
    std::mutex write_mu;
    std::string jid;
    bool authed = false;
  };

  struct DispatchItem {
    Connection* conn;
    XmlNode stanza;
  };

  void accept_loop();
  void connection_loop(Connection* conn);
  void dispatcher_loop();
  void router_loop();
  void forward_to_router(Connection* conn, const XmlNode& stanza);
  void handle_stanza(Connection& conn, const XmlNode& stanza);
  void process_groupchat(const std::string& from, const std::string& room,
                         const std::string& body);
  bool send_to(Connection& conn, std::string_view bytes);
  void drop(Connection& conn);

  BaselineOptions options_;
  std::uint16_t port_ = 0;
  net::Socket listener_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::thread dispatcher_thread_;
  std::thread router_thread_;
  int router_fds_[2] = {-1, -1};  // SOCK_SEQPACKET pair: [0] conns, [1] router
  std::mutex router_write_mu_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  // The coarse global routing lock both baselines share.
  std::mutex state_mu_;
  std::map<std::string, Connection*> directory_;
  std::map<std::string, std::vector<std::string>> rooms_;

  // kEjabberd dispatcher queue.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<DispatchItem> queue_;

  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> nonce_seed_{1};
};

}  // namespace ea::xmpp
