#include "xmpp/client.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "crypto/rng.hpp"
#include "util/logging.hpp"
#include "xmpp/e2e.hpp"

namespace ea::xmpp {
namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

std::uint64_t client_seed() {
  std::uint8_t seed[8];
  crypto::secure_random(seed);
  std::uint64_t v;
  std::memcpy(&v, seed, sizeof(v));
  return v;
}

}  // namespace

Client::Client() : rng_(client_seed()) {}

bool Client::connect(std::uint16_t port, const std::string& jid,
                     int timeout_ms) {
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  port_ = port;
  stream_ = StanzaStream{};  // fresh parser state on every (re)dial; queued
                             // messages already received are kept
  socket_ = net::Socket::connect_to("127.0.0.1", port);
  if (!socket_.valid()) return false;
  // Wait for the non-blocking connect to finish.
  if (!wait_fd(socket_.fd(), POLLOUT, timeout_ms)) return false;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(socket_.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    close();
    return false;
  }
  jid_ = jid;

  if (!send_all(make_stream_open("ea-xmpp"), remaining_ms(deadline)) ||
      !send_all(make_auth(jid), remaining_ms(deadline))) {
    close();
    return false;
  }
  // Expect the server's stream open, then <success/>.
  while (Clock::now() < deadline) {
    auto msg = recv(remaining_ms(deadline));
    if (!msg.has_value()) break;
    if (msg->kind == "success") return true;
    if (msg->kind == "stream:error" || msg->kind == "failure") break;
  }
  close();
  return false;
}

bool Client::join_room(const std::string& room, int timeout_ms) {
  if (!send_all(make_presence_join(jid_, room), timeout_ms)) return false;
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    auto msg = recv(remaining_ms(deadline));
    if (!msg.has_value()) return false;
    if (msg->kind == "presence" && msg->from == room) {
      // Remember the membership so an automatic reconnect can restore it.
      if (std::find(rooms_.begin(), rooms_.end(), room) == rooms_.end()) {
        rooms_.push_back(room);
      }
      return true;
    }
    // Anything else (e.g. early chat traffic) goes back to the queue tail.
    queue_.push_back(std::move(*msg));
  }
  return false;
}

std::optional<std::string> Client::add_contact(const std::string& contact,
                                               int timeout_ms) {
  XmlNode iq;
  iq.name = "iq";
  iq.set_attr("type", "set");
  iq.set_attr("id", "roster-" + contact);
  XmlNode item;
  item.name = "item";
  item.set_attr("jid", contact);
  iq.children.push_back(std::move(item));
  if (!send_all(iq.serialize(), timeout_ms)) return std::nullopt;

  // Expect the immediate presence status (the iq result may interleave).
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::optional<std::string> status;
  while (Clock::now() < deadline) {
    auto msg = recv(remaining_ms(deadline));
    if (!msg.has_value()) break;
    if (msg->kind == "presence" && msg->from == contact) {
      status = msg->body;
      break;
    }
    if (msg->kind != "iq") queue_.push_back(std::move(*msg));
  }
  return status;
}

bool Client::send_chat(const std::string& to, std::string_view plaintext) {
  std::string sealed =
      seal_body(user_key(to, kCtxO2O), rng_.next(), plaintext);
  return send_all(make_chat_message(jid_, to, sealed));
}

bool Client::send_groupchat(const std::string& room,
                            std::string_view plaintext) {
  std::string sealed =
      seal_body(user_key(jid_, kCtxGroupUp), rng_.next(), plaintext);
  return send_all(make_groupchat_message(jid_, room, sealed));
}

void Client::enqueue_event(const StanzaStream::Event& event) {
  if (event.type == StanzaStream::EventType::kStreamOpen) return;
  if (event.type == StanzaStream::EventType::kStreamClose) {
    close();
    try_reconnect();
    return;
  }
  const XmlNode& stanza = event.node;
  Message msg;
  msg.kind = stanza.name;
  if (const std::string* from = stanza.attr("from")) msg.from = *from;

  if (stanza.name == "presence") {
    // Presence updates carry their availability in `body`.
    if (const std::string* type = stanza.attr("type")) msg.body = *type;
  }

  if (stanza.name == "message") {
    const std::string* type = stanza.attr("type");
    msg.kind = type != nullptr ? *type : "chat";
    if (const XmlNode* body = stanza.child("body")) {
      std::string_view ctx = msg.kind == "groupchat" ? kCtxGroup : kCtxO2O;
      auto plain = open_body(user_key(jid_, ctx), body->text);
      if (plain.has_value()) {
        msg.body = std::move(*plain);
      } else {
        msg.body = body->text;
        msg.decrypt_ok = false;
      }
    }
  }
  queue_.push_back(std::move(msg));
}

bool Client::pump(int timeout_ms) {
  if (!socket_.valid()) return false;
  char buf[4096];
  if (timeout_ms > 0 && !wait_fd(socket_.fd(), POLLIN, timeout_ms)) {
    return false;
  }
  long n = socket_.read_nb(std::span<std::uint8_t>(
      reinterpret_cast<std::uint8_t*>(buf), sizeof(buf)));
  if (n < 0) {
    close();
    try_reconnect();
    return false;
  }
  if (n == 0) return false;
  stream_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  while (auto event = stream_.next()) enqueue_event(*event);
  return true;
}

std::optional<Client::Message> Client::recv(int timeout_ms) {
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (!queue_.empty()) {
      Message msg = std::move(queue_.front());
      queue_.pop_front();
      return msg;
    }
    if (!socket_.valid()) return std::nullopt;
    int left = remaining_ms(deadline);
    if (left == 0 && Clock::now() >= deadline) return std::nullopt;
    pump(left > 0 ? left : 1);
  }
}

std::optional<Client::Message> Client::poll() {
  if (queue_.empty() && socket_.valid()) {
    // Drain without waiting.
    char buf[4096];
    long n;
    while ((n = socket_.read_nb(std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(buf), sizeof(buf)))) > 0) {
      stream_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
    while (auto event = stream_.next()) enqueue_event(*event);
    if (n < 0) {
      close();
      try_reconnect();
    }
  }
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

bool Client::send_all(std::string_view bytes, int timeout_ms) {
  if (!socket_.valid() && !reconnecting_) {
    // A previous failure may have been repaired already; if not, repair now
    // so a fire-and-forget sender recovers without its own retry loop.
    if (!try_reconnect()) return false;
  }
  if (!socket_.valid()) return false;
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    long n = socket_.write_nb(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(bytes.data()) + sent,
        bytes.size() - sent));
    if (n < 0) {
      close();
      // The stream restarts from scratch on reconnect, so the whole stanza
      // is resent — never a partial suffix spliced into a fresh stream.
      if (try_reconnect()) return send_all(bytes, timeout_ms);
      return false;
    }
    if (n == 0) {
      if (Clock::now() >= deadline) return false;
      wait_fd(socket_.fd(), POLLOUT, remaining_ms(deadline));
      continue;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Client::enable_reconnect(ClientReconnectPolicy policy) {
  policy.enabled = true;
  reconnect_ = policy;
}

bool Client::try_reconnect() {
  if (!reconnect_.enabled || reconnecting_ || port_ == 0 || jid_.empty()) {
    return false;
  }
  reconnecting_ = true;
  core::BackoffSchedule schedule(reconnect_.backoff, rng_.next());
  bool ok = false;
  for (std::uint32_t a = 0; a < reconnect_.max_attempts && !ok; ++a) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(schedule.next_delay_us()));
    ok = connect(port_, jid_, reconnect_.attempt_timeout_ms);
  }
  if (ok) {
    // Restore room memberships under the fresh session.
    for (const std::string& room : rooms_) {
      if (!join_room(room, reconnect_.attempt_timeout_ms)) {
        EA_WARN("xmpp", "client %s: failed to re-join %s after reconnect",
                jid_.c_str(), room.c_str());
      }
    }
    ++reconnects_;
    EA_INFO("xmpp", "client %s: reconnected (total %llu)", jid_.c_str(),
            static_cast<unsigned long long>(reconnects_));
  }
  reconnecting_ = false;
  return ok;
}

void Client::close() { socket_.close(); }

}  // namespace ea::xmpp
