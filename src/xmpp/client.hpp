// Blocking XMPP client (the role libstrophe plays in the paper's
// evaluation §6.4): connects, authenticates, joins rooms, exchanges O2O and
// group-chat messages, and performs the service-level encryption that
// matches the server in e2e.hpp. Used by tests, examples and the benchmark
// load generators; each benchmark client runs in its own thread, as in the
// paper.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/backoff.hpp"
#include "crypto/rng.hpp"
#include "net/socket.hpp"
#include "xmpp/stanza.hpp"

namespace ea::xmpp {

// Opt-in self-healing for the client: when the connection dies mid-use, the
// client redials the remembered port with capped exponential backoff,
// re-authenticates under the same jid and re-joins every room it had
// joined. Messages in flight during the outage are lost (the service keeps
// no per-client queue) — callers that need delivery resend until
// acknowledged, as the soak tests do.
struct ClientReconnectPolicy {
  bool enabled = false;
  core::BackoffPolicy backoff{/*initial_us=*/2000, /*max_us=*/200'000,
                              /*multiplier=*/2, /*jitter_pct=*/20};
  std::uint32_t max_attempts = 8;  // per outage
  int attempt_timeout_ms = 2000;
};

class Client {
 public:
  Client();

  struct Message {
    std::string kind;  // "chat" | "groupchat" | "presence" | other name
    std::string from;
    std::string body;  // decrypted plaintext for chat/groupchat
    bool decrypt_ok = true;
  };

  // Connects to 127.0.0.1:port, opens the stream and authenticates as
  // `jid`. Returns false on any failure within the timeout.
  bool connect(std::uint16_t port, const std::string& jid,
               int timeout_ms = 5000);

  // Joins a group chat and waits for the presence acknowledgement.
  bool join_room(const std::string& room, int timeout_ms = 5000);

  // Subscribes to `contact`'s presence (roster add). Returns the contact's
  // current availability ("available"/"unavailable"); nullopt on failure.
  // Subsequent changes arrive as kind=="presence" messages from the
  // contact with the availability in `body`.
  std::optional<std::string> add_contact(const std::string& contact,
                                         int timeout_ms = 5000);

  // O2O: end-to-end encrypts `plaintext` for `to` and sends.
  bool send_chat(const std::string& to, std::string_view plaintext);

  // Group chat: encrypts for the server (sender context) and sends.
  bool send_groupchat(const std::string& room, std::string_view plaintext);

  // Returns the next inbound message, waiting up to timeout_ms. Presence
  // acks and iq results are surfaced too (kind = stanza name).
  std::optional<Message> recv(int timeout_ms = 5000);

  // Non-blocking variant: returns a message only if one is already
  // available or arrives without waiting.
  std::optional<Message> poll();

  bool connected() const noexcept { return socket_.valid(); }
  const std::string& jid() const noexcept { return jid_; }

  // Arms automatic reconnection (see ClientReconnectPolicy). May be called
  // before or after connect().
  void enable_reconnect(ClientReconnectPolicy policy = {});

  // Completed automatic reconnections.
  std::uint64_t reconnects() const noexcept { return reconnects_; }

  void close();

 private:
  bool send_all(std::string_view bytes, int timeout_ms = 5000);
  // Reads whatever is available (waiting up to timeout_ms for the first
  // byte) and converts stream events into queued messages.
  bool pump(int timeout_ms);
  void enqueue_event(const StanzaStream::Event& event);
  // Redials/re-authenticates/re-joins after an observed disconnect.
  // Returns true once the session is restored.
  bool try_reconnect();

  net::Socket socket_;
  StanzaStream stream_;
  std::string jid_;
  crypto::FastRng rng_;
  std::deque<Message> queue_;

  ClientReconnectPolicy reconnect_;
  std::uint16_t port_ = 0;              // remembered dial target
  std::vector<std::string> rooms_;      // re-joined after reconnect
  bool reconnecting_ = false;           // guards recursion via connect()
  std::uint64_t reconnects_ = 0;
};

}  // namespace ea::xmpp
