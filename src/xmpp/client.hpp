// Blocking XMPP client (the role libstrophe plays in the paper's
// evaluation §6.4): connects, authenticates, joins rooms, exchanges O2O and
// group-chat messages, and performs the service-level encryption that
// matches the server in e2e.hpp. Used by tests, examples and the benchmark
// load generators; each benchmark client runs in its own thread, as in the
// paper.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "crypto/rng.hpp"
#include "net/socket.hpp"
#include "xmpp/stanza.hpp"

namespace ea::xmpp {

class Client {
 public:
  Client();

  struct Message {
    std::string kind;  // "chat" | "groupchat" | "presence" | other name
    std::string from;
    std::string body;  // decrypted plaintext for chat/groupchat
    bool decrypt_ok = true;
  };

  // Connects to 127.0.0.1:port, opens the stream and authenticates as
  // `jid`. Returns false on any failure within the timeout.
  bool connect(std::uint16_t port, const std::string& jid,
               int timeout_ms = 5000);

  // Joins a group chat and waits for the presence acknowledgement.
  bool join_room(const std::string& room, int timeout_ms = 5000);

  // Subscribes to `contact`'s presence (roster add). Returns the contact's
  // current availability ("available"/"unavailable"); nullopt on failure.
  // Subsequent changes arrive as kind=="presence" messages from the
  // contact with the availability in `body`.
  std::optional<std::string> add_contact(const std::string& contact,
                                         int timeout_ms = 5000);

  // O2O: end-to-end encrypts `plaintext` for `to` and sends.
  bool send_chat(const std::string& to, std::string_view plaintext);

  // Group chat: encrypts for the server (sender context) and sends.
  bool send_groupchat(const std::string& room, std::string_view plaintext);

  // Returns the next inbound message, waiting up to timeout_ms. Presence
  // acks and iq results are surfaced too (kind = stanza name).
  std::optional<Message> recv(int timeout_ms = 5000);

  // Non-blocking variant: returns a message only if one is already
  // available or arrives without waiting.
  std::optional<Message> poll();

  bool connected() const noexcept { return socket_.valid(); }
  const std::string& jid() const noexcept { return jid_; }

  void close();

 private:
  bool send_all(std::string_view bytes, int timeout_ms = 5000);
  // Reads whatever is available (waiting up to timeout_ms for the first
  // byte) and converts stream events into queued messages.
  bool pump(int timeout_ms);
  void enqueue_event(const StanzaStream::Event& event);

  net::Socket socket_;
  StanzaStream stream_;
  std::string jid_;
  crypto::FastRng rng_;
  std::deque<Message> queue_;
};

}  // namespace ea::xmpp
