// Service-level message encryption for the XMPP use case (paper §5.1).
//
// O2O chats are end-to-end encrypted: the sender seals the body for the
// recipient; the server routes ciphertext blindly. For group chats "the
// server decrypts the messages of each user and re-encrypts for all members
// of the group" — that re-encryption is the per-message work the enclaved
// XMPP eactor performs.
//
// Key management is deliberately simple (the paper's focus is the runtime,
// not key distribution): per-user keys are derived from a deployment master
// secret, with separate derivation contexts so the client→recipient and
// server→member directions never share a nonce space.
#pragma once

#include <cstring>
#include <optional>
#include <string>

#include "crypto/aead.hpp"
#include "crypto/hkdf.hpp"
#include "util/bytes.hpp"

namespace ea::xmpp {

// Derivation contexts.
inline constexpr std::string_view kCtxO2O = "o2o";        // client -> recipient
inline constexpr std::string_view kCtxGroup = "grp";      // server -> member
inline constexpr std::string_view kCtxGroupUp = "grpup";  // sender -> server

// Nonces are caller-supplied 64-bit values; use fresh randomness (multiple
// parties share the per-recipient key, so counters could collide).

inline crypto::AeadKey user_key(std::string_view jid, std::string_view ctx) {
  static constexpr std::uint8_t kMaster[] = "ea-xmpp-deployment-master";
  util::Bytes info;
  info.insert(info.end(), ctx.begin(), ctx.end());
  info.push_back(0);
  info.insert(info.end(), jid.begin(), jid.end());
  util::Bytes okm = crypto::hkdf(
      std::span<const std::uint8_t>(kMaster, sizeof(kMaster) - 1),
      {}, info, crypto::kAeadKeySize);
  crypto::AeadKey key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

// Seals `plaintext` and hex-encodes it so it survives XML transport.
inline std::string seal_body(const crypto::AeadKey& key, std::uint64_t counter,
                             std::string_view plaintext) {
  util::Bytes framed = crypto::seal_with_counter(
      key, counter, {},
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(plaintext.data()),
          plaintext.size()));
  return util::to_hex(framed);
}

inline std::optional<std::string> open_body(const crypto::AeadKey& key,
                                            std::string_view hex) {
  util::Bytes framed;
  try {
    framed = util::from_hex(hex);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  std::optional<util::Bytes> plain = crypto::open_framed(key, {}, framed);
  if (!plain.has_value()) return std::nullopt;
  return util::to_string(*plain);
}

}  // namespace ea::xmpp
