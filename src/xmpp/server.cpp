#include "xmpp/server.hpp"

#include <algorithm>
#include <functional>

#include "crypto/hkdf.hpp"
#include "crypto/rng.hpp"
#include "net/readiness.hpp"
#include "sgxsim/attestation.hpp"
#include "util/logging.hpp"
#include "xmpp/e2e.hpp"

namespace ea::xmpp {

// --- shared state ----------------------------------------------------------

void Directory::put(const std::string& jid, Route route) {
  Shard& s = shard(jid);
  concurrent::HleGuard guard(s.lock);
  s.users[jid] = route;
}

std::optional<Route> Directory::get(const std::string& jid) const {
  Shard& s = shard(jid);
  concurrent::HleGuard guard(s.lock);
  auto it = s.users.find(jid);
  if (it == s.users.end()) return std::nullopt;
  return it->second;
}

void Directory::remove(const std::string& jid) {
  Shard& s = shard(jid);
  concurrent::HleGuard guard(s.lock);
  s.users.erase(jid);
}

std::size_t Directory::size() const {
  // One shard at a time (sequential, never nested — same-rank locks): the
  // total is a statistical snapshot, exact only when quiescent.
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    concurrent::HleGuard guard(s.lock);
    total += s.users.size();
  }
  return total;
}

void RoomTable::join(const std::string& room, const std::string& jid) {
  Shard& s = shard(room);
  concurrent::HleGuard guard(s.lock);
  auto& members = s.rooms[room];
  for (const std::string& m : members) {
    if (m == jid) return;
  }
  members.push_back(jid);
}

void RoomTable::leave_all(const std::string& jid) {
  // Rooms hash across every shard, so the departure sweep visits each
  // shard in turn — strictly sequential same-rank acquisition.
  for (Shard& s : shards_) {
    concurrent::HleGuard guard(s.lock);
    for (auto& [room, members] : s.rooms) {
      std::erase(members, jid);
    }
  }
}

std::vector<std::string> RoomTable::members(const std::string& room) const {
  Shard& s = shard(room);
  concurrent::HleGuard guard(s.lock);
  auto it = s.rooms.find(room);
  return it == s.rooms.end() ? std::vector<std::string>{} : it->second;
}

void RosterTable::add(const std::string& watcher, const std::string& contact) {
  // Two shard locks, taken one after the other (released between): the
  // directions are independent maps, so no cross-shard invariant needs a
  // combined critical section.
  {
    Shard& s = watchers_by_contact_[xmpp_shard_of(contact)];
    concurrent::HleGuard guard(s.lock);
    auto& watchers = s.entries[contact];
    bool known = false;
    for (const auto& w : watchers) known |= (w == watcher);
    if (!known) watchers.push_back(watcher);
  }
  {
    Shard& s = contacts_by_watcher_[xmpp_shard_of(watcher)];
    concurrent::HleGuard guard(s.lock);
    auto& contacts = s.entries[watcher];
    bool known = false;
    for (const auto& c : contacts) known |= (c == contact);
    if (!known) contacts.push_back(contact);
  }
}

std::vector<std::string> RosterTable::watchers_of(
    const std::string& contact) const {
  const Shard& s = watchers_by_contact_[xmpp_shard_of(contact)];
  concurrent::HleGuard guard(s.lock);
  auto it = s.entries.find(contact);
  return it == s.entries.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> RosterTable::contacts_of(
    const std::string& watcher) const {
  const Shard& s = contacts_by_watcher_[xmpp_shard_of(watcher)];
  concurrent::HleGuard guard(s.lock);
  auto it = s.entries.find(watcher);
  return it == s.entries.end() ? std::vector<std::string>{} : it->second;
}

int XmppShared::room_owner(const std::string& room) const {
  return static_cast<int>(std::hash<std::string>{}(room) %
                          static_cast<std::size_t>(instances));
}

bool XmppShared::spool_offline(const std::string& jid,
                               std::string_view wire) {
  if (offline_store == nullptr) return false;
  concurrent::HleGuard guard(offline_lock);
  // Per-user count lives under "offcnt:<jid>"; messages under
  // "off:<jid>:<n>". The deterministic key encryption of the store hides
  // both the user and the index.
  std::string count_key = "offcnt:" + jid;
  std::uint32_t count = 0;
  if (auto raw = offline_store->get(util::to_bytes(count_key))) {
    if (raw->size() == 4) count = util::load_le32(raw->data());
  }
  if (count >= kMaxOfflinePerUser) return false;
  std::string msg_key = "off:" + jid + ":" + std::to_string(count);
  if (!offline_store->set(util::to_bytes(msg_key),
                          util::to_bytes(wire))) {
    return false;
  }
  std::uint8_t le[4];
  util::store_le32(le, count + 1);
  return offline_store->set(util::to_bytes(count_key),
                            std::span<const std::uint8_t>(le, 4));
}

std::vector<std::string> XmppShared::drain_offline(const std::string& jid) {
  std::vector<std::string> out;
  if (offline_store == nullptr) return out;
  concurrent::HleGuard guard(offline_lock);
  std::string count_key = "offcnt:" + jid;
  std::uint32_t count = 0;
  if (auto raw = offline_store->get(util::to_bytes(count_key))) {
    if (raw->size() == 4) count = util::load_le32(raw->data());
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string msg_key = "off:" + jid + ":" + std::to_string(i);
    if (auto wire = offline_store->get(util::to_bytes(msg_key))) {
      out.push_back(util::to_string(*wire));
    }
    offline_store->erase(util::to_bytes(msg_key));
  }
  if (count > 0) {
    std::uint8_t le[4] = {0, 0, 0, 0};
    offline_store->set(util::to_bytes(count_key),
                       std::span<const std::uint8_t>(le, 4));
  }
  return out;
}

const crypto::AeadKey* XmppShared::transfer_key(int from_instance,
                                                int to_instance) const {
  if (instance_enclaves.empty()) return nullptr;
  sgxsim::EnclaveId a = instance_enclaves[static_cast<std::size_t>(from_instance)];
  sgxsim::EnclaveId b = instance_enclaves[static_cast<std::size_t>(to_instance)];
  if (a == b || a == sgxsim::kUntrusted || b == sgxsim::kUntrusted) {
    return nullptr;
  }
  auto it = enclave_pair_keys.find(std::minmax(a, b));
  return it == enclave_pair_keys.end() ? nullptr : &it->second;
}

// --- CONNECTOR --------------------------------------------------------------

bool ConnectorActor::body() {
  bool progress = false;
  while (concurrent::Node* node = shared_->online.pop()) {
    concurrent::NodeLease lease(node);
    auto socket = static_cast<net::SocketId>(node->tag);
    int instance = next_instance_++ % shared_->instances;

    concurrent::Node* req = shared_->pool->get();
    if (req == nullptr) {
      // No request node: put the connection back and retry next round.
      shared_->online.push(lease.release());
      break;
    }
    net::ReadSubscribe sub;
    sub.socket = socket;
    sub.data = shared_->inboxes[static_cast<std::size_t>(instance)];
    sub.pool = nullptr;
    net::write_struct(*req, sub);
    shared_->reader_reqs[static_cast<std::size_t>(instance)]->push(req);
    progress = true;
    EA_DEBUG("xmpp", "connector: socket %lld -> instance %d",
             static_cast<long long>(socket), instance);
  }
  return progress;
}

// --- XMPP instance -----------------------------------------------------------

bool XmppActor::body() {
  bool progress = false;
  // Burst-drain the inbox: the READER delivers data nodes in push_chain
  // batches, so pop_burst picks whole bursts up under one lock acquisition.
  concurrent::Node* burst[net::kReadBurst * 2];
  std::size_t got;
  while ((got = inbox_.pop_burst(burst, net::kReadBurst * 2)) != 0) {
    for (std::size_t b = 0; b < got; ++b) {
      concurrent::Node* node = burst[b];
      concurrent::NodeLease lease(node);
      progress = true;
      if (node->tag & kTransferFlag) {
        handle_transfer(*node);
        continue;
      }
      auto socket = static_cast<net::SocketId>(node->tag);
      if (node->size == 0) {
        drop_client(socket);
        continue;
      }
      handle_data(socket, node->view());
    }
  }
  return progress;
}

void XmppActor::handle_data(net::SocketId socket, std::string_view bytes) {
  ClientState& client = clients_[socket];
  client.stream.feed(bytes);
  while (auto event = client.stream.next()) {
    switch (event->type) {
      case StanzaStream::EventType::kStreamOpen:
        send_raw(index_, socket, make_stream_open("ea-xmpp"));
        break;
      case StanzaStream::EventType::kStreamClose:
        drop_client(socket);
        return;
      case StanzaStream::EventType::kStanza:
        handle_stanza(socket, client, event->node);
        break;
    }
  }
  if (client.stream.failed()) {
    EA_WARN("xmpp", "instance %d: malformed stream on socket %lld", index_,
            static_cast<long long>(socket));
    drop_client(socket);
  }
}

void XmppActor::handle_stanza(net::SocketId socket, ClientState& client,
                              const XmlNode& stanza) {
  if (stanza.name == "auth") {
    const std::string* jid = stanza.attr("jid");
    if (jid == nullptr || jid->empty()) {
      send_raw(index_, socket, make_error("bad-auth"));
      return;
    }
    client.jid = *jid;
    client.authed = true;
    shared_->directory.put(*jid, Route{socket, index_});
    send_raw(index_, socket, make_auth_success());
    // Deliver any messages spooled while the user was offline.
    for (const std::string& wire : shared_->drain_offline(*jid)) {
      send_raw(index_, socket, wire);
      ++routed_;
    }
    // Tell everyone who subscribed to this user that they are online.
    broadcast_presence(*jid, /*available=*/true);
    return;
  }
  if (!client.authed) {
    send_raw(index_, socket, make_error("not-authorized"));
    return;
  }

  if (stanza.name == "presence") {
    const std::string* room = stanza.attr("to");
    if (room != nullptr && !room->empty()) {
      shared_->rooms.join(*room, client.jid);
      send_raw(index_, socket,
               make_presence_join(*room, client.jid));
    }
    return;
  }

  if (stanza.name == "message") {
    const std::string* to = stanza.attr("to");
    const std::string* type = stanza.attr("type");
    const XmlNode* body = stanza.child("body");
    if (to == nullptr || body == nullptr) return;

    if (type != nullptr && *type == "groupchat") {
      int owner = shared_->room_owner(*to);
      if (owner == index_) {
        process_groupchat(client.jid, *to, body->text);
      } else {
        forward_groupchat(owner, stanza, client.jid);
      }
      return;
    }

    // One-to-One: route the (still end-to-end-encrypted) body verbatim.
    std::string wire = make_chat_message(client.jid, *to, body->text);
    auto route = shared_->directory.get(*to);
    if (!route.has_value()) {
      // Spool for later delivery when the offline store is enabled.
      if (!shared_->spool_offline(*to, wire)) {
        send_raw(index_, socket, make_error("recipient-unavailable"));
      }
      return;
    }
    if (send_raw(route->instance, route->socket, wire)) ++routed_;
    return;
  }

  if (stanza.name == "iq") {
    // Roster management: <iq type='set'><item jid='contact'/></iq>
    // subscribes the sender to the contact's presence.
    XmlNode result;
    result.name = "iq";
    result.set_attr("type", "result");
    if (const std::string* id = stanza.attr("id")) result.set_attr("id", *id);
    send_raw(index_, socket, result.serialize());

    const std::string* type = stanza.attr("type");
    if (type != nullptr && *type == "set") {
      if (const XmlNode* item = stanza.child("item")) {
        if (const std::string* contact = item->attr("jid")) {
          shared_->roster.add(client.jid, *contact);
          // Immediate status (after the result) so the watcher knows the
          // current state.
          XmlNode presence;
          presence.name = "presence";
          presence.set_attr("from", *contact);
          presence.set_attr(
              "type", shared_->directory.get(*contact).has_value()
                          ? "available"
                          : "unavailable");
          send_raw(index_, socket, presence.serialize());
        }
      }
    }
  }
}

void XmppActor::broadcast_presence(const std::string& jid, bool available) {
  XmlNode presence;
  presence.name = "presence";
  presence.set_attr("from", jid);
  presence.set_attr("type", available ? "available" : "unavailable");
  std::string wire = presence.serialize();
  for (const std::string& watcher : shared_->roster.watchers_of(jid)) {
    auto route = shared_->directory.get(watcher);
    if (route.has_value()) {
      send_raw(route->instance, route->socket, wire);
    }
  }
}

void XmppActor::forward_groupchat(int owner, const XmlNode& stanza,
                                  const std::string& from_jid) {
  // Forward the stanza to the instance owning the room ("each group chat
  // is confined to a dedicated XMPP eactor"). If the owner lives in a
  // different enclave, the node memory between us is untrusted and the
  // transfer is sealed with the attested pair key.
  XmlNode forwarded = stanza;
  forwarded.set_attr("from", from_jid);
  std::string wire = forwarded.serialize();

  concurrent::Node* node = shared_->pool->get();
  if (node == nullptr) {
    EA_WARN("xmpp", "dropping forwarded groupchat (pool exhausted)");
    return;
  }
  const crypto::AeadKey* key = shared_->transfer_key(index_, owner);
  bool encrypted = key != nullptr;
  if (encrypted) {
    std::uint64_t nonce =
        shared_->transfer_nonce.fetch_add(1, std::memory_order_relaxed);
    util::Bytes sealed = crypto::seal_with_counter(
        *key, nonce, {},
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()));
    if (sealed.size() > node->capacity) {
      concurrent::NodeLease(node).reset();
      EA_WARN("xmpp", "dropping forwarded groupchat (capacity)");
      return;
    }
    node->fill(sealed);
  } else {
    if (wire.size() > node->capacity) {
      concurrent::NodeLease(node).reset();
      EA_WARN("xmpp", "dropping forwarded groupchat (capacity)");
      return;
    }
    node->fill(wire);
  }
  node->tag = transfer_tag(index_, encrypted);
  shared_->inboxes[static_cast<std::size_t>(owner)]->push(node);
}

void XmppActor::handle_transfer(const concurrent::Node& node) {
  std::string wire;
  if (node.tag & kTransferEncrypted) {
    int from_instance = static_cast<int>(node.tag & 0xffffffffull);
    const crypto::AeadKey* key = shared_->transfer_key(from_instance, index_);
    if (key == nullptr) return;
    std::optional<util::Bytes> plain =
        crypto::open_framed(*key, {}, node.data());
    if (!plain.has_value()) {
      EA_WARN("xmpp", "transfer failing authentication dropped");
      return;
    }
    wire = util::to_string(*plain);
  } else {
    wire = std::string(node.view());
  }
  std::size_t pos = 0;
  auto stanza = parse_element(wire, pos);
  if (!stanza.has_value()) return;
  const std::string* from = stanza->attr("from");
  const std::string* to = stanza->attr("to");
  const XmlNode* body = stanza->child("body");
  if (from == nullptr || to == nullptr || body == nullptr) return;
  process_groupchat(*from, *to, body->text);
}

void XmppActor::process_groupchat(const std::string& from,
                                  const std::string& room,
                                  const std::string& body) {
  // "The server decrypts the messages of each user and re-encrypts for all
  // members of the group" — this is the enclave-resident work of the room's
  // XMPP eactor.
  std::optional<std::string> plain =
      open_body(user_key(from, kCtxGroupUp), body);
  if (!plain.has_value()) {
    EA_WARN("xmpp", "groupchat from %s: body failed authentication",
            from.c_str());
    return;
  }
  crypto::FastRng rng(nonce_seed_ += 0x9e3779b97f4a7c15ull);
  for (const std::string& member : shared_->rooms.members(room)) {
    auto route = shared_->directory.get(member);
    if (!route.has_value()) continue;
    std::string sealed =
        seal_body(user_key(member, kCtxGroup), rng.next(), *plain);
    std::string wire =
        make_groupchat_message(room + "/" + from, member, sealed);
    if (send_raw(route->instance, route->socket, wire)) ++routed_;
  }
}

void XmppActor::drop_client(net::SocketId socket) {
  auto it = clients_.find(socket);
  if (it != clients_.end()) {
    if (!it->second.jid.empty()) {
      std::string jid = it->second.jid;
      shared_->directory.remove(jid);
      shared_->rooms.leave_all(jid);
      broadcast_presence(jid, /*available=*/false);
    }
    clients_.erase(it);
  }
  if (shared_->closer_input != nullptr) {
    if (concurrent::Node* node = shared_->pool->get()) {
      node->tag = static_cast<std::uint64_t>(socket);
      node->size = 0;
      shared_->closer_input->push(node);
    }
  }
}

bool XmppActor::send_raw(int instance, net::SocketId socket,
                         std::string_view bytes) {
  concurrent::Node* node = shared_->pool->get();
  if (node == nullptr) {
    EA_WARN("xmpp", "instance %d: send pool exhausted", index_);
    return false;
  }
  if (bytes.size() > node->capacity) {
    concurrent::NodeLease(node).reset();
    EA_WARN("xmpp", "instance %d: message exceeds node capacity", index_);
    return false;
  }
  node->fill(bytes);
  node->tag = static_cast<std::uint64_t>(socket);
  shared_->writer_inputs[static_cast<std::size_t>(instance)]->push(node);
  return true;
}

// --- live migration (DESIGN.md §17) -----------------------------------------
//
// Bundle layout (little-endian):
//   routed(8) ‖ nonce_seed(8) ‖ client_count(4) ‖ per client:
//   socket(8) ‖ jid_len(4)‖jid ‖ authed(1) ‖ in_stream(1) ‖
//   buffer_len(4)‖buffer

util::Bytes XmppActor::export_state() {
  util::Bytes out;
  auto put_u32 = [&out](std::uint32_t v) {
    std::uint8_t le[4];
    util::store_le32(le, v);
    out.insert(out.end(), le, le + 4);
  };
  auto put_u64 = [&out](std::uint64_t v) {
    std::uint8_t le[8];
    util::store_le64(le, v);
    out.insert(out.end(), le, le + 8);
  };
  auto put_str = [&](const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
  };
  put_u64(routed_);
  put_u64(nonce_seed_);
  put_u32(static_cast<std::uint32_t>(clients_.size()));
  for (const auto& [socket, client] : clients_) {
    put_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(socket)));
    put_str(client.jid);
    out.push_back(client.authed ? 1 : 0);
    out.push_back(client.stream.in_stream() ? 1 : 0);
    put_str(client.stream.buffer());
  }
  return out;
}

bool XmppActor::import_state(std::span<const std::uint8_t> state) {
  std::size_t at = 0;
  auto get_u32 = [&](std::uint32_t& v) {
    if (state.size() - at < 4) return false;
    v = util::load_le32(state.data() + at);
    at += 4;
    return true;
  };
  auto get_u64 = [&](std::uint64_t& v) {
    if (state.size() - at < 8) return false;
    v = util::load_le64(state.data() + at);
    at += 8;
    return true;
  };
  auto get_str = [&](std::string& s) {
    std::uint32_t len = 0;
    if (!get_u32(len) || state.size() - at < len) return false;
    s.assign(reinterpret_cast<const char*>(state.data() + at), len);
    at += len;
    return true;
  };
  std::uint64_t routed = 0;
  std::uint64_t nonce_seed = 0;
  std::uint32_t count = 0;
  if (!get_u64(routed) || !get_u64(nonce_seed) || !get_u32(count)) {
    return false;
  }
  std::map<net::SocketId, ClientState> clients;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t socket_raw = 0;
    std::string jid;
    std::string buffer;
    if (!get_u64(socket_raw) || !get_str(jid)) return false;
    if (state.size() - at < 2) return false;
    const bool authed = state[at++] != 0;
    const bool in_stream = state[at++] != 0;
    if (!get_str(buffer)) return false;
    auto socket =
        static_cast<net::SocketId>(static_cast<std::int64_t>(socket_raw));
    ClientState& client = clients[socket];
    client.jid = std::move(jid);
    client.authed = authed;
    client.stream.restore(std::move(buffer), in_stream);
  }
  if (at != state.size()) return false;
  routed_ = routed;
  nonce_seed_ = nonce_seed;
  clients_ = std::move(clients);
  return true;
}

void XmppActor::on_migrated(sgxsim::EnclaveId from, sgxsim::EnclaveId to) {
  // Single-instance deployments only (see migratable()): nothing else reads
  // instance_enclaves concurrently, and there are no pair keys to rekey.
  if (static_cast<std::size_t>(index_) < shared_->instance_enclaves.size()) {
    shared_->instance_enclaves[static_cast<std::size_t>(index_)] = to;
  }
  EA_INFO("xmpp", "instance %d migrated enclave %u -> %u (%zu clients)",
          index_, from, to, clients_.size());
}

// --- installation ------------------------------------------------------------

XmppService install_xmpp_service(core::Runtime& rt,
                                 const XmppServiceConfig& config) {
  XmppService service;
  auto shared = std::make_shared<XmppShared>();
  auto table = std::make_shared<net::SocketTable>();
  shared->pool = &rt.public_pool();
  shared->instances = config.instances;
  service.shared = shared;

  if (config.offline_messages) {
    pos::PosOptions pos_options;
    pos_options.path = config.offline_store_path;
    pos_options.entry_count = 4096;
    pos_options.entry_payload = 1024;
    shared->offline_pos = std::make_unique<pos::Pos>(pos_options);
    // The spool master key is derived from the deployment master secret,
    // like the per-user message keys in e2e.hpp.
    util::Bytes master = crypto::hkdf(
        {}, util::to_bytes("ea-xmpp-deployment-master"),
        util::to_bytes("offline-spool"), 32);
    shared->offline_store =
        std::make_unique<pos::EncryptedPos>(*shared->offline_pos, master);
  }

  // Bind the listener now so the port is known synchronously.
  net::Socket listener = net::Socket::listen_on(config.port);
  if (!listener.valid()) {
    throw std::runtime_error("xmpp: cannot bind listener");
  }
  service.port = listener.local_port();
  net::SocketId listener_id = table->add(std::move(listener));

  int cpu = config.first_cpu;

  // Global network actors: ACCEPTER (feeding the Online list) and CLOSER.
  auto accepter = std::make_unique<net::AccepterActor>("xmpp.accepter", table,
                                                       rt.public_pool());
  auto closer = std::make_unique<net::CloserActor>("xmpp.closer", table);
  shared->closer_input = &closer->input();
  {
    concurrent::Node* sub_node = rt.public_pool().get();
    net::AcceptSubscribe sub;
    sub.listener = listener_id;
    sub.reply = &shared->online;
    net::write_struct(*sub_node, sub);
    accepter->requests().push(sub_node);
  }
  rt.add_actor(std::move(accepter));
  rt.add_actor(std::move(closer));
  rt.add_worker("xmpp.net0", {cpu++}, {"xmpp.accepter", "xmpp.closer"});

  // The CONNECTOR, enclaved when the service is trusted.
  auto connector = std::make_unique<ConnectorActor>("xmpp.connector", shared);
  service.connector = connector.get();
  rt.add_actor(std::move(connector),
               config.trusted ? "xmpp.connector.enclave" : "");
  rt.add_worker("xmpp.conn", {cpu++}, {"xmpp.connector"});

  // Instances with their dedicated READER/WRITER pairs.
  const int enclave_count =
      config.enclaves > 0 ? config.enclaves : config.instances;
  shared->inboxes.resize(static_cast<std::size_t>(config.instances));
  shared->reader_reqs.resize(static_cast<std::size_t>(config.instances));
  shared->writer_inputs.resize(static_cast<std::size_t>(config.instances));
  const bool epoll = rt.options().net == core::NetMode::kEpoll;
  for (int i = 0; i < config.instances; ++i) {
    std::string suffix = std::to_string(i);
    auto xmpp = std::make_unique<XmppActor>("xmpp.i" + suffix, i, shared);
    auto reader = std::make_unique<net::ReaderActor>("xmpp.reader" + suffix,
                                                     table, rt.public_pool());
    auto writer =
        std::make_unique<net::WriterActor>("xmpp.writer" + suffix, table);

    shared->inboxes[static_cast<std::size_t>(i)] = &xmpp->inbox();
    shared->reader_reqs[static_cast<std::size_t>(i)] = &reader->requests();
    shared->writer_inputs[static_cast<std::size_t>(i)] = &writer->input();
    service.instances.push_back(xmpp.get());

    std::string enclave_name;
    if (config.trusted) {
      enclave_name = "xmpp.e" + std::to_string(i % enclave_count);
    }
    rt.add_actor(std::move(xmpp), enclave_name);
    shared->instance_enclaves.push_back(
        enclave_name.empty() ? sgxsim::kUntrusted
                             : rt.enclave(enclave_name).id());

    std::vector<std::string> net_actors;
    if (epoll) {
      // One watcher per net worker (DESIGN.md §16): this instance's
      // READER/WRITER drain only sockets its watcher flags, and idle
      // connections cost the plane nothing.
      auto watcher = std::make_unique<net::FdWatcherActor>(
          "xmpp.watcher" + suffix, table, rt.public_pool());
      watcher->set_closer_input(shared->closer_input);
      reader->enable_readiness(&watcher->requests(), &rt.public_pool());
      writer->enable_readiness(&watcher->requests(), &rt.public_pool());
      rt.add_actor(std::move(watcher));
      net_actors.push_back("xmpp.watcher" + suffix);
    }
    rt.add_actor(std::move(reader));
    rt.add_actor(std::move(writer));
    net_actors.push_back("xmpp.reader" + suffix);
    net_actors.push_back("xmpp.writer" + suffix);

    rt.add_worker("xmpp.app" + suffix, {cpu++}, {"xmpp.i" + suffix});
    rt.add_worker("xmpp.net" + std::to_string(i + 1), {cpu++}, net_actors);
  }

  // Attested session keys between every pair of distinct instance
  // enclaves; used to seal cross-enclave room transfers.
  auto& mgr = sgxsim::EnclaveManager::instance();
  for (std::size_t i = 0; i < shared->instance_enclaves.size(); ++i) {
    for (std::size_t j = i + 1; j < shared->instance_enclaves.size(); ++j) {
      auto pair = std::minmax(shared->instance_enclaves[i],
                              shared->instance_enclaves[j]);
      if (pair.first == pair.second ||
          pair.first == sgxsim::kUntrusted ||
          shared->enclave_pair_keys.count(pair) > 0) {
        continue;
      }
      sgxsim::Enclave* a = mgr.find(pair.first);
      sgxsim::Enclave* b = mgr.find(pair.second);
      if (a == nullptr || b == nullptr) continue;
      auto key = sgxsim::establish_session_key(*a, *b);
      if (key.has_value()) {
        shared->enclave_pair_keys.emplace(pair, *key);
      }
    }
  }
  return service;
}

}  // namespace ea::xmpp
