// EActors XMPP instant-messaging service (paper §5.1, Fig. 7).
//
// Architecture:
//   * an enclaved CONNECTOR eactor accepts incoming connections (via the
//     ACCEPTER system actor feeding the shared Online list) and assigns
//     them round-robin to XMPP instances by subscribing the socket to that
//     instance's READER;
//   * N enclaved XMPP eactors implement the protocol logic (auth, O2O
//     routing, group-chat re-encryption). Each instance has its own
//     untrusted READER and WRITER eactors (Fig. 7), so the application
//     layer and the networking layer scale independently;
//   * shared (untrusted-memory) state: the user Directory and RoomTable —
//     equivalents of the paper's Online list — guarded by HLE locks.
//
// Deployment knobs reproduce the paper's experiments: instance count
// (EA/3 = 1 instance, EA/6 = 2, EA/48 = 16), trusted vs untrusted
// execution (Fig. 15/17) and the number of distinct enclaves the instances
// are packed into (Fig. 16).
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "concurrent/hle_lock.hpp"
#include "crypto/aead.hpp"
#include "pos/encrypted.hpp"
#include "pos/pos.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/actor.hpp"
#include "core/runtime.hpp"
#include "net/actors.hpp"
#include "xmpp/stanza.hpp"

namespace ea::xmpp {

// Shared routing state in untrusted memory. Values (socket ids, instance
// indexes) are not confidential; message *contents* are protected by the
// service-level encryption in e2e.hpp.
struct Route {
  net::SocketId socket = -1;
  int instance = -1;
};

// The routing tables are sharded by client-id (jid / room name) hash: a
// single lock + map per table serialises every connect, route lookup and
// presence update across all instances — exactly the contention
// xmpp::BaselineServer exists to demonstrate. 16 shards (power of two so
// the hash folds with a mask) each carry their own HleSpinLock; all shard
// locks of one table share that table's LockRank, and no operation ever
// holds two shards of the same table at once (leave_all/size walk shards
// strictly sequentially, release before acquire — the kPosBucket
// precedent), so the same-rank-nesting-forbidden rule stays intact and
// the lock graph stays acyclic.
inline constexpr std::size_t kXmppShards = 16;

inline std::size_t xmpp_shard_of(const std::string& key) noexcept {
  return std::hash<std::string>{}(key) & (kXmppShards - 1);
}

class Directory {
 public:
  void put(const std::string& jid, Route route);
  std::optional<Route> get(const std::string& jid) const;
  void remove(const std::string& jid);
  std::size_t size() const;

 private:
  struct Shard {
    mutable concurrent::HleSpinLock lock{
        concurrent::LockRank::kXmppDirectory};
    std::map<std::string, Route> users EA_GUARDED_BY(lock);
  };
  Shard& shard(const std::string& jid) const {
    return shards_[xmpp_shard_of(jid)];
  }
  mutable std::array<Shard, kXmppShards> shards_;
};

class RoomTable {
 public:
  // Adds a member (idempotent).
  void join(const std::string& room, const std::string& jid);
  void leave_all(const std::string& jid);
  std::vector<std::string> members(const std::string& room) const;

 private:
  struct Shard {
    mutable concurrent::HleSpinLock lock{concurrent::LockRank::kXmppRooms};
    std::map<std::string, std::vector<std::string>> rooms
        EA_GUARDED_BY(lock);
  };
  Shard& shard(const std::string& room) const {
    return shards_[xmpp_shard_of(room)];
  }
  mutable std::array<Shard, kXmppShards> shards_;
};

// Contact lists: who wants presence updates about whom. A watcher adds a
// contact via an <iq type='set'><item jid='...'/></iq>; when the contact
// (dis)connects, every online watcher receives a presence stanza.
// The two directions are sharded independently (each by its own lookup
// key); add() touches one shard of each map sequentially, never nested.
class RosterTable {
 public:
  void add(const std::string& watcher, const std::string& contact);
  // Watchers interested in `contact`.
  std::vector<std::string> watchers_of(const std::string& contact) const;
  std::vector<std::string> contacts_of(const std::string& watcher) const;

 private:
  struct Shard {
    mutable concurrent::HleSpinLock lock{concurrent::LockRank::kXmppRoster};
    std::map<std::string, std::vector<std::string>> entries
        EA_GUARDED_BY(lock);
  };
  mutable std::array<Shard, kXmppShards> watchers_by_contact_;
  mutable std::array<Shard, kXmppShards> contacts_by_watcher_;
};

struct XmppShared {
  Directory directory;
  RoomTable rooms;
  RosterTable roster;
  concurrent::Mbox online;  // accepted socket ids from the ACCEPTER
  std::vector<concurrent::Mbox*> inboxes;        // per-instance data mboxes
  std::vector<concurrent::Mbox*> reader_reqs;    // per-instance READER reqs
  std::vector<concurrent::Mbox*> writer_inputs;  // per-instance WRITER input
  concurrent::Mbox* closer_input = nullptr;
  concurrent::Pool* pool = nullptr;
  int instances = 0;

  // Enclave of each instance (kUntrusted when deployed outside) and the
  // attested session keys between distinct instance enclaves. Transfers
  // between instances in *different* enclaves travel through untrusted
  // node memory and are therefore encrypted — this is the effect behind
  // the paper's Fig. 16: packing all instances into one enclave lets them
  // share data without encryption.
  std::vector<sgxsim::EnclaveId> instance_enclaves;
  std::map<std::pair<sgxsim::EnclaveId, sgxsim::EnclaveId>, crypto::AeadKey>
      enclave_pair_keys;
  std::atomic<std::uint64_t> transfer_nonce{1};

  // Optional offline-message spool: an encrypted POS shared by all
  // instances (the application-data role the paper gives the POS in §4.1).
  // Messages to users that are not connected are stored and delivered when
  // the user authenticates.
  // offline_lock (kXmppOffline) serialises spool/drain and is held ACROSS
  // the EncryptedPos calls, which take the POS bucket/free locks — an
  // intentional outer→inner nesting that the lock-rank table orders
  // (kXmppOffline < kPosBucket/kPosFree). The pointee is guarded; the
  // pointer itself may be null-checked lock-free.
  std::unique_ptr<pos::Pos> offline_pos;
  std::unique_ptr<pos::EncryptedPos> offline_store
      EA_PT_GUARDED_BY(offline_lock);
  concurrent::HleSpinLock offline_lock{concurrent::LockRank::kXmppOffline};
  static constexpr std::uint32_t kMaxOfflinePerUser = 64;

  // Spools `wire` for `jid`; false when the store is absent or full.
  bool spool_offline(const std::string& jid, std::string_view wire)
      EA_EXCLUDES(offline_lock);
  // Pops every spooled message for `jid` in arrival order.
  std::vector<std::string> drain_offline(const std::string& jid)
      EA_EXCLUDES(offline_lock);

  int room_owner(const std::string& room) const;

  // Key for transfers between two instances, nullptr when they share an
  // enclave (or either is untrusted — encryption would be pointless).
  const crypto::AeadKey* transfer_key(int from_instance,
                                      int to_instance) const;
};

// Enclaved connection manager: distributes accepted sockets to instances.
class ConnectorActor : public core::Actor {
 public:
  ConnectorActor(std::string name, std::shared_ptr<XmppShared> shared)
      : core::Actor(std::move(name)), shared_(std::move(shared)) {}

  bool body() override;

 private:
  std::shared_ptr<XmppShared> shared_;
  int next_instance_ = 0;
};

// Enclaved protocol instance.
class XmppActor : public core::Actor {
 public:
  XmppActor(std::string name, int index, std::shared_ptr<XmppShared> shared)
      : core::Actor(std::move(name)),
        index_(index),
        shared_(std::move(shared)) {}

  bool body() override;

  // Data/transfer mbox this instance consumes (READER pushes here).
  concurrent::Mbox& inbox() noexcept { return inbox_; }

  std::uint64_t messages_routed() const noexcept { return routed_; }

  // Live migration (DESIGN.md §17). The per-client list — jid, auth flag
  // and the incremental parser state of every connection — serialises into
  // the sealed bundle; inbox_ is the tombstone mbox (READER keeps queueing
  // into it while the actor is parked, and the drain after resume loses
  // nothing). Only single-instance deployments opt in: cross-instance
  // transfer keys are attested against the install-time placement, and
  // rekeying every peer pair mid-run is future work.
  bool migratable() const override { return shared_->instances == 1; }
  util::Bytes export_state() override;
  bool import_state(std::span<const std::uint8_t> state) override;
  void on_migrated(sgxsim::EnclaveId from, sgxsim::EnclaveId to) override;

 private:
  struct ClientState {
    StanzaStream stream;
    std::string jid;
    bool authed = false;
  };

  void handle_data(net::SocketId socket, std::string_view bytes);
  void handle_stanza(net::SocketId socket, ClientState& client,
                     const XmlNode& stanza);
  void forward_groupchat(int owner, const XmlNode& stanza,
                         const std::string& from_jid);
  void handle_transfer(const concurrent::Node& node);
  // Sends <presence from=jid type=available|unavailable/> to every online
  // watcher of `jid`.
  void broadcast_presence(const std::string& jid, bool available);
  void process_groupchat(const std::string& from, const std::string& room,
                         const std::string& body);
  void drop_client(net::SocketId socket);
  // Sends raw bytes to a socket owned by instance `instance`.
  bool send_raw(int instance, net::SocketId socket, std::string_view bytes);

  int index_;
  std::shared_ptr<XmppShared> shared_;
  concurrent::Mbox inbox_;
  std::map<net::SocketId, ClientState> clients_;  // the PCL
  std::uint64_t nonce_seed_ = 0;
  std::uint64_t routed_ = 0;
};

// Forwarded-stanza nodes in instance inboxes carry a transfer tag instead
// of a socket id (socket ids are small positive integers, so the high
// range is free): flag bit, optional encrypted bit, and the sending
// instance index in the low bits.
inline constexpr std::uint64_t kTransferFlag = 1ull << 63;
inline constexpr std::uint64_t kTransferEncrypted = 1ull << 62;

inline std::uint64_t transfer_tag(int from_instance, bool encrypted) {
  return kTransferFlag | (encrypted ? kTransferEncrypted : 0) |
         static_cast<std::uint64_t>(from_instance);
}

struct XmppServiceConfig {
  int instances = 1;
  bool trusted = true;       // place XMPP eactors (and connector) in enclaves
  int enclaves = -1;         // enclaves to spread instances over; -1 = one each
  std::uint16_t port = 0;    // 0 = pick a free port
  int first_cpu = 0;         // workers are pinned starting at this cpu
  // Store messages for offline users in an encrypted POS and deliver them
  // at the next login (instead of returning recipient-unavailable).
  bool offline_messages = false;
  // Backing file for the offline store; empty = anonymous (non-persistent).
  std::string offline_store_path;
};

struct XmppService {
  std::uint16_t port = 0;
  std::shared_ptr<XmppShared> shared;
  ConnectorActor* connector = nullptr;
  std::vector<XmppActor*> instances;
};

// Installs the full service into `rt` (networking included). Must be called
// before rt.start(); the listening socket is bound immediately, so `port`
// is valid on return.
XmppService install_xmpp_service(core::Runtime& rt,
                                 const XmppServiceConfig& config);

}  // namespace ea::xmpp
