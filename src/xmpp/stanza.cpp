#include "xmpp/stanza.hpp"

#include <cctype>

namespace ea::xmpp {
namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == ':' || c == '-' ||
         c == '_' || c == '.';
}

void skip_ws(std::string_view text, std::size_t& pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
}

std::optional<std::string> parse_name(std::string_view text,
                                      std::size_t& pos) {
  std::size_t start = pos;
  while (pos < text.size() && is_name_char(text[pos])) ++pos;
  if (pos == start) return std::nullopt;
  return std::string(text.substr(start, pos - start));
}

// Parses attributes up to (but not consuming) '>' or '/>'.
bool parse_attrs(std::string_view text, std::size_t& pos, XmlNode& node) {
  while (true) {
    skip_ws(text, pos);
    if (pos >= text.size()) return false;
    if (text[pos] == '>' || text[pos] == '/' || text[pos] == '?') return true;
    auto key = parse_name(text, pos);
    if (!key.has_value()) return false;
    skip_ws(text, pos);
    if (pos >= text.size() || text[pos] != '=') return false;
    ++pos;
    skip_ws(text, pos);
    if (pos >= text.size() || (text[pos] != '"' && text[pos] != '\'')) {
      return false;
    }
    char quote = text[pos++];
    std::size_t start = pos;
    while (pos < text.size() && text[pos] != quote) ++pos;
    if (pos >= text.size()) return false;
    node.attrs.emplace_back(*key,
                            xml_unescape(text.substr(start, pos - start)));
    ++pos;
  }
}

}  // namespace

const std::string* XmlNode::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

const XmlNode* XmlNode::child(std::string_view key) const {
  for (const XmlNode& c : children) {
    if (c.name == key) return &c;
  }
  return nullptr;
}

void XmlNode::set_attr(std::string key, std::string value) {
  for (auto& [k, v] : attrs) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs.emplace_back(std::move(key), std::move(value));
}

std::string xml_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string xml_unescape(std::string_view xml) {
  std::string out;
  out.reserve(xml.size());
  for (std::size_t i = 0; i < xml.size(); ++i) {
    if (xml[i] != '&') {
      out.push_back(xml[i]);
      continue;
    }
    auto rest = xml.substr(i);
    if (rest.rfind("&amp;", 0) == 0) {
      out.push_back('&');
      i += 4;
    } else if (rest.rfind("&lt;", 0) == 0) {
      out.push_back('<');
      i += 3;
    } else if (rest.rfind("&gt;", 0) == 0) {
      out.push_back('>');
      i += 3;
    } else if (rest.rfind("&quot;", 0) == 0) {
      out.push_back('"');
      i += 5;
    } else if (rest.rfind("&apos;", 0) == 0) {
      out.push_back('\'');
      i += 5;
    } else {
      out.push_back('&');
    }
  }
  return out;
}

std::string XmlNode::serialize() const {
  std::string out = "<" + name;
  for (const auto& [k, v] : attrs) {
    out += " " + k + "='" + xml_escape(v) + "'";
  }
  if (text.empty() && children.empty()) {
    out += "/>";
    return out;
  }
  out += ">";
  out += xml_escape(text);
  for (const XmlNode& c : children) out += c.serialize();
  out += "</" + name + ">";
  return out;
}

std::optional<XmlNode> parse_element(std::string_view text, std::size_t& pos) {
  if (pos >= text.size() || text[pos] != '<') return std::nullopt;
  ++pos;
  XmlNode node;
  auto name = parse_name(text, pos);
  if (!name.has_value()) return std::nullopt;
  node.name = *name;
  if (!parse_attrs(text, pos, node)) return std::nullopt;
  if (pos >= text.size()) return std::nullopt;
  if (text[pos] == '/') {
    ++pos;
    if (pos >= text.size() || text[pos] != '>') return std::nullopt;
    ++pos;
    return node;
  }
  if (text[pos] != '>') return std::nullopt;
  ++pos;

  // Children and text until the matching close tag.
  while (true) {
    std::size_t start = pos;
    while (pos < text.size() && text[pos] != '<') ++pos;
    if (pos > start) {
      node.text += xml_unescape(text.substr(start, pos - start));
    }
    if (pos + 1 >= text.size()) return std::nullopt;
    if (text[pos + 1] == '/') {
      pos += 2;
      auto close = parse_name(text, pos);
      if (!close.has_value() || *close != node.name) return std::nullopt;
      skip_ws(text, pos);
      if (pos >= text.size() || text[pos] != '>') return std::nullopt;
      ++pos;
      return node;
    }
    auto child = parse_element(text, pos);
    if (!child.has_value()) return std::nullopt;
    node.children.push_back(std::move(*child));
  }
}

void StanzaStream::feed(std::string_view bytes) { buffer_.append(bytes); }

std::optional<StanzaStream::Event> StanzaStream::next() {
  if (failed_) return std::nullopt;
  // Skip leading whitespace and XML declarations.
  std::size_t pos = 0;
  skip_ws(buffer_, pos);
  if (pos >= buffer_.size()) {
    buffer_.clear();
    return std::nullopt;
  }
  if (buffer_[pos] != '<') {
    failed_ = true;
    return std::nullopt;
  }
  // XML declaration <?xml ...?>
  if (pos + 1 < buffer_.size() && buffer_[pos + 1] == '?') {
    std::size_t end = buffer_.find("?>", pos);
    if (end == std::string::npos) return std::nullopt;
    buffer_.erase(0, end + 2);
    return next();
  }
  // Stream close: </stream:stream>
  if (pos + 1 < buffer_.size() && buffer_[pos + 1] == '/') {
    std::size_t end = buffer_.find('>', pos);
    if (end == std::string::npos) return std::nullopt;
    buffer_.erase(0, end + 1);
    in_stream_ = false;
    return Event{EventType::kStreamClose, XmlNode{}};
  }
  // Stream open: an unterminated <stream:stream ...> element.
  if (buffer_.compare(pos, 14, "<stream:stream") == 0) {
    std::size_t cursor = pos + 1;
    XmlNode node;
    auto name = parse_name(buffer_, cursor);
    if (!name.has_value()) return std::nullopt;
    node.name = *name;
    if (!parse_attrs(buffer_, cursor, node)) return std::nullopt;  // need more
    if (cursor >= buffer_.size() || buffer_[cursor] != '>') {
      if (cursor < buffer_.size()) failed_ = true;
      return std::nullopt;
    }
    buffer_.erase(0, cursor + 1);
    in_stream_ = true;
    return Event{EventType::kStreamOpen, std::move(node)};
  }
  // Regular stanza.
  std::size_t cursor = pos;
  auto node = parse_element(buffer_, cursor);
  if (!node.has_value()) {
    // Heuristic: if the buffer holds a complete '>'-terminated prefix that
    // still fails to parse, the stream is corrupt; otherwise wait for more.
    // A stanza cannot be larger than 64 KiB in this implementation.
    if (buffer_.size() > 64 * 1024) failed_ = true;
    return std::nullopt;
  }
  buffer_.erase(0, cursor);
  return Event{EventType::kStanza, std::move(*node)};
}

std::string make_stream_open(std::string_view to) {
  return "<stream:stream to='" + std::string(to) +
         "' xmlns='jabber:client' version='1.0'>";
}

std::string make_stream_close() { return "</stream:stream>"; }

std::string make_auth(std::string_view jid) {
  XmlNode node;
  node.name = "auth";
  node.set_attr("xmlns", "urn:ietf:params:xml:ns:xmpp-sasl");
  node.set_attr("jid", std::string(jid));
  return node.serialize();
}

std::string make_auth_success() { return "<success/>"; }

std::string make_chat_message(std::string_view from, std::string_view to,
                              std::string_view body) {
  XmlNode node;
  node.name = "message";
  node.set_attr("type", "chat");
  if (!from.empty()) node.set_attr("from", std::string(from));
  node.set_attr("to", std::string(to));
  XmlNode body_node;
  body_node.name = "body";
  body_node.text = std::string(body);
  node.children.push_back(std::move(body_node));
  return node.serialize();
}

std::string make_groupchat_message(std::string_view from, std::string_view to,
                                   std::string_view body) {
  XmlNode node;
  node.name = "message";
  node.set_attr("type", "groupchat");
  if (!from.empty()) node.set_attr("from", std::string(from));
  node.set_attr("to", std::string(to));
  XmlNode body_node;
  body_node.name = "body";
  body_node.text = std::string(body);
  node.children.push_back(std::move(body_node));
  return node.serialize();
}

std::string make_presence_join(std::string_view from, std::string_view room) {
  XmlNode node;
  node.name = "presence";
  if (!from.empty()) node.set_attr("from", std::string(from));
  node.set_attr("to", std::string(room));
  return node.serialize();
}

std::string make_error(std::string_view reason) {
  XmlNode node;
  node.name = "stream:error";
  node.text = std::string(reason);
  return node.serialize();
}

}  // namespace ea::xmpp
