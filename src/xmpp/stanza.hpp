// Minimal XML/XMPP stanza model and incremental stream parser.
//
// Implements the core framing of RFC 6120 needed by the messaging service:
// stream open/close plus complete top-level stanzas (<message/>,
// <presence/>, <iq/>, <auth/>, ...). The parser is incremental: feed() it
// raw TCP bytes, then drain events — partial stanzas stay buffered.
// Supported XML subset: elements, attributes (single/double quoted), text,
// self-closing tags, and the five predefined entities.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ea::xmpp {

struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::string text;  // concatenated character data directly inside this node
  std::vector<XmlNode> children;

  // First attribute value by name, nullptr when absent.
  const std::string* attr(std::string_view key) const;

  // First child element by name, nullptr when absent.
  const XmlNode* child(std::string_view key) const;

  void set_attr(std::string key, std::string value);

  // Serialises to XML (escaping attribute values and text).
  std::string serialize() const;
};

// Escapes &, <, >, ', " for inclusion in XML.
std::string xml_escape(std::string_view raw);
std::string xml_unescape(std::string_view xml);

// Parses one complete element starting at text[pos] (which must be '<').
// Advances pos past the element. Returns nullopt on malformed or
// incomplete input (pos is then unspecified).
std::optional<XmlNode> parse_element(std::string_view text, std::size_t& pos);

// Incremental stream parser.
class StanzaStream {
 public:
  enum class EventType { kStreamOpen, kStanza, kStreamClose };

  struct Event {
    EventType type;
    XmlNode node;  // stream-open attributes or the stanza itself
  };

  // Appends raw bytes from the transport.
  void feed(std::string_view bytes);

  // Returns the next complete event, or nullopt if more bytes are needed.
  std::optional<Event> next();

  // True once malformed XML has been encountered; the connection should be
  // dropped.
  bool failed() const noexcept { return failed_; }

  std::size_t buffered_bytes() const noexcept { return buffer_.size(); }

  // Migration snapshot/restore (DESIGN.md §17): the incremental parse state
  // is exactly the byte buffer plus the stream-open flag, so a mid-stanza
  // connection survives an actor migration byte-for-byte.
  const std::string& buffer() const noexcept { return buffer_; }
  bool in_stream() const noexcept { return in_stream_; }
  void restore(std::string buffer, bool in_stream) {
    buffer_ = std::move(buffer);
    in_stream_ = in_stream;
    failed_ = false;
  }

 private:
  std::string buffer_;
  bool in_stream_ = false;
  bool failed_ = false;
};

// --- stanza builders used by both servers and the client -------------------

std::string make_stream_open(std::string_view to);
std::string make_stream_close();
std::string make_auth(std::string_view jid);
std::string make_auth_success();
std::string make_chat_message(std::string_view from, std::string_view to,
                              std::string_view body);
std::string make_groupchat_message(std::string_view from, std::string_view to,
                                   std::string_view body);
std::string make_presence_join(std::string_view from, std::string_view room);
std::string make_error(std::string_view reason);

}  // namespace ea::xmpp
