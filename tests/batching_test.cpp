// Batched message plane tests (ctest label: tsan).
//
// Covers the burst APIs introduced with the contention-free messaging work:
// Mbox::push_chain/pop_burst, ChainBuilder, the pool magazine layer, and
// channel batch framing (send_batch/recv_burst). The concurrency tests are
// property tests — per-producer FIFO and node conservation must hold for
// every interleaving — and are sized to give TSan real schedules to check.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "concurrent/arena.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"
#include "core/channel.hpp"
#include "crypto/aead.hpp"
#include "sgxsim/enclave.hpp"
#include "util/bytes.hpp"

namespace {

using ea::concurrent::ChainBuilder;
using ea::concurrent::Mbox;
using ea::concurrent::Node;
using ea::concurrent::NodeArena;
using ea::concurrent::NodeLease;
using ea::concurrent::Pool;

constexpr std::uint64_t make_tag(unsigned producer, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(producer) << 48) | seq;
}

// Deterministic per-thread chain/burst length variation (xorshift64).
struct SmallRng {
  std::uint64_t state;
  explicit SmallRng(std::uint64_t seed) : state(seed * 2654435769u + 1) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

// Satellite property: chains pushed with push_chain and drained with
// pop_burst (of random lengths, racing singles) preserve per-producer FIFO
// and conserve every node.
TEST(BatchingStress, ChainAndBurstPreserveFifoPerProducer) {
  constexpr unsigned kProducers = 4;
  constexpr unsigned kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 1200;
  constexpr std::size_t kMaxBurst = 16;

  NodeArena arena(256, 64);
  Pool pool;
  pool.adopt(arena);
  Mbox mbox;

  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> producers_done{false};
  std::atomic<bool> order_ok{true};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);

  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      SmallRng rng(p + 1);
      std::uint64_t seq = 0;
      while (seq < kPerProducer) {
        // Random chain length 1..8; length 1 alternates between push and a
        // one-node chain so singles race chains on the same mbox.
        std::size_t want = 1 + rng.next() % 8;
        ChainBuilder chain;
        while (chain.size() < want && seq < kPerProducer) {
          Node* n = pool.get();
          if (n == nullptr) break;
          n->tag = make_tag(p, seq++);
          chain.append(n);
        }
        if (chain.empty()) {
          std::this_thread::yield();
          continue;
        }
        if (chain.size() == 1 && (rng.next() & 1) != 0) {
          Node* n = nullptr;
          std::size_t got = mbox.pop_burst(&n, 0);  // no-op, max=0
          EXPECT_EQ(got, 0u);
        }
        chain.flush_into(mbox);
      }
    });
  }

  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      SmallRng rng(100 + c);
      std::uint64_t last_seen[kProducers] = {};
      bool seen_any[kProducers] = {};
      Node* burst[kMaxBurst];
      for (;;) {
        std::size_t max = 1 + rng.next() % kMaxBurst;
        std::size_t got = mbox.pop_burst(burst, max);
        if (got == 0) {
          if (producers_done.load(std::memory_order_acquire) && mbox.empty()) {
            break;
          }
          std::this_thread::yield();
          continue;
        }
        for (std::size_t i = 0; i < got; ++i) {
          auto producer = static_cast<unsigned>(burst[i]->tag >> 48);
          std::uint64_t seq = burst[i]->tag & ((1ull << 48) - 1);
          if (seen_any[producer] && seq <= last_seen[producer]) {
            order_ok.store(false, std::memory_order_relaxed);
          }
          last_seen[producer] = seq;
          seen_any[producer] = true;
          pool.put(burst[i]);
        }
        consumed.fetch_add(got, std::memory_order_relaxed);
      }
    });
  }

  for (unsigned p = 0; p < kProducers; ++p) threads[p].join();
  producers_done.store(true, std::memory_order_release);
  for (unsigned c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_TRUE(order_ok.load()) << "per-producer FIFO order violated";
  EXPECT_TRUE(mbox.empty());
  EXPECT_EQ(pool.size(), arena.count());
}

TEST(Batching, MboxLockFreeSizeAndBurstBasics) {
  NodeArena arena(16, 64);
  Pool pool;
  pool.adopt(arena);
  Mbox mbox;

  EXPECT_TRUE(mbox.empty());
  EXPECT_EQ(mbox.size(), 0u);

  ChainBuilder chain;
  for (std::uint64_t i = 0; i < 5; ++i) {
    Node* n = pool.get();
    ASSERT_NE(n, nullptr);
    n->tag = i;
    chain.append(n);
  }
  EXPECT_EQ(chain.size(), 5u);
  chain.flush_into(mbox);
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(mbox.size(), 5u);
  EXPECT_FALSE(mbox.empty());

  // Flushing an empty builder is a no-op.
  chain.flush_into(mbox);
  EXPECT_EQ(mbox.size(), 5u);

  Node* single = pool.get();
  ASSERT_NE(single, nullptr);
  single->tag = 5;
  mbox.push(single);
  EXPECT_EQ(mbox.size(), 6u);

  // Drain with a burst larger than the queue: FIFO across chain + single.
  Node* burst[8];
  std::size_t got = mbox.pop_burst(burst, 8);
  ASSERT_EQ(got, 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(burst[i]->tag, i);
    pool.put(burst[i]);
  }
  EXPECT_TRUE(mbox.empty());
  EXPECT_EQ(mbox.size(), 0u);
  EXPECT_EQ(pool.size(), arena.count());
}

// Pool conservation with the magazine layer on and off, including nodes
// freed by a different thread than the one that allocated them.
TEST(BatchingStress, PoolMagazineConservation) {
  for (bool magazines : {true, false}) {
    constexpr unsigned kThreads = 4;
    constexpr int kIterations = 3000;
    NodeArena arena(64, 64);
    Pool pool(magazines);
    pool.adopt(arena);
    Mbox handoff;  // nodes cross threads so puts hit foreign magazines

    std::atomic<std::uint64_t> moved{0};
    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        SmallRng rng(t + 7);
        for (int i = 0; i < kIterations; ++i) {
          if ((rng.next() & 1) != 0) {
            Node* n = pool.get();
            if (n == nullptr) {
              std::this_thread::yield();
              continue;
            }
            handoff.push(n);
          } else if (Node* n = handoff.pop()) {
            pool.put(n);
            moved.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    done.store(true);
    while (Node* n = handoff.pop()) pool.put(n);

    EXPECT_GT(moved.load(), 0u);
    EXPECT_TRUE(handoff.empty());
    EXPECT_EQ(pool.size(), arena.count())
        << "magazines=" << magazines
        << ": nodes cached per-thread must be accounted and conserved";
  }
}

TEST(Batching, ChannelBatchRoundTripAndBurst) {
  auto& mgr = ea::sgxsim::EnclaveManager::instance();
  auto& ea1 = mgr.create("batching.a");
  auto& ea2 = mgr.create("batching.b");

  NodeArena arena(64, 512);
  Pool pool;
  pool.adopt(arena);

  ea::core::Channel channel("batching.rt", {}, pool);
  ea::core::ChannelEnd* a = channel.connect(ea1.id());
  ea::core::ChannelEnd* b = channel.connect(ea2.id());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(channel.encrypted());

  // Variable-length messages, including an empty one, plus interleaved
  // single sends: the receiver must observe global FIFO order.
  std::vector<ea::util::Bytes> sent;
  for (std::uint32_t i = 0; i < 9; ++i) {
    ea::util::Bytes m(i == 4 ? 0 : 5 + 13 * i);
    for (std::size_t j = 0; j < m.size(); ++j) {
      m[j] = static_cast<std::uint8_t>(i * 31 + j);
    }
    sent.push_back(std::move(m));
  }
  std::vector<std::span<const std::uint8_t>> first(sent.begin(),
                                                   sent.begin() + 6);
  ASSERT_EQ(a->send_batch(first), 6u);
  ASSERT_TRUE(a->send(std::span<const std::uint8_t>(sent[6])));
  std::vector<std::span<const std::uint8_t>> second(sent.begin() + 7,
                                                    sent.end());
  ASSERT_EQ(a->send_batch(second), 2u);

  // recv() unpacks batch frames transparently; drain the first four one at
  // a time and the rest as one burst.
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(b->pending());
    NodeLease m = b->recv();
    ASSERT_TRUE(m) << "message " << i;
    ASSERT_EQ(m->size, sent[i].size());
    EXPECT_EQ(std::memcmp(m->payload(), sent[i].data(), m->size), 0);
  }
  NodeLease rest[8];
  std::size_t got = b->recv_burst(rest, 8);
  ASSERT_EQ(got, 5u);
  for (std::size_t i = 0; i < got; ++i) {
    const auto& expect = sent[4 + i];
    ASSERT_EQ(rest[i]->size, expect.size());
    if (!expect.empty()) {
      EXPECT_EQ(std::memcmp(rest[i]->payload(), expect.data(), expect.size()),
                0);
    }
    rest[i].reset();
  }
  EXPECT_FALSE(b->pending());
  EXPECT_EQ(channel.auth_failures(), 0u);
  EXPECT_EQ(channel.frame_errors(), 0u);
  EXPECT_EQ(pool.size(), arena.count());
}

// A batch frame that cannot be fully unpacked (pool exhausted) parks
// without losing messages; progress resumes as nodes free up.
TEST(Batching, ChannelBatchSurvivesPoolExhaustion) {
  auto& mgr = ea::sgxsim::EnclaveManager::instance();
  auto& ea1 = mgr.create("batching.exh.a");
  auto& ea2 = mgr.create("batching.exh.b");

  NodeArena arena(4, 512);
  Pool pool;
  pool.adopt(arena);

  ea::core::Channel channel("batching.exh", {}, pool);
  ea::core::ChannelEnd* a = channel.connect(ea1.id());
  ea::core::ChannelEnd* b = channel.connect(ea2.id());
  ASSERT_TRUE(channel.encrypted());

  std::uint8_t payload[8];
  std::vector<std::span<const std::uint8_t>> msgs;
  for (int i = 0; i < 6; ++i) {
    msgs.emplace_back(payload, sizeof(payload));
  }
  std::memset(payload, 0x42, sizeof(payload));
  ASSERT_EQ(a->send_batch(msgs), 6u);  // frame occupies 1 of 4 nodes

  std::vector<NodeLease> held;
  std::size_t received = 0;
  // Hold every delivered lease: after the 3 free nodes are consumed the
  // channel must stall rather than drop the remaining messages.
  while (received < 6) {
    NodeLease m = b->recv();
    if (!m) {
      ASSERT_FALSE(held.empty()) << "no progress with free nodes available";
      ASSERT_LT(received, 6u);
      // Free one node; the parked frame must resume exactly where it was.
      held.erase(held.begin());
      continue;
    }
    EXPECT_EQ(m->size, sizeof(payload));
    ++received;
    held.push_back(std::move(m));
  }
  EXPECT_EQ(received, 6u);
  EXPECT_FALSE(b->pending());
  EXPECT_EQ(channel.frame_errors(), 0u);
  held.clear();
  EXPECT_EQ(pool.size(), arena.count());
}

// Regression for the parked-frame resume path when the node that unblocks
// it comes back through a *different* thread's magazine flush: the freeing
// thread caches the node in its own magazine, and only its thread-exit
// flush (PoolThreadCache destructor) publishes it to the shared list. The
// receiving thread's next recv() must refill from there and resume the
// frame — the test above only covers a same-thread put().
TEST(Batching, ParkedFrameResumesAfterForeignMagazineFlush) {
  auto& mgr = ea::sgxsim::EnclaveManager::instance();
  auto& ea1 = mgr.create("batching.fmf.a");
  auto& ea2 = mgr.create("batching.fmf.b");

  NodeArena arena(4, 512);
  Pool pool(/*use_magazines=*/true);
  pool.adopt(arena);

  ea::core::Channel channel("batching.fmf", {}, pool);
  ea::core::ChannelEnd* a = channel.connect(ea1.id());
  ea::core::ChannelEnd* b = channel.connect(ea2.id());
  ASSERT_TRUE(channel.encrypted());

  std::vector<ea::util::Bytes> sent;
  std::vector<std::span<const std::uint8_t>> msgs;
  for (std::uint8_t i = 0; i < 6; ++i) {
    sent.emplace_back(8, static_cast<std::uint8_t>(0x10 + i));
    msgs.emplace_back(sent.back());
  }
  ASSERT_EQ(a->send_batch(msgs), 6u);  // frame occupies 1 of 4 nodes

  std::vector<NodeLease> held;
  std::size_t received = 0;
  while (received < 6) {
    NodeLease m = b->recv();
    if (!m) {
      ASSERT_FALSE(held.empty()) << "no progress with free nodes available";
      // Free the oldest held node on a foreign thread and let that thread
      // exit: the node must come back via its magazine flush.
      NodeLease victim = std::move(held.front());
      held.erase(held.begin());
      std::thread flusher([lease = std::move(victim)]() mutable {
        lease.reset();
      });
      flusher.join();
      continue;
    }
    ASSERT_EQ(m->size, 8u);
    EXPECT_EQ(m->payload()[0], static_cast<std::uint8_t>(0x10 + received));
    ++received;
    held.push_back(std::move(m));
  }
  EXPECT_EQ(received, 6u);
  EXPECT_FALSE(b->pending());
  EXPECT_EQ(channel.frame_errors(), 0u);
  EXPECT_EQ(channel.auth_failures(), 0u);
  held.clear();
  EXPECT_EQ(pool.size(), arena.count());
}

// The batch AAD domain is bound into the seal: a frame sealed as a batch
// cannot be opened as a single message (and vice versa), so a malicious
// runtime re-tagging nodes produces authentication failures, not confused
// frame parsing.
TEST(Batching, BatchAadDomainSeparation) {
  ea::crypto::AeadKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const std::uint8_t aad_single[1] = {0};
  const std::uint8_t aad_batch[2] = {0, 1};

  ea::util::Bytes frame(ea::crypto::kAeadOverhead + 24);
  for (std::size_t i = 0; i < 24; ++i) {
    frame[ea::crypto::kAeadNonceSize + i] = static_cast<std::uint8_t>(i);
  }
  ea::util::Bytes plain(frame.begin() + ea::crypto::kAeadNonceSize,
                        frame.begin() + ea::crypto::kAeadNonceSize + 24);
  ea::crypto::seal_framed_into(key, 9, std::span(aad_batch), frame);

  // Opening with the batch AAD succeeds and round-trips in place.
  ea::util::Bytes copy = frame;
  std::size_t len = 0;
  ASSERT_TRUE(
      ea::crypto::open_framed_in_place(key, std::span(aad_batch), copy, len));
  ASSERT_EQ(len, 24u);
  EXPECT_EQ(std::memcmp(copy.data() + ea::crypto::kAeadNonceSize,
                        plain.data(), len),
            0);

  // Re-tagging (single AAD against a batch seal) must fail authentication.
  copy = frame;
  EXPECT_FALSE(ea::crypto::open_framed_in_place(key, std::span(aad_single),
                                                copy, len));
  // A flipped ciphertext byte must fail too.
  copy = frame;
  copy[ea::crypto::kAeadNonceSize + 3] ^= 0x20;
  EXPECT_FALSE(ea::crypto::open_framed_in_place(key, std::span(aad_batch),
                                                copy, len));

  // The in-place sealer interoperates with the allocating opener.
  auto opened =
      ea::crypto::open_framed(key, std::span(aad_batch), std::span(frame));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plain);
}

}  // namespace
