// Protocol-fault tests for the channel layer (ctest label: fault).
//
// Uses the failpoint subsystem to inject wire corruption, AEAD open
// failures and truncated batch frames, and checks the contract from
// DESIGN.md: a bad message is dropped and *counted* (auth_failures /
// frame_errors), the stream never wedges, and every node goes back to the
// pool.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "concurrent/arena.hpp"
#include "concurrent/pool.hpp"
#include "core/channel.hpp"
#include "sgxsim/enclave.hpp"
#include "util/bytes.hpp"
#include "util/failpoint.hpp"

namespace fp = ea::util::failpoint;

namespace {

using ea::concurrent::NodeArena;
using ea::concurrent::NodeLease;
using ea::concurrent::Pool;

class ChannelFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear_all();
    fp::reset_counters();
  }
  void TearDown() override { fp::clear_all(); }

  // Builds an encrypted point-to-point channel between two fresh enclaves.
  // Enclave names must be unique per test (the manager is process-global).
  void make_channel(const std::string& tag,
                    ea::core::ChannelOptions options = {}) {
    auto& mgr = ea::sgxsim::EnclaveManager::instance();
    auto& ea1 = mgr.create("chfault." + tag + ".a");
    auto& ea2 = mgr.create("chfault." + tag + ".b");
    arena_.emplace(16, 512);
    pool_.emplace();
    pool_->adopt(*arena_);
    channel_.emplace("chfault." + tag, options, *pool_);
    a_ = channel_->connect(ea1.id());
    b_ = channel_->connect(ea2.id());
    ASSERT_NE(a_, nullptr);
    ASSERT_NE(b_, nullptr);
  }

  void expect_pool_full() { EXPECT_EQ(pool_->size(), arena_->count()); }

  std::optional<NodeArena> arena_;
  std::optional<Pool> pool_;
  std::optional<ea::core::Channel> channel_;
  ea::core::ChannelEnd* a_ = nullptr;
  ea::core::ChannelEnd* b_ = nullptr;
};

std::string as_string(const NodeLease& m) {
  return std::string(reinterpret_cast<const char*>(m->payload()), m->size);
}

TEST_F(ChannelFaultTest, CorruptedMessageDroppedNextOneDelivers) {
  make_channel("corrupt");
  ASSERT_TRUE(channel_->encrypted());

  ASSERT_TRUE(a_->send("first"));
  ASSERT_TRUE(a_->send("second"));
  ASSERT_TRUE(fp::set("channel.recv.corrupt", "once"));

  // The corrupted node fails authentication and is dropped; the receiver
  // sees an empty lease, not garbage plaintext.
  NodeLease m = b_->recv();
  EXPECT_FALSE(m);
  EXPECT_EQ(channel_->auth_failures(), 1u);

  // The stream is not wedged: the next message decrypts normally.
  m = b_->recv();
  ASSERT_TRUE(m);
  EXPECT_EQ(as_string(m), "second");
  m.reset();
  EXPECT_EQ(channel_->frame_errors(), 0u);
  expect_pool_full();
}

TEST_F(ChannelFaultTest, AeadOpenFailureDropsOnlyThatMessage) {
  make_channel("aeadopen");
  ASSERT_TRUE(channel_->encrypted());

  ASSERT_TRUE(a_->send("alpha"));
  ASSERT_TRUE(a_->send("beta"));
  // Fail inside the crypto layer itself (covers open_framed_in_place): the
  // ciphertext is intact but the open reports failure, e.g. a transient
  // hardware-AEAD engine error.
  ASSERT_TRUE(fp::set("crypto.aead.open", "once"));

  EXPECT_FALSE(b_->recv());
  EXPECT_EQ(channel_->auth_failures(), 1u);
  NodeLease m = b_->recv();
  ASSERT_TRUE(m);
  EXPECT_EQ(as_string(m), "beta");
  m.reset();
  expect_pool_full();
}

TEST_F(ChannelFaultTest, CorruptedBatchFrameDropsWholeFrame) {
  make_channel("batchcorrupt");
  ASSERT_TRUE(channel_->encrypted());

  std::vector<ea::util::Bytes> payloads;
  std::vector<std::span<const std::uint8_t>> msgs;
  for (int i = 0; i < 4; ++i) {
    payloads.push_back(ea::util::to_bytes("batch-" + std::to_string(i)));
    msgs.emplace_back(payloads.back());
  }
  ASSERT_EQ(a_->send_batch(msgs), 4u);
  ASSERT_TRUE(a_->send("after"));

  // Corrupting a sealed batch frame must reject the whole frame at
  // authentication — sub-messages are never parsed out of unauthenticated
  // bytes.
  ASSERT_TRUE(fp::set("channel.recv.corrupt", "once"));
  EXPECT_FALSE(b_->recv());
  EXPECT_EQ(channel_->auth_failures(), 1u);
  EXPECT_EQ(channel_->frame_errors(), 0u);

  NodeLease m = b_->recv();
  ASSERT_TRUE(m);
  EXPECT_EQ(as_string(m), "after");
  m.reset();
  expect_pool_full();
}

TEST_F(ChannelFaultTest, TruncatedBatchFrameCountsFrameErrorAndRecovers) {
  make_channel("truncate");
  ASSERT_TRUE(channel_->encrypted());

  std::vector<ea::util::Bytes> payloads;
  std::vector<std::span<const std::uint8_t>> msgs;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(ea::util::to_bytes("msg-" + std::to_string(i)));
    msgs.emplace_back(payloads.back());
  }
  ASSERT_EQ(a_->send_batch(msgs), 5u);

  // Truncation *after* authentication models a malformed-but-authentic
  // frame (buggy sender): the count field survives but the first length
  // field cannot, so the batch walk must bail with a frame error instead
  // of over-reading.
  ASSERT_TRUE(fp::set("channel.batch.truncate", "once"));
  EXPECT_FALSE(b_->recv());
  EXPECT_EQ(channel_->frame_errors(), 1u);
  EXPECT_EQ(channel_->auth_failures(), 0u);

  // No pending half-consumed frame is left behind and later traffic flows.
  EXPECT_FALSE(b_->pending());
  ASSERT_TRUE(a_->send("later"));
  NodeLease m = b_->recv();
  ASSERT_TRUE(m);
  EXPECT_EQ(as_string(m), "later");
  m.reset();
  expect_pool_full();
}

TEST_F(ChannelFaultTest, ProbabilisticCorruptionConservesEveryMessage) {
  make_channel("soak");
  ASSERT_TRUE(channel_->encrypted());

  // 50% of receives see a flipped ciphertext byte. Every send must end up
  // either delivered intact or counted as an auth failure — nothing is
  // silently lost, duplicated, or delivered corrupted.
  ASSERT_TRUE(fp::set("channel.recv.corrupt", "50%return"));
  constexpr int kMessages = 40;
  int delivered = 0;
  for (int i = 0; i < kMessages; ++i) {
    std::string body = "soak-" + std::to_string(i);
    ASSERT_TRUE(a_->send(body));
    NodeLease m = b_->recv();
    if (m) {
      EXPECT_EQ(as_string(m), body);
      ++delivered;
    }
  }
  fp::clear("channel.recv.corrupt");
  const auto dropped =
      static_cast<int>(channel_->auth_failures());
  EXPECT_EQ(delivered + dropped, kMessages);
  EXPECT_GT(dropped, 0);
  EXPECT_GT(delivered, 0);
  expect_pool_full();
}

TEST_F(ChannelFaultTest, HardwareModelRejectsCorruptionToo) {
  ea::core::ChannelOptions opts;
  opts.cipher = ea::core::CipherModel::kHardwareModel;
  make_channel("hw", opts);
  ASSERT_TRUE(channel_->encrypted());

  ASSERT_TRUE(a_->send("hw-first"));
  ASSERT_TRUE(a_->send("hw-second"));
  ASSERT_TRUE(fp::set("channel.recv.corrupt", "once"));

  // The hardware performance model carries an additive checksum rather
  // than a MAC, but the drop-and-count contract is identical.
  EXPECT_FALSE(b_->recv());
  EXPECT_EQ(channel_->auth_failures(), 1u);
  NodeLease m = b_->recv();
  ASSERT_TRUE(m);
  EXPECT_EQ(as_string(m), "hw-second");
  m.reset();
  expect_pool_full();
}

}  // namespace
