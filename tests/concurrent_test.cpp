#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "concurrent/arena.hpp"
#include "concurrent/hle_lock.hpp"
#include "concurrent/mbox.hpp"
#include "concurrent/pool.hpp"

namespace ea::concurrent {
namespace {

TEST(Arena, AllocatesRequestedNodes) {
  NodeArena arena(10, 256);
  EXPECT_EQ(arena.count(), 10u);
  EXPECT_EQ(arena.payload_capacity(), 256u);
  for (std::size_t i = 0; i < 10; ++i) {
    Node* n = arena.node(i);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->capacity, 256u);
    EXPECT_EQ(n->size, 0u);
  }
}

TEST(Arena, NodesAreCacheLineAligned) {
  NodeArena arena(4, 100);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.node(i)) % 64, 0u);
  }
}

TEST(Arena, PayloadsDontOverlap) {
  NodeArena arena(3, 128);
  for (std::size_t i = 0; i < 3; ++i) {
    std::memset(arena.node(i)->payload(), static_cast<int>(i + 1), 128);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(arena.node(i)->payload()[0], i + 1);
    EXPECT_EQ(arena.node(i)->payload()[127], i + 1);
  }
}

TEST(Node, FillTruncatesToCapacity) {
  NodeArena arena(1, 8);
  Node* n = arena.node(0);
  std::string big = "0123456789abcdef";
  EXPECT_EQ(n->fill(big), 8u);
  EXPECT_EQ(n->size, 8u);
  EXPECT_EQ(n->view(), "01234567");
}

TEST(Pool, LifoSemantics) {
  NodeArena arena(3, 64);
  Pool pool;
  Node* a = arena.node(0);
  Node* b = arena.node(1);
  pool.put(a);
  pool.put(b);
  // LIFO: most recently put comes out first.
  EXPECT_EQ(pool.get(), b);
  EXPECT_EQ(pool.get(), a);
  EXPECT_EQ(pool.get(), nullptr);
}

TEST(Pool, AdoptSetsHomeAndCount) {
  NodeArena arena(5, 64);
  Pool pool;
  pool.adopt(arena);
  EXPECT_EQ(pool.size(), 5u);
  Node* n = pool.get();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->home, &pool);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(Pool, GetResetsNodeState) {
  NodeArena arena(1, 64);
  Pool pool;
  pool.adopt(arena);
  Node* n = pool.get();
  n->fill("hello");
  n->tag = 99;
  pool.put(n);
  Node* again = pool.get();
  EXPECT_EQ(again, n);
  EXPECT_EQ(again->size, 0u);
  EXPECT_EQ(again->tag, 0u);
}

TEST(Pool, NodeLeaseReturnsOnDestruction) {
  NodeArena arena(1, 64);
  Pool pool;
  pool.adopt(arena);
  {
    NodeLease lease(pool.get());
    ASSERT_TRUE(lease);
    EXPECT_TRUE(pool.empty());
  }
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Pool, NodeLeaseReleaseKeepsNodeOut) {
  NodeArena arena(1, 64);
  Pool pool;
  pool.adopt(arena);
  Node* raw = nullptr;
  {
    NodeLease lease(pool.get());
    raw = lease.release();
  }
  EXPECT_TRUE(pool.empty());
  pool.put(raw);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Pool, NodeLeaseMoveSemantics) {
  NodeArena arena(2, 64);
  Pool pool;
  pool.adopt(arena);
  NodeLease a(pool.get());
  NodeLease b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — testing moved state
  EXPECT_TRUE(b);
  NodeLease c(pool.get());
  c = std::move(b);
  EXPECT_TRUE(c);
  EXPECT_EQ(pool.size(), 1u);  // the node previously in c went home
}

TEST(Mbox, FifoSemantics) {
  NodeArena arena(3, 64);
  Mbox mbox;
  mbox.push(arena.node(0));
  mbox.push(arena.node(1));
  mbox.push(arena.node(2));
  EXPECT_EQ(mbox.size(), 3u);
  EXPECT_EQ(mbox.pop(), arena.node(0));
  EXPECT_EQ(mbox.pop(), arena.node(1));
  EXPECT_EQ(mbox.pop(), arena.node(2));
  EXPECT_EQ(mbox.pop(), nullptr);
  EXPECT_TRUE(mbox.empty());
}

TEST(Mbox, InterleavedPushPop) {
  NodeArena arena(4, 64);
  Mbox mbox;
  mbox.push(arena.node(0));
  EXPECT_EQ(mbox.pop(), arena.node(0));
  EXPECT_EQ(mbox.pop(), nullptr);
  mbox.push(arena.node(1));
  mbox.push(arena.node(2));
  EXPECT_EQ(mbox.pop(), arena.node(1));
  mbox.push(arena.node(3));
  EXPECT_EQ(mbox.pop(), arena.node(2));
  EXPECT_EQ(mbox.pop(), arena.node(3));
  EXPECT_TRUE(mbox.empty());
}

TEST(Mbox, PushNullIgnored) {
  Mbox mbox;
  mbox.push(nullptr);
  EXPECT_TRUE(mbox.empty());
}

// Multi-threaded conservation: N producers move nodes pool -> mbox, N
// consumers move them mbox -> pool. No node may be lost or duplicated.
TEST(MboxPool, MultiThreadedConservation) {
  constexpr std::size_t kNodes = 256;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;

  NodeArena arena(kNodes, 64);
  Pool pool;
  pool.adopt(arena);
  Mbox mbox;

  std::atomic<std::uint64_t> transfers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        if ((i + t) % 2 == 0) {
          if (Node* n = pool.get()) {
            n->tag = static_cast<std::uint64_t>(t);
            mbox.push(n);
            transfers.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (Node* n = mbox.pop()) {
            pool.put(n);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Drain and count.
  std::size_t in_mbox = 0;
  while (mbox.pop() != nullptr) ++in_mbox;
  std::size_t in_pool = 0;
  std::set<Node*> seen;
  while (Node* n = pool.get()) {
    EXPECT_TRUE(seen.insert(n).second) << "duplicate node in pool";
    ++in_pool;
  }
  EXPECT_EQ(in_mbox + in_pool, kNodes);
  EXPECT_GT(transfers.load(), 0u);
}

TEST(MboxPool, FifoOrderPreservedUnderSingleProducer) {
  NodeArena arena(128, 64);
  Pool pool;
  pool.adopt(arena);
  Mbox mbox;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      Node* n;
      while ((n = pool.get()) == nullptr) {
        std::this_thread::yield();
      }
      n->tag = i;
      mbox.push(n);
    }
  });

  std::uint64_t expected = 0;
  while (expected < 1000) {
    Node* n = mbox.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    EXPECT_EQ(n->tag, expected);
    ++expected;
    pool.put(n);
  }
  producer.join();
}

TEST(HleLock, MutualExclusion) {
  HleSpinLock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        HleGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

class PoolStress : public ::testing::TestWithParam<int> {};

TEST_P(PoolStress, GetPutBalance) {
  const int threads = GetParam();
  NodeArena arena(64, 32);
  Pool pool;
  pool.adopt(arena);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        Node* n = pool.get();
        if (n != nullptr) pool.put(n);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(pool.size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(Threads, PoolStress, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace ea::concurrent
